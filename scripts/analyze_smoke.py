#!/usr/bin/env python
"""CI analyze smoke: the static analyzer over every shipped program.

Runs the real ``repro analyze`` CLI on the three paper programs plus a
seeded random program, captures the JSON reports (uploaded as a CI
artifact from ``analyze-reports/``), and asserts the analysis carries
its weight:

  * iutest / cncf / random:<seed> analyze window-accurately -- non-empty
    CFG (blocks, instructions), at least one natural loop, a non-empty
    dead-word claim set, and an ACE fraction strictly inside (0, 1);
  * paranoia degrades (its FP-literal pool defeats window tracking) but
    must still ship image-wide global claims and say why it degraded.

Exit code 1 on any violation.

Usage: PYTHONPATH=src python scripts/analyze_smoke.py [report-dir]
"""

import json
import subprocess
import sys
from pathlib import Path

#: Programs expected to analyze with window-accurate claims.
WINDOW_ACCURATE = ("iutest", "cncf", "random:7")
#: Programs expected to degrade to image-wide global-only claims.
DEGRADED = ("paranoia",)


def _analyze(program: str, report: Path) -> dict:
    command = [sys.executable, "-m", "repro", "analyze", program,
               "--report", str(report)]
    completed = subprocess.run(command, capture_output=True, text=True)
    if completed.returncode != 0:
        raise SystemExit(f"analyze {program} failed:\n{completed.stderr}")
    return json.loads(report.read_text())


def main() -> int:
    failed = False
    report_dir = Path(sys.argv[1] if len(sys.argv) > 1 else
                      "analyze-reports")
    report_dir.mkdir(parents=True, exist_ok=True)

    def check(condition: bool, label: str) -> None:
        nonlocal failed
        print(f"  {'ok  ' if condition else 'FAIL'} {label}")
        failed = failed or not condition

    for program in WINDOW_ACCURATE + DEGRADED:
        slug = program.replace(":", "_")
        payload = _analyze(program, report_dir / f"analyze_{slug}.json")
        ace = payload["ace"]
        cfg = payload["cfg"]
        print(f"{program}:")
        check(ace["never_words"], "dead-word claims are non-empty")
        check(0.0 < ace["ace_fraction"] < 1.0,
              f"ACE fraction {ace['ace_fraction']:.3f} in (0, 1)")
        if program in WINDOW_ACCURATE:
            check(ace["window_claims"], "window-accurate claims")
            check(cfg["blocks"] > 0 and cfg["instructions"] > 0,
                  f"CFG non-empty ({cfg['blocks']} blocks, "
                  f"{cfg['instructions']} instructions)")
            check(bool(cfg["loops"]), f"{len(cfg['loops'])} natural loop(s)")
            check(payload["liveness"]["sites"] > 0,
                  f"{payload['liveness']['sites']} liveness sites")
        else:
            check(not ace["window_claims"], "degraded as expected")
            check(bool(ace["degraded_reason"]),
                  f"degradation reason: {ace['degraded_reason']!r}")
            check(all(word < 8 for word in ace["never_words"]),
                  "degraded claims cover globals only")

    print(f"\nanalyze smoke: {'FAIL' if failed else 'ok'} "
          f"(reports in {report_dir}/)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
