#!/usr/bin/env python
"""CI throughput smoke: fail on a >30% interpreter-speed regression.

Measures single-run throughput on the default execution path (trace JIT
enabled -- the same measurement ``benchmarks/test_perf_throughput.py``
records) for roughly 30 seconds and compares it against the
``single_run_ips`` baseline in ``BENCH_throughput.json``.  Exit code 1 on
regression.  The program boots through ``ProgramHarness`` so the timed
loop is IUTEST's patrol, not the unexpected-trap spin a raw
``load_program`` would park on.

CI machines are noisy and heterogeneous, hence the wide 30% band -- the
check exists to catch algorithmic regressions (an accidentally disabled
fast path costs 2-3x), not scheduler jitter.

Usage: PYTHONPATH=src python scripts/throughput_smoke.py [baseline.json]
"""

import json
import sys
import time
from pathlib import Path

from repro.core.config import LeonConfig
from repro.core.system import LeonSystem
from repro.programs import build_iutest
from repro.programs.builder import ProgramHarness

TOLERANCE = 0.30
TARGET_SECONDS = 30.0
CHUNK_INSTRUCTIONS = 100_000


def measure() -> float:
    config = LeonConfig.leon_express()
    system = LeonSystem(config)
    program, _ = build_iutest(config, iterations=1_000_000)
    ProgramHarness(system, program)
    system.run_fast(20_000)  # warm the caches, decode memo, and hot blocks
    instructions = 0
    wall = 0.0
    started = time.perf_counter()
    while time.perf_counter() - started < TARGET_SECONDS:
        result = system.run_fast(CHUNK_INSTRUCTIONS)
        instructions += result.instructions
        wall += result.wall_seconds
        if result.stop_reason != "budget":  # program ended; restart it
            ProgramHarness(system, program)
    return instructions / wall if wall else 0.0


def main() -> int:
    baseline_path = Path(sys.argv[1] if len(sys.argv) > 1
                         else "BENCH_throughput.json")
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; recording current throughput")
        ips = measure()
        baseline_path.write_text(json.dumps({"single_run_ips": round(ips, 1)},
                                            indent=2) + "\n")
        print(f"recorded {ips:,.0f} instr/s")
        return 0
    baseline = json.loads(baseline_path.read_text())["single_run_ips"]
    ips = measure()
    floor = baseline * (1.0 - TOLERANCE)
    status = "OK" if ips >= floor else "REGRESSION"
    print(f"throughput: {ips:,.0f} instr/s "
          f"(baseline {baseline:,.0f}, floor {floor:,.0f}) -> {status}")
    return 0 if ips >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
