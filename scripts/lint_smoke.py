#!/usr/bin/env python
"""CI lint smoke: the FT-invariant analyzer gates the tree.

Runs, in order:

  1. ``repro lint`` over the installed package -- zero active findings
     (suppressed findings are fine: they are reviewed, annotated
     exemptions);
  2. a seeded-violation self-test -- a fixture with one violation per
     rule family must produce findings, proving the gate can actually
     fail (a lint that cannot fail protects nothing);
  3. the runtime audit (``--audit``): snapshot round-trip, fault-space
     coverage, RESET_SKIP -- checked on a live system;
  4. ``ruff check`` / ``mypy`` with the pyproject baselines, when those
     tools are installed (CI installs them; a bare checkout may not).

Exit code 1 on any violation.

Usage: PYTHONPATH=src python scripts/lint_smoke.py
"""

import shutil
import subprocess
import sys
from pathlib import Path

import repro
from repro.analysis import analyze_paths, analyze_source
from repro.analysis.audit import render_audit_text, run_audit

#: One deliberate violation per rule family; the analyzer must flag all.
SEEDED = {
    "FT101": (
        "class Widget:\n"
        "    def __init__(self):\n"
        "        self.count = 0\n"
        "    def capture(self):\n"
        "        return {}\n"
        "    def restore(self, state):\n"
        "        pass\n",
        "repro/cache/fixture.py",
    ),
    "FT201": ("import random\nx = random.random()\n", "repro/fixture.py"),
    "FT301": ("def f(telemetry):\n    telemetry.note('x')\n",
              "repro/fixture.py"),
    "FT402": ("def warm_reset(system, snap):\n    system.restore(snap)\n",
              "repro/fixture.py"),
}


def main() -> int:
    failed = False

    package = Path(repro.__file__).parent
    findings = analyze_paths([package])
    active = [f for f in findings if not f.suppressed]
    print(f"lint: {len(active)} active / {len(findings)} total findings "
          f"over {package}")
    for finding in active:
        print(f"  FAIL {finding.location()}: {finding.code} "
              f"{finding.message}")
        failed = True

    for code, (source, path) in sorted(SEEDED.items()):
        found = [f.code for f in analyze_source(source, path)]
        if code in found:
            print(f"self-test {code}: flagged (ok)")
        else:
            print(f"  FAIL self-test: seeded {code} violation not "
                  f"flagged (got {found})")
            failed = True

    audit = run_audit()
    print(render_audit_text(audit))
    failed = failed or not audit["ok"]

    for tool, argv in (("ruff", ["ruff", "check", "src", "scripts"]),
                       ("mypy", ["mypy"])):
        if shutil.which(tool) is None:
            print(f"{tool}: not installed, skipped (CI runs it)")
            continue
        proc = subprocess.run(argv, capture_output=True, text=True)
        if proc.returncode != 0:
            print(f"  FAIL {tool}:\n{proc.stdout}{proc.stderr}")
            failed = True
        else:
            print(f"{tool}: clean")

    print("FAILED" if failed else "OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
