#!/usr/bin/env python
"""CI recovery smoke: a short beam campaign with the recovery ladder armed.

Runs the pinned halting scenario (standard device, LET 110, dense beam,
seeds 16 and 1) under ``recovery="ladder"`` twice -- serially and fanned
across worker processes -- and checks that

  * every run completes end to end (no terminal halt, nothing
    unrecovered) with at least one recovery applied;
  * the two executions are byte-identical, field for field.

Exit code 1 on any violation.  This is the fast always-on guard for the
``--recovery`` code path; the full latency record lives in
``benchmarks/test_perf_recovery.py`` (BENCH_recovery.json).

Usage: PYTHONPATH=src python scripts/recovery_smoke.py
"""

import sys

from repro.core.config import LeonConfig
from repro.fault.campaign import CampaignConfig
from repro.fault.executor import CampaignExecutor

SEEDS = (16, 1)
JOB_COUNTS = (1, 4)

CONFIGS = [
    CampaignConfig(
        program="iutest",
        let=110.0,
        flux=5_000.0,
        fluence=10_000.0,
        seed=seed,
        instructions_per_second=30_000.0,
        leon=LeonConfig.standard(),
        recovery="ladder",
    )
    for seed in SEEDS
]


def main() -> int:
    runs = {jobs: CampaignExecutor(jobs, chunksize=1).run_many(CONFIGS)
            for jobs in JOB_COUNTS}
    baseline = runs[JOB_COUNTS[0]]

    failed = False
    for result in baseline:
        events = result.recovery_events
        print(f"seed {result.config.seed}: {events} recoveries "
              f"{result.recoveries}, downtime {result.downtime_cycles} "
              f"cycles, halted={result.halted}, "
              f"unrecovered={result.unrecovered}")
        if result.halted or result.unrecovered or events == 0:
            print(f"  FAIL: seed {result.config.seed} did not recover "
                  "cleanly")
            failed = True

    comparable = [r.comparable() for r in baseline]
    for jobs in JOB_COUNTS[1:]:
        if [r.comparable() for r in runs[jobs]] != comparable:
            print(f"FAIL: --jobs {jobs} results differ from "
                  f"--jobs {JOB_COUNTS[0]}")
            failed = True
        else:
            print(f"--jobs {jobs} identical to --jobs {JOB_COUNTS[0]}: OK")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
