#!/usr/bin/env python
"""CI attack smoke: a tiny instruction-skip campaign with a stable fold.

Resolves the ``iutest_iteration`` symbol of the pinned test program,
runs a short ``instruction-skip`` attack campaign over a 16-instruction
window (8 seeded replicas) serially and fanned across worker processes,
and checks that

  * the two executions are byte-identical, field for field;
  * every run classifies as detected / silent / masked (nothing halts
    unrecovered) and the fold matches the pinned expectation -- the
    attack either lands (silent data corruption the security readout
    must surface) or falls in a dead slot (masked);
  * at least one run is *silent*: the whole point of the readout is
    that instruction-skip at a checksum site evades the FT fabric.

Exit code 1 on any violation.  This is the fast always-on guard for the
fault-model layer and the ``repro attack`` code path.

Usage: PYTHONPATH=src python scripts/attack_smoke.py
"""

import sys

from repro.fault.campaign import CampaignConfig, resolve_builder
from repro.fault.executor import CampaignExecutor, expand_runs
from repro.fault.models import security_fold

JOB_COUNTS = (1, 2)
RUNS = 8
#: Pinned fold for the parameters below.  Stability across --jobs and
#: across commits is the contract; update deliberately, with the diff
#: explained, if the program image or derivation chain changes.
EXPECTED_FOLD = {"instruction-skip": {"detected": 0, "silent": 8,
                                      "masked": 0}}


def main() -> int:
    built, _expected = resolve_builder("iutest")(None)
    pc = built.symbols["iutest_iteration"]
    base = CampaignConfig(
        program="iutest",
        fluence=2_000.0,
        flux=400.0,
        seed=2026,
        instructions_per_second=50_000.0,
        fault_model="instruction-skip",
        fault_params={"pc": pc, "window": 16, "time_s": 0.5},
    )
    configs = expand_runs(base, RUNS)

    runs = {jobs: CampaignExecutor(jobs, chunksize=1).run_many(configs)
            for jobs in JOB_COUNTS}
    baseline = runs[JOB_COUNTS[0]]

    failed = False
    comparable = [r.comparable() for r in baseline]
    for jobs in JOB_COUNTS[1:]:
        if [r.comparable() for r in runs[jobs]] != comparable:
            print(f"FAIL: --jobs {jobs} results differ from "
                  f"--jobs {JOB_COUNTS[0]}")
            failed = True
        else:
            print(f"--jobs {jobs} identical to --jobs {JOB_COUNTS[0]}: OK")

    for result in baseline:
        print(f"seed {result.config.seed}: sw_errors {result.sw_errors}, "
              f"errors {sum(result.counts.values())}, "
              f"halted={result.halted}, unrecovered={result.unrecovered}")
        if result.halted or result.unrecovered:
            print(f"  FAIL: seed {result.config.seed} did not complete")
            failed = True

    fold = {model: dict(outcomes)
            for model, outcomes in security_fold(baseline).items()}
    print(f"security fold: {fold}")
    if fold != EXPECTED_FOLD:
        print(f"FAIL: fold drifted from pinned expectation "
              f"{EXPECTED_FOLD}")
        failed = True
    if not fold.get("instruction-skip", {}).get("silent"):
        print("FAIL: no silent run -- the attack never evaded detection, "
              "the readout has nothing to surface")
        failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
