#!/usr/bin/env python
"""CI trace smoke: a tiny traced campaign end to end through the CLI.

Runs ``campaign --trace`` (two IUTEST replicas at LET 110, fanned across
two jobs), then drives the ``trace`` and ``stats`` subcommands over the
file it produced, and checks the tentpole invariants directly:

  * every injected strike has a terminal lifecycle event
    (resolve or close) -- the trace view is complete;
  * the Table-2 counters folded from detect events alone match the
    run-end readouts each run recorded (``TraceStats.consistent``);
  * the campaign's measured results are byte-identical to an untraced
    execution of the same configs -- telemetry only observes.

Exit code 1 on any violation.

Usage: PYTHONPATH=src python scripts/trace_smoke.py [trace.jsonl]
"""

import os
import sys
import tempfile

from repro.cli import main as cli
from repro.fault.campaign import CampaignConfig
from repro.fault.executor import CampaignExecutor, expand_runs
from repro.telemetry import fold_stats, lifecycles, read_trace

CAMPAIGN = ["campaign", "--program", "iutest", "--let", "110",
            "--flux", "400", "--fluence", "600", "--ips", "20000",
            "--runs", "2", "--jobs", "2"]


def main() -> int:
    if len(sys.argv) > 1:
        path = sys.argv[1]
    else:
        handle, path = tempfile.mkstemp(suffix=".jsonl", prefix="trace-")
        os.close(handle)
        os.unlink(path)

    if cli(CAMPAIGN + ["--trace", path]) != 0:
        print("FAIL: traced campaign reported failures")
        return 1
    for view in (["trace", path], ["stats", path]):
        print(f"\n$ repro {' '.join(view)}")
        if cli(view) != 0:
            print(f"FAIL: {view[0]} subcommand rejected the trace")
            return 1

    failed = False
    events = read_trace(path)
    lives = lifecycles(events)
    strikes = [life for life in lives if life.strike is not None]
    dangling = [life for life in lives if not life.terminal]
    print(f"\n{len(strikes)} strike(s), {len(lives)} lifecycle(s)")
    if not strikes:
        print("FAIL: the campaign injected no strikes (smoke needs some)")
        failed = True
    if dangling:
        print(f"FAIL: {len(dangling)} upset(s) without a terminal event")
        failed = True

    stats = fold_stats(events)
    if not stats.consistent:
        print("FAIL: event-derived counters disagree with run-end readouts")
        failed = True

    # Byte-identity: re-run the same configs untraced and compare.
    config = CampaignConfig(program="iutest", let=110.0, flux=400.0,
                            fluence=600.0, instructions_per_second=20_000.0)
    untraced = CampaignExecutor(2).run_many(expand_runs(config, 2))
    run_end = [e for e in events if e["ev"] == "run-end"]
    readouts = [(e["counts"], e["upsets"], e["halted"]) for e in run_end]
    expected = [(dict(r.counts), r.upsets, r.halted) for r in untraced]
    if readouts != expected:
        print("FAIL: traced run-end readouts differ from an untraced run")
        failed = True
    else:
        print("traced readouts identical to untraced execution: OK")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
