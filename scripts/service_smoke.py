#!/usr/bin/env python
"""CI service smoke: the campaign service end to end over real HTTP.

Starts ``repro.service`` on an ephemeral port, submits a tiny IUTEST
campaign through ``POST /api/jobs``, polls the job to completion, pulls
the cross-section curve and folded Table-2 JSON back out, and checks the
acceptance invariants directly:

  * the stored results are byte-identical (``comparable()``) to a direct
    in-process executor run of the same configs -- HTTP submission adds
    nothing and loses nothing;
  * the ``/api/campaigns/<c>/curve`` JSON equals the curve rebuilt from
    the direct run (the service's query layer is the same math);
  * two submitters racing on separate threads both reach ``done`` and
    each campaign holds exactly its own runs (jobs-invariance);
  * ``/api/diff`` between the HTTP campaign and an ingested copy of the
    direct run reports zero changed runs.

Exit code 1 on any violation.

Usage: PYTHONPATH=src python scripts/service_smoke.py [campaigns.db]
"""

import json
import os
import sys
import tempfile
import threading
import urllib.request

from repro.fault.executor import CampaignExecutor
from repro.fault.results import ResultStore, config_key
from repro.service.api import build_job_request, make_server
from repro.store import curve_from_results

PAYLOAD = {
    "program": "iutest", "let": 110.0, "flux": 400.0, "fluence": 600.0,
    "seed": 11, "ips": 20_000.0, "beam_delay": 0.1, "beam_tail": 0.5,
    "runs": 2,
}


def call(url, payload=None):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode() if payload is not None else None,
        headers={"Content-Type": "application/json"} if payload else {},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def main() -> int:
    if len(sys.argv) > 1:
        db_path = sys.argv[1]
    else:
        handle, db_path = tempfile.mkstemp(suffix=".db", prefix="service-")
        os.close(handle)
        os.unlink(db_path)

    server = make_server(db_path, port=0)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    print(f"service listening on {server.url} (db: {db_path})")
    failed = False
    try:
        # One campaign over HTTP, polled to done.
        job = call(server.url + "/api/jobs",
                   dict(PAYLOAD, name="http-smoke"))
        print(f"submitted job #{job['id']}: {job['total']} run(s)")
        record = server.queue.wait(job["id"], timeout_s=300)
        print(f"job #{job['id']} finished: {record['state']} "
              f"({record['completed']}/{record['total']})")
        if record["state"] != "done":
            print(f"FAIL: job ended {record['state']}: {record['error']}")
            return 1

        # Byte-identity against a direct in-process run of the same configs.
        configs, _, _ = build_job_request(PAYLOAD)
        direct = CampaignExecutor(1).run_many(configs)
        stored = server.db.results(server.db.campaign_id("http-smoke"))
        if [r.comparable() for r in stored] != \
                [r.comparable() for r in direct]:
            print("FAIL: HTTP-submitted results differ from a direct run")
            failed = True
        else:
            print("stored results identical to direct execution: OK")

        curve = call(server.url + "/api/campaigns/http-smoke/curve")
        curve.pop("campaign", None)  # endpoint envelope, not curve data
        if curve != curve_from_results(direct).as_dict():
            print("FAIL: served cross-section curve differs from direct run")
            failed = True
        else:
            print("served cross-section curve identical: OK")

        table2 = call(server.url + "/api/campaigns/http-smoke/table2")
        print("\n" + table2["rendered"])
        if table2["runs"] != len(configs):
            print("FAIL: Table-2 fold covers the wrong run count")
            failed = True

        # Diff against an ingested JSONL copy of the direct run.
        handle, jsonl = tempfile.mkstemp(suffix=".jsonl", prefix="smoke-")
        os.close(handle)
        try:
            with ResultStore(jsonl) as store:
                store.append(direct)
            server.db.ingest_results(jsonl, name="direct-copy")
        finally:
            os.unlink(jsonl)
        diff = call(server.url + "/api/diff?a=http-smoke&b=direct-copy")
        if diff["changed"] or diff["matched"] != len(configs):
            print(f"FAIL: diff vs direct copy not clean: {diff}")
            failed = True
        else:
            print(f"diff vs ingested direct copy clean "
                  f"({diff['matched']} matched): OK")

        # Two submitters racing: both complete, campaigns stay disjoint.
        jobs = {}

        def submit(name, seed):
            jobs[name] = call(server.url + "/api/jobs",
                              dict(PAYLOAD, seed=seed, name=name))["id"]

        racers = [threading.Thread(target=submit, args=(f"racer-{i}", 20 + i))
                  for i in range(2)]
        for racer in racers:
            racer.start()
        for racer in racers:
            racer.join()
        for name, job_id in sorted(jobs.items()):
            record = server.queue.wait(job_id, timeout_s=300)
            if record["state"] != "done":
                print(f"FAIL: concurrent job {name} ended {record['state']}")
                failed = True
                continue
            results = server.db.results(server.db.campaign_id(name))
            expected, _, _ = build_job_request(
                dict(PAYLOAD, seed=20 + int(name.split("-")[1])))
            if [config_key(r.config) for r in results] != \
                    [config_key(c) for c in expected]:
                print(f"FAIL: campaign {name} holds foreign runs")
                failed = True
            else:
                print(f"concurrent submitter {name}: done, "
                      f"{len(results)} run(s): OK")
    finally:
        server.shutdown()
        server.queue.stop()
        server.db.close()

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
