"""Section 7 comparison: LEON-FT vs IBM S/390 G5 vs Intel Itanium."""

import pytest

from repro.alternatives.schemes import (
    DEFAULT_UPSET_MIX,
    IbmG5Scheme,
    ItaniumScheme,
    LeonFtScheme,
    UpsetClass,
    all_schemes,
    evaluate_scheme,
)
from repro.iu.timing import CYCLES_TRAP


def test_leon_corrects_register_errors_in_4_cycles():
    leon = LeonFtScheme()
    outcome = leon.handle(UpsetClass.REGISTER_FILE)
    assert outcome.corrected
    assert outcome.recovery_cycles == CYCLES_TRAP == 4


def test_ibm_restart_takes_thousands_of_cycles():
    """'Restarting of the pipeline takes several thousand clock cycles.'"""
    ibm = IbmG5Scheme()
    assert ibm.handle(UpsetClass.REGISTER_FILE).recovery_cycles >= 1000
    assert ibm.worst_recovery_cycles >= 1000


def test_ibm_detects_combinational_leon_does_not():
    """'The IBM scheme is better in the sense that ... all types of errors
    are detected, not only soft errors in register.'"""
    assert IbmG5Scheme().handle(UpsetClass.COMBINATIONAL).detected
    assert not LeonFtScheme().handle(UpsetClass.COMBINATIONAL).detected


def test_ibm_no_timing_penalty_leon_has_voter():
    assert IbmG5Scheme().timing_penalty == 0.0
    assert LeonFtScheme().timing_penalty == pytest.approx(0.08)


def test_ibm_cannot_protect_peripherals():
    """'Bus interfaces or timer units can not use this scheme without
    loosing their function.'"""
    ibm = IbmG5Scheme()
    assert not ibm.covers_peripherals
    assert not ibm.handle(UpsetClass.PERIPHERAL_STATE).corrected
    assert LeonFtScheme().handle(UpsetClass.PERIPHERAL_STATE).corrected


def test_itanium_state_machines_unprotected():
    """'State machine registers are not protected.'"""
    itanium = ItaniumScheme()
    assert not itanium.handle(UpsetClass.FLIP_FLOP).detected
    assert itanium.handle(UpsetClass.CACHE_RAM).corrected


def test_area_overheads():
    """'The area overhead is similar to LEON, 100%.'"""
    assert IbmG5Scheme().logic_area_overhead == pytest.approx(1.0)
    assert LeonFtScheme().logic_area_overhead == pytest.approx(1.0)
    assert ItaniumScheme().logic_area_overhead < 0.5


def test_realtime_suitability():
    assert LeonFtScheme().realtime_suitable
    assert not IbmG5Scheme().realtime_suitable  # unbounded-ish recovery
    assert not ItaniumScheme().realtime_suitable  # unprotected state


def test_monte_carlo_coverage_ordering():
    results = {scheme.name: evaluate_scheme(scheme, upsets=5000, seed=3)
               for scheme in all_schemes()}
    leon = results["LEON-FT"]
    ibm = results["IBM S/390 G5"]
    itanium = results["Intel Itanium"]
    # IBM detects everything (including combinational transients, which
    # LEON does not see), but cannot *correct* peripheral state; Itanium
    # fails on every unprotected flip-flop.
    assert ibm.detected == ibm.upsets
    assert leon.detected < ibm.detected
    assert leon.coverage > ibm.coverage > itanium.coverage
    assert leon.coverage > 0.95
    # LEON's mean recovery is orders of magnitude shorter than IBM's.
    assert leon.mean_recovery_cycles * 100 < ibm.mean_recovery_cycles


def test_mix_is_normalized_enough():
    assert sum(DEFAULT_UPSET_MIX.values()) == pytest.approx(1.0)
