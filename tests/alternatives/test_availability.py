"""Mission availability estimates across FT schemes."""

import math

import pytest

from repro.alternatives.availability import (
    compare_schemes,
    estimate_availability,
    unprotected_estimate,
)
from repro.alternatives.schemes import IbmG5Scheme, LeonFtScheme


@pytest.fixture(scope="module")
def estimates():
    return compare_schemes("GEO")


def test_leon_availability_is_excellent(estimates):
    leon = estimates["LEON-FT"]
    assert leon.availability > 0.9999
    assert leon.covered_fraction > 0.95
    # Recovery time per day is microscopic: 4-cycle restarts at 92.6 MHz.
    assert leon.recovery_seconds_per_day < 1e-3


def test_unprotected_baseline_fails_regularly(estimates):
    unprotected = estimates["unprotected"]
    assert unprotected.covered_fraction == 0.0
    assert unprotected.mean_days_between_failures < 30
    assert unprotected.availability < estimates["LEON-FT"].availability


def test_scheme_ordering(estimates):
    """LEON >= IBM > Itanium > unprotected on overall availability."""
    assert estimates["LEON-FT"].availability >= \
        estimates["IBM S/390 G5"].availability
    assert estimates["IBM S/390 G5"].availability > \
        estimates["Intel Itanium"].availability
    assert estimates["Intel Itanium"].availability > \
        estimates["unprotected"].availability


def test_ibm_recovery_time_visible(estimates):
    """The IBM scheme's thousands-of-cycles restarts cost measurably more
    recovery time than LEON's 4-cycle restarts."""
    assert estimates["IBM S/390 G5"].recovery_seconds_per_day > \
        10 * estimates["LEON-FT"].recovery_seconds_per_day


def test_environment_scaling():
    leon = LeonFtScheme()
    geo = estimate_availability(leon, "GEO")
    equatorial = estimate_availability(leon, "LEO-equatorial")
    assert geo.upsets_per_day > equatorial.upsets_per_day
    assert geo.failures_per_day >= equatorial.failures_per_day


def test_infinite_mtbf_when_no_failures():
    ibm = IbmG5Scheme()
    estimate = estimate_availability(ibm, "LEO-equatorial")
    if estimate.failures_per_day == 0:
        assert math.isinf(estimate.mean_days_between_failures)
    else:
        assert estimate.mean_days_between_failures > 0


def test_unprotected_helper_matches_rates():
    estimate = unprotected_estimate("GEO")
    assert estimate.failures_per_day == pytest.approx(estimate.upsets_per_day)
