"""The debug support unit: trace, breakpoints, watchpoints."""

import pytest

from repro import LeonConfig, LeonSystem, assemble
from repro.debug import DebugSupportUnit
from repro.iu.pipeline import StepEvent

SRAM = 0x40000000


@pytest.fixture
def system():
    return LeonSystem(LeonConfig.fault_tolerant())


def load(system, body):
    program = assemble(body + "\ndone:\n    ba done\n    nop", base=SRAM)
    system.load_program(program)
    return program


def test_trace_records_execution(system):
    program = load(system, """
        mov 1, %g1
        add %g1, 2, %g1
        sub %g1, 1, %g1
    """)
    dsu = DebugSupportUnit(system)
    for _ in range(3):
        dsu.step()
    entries = dsu.trace()
    assert len(entries) == 3
    assert entries[0].pc == SRAM
    assert "mov 1, %g1" in entries[0].render()
    assert entries[2].pc == SRAM + 8


def test_trace_ring_buffer_depth(system):
    load(system, "\n".join(["    nop"] * 50))
    dsu = DebugSupportUnit(system, trace_depth=8)
    for _ in range(20):
        dsu.step()
    assert len(dsu.trace()) == 8
    assert dsu.trace()[-1].sequence == 20


def test_breakpoint_stops_before_execution(system):
    program = load(system, """
        mov 1, %g1
    target:
        mov 2, %g2
    """)
    dsu = DebugSupportUnit(system)
    dsu.add_breakpoint(program.address_of("target"), "at-target")
    stop = dsu.run()
    assert stop.reason == "breakpoint"
    assert stop.pc == program.address_of("target")
    assert stop.breakpoint.name == "at-target"
    # The breakpointed instruction has NOT executed.
    assert system.regfile.read_raw(0, 2)[0] == 0
    # Resuming re-hits immediately; removing it lets execution continue.
    dsu.remove_breakpoint(program.address_of("target"))
    dsu.add_breakpoint(program.address_of("done"))
    stop = dsu.run()
    assert stop.reason == "breakpoint"
    assert system.regfile.read_raw(0, 2)[0] == 2


def test_watchpoint_fires_on_store(system):
    program = load(system, f"""
        set {SRAM + 0x1000}, %g1
        mov 7, %g2
        st %g2, [%g1+8]
        st %g2, [%g1+16]
    """)
    dsu = DebugSupportUnit(system)
    dsu.add_watchpoint(SRAM + 0x1010, 4, "spot")
    stop = dsu.run()
    assert stop.reason == "watchpoint"
    assert stop.write_address == SRAM + 0x1010
    assert stop.watchpoint.name == "spot"


def test_halt_reported(system):
    load(system, "    ta 0")  # no trap table -> error mode
    dsu = DebugSupportUnit(system)
    stop = dsu.run()
    assert stop.reason == "halted"


def test_budget_stop(system):
    load(system, "loop:\n    ba loop\n    nop")
    dsu = DebugSupportUnit(system)
    stop = dsu.run(max_instructions=10)
    assert stop.reason == "budget"
    assert stop.instructions == 10


def test_ft_restart_visible_in_trace(system):
    """Chasing an SEU with the DSU: the restart event shows in the trace."""
    program = load(system, """
        set 5, %g1
    inject:
        add %g1, 1, %g2
    """)
    dsu = DebugSupportUnit(system)
    dsu.add_breakpoint(program.address_of("inject"))
    dsu.run()
    physical = system.regfile.physical_index(system.special.psr.cwp, 1)
    system.regfile.inject(physical, bit=1)
    dsu.remove_breakpoint(program.address_of("inject"))
    dsu.add_breakpoint(program.address_of("done"))
    dsu.run()
    events = [entry.event for entry in dsu.trace()]
    assert StepEvent.RESTART in events
    assert dsu.event_counts[StepEvent.RESTART] == 1
    assert "<ft-restart>" in dsu.render_trace()


def test_render_trace_empty(system):
    dsu = DebugSupportUnit(system)
    assert dsu.render_trace() == "(trace empty)"
