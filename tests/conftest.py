"""Shared fixtures for the LEON-FT test suite."""

from __future__ import annotations

import pytest

from repro.core.config import LeonConfig
from repro.core.system import LeonSystem
from repro.sparc.asm import assemble


@pytest.fixture
def standard_config() -> LeonConfig:
    return LeonConfig.standard()


@pytest.fixture
def ft_config() -> LeonConfig:
    return LeonConfig.fault_tolerant()


@pytest.fixture
def express_config() -> LeonConfig:
    return LeonConfig.leon_express()


@pytest.fixture
def system(ft_config) -> LeonSystem:
    """A fault-tolerant LEON system (the configuration under the beam)."""
    return LeonSystem(ft_config)


@pytest.fixture
def standard_system(standard_config) -> LeonSystem:
    return LeonSystem(standard_config)


@pytest.fixture
def express_system(express_config) -> LeonSystem:
    return LeonSystem(express_config)


SRAM_BASE = 0x40000000


def run_asm(system: LeonSystem, body: str, *, max_instructions: int = 200_000,
            symbols=None):
    """Assemble ``body`` with a trailing halt loop, run to the halt."""
    source = body + "\n_test_done:\n    ba _test_done\n    nop\n"
    program = assemble(source, base=SRAM_BASE, symbols=symbols)
    system.load_program(program)
    if "_start" in program.symbols:
        entry = program.symbols["_start"]
        system.special.pc = entry
        system.special.npc = entry + 4
    result = system.run(max_instructions,
                        stop_pc=program.address_of("_test_done"))
    return program, result


@pytest.fixture
def run(system):
    """Run assembly on the FT system: ``run('mov 1, %g1 ...')``."""

    def runner(body: str, **kwargs):
        return run_asm(system, body, **kwargs)

    return runner
