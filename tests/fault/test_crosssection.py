"""Cross-section sweeps and Weibull fitting (the Figure 6/7 machinery)."""

import pytest

from repro.fault.crosssection import (
    COUNTER_TARGETS,
    fit_weibull,
    measure_curve,
    render_curve,
    target_bits,
)


def test_target_bits_per_ram_type():
    bits = target_bits()
    assert set(bits) == set(COUNTER_TARGETS)
    assert bits["IDE"] > bits["ITE"]  # data arrays dwarf tag arrays
    assert bits["RFE"] < bits["IDE"]


def test_fit_weibull_recovers_parameters():
    from repro.fault.beam import WeibullCrossSection

    truth = WeibullCrossSection(sat=5e-8, onset=4.0, width=35.0, shape=1.5)
    lets = [6, 10, 20, 40, 60, 80, 110]
    sigmas = [truth.at(let) for let in lets]
    fit = fit_weibull(lets, sigmas)
    assert fit.sat == pytest.approx(5e-8, rel=0.1)
    for let in lets:
        assert fit.at(let) == pytest.approx(truth.at(let), rel=0.1)


def test_fit_weibull_degenerate_input():
    fit = fit_weibull([10, 20], [0.0, 1e-9])
    assert fit.sat >= 0


@pytest.fixture(scope="module")
def small_curve():
    return measure_curve(
        "iutest",
        lets=(8.0, 40.0, 110.0),
        fluence=800.0,
        instructions_per_second=40_000.0,
        seed=5,
    )


def test_measured_curve_shape(small_curve):
    """Per-bit sigma rises with LET for the well-sampled series."""
    lets, sigmas = small_curve.series("Total")
    assert lets == [8.0, 40.0, 110.0]
    assert sigmas[0] < sigmas[-1]
    assert sigmas[-1] > 0


def test_curve_has_all_ram_types(small_curve):
    assert set(small_curve.kinds()) == set(COUNTER_TARGETS) | {"Total"}


def test_render_curve_ascii(small_curve):
    text = render_curve(small_curve)
    assert "IUTEST" in text
    assert "LET" in text
