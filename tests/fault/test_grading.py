"""Golden-timeline grading: early exit, strike batches, byte-identity."""

import dataclasses
import pickle

import pytest

from repro.errors import ConfigurationError
from repro.fault.campaign import (
    Campaign,
    CampaignConfig,
    prepare_warm_start,
)
from repro.fault.executor import (
    CampaignExecutor,
    expand_runs,
    plan_batches,
    run_campaign_traced,
)
from repro.fault.grading import (
    DivergenceFix,
    checkpoint_schedule,
    divergence_exit,
    first_strike_instructions,
)
from repro.fault.results import ResultStore

#: Mid-size settings (10k prefix, 25k window close, 27k end): enough span
#: for a ten-boundary timeline with eight in-window batch anchors, and a
#: periodic flush so struck runs actually reconverge (section 4.8).
MID = dict(flux=400.0, fluence=300.0, instructions_per_second=20_000.0,
           beam_delay_s=0.5, beam_tail_s=0.1,
           flush_period_instructions=4_000)

#: Tiny settings (2.25k instructions end to end) for the wide campaigns.
TINY = dict(flux=400.0, fluence=150.0, instructions_per_second=2_000.0,
            beam_delay_s=0.25, beam_tail_s=0.5,
            flush_period_instructions=400)


def _mid(let=60.0, seed=7, **overrides):
    settings = dict(MID)
    settings.update(overrides)
    return CampaignConfig(program="iutest", let=let, seed=seed, **settings)


def _tiny(let=60.0, seed=11, **overrides):
    settings = dict(TINY)
    settings.update(overrides)
    return CampaignConfig(program="iutest", let=let, seed=seed, **settings)


@pytest.fixture(scope="module")
def warm_mid():
    return prepare_warm_start(_mid())


@pytest.fixture(scope="module")
def warm_tiny():
    return prepare_warm_start(_tiny())


# -- the checkpoint schedule ---------------------------------------------------


def test_checkpoint_schedule_shape():
    bounds = checkpoint_schedule(10_000, 15_000, 2_000)
    assert list(bounds) == sorted(set(bounds))
    assert bounds[0] > 10_000
    assert 25_000 in bounds  # the window close is always a boundary
    assert bounds[-1] == 27_000  # ... and so is the run end
    # A pure function of the phase shape: recomputing is byte-identical.
    assert checkpoint_schedule(10_000, 15_000, 2_000) == bounds


def test_checkpoint_schedule_respects_spacing_floor():
    assert checkpoint_schedule(0, 8_000, 0, count=16, min_interval=2_000) \
        == (2_000, 4_000, 6_000, 8_000)


def test_checkpoint_schedule_empty_window():
    assert checkpoint_schedule(5_000, 0, 0) == ()


# -- the golden timeline -------------------------------------------------------


def test_timeline_matches_schedule_and_anchors(warm_mid):
    timeline = warm_mid.timeline
    assert timeline is not None
    prefix, window, tail = _mid().phase_instructions()
    assert timeline.window_close == prefix + window
    assert [cp.instruction for cp in timeline.checkpoints] == \
        list(checkpoint_schedule(prefix, window, tail))
    # Restore snapshots exist exactly at the in-window boundaries.
    for cp in timeline.checkpoints:
        assert (cp.snapshot is not None) == \
            (cp.instruction <= timeline.window_close)
    anchors = timeline.anchors()
    assert anchors[-1].instruction == timeline.window_close
    assert timeline.final == warm_mid.golden
    assert timeline.tail_cycles_from(anchors[-1]) == \
        warm_mid.golden.tail_cycles


def test_timeline_byte_identical_across_preparations(warm_mid):
    again = prepare_warm_start(_mid())
    assert pickle.dumps(again.timeline) == pickle.dumps(warm_mid.timeline)
    assert pickle.dumps(again) == pickle.dumps(warm_mid)


# -- early-exit vs full-execution equivalence ----------------------------------


def test_early_exit_matches_full_oracle_wide_campaign(warm_tiny):
    """200 seeded replicas: fast grading vs the full-execution oracle."""
    configs = expand_runs(_tiny(), 200)
    oracle_configs = [dataclasses.replace(config, early_exit=False)
                      for config in configs]
    oracle = CampaignExecutor(1).run_many(oracle_configs, warm=warm_tiny,
                                          batch=False)
    fast = CampaignExecutor(1).run_many(configs, warm=warm_tiny)
    assert [r.comparable() for r in fast] == \
        [r.comparable() for r in oracle]
    assert all(r.exit_reason == "full" for r in oracle)
    assert any(r.exit_reason == "reconverged" for r in fast)
    assert any(r.upsets > 0 for r in fast)


def test_jobs_invariant_with_batching(warm_mid):
    configs = expand_runs(_mid(), 6)
    serial = CampaignExecutor(1).run_many(configs, warm=warm_mid)
    parallel = CampaignExecutor(4, chunksize=1).run_many(
        configs, warm=warm_mid)
    assert [r.comparable() for r in parallel] == \
        [r.comparable() for r in serial]


def test_resume_reproduces_early_exit_results(tmp_path, warm_tiny):
    path = str(tmp_path / "runs.jsonl")
    configs = expand_runs(_tiny(), 6)
    with ResultStore(path) as store:
        full = CampaignExecutor(1).run_many(
            configs, warm=warm_tiny, on_results=store.append)
    # Lose the last line, as if the host died before the final append.
    lines = open(path, encoding="utf-8").readlines()
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(lines[:-1])
    done, pending = ResultStore(path).split_pending(configs)
    assert len(pending) == 1
    # A resumed campaign re-prepares its warm start; the timeline it gets
    # is byte-identical, so grading decisions are too.
    resumed = prepare_warm_start(_tiny())
    assert pickle.dumps(resumed.timeline) == pickle.dumps(warm_tiny.timeline)
    with ResultStore(path) as store:
        rerun = CampaignExecutor(1).run_many(
            pending, warm=resumed, on_results=store.append)
    assert rerun[0].comparable() == full[-1].comparable()
    assert len(ResultStore(path).load()) == 6


def test_early_exit_off_runs_full(warm_mid):
    config = _mid(let=3.0, early_exit=False)
    result = Campaign(config).run(warm=warm_mid)
    assert result.exit_reason == "full"
    assert not result.effaced
    # Static grading would claim this run first (its strikes are all
    # provably dead); hold it off so the early-exit path stays observable.
    on = Campaign(_mid(let=3.0, static_grading=False)).run(warm=warm_mid)
    assert on.exit_reason == "reconverged"
    assert result.comparable() == on.comparable()


def test_exit_fields_excluded_from_comparable(warm_mid):
    result = Campaign(_mid(let=3.0, static_grading=False)).run(warm=warm_mid)
    assert result.exit_reason == "reconverged"
    assert result.graded_at_instruction is not None
    comparable = result.comparable()
    assert "exit_reason" not in comparable
    assert "graded_at_instruction" not in comparable
    assert "early_exit" not in comparable["config"]


# -- permanent-divergence detection --------------------------------------------

#: Parked settings: the program finishes its single iteration mid-window
#: and parks alive at ``_exit``, so strikes landing afterwards stay
#: latent forever -- the faulted digest repeats at every later boundary
#: and the fixed-point detector can extrapolate the tail.
PARKED = dict(flux=400.0, fluence=600.0, instructions_per_second=20_000.0,
              beam_delay_s=0.1, beam_tail_s=0.5,
              program_kwargs={"iterations": 1})


def _parked(let=60.0, seed=11, **overrides):
    settings = dict(PARKED)
    settings.update(overrides)
    return CampaignConfig(program="iutest", let=let, seed=seed, **settings)


@pytest.fixture(scope="module")
def warm_parked():
    return prepare_warm_start(_parked())


def test_divergence_exit_math():
    fix = DivergenceFix(boundary=10_000, period=2_500,
                        cycles_per_period=3_000)
    assert divergence_exit(fix, 20_000) == (4, 0)
    assert divergence_exit(fix, 21_300) == (4, 1_300)
    assert divergence_exit(fix, 11_200) == (0, 1_200)
    assert divergence_exit(fix, 10_000) == (0, 0)


def test_diverged_matches_full_oracle_parked_campaign(warm_parked):
    """Latent parked runs: fixed-point exits vs the full-execution oracle."""
    configs = expand_runs(_parked(), 24)
    oracle_configs = [dataclasses.replace(config, early_exit=False)
                      for config in configs]
    oracle = CampaignExecutor(1).run_many(oracle_configs, warm=warm_parked,
                                          batch=False)
    fast = CampaignExecutor(1).run_many(configs, warm=warm_parked)
    assert [r.comparable() for r in fast] == \
        [r.comparable() for r in oracle]
    diverged = [r for r in fast if r.exit_reason == "diverged"]
    assert diverged  # the detector actually fired
    total = sum(_parked().phase_instructions())
    for result in diverged:
        # The extrapolated readouts claim the full run's span.
        assert result.instructions == total
        assert result.graded_at_instruction is not None
        assert result.graded_at_instruction < total
        assert not result.effaced


def test_divergence_declines_when_flush_phase_shifts(warm_parked):
    """A flush period that does not divide the boundary gap breaks the
    periodicity proof: the detector must decline (runs drain fully)."""
    config = _parked(flush_period_instructions=1_000)
    warm = prepare_warm_start(config)
    results = CampaignExecutor(1).run_many(expand_runs(config, 6), warm=warm)
    assert all(r.exit_reason != "diverged" for r in results)


# -- batched strike scheduling -------------------------------------------------


def test_plan_batches_partitions_by_first_strike(warm_mid):
    configs = expand_runs(_mid(), 8)
    batches = plan_batches(configs, warm_mid)
    assert batches is not None
    covered = sorted(i for b in batches for i in b.indices)
    assert covered == list(range(len(configs)))
    anchors = warm_mid.timeline.anchors()
    firsts = first_strike_instructions(configs)
    for batch in batches:
        if batch.start is None:
            continue
        for index in batch.indices:
            first = firsts[index]
            if first is None:
                assert batch.start == anchors[-1]
            else:
                fits = [a for a in anchors if a.instruction <= first]
                assert batch.start == fits[-1]


def test_strike_free_runs_anchor_at_window_close(warm_mid):
    configs = [_mid(let=3.0, seed=seed) for seed in (1, 2)]
    batches = plan_batches(configs, warm_mid)
    assert batches is not None and len(batches) == 1
    assert batches[0].start == warm_mid.timeline.anchors()[-1]
    assert batches[0].indices == (0, 1)


def test_plan_batches_requires_a_timeline(warm_mid):
    assert plan_batches([_mid()], None) is None
    gutted = dataclasses.replace(warm_mid, timeline=None)
    assert plan_batches([_mid()], gutted) is None


def test_batched_start_matches_unbatched_run(warm_mid):
    anchors = warm_mid.timeline.anchors()
    chosen = start = None
    for seed in range(1, 40):
        config = _mid(seed=seed)
        first = first_strike_instructions([config])[0]
        if first is None:
            continue
        fits = [a for a in anchors if a.instruction <= first]
        if fits and fits[-1].instruction > warm_mid.executed:
            chosen, start = config, fits[-1]
            break
    assert chosen is not None, "no seed strikes past the first anchor"
    plain = Campaign(chosen).run(warm=warm_mid)
    batched = Campaign(chosen).run(warm=warm_mid, start=start)
    assert batched.comparable() == plain.comparable()
    assert batched.upsets > 0


def test_strike_free_batched_start_reconverges_on_the_spot(warm_mid):
    # static_grading off: the analyzer would claim this run before the
    # batched-start reconvergence check this test is about gets to run.
    config = _mid(let=3.0, static_grading=False)
    start = warm_mid.timeline.anchors()[-1]
    plain = Campaign(config).run(warm=warm_mid)
    batched = Campaign(config).run(warm=warm_mid, start=start)
    assert batched.comparable() == plain.comparable()
    assert batched.exit_reason == "reconverged"
    assert batched.graded_at_instruction == warm_mid.timeline.window_close


def test_start_requires_warm_and_snapshot(warm_mid):
    anchor = warm_mid.timeline.anchors()[0]
    with pytest.raises(ConfigurationError):
        Campaign(_mid()).run(start=anchor)
    tail_checkpoint = warm_mid.timeline.checkpoints[-1]
    assert tail_checkpoint.snapshot is None
    with pytest.raises(ConfigurationError):
        Campaign(_mid()).run(warm=warm_mid, start=tail_checkpoint)


def test_start_past_first_upset_rejected(warm_mid):
    last = warm_mid.timeline.anchors()[-1]
    for seed in range(1, 40):
        config = _mid(seed=seed)
        first = first_strike_instructions([config])[0]
        if first is not None and first < last.instruction:
            with pytest.raises(ConfigurationError):
                Campaign(config).run(warm=warm_mid, start=last)
            return
    pytest.fail("no struck config found")


# -- telemetry parity ----------------------------------------------------------


def test_traced_lifecycle_matches_full_execution(warm_mid):
    """Strike/detect/resolve/close streams are byte-identical: the close
    events of a graded run carry the golden end-of-run instruction."""
    config = None
    for seed in range(1, 12):
        candidate = _mid(seed=seed)
        probe = Campaign(candidate).run(warm=warm_mid)
        if probe.exit_reason == "reconverged" and probe.upsets > 0:
            config = candidate
            break
    assert config is not None, "no struck seed reconverged"
    fast = run_campaign_traced(config, warm_mid)
    oracle = run_campaign_traced(
        dataclasses.replace(config, early_exit=False), warm_mid)
    kinds = ("strike", "detect", "resolve", "close")
    assert [e for e in fast.trace if e["ev"] in kinds] == \
        [e for e in oracle.trace if e["ev"] in kinds]
    assert any(e["ev"] == "early-exit" for e in fast.trace)
    assert all(e["ev"] != "early-exit" for e in oracle.trace)
    assert fast.comparable() == oracle.comparable()
