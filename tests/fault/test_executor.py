"""The parallel campaign executor: determinism, fallback and failure modes."""

import dataclasses
import multiprocessing

import pytest

from repro.fault.campaign import Campaign, CampaignConfig, CampaignResult
from repro.fault.crosssection import measure_curve
from repro.fault.executor import (
    CampaignExecutionError,
    CampaignExecutor,
    derive_seed,
    expand_runs,
    run_campaign,
)

#: Small, fast campaign settings (fluence scaled down from the paper's 1e5).
FAST = dict(flux=400.0, fluence=1.0e3, instructions_per_second=40_000.0)


def _config(let=110.0, seed=1, **overrides):
    settings = dict(FAST)
    settings.update(overrides)
    return CampaignConfig(program="iutest", let=let, seed=seed, **settings)


def _comparable(result: CampaignResult) -> dict:
    """Everything about a result except host wall-clock timing."""
    fields = dataclasses.asdict(result)
    fields.pop("wall_seconds")
    return fields


# -- determinism ---------------------------------------------------------------


def test_parallel_matches_serial_bit_for_bit():
    """The tentpole guarantee: an 8-point sweep fanned across 4 workers
    produces byte-identical counts to the serial loop."""
    configs = [_config(let=let, seed=40 + index)
               for index, let in enumerate((6.0, 10.0, 15.0, 25.0,
                                            40.0, 60.0, 80.0, 110.0))]
    serial = CampaignExecutor(1).run_many(configs)
    parallel = CampaignExecutor(4).run_many(configs)
    assert [_comparable(r) for r in parallel] == \
           [_comparable(r) for r in serial]


def test_jobs1_matches_legacy_serial_path():
    config = _config(seed=11)
    legacy = Campaign(config).run()
    via_executor, = CampaignExecutor(1).run_many([config])
    assert _comparable(via_executor) == _comparable(legacy)


def test_measure_curve_jobs_invariant():
    kwargs = dict(lets=(40.0, 110.0), fluence=500.0, seed=9,
                  instructions_per_second=30_000.0)
    serial = measure_curve("iutest", jobs=1, **kwargs)
    parallel = measure_curve("iutest", jobs=2, **kwargs)
    for kind in serial.kinds():
        assert serial.series(kind) == parallel.series(kind)
        assert [p.count for p in serial.points[kind]] == \
               [p.count for p in parallel.points[kind]]


def test_results_come_back_in_config_order():
    configs = [_config(let=let, seed=index)
               for index, let in enumerate((110.0, 6.0, 40.0))]
    results = CampaignExecutor(2, chunksize=1).run_many(configs)
    assert [r.config.let for r in results] == [110.0, 6.0, 40.0]
    assert [r.config.seed for r in results] == [0, 1, 2]


# -- seed derivation -----------------------------------------------------------


def test_derive_seed_is_stable():
    # Pinned values: recorded experiment results depend on this mapping.
    assert derive_seed(1, 1) == 16834447057089888969
    assert derive_seed(1, 2) == 17911839290282890590
    assert derive_seed(2, 1) == 13819372491320860226


def test_derive_seed_spreads():
    seeds = {derive_seed(base, index)
             for base in range(8) for index in range(64)}
    assert len(seeds) == 8 * 64


def test_expand_runs_keeps_original_seed_first():
    config = _config(seed=123)
    assert expand_runs(config, 1) == [config]
    replicas = expand_runs(config, 3)
    assert replicas[0] is config
    assert [r.seed for r in replicas[1:]] == \
        [derive_seed(123, 1), derive_seed(123, 2)]
    assert all(r.let == config.let for r in replicas)


# -- failure modes -------------------------------------------------------------


def _flaky_runner(config: CampaignConfig) -> CampaignResult:
    """Fails inside a pool worker, succeeds on the parent's serial retry."""
    if multiprocessing.parent_process() is not None:
        raise RuntimeError("simulated worker crash")
    return run_campaign(config)


def _broken_runner(config: CampaignConfig) -> CampaignResult:
    raise ValueError(f"always broken (seed {config.seed})")


def test_worker_crash_is_retried_serially():
    configs = [_config(seed=21), _config(seed=22)]
    executor = CampaignExecutor(2, chunksize=1, runner=_flaky_runner)
    results = executor.run_many(configs)
    expected = CampaignExecutor(1).run_many(configs)
    assert [_comparable(r) for r in results] == \
           [_comparable(r) for r in expected]


def test_persistent_failure_is_reported():
    configs = [_config(seed=31), _config(seed=32)]
    executor = CampaignExecutor(2, chunksize=1, runner=_broken_runner)
    with pytest.raises(CampaignExecutionError) as excinfo:
        executor.run_many(configs)
    failures = excinfo.value.failures
    assert len(failures) == 2
    assert {f.config.seed for f in failures} == {31, 32}
    assert all("always broken" in f.error for f in failures)


def test_serial_failure_is_reported_too():
    executor = CampaignExecutor(1, runner=_broken_runner)
    with pytest.raises(CampaignExecutionError):
        executor.run_many([_config(seed=41)])


def _selective_runner(config: CampaignConfig) -> CampaignResult:
    if config.seed == 32:
        raise ValueError("seed 32 is cursed")
    return run_campaign(config)


def test_partial_results_attached_to_the_error():
    """A crashed campaign must not discard the runs that finished: the
    exception carries them in config order, None marking the failures."""
    configs = [_config(seed=31), _config(seed=32), _config(seed=33)]
    executor = CampaignExecutor(1, retries=0, runner=_selective_runner)
    with pytest.raises(CampaignExecutionError) as excinfo:
        executor.run_many(configs)
    error = excinfo.value
    assert len(error.results) == 3
    assert error.results[1] is None
    assert [r.config.seed for r in error.completed] == [31, 33]
    expected = CampaignExecutor(1).run_many([configs[0], configs[2]])
    assert [_comparable(r) for r in error.completed] == \
           [_comparable(r) for r in expected]


def test_parallel_partial_results_attached_too():
    configs = [_config(seed=31), _config(seed=32), _config(seed=33)]
    executor = CampaignExecutor(2, chunksize=1, retries=0,
                                runner=_selective_runner)
    with pytest.raises(CampaignExecutionError) as excinfo:
        executor.run_many(configs)
    error = excinfo.value
    assert [r.config.seed if r else None for r in error.results] == \
        [31, None, 33]


def test_failure_carries_the_full_traceback():
    executor = CampaignExecutor(1, retries=0, runner=_broken_runner)
    with pytest.raises(CampaignExecutionError) as excinfo:
        executor.run_many([_config(seed=41)])
    failure, = excinfo.value.failures
    assert "Traceback (most recent call last)" in failure.error
    assert "_broken_runner" in failure.error
    assert failure.error_summary == "ValueError: always broken (seed 41)"
    # The exception message uses the summary, not the whole traceback.
    assert "always broken (seed 41)" in str(excinfo.value)
    assert "Traceback" not in str(excinfo.value)


def test_parallel_failure_carries_a_traceback():
    executor = CampaignExecutor(2, chunksize=1, retries=0,
                                runner=_broken_runner)
    with pytest.raises(CampaignExecutionError) as excinfo:
        executor.run_many([_config(seed=31), _config(seed=32)])
    assert all("Traceback (most recent call last)" in f.error
               for f in excinfo.value.failures)


def test_no_retries_reports_without_second_attempt():
    calls = []

    def counting_runner(config):
        calls.append(config.seed)
        raise RuntimeError("boom")

    executor = CampaignExecutor(1, retries=0, runner=counting_runner)
    with pytest.raises(CampaignExecutionError):
        executor.run_many([_config(seed=51)])
    assert calls == [51]


# -- throughput metadata -------------------------------------------------------


def test_campaign_result_reports_throughput():
    result, = CampaignExecutor(1).run_many([_config(seed=61)])
    assert result.wall_seconds > 0
    assert result.instructions_per_second == \
        result.instructions / result.wall_seconds


def test_empty_input():
    assert CampaignExecutor(4).run_many([]) == []
