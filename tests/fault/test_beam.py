"""The heavy-ion beam model: Weibull curves, scheduling, MBU."""

import pytest

from repro import LeonConfig, LeonSystem
from repro.fault.beam import (
    DIE_AREA_CM2,
    RAM_AREA_CM2,
    SENSITIVE_FRACTION,
    BeamParameters,
    HeavyIonBeam,
    WeibullCrossSection,
)
from repro.fault.injector import FaultInjector


@pytest.fixture
def beam():
    system = LeonSystem(LeonConfig.leon_express())
    return HeavyIonBeam(FaultInjector(system))


class TestWeibull:
    def test_zero_below_onset(self):
        curve = WeibullCrossSection(sat=1e-7, onset=4.0)
        assert curve.at(3.0) == 0.0
        assert curve.at(4.0) == 0.0

    def test_monotone_increasing(self):
        curve = WeibullCrossSection(sat=1e-7)
        values = [curve.at(let) for let in (5, 10, 20, 40, 80, 110)]
        assert values == sorted(values)
        assert values[0] > 0

    def test_saturates(self):
        curve = WeibullCrossSection(sat=1e-7, width=20.0)
        assert curve.at(500.0) == pytest.approx(1e-7, rel=1e-3)


class TestBeamGeometry:
    def test_device_threshold_below_6_mev(self, beam):
        """'The device SEU threshold was measured to be below 6 MeV.'"""
        assert beam.device_cross_section(5.9) > 0
        assert beam.device_cross_section(3.0) == 0.0

    def test_device_saturation_near_paper_value(self, beam):
        """Saturated sigma ~ 10% of the 0.1 cm2 RAM area (section 6)."""
        sigma = beam.device_cross_section(1000.0)
        target = RAM_AREA_CM2 * SENSITIVE_FRACTION
        assert sigma == pytest.approx(target, rel=0.15)

    def test_external_memory_not_under_beam(self):
        system = LeonSystem(LeonConfig.leon_express())
        injector = FaultInjector(system, include_external_memory=True)
        beam = HeavyIonBeam(injector)
        assert beam.target_cross_section("ext-sram", 110.0) == 0.0

    def test_beam_parameters_derived_quantities(self):
        params = BeamParameters(let=110, flux=400, fluence=1e5)
        assert params.particles == int(1e5 * DIE_AREA_CM2)
        assert params.duration_s == pytest.approx(250.0)

    def test_particles_rounds_to_nearest(self):
        """A fluence dialled for 39999.6 particles must not drop one."""
        params = BeamParameters(let=110, flux=400, fluence=99_999.0)
        assert params.particles == round(99_999.0 * DIE_AREA_CM2)
        assert params.particles == 40_000  # int() would truncate to 39999

    def test_zero_flux_is_a_configuration_error(self):
        from repro.errors import ConfigurationError

        for flux in (0.0, -1.0):
            params = BeamParameters(let=110, flux=flux, fluence=1e5)
            with pytest.raises(ConfigurationError, match="flux"):
                params.duration_s


class TestScheduling:
    def test_schedule_is_reproducible(self, beam):
        params = BeamParameters(let=110, flux=400, fluence=1e3, seed=9)
        first = beam.schedule(params)
        second = beam.schedule(params)
        assert [(s.time_s, s.target, s.flat_bit) for s in first] == \
            [(s.time_s, s.target, s.flat_bit) for s in second]

    def test_upset_count_tracks_expectation(self, beam):
        params = BeamParameters(let=110, flux=400, fluence=2e4, seed=1)
        strikes = beam.schedule(params)
        expected = beam.expected_upsets(params)
        assert expected == pytest.approx(len(strikes), rel=0.25)

    def test_strikes_within_duration_and_sorted(self, beam):
        params = BeamParameters(let=60, flux=1000, fluence=5e3, seed=2)
        strikes = beam.schedule(params)
        times = [strike.time_s for strike in strikes]
        assert times == sorted(times)
        assert all(0 <= t < params.duration_s for t in times)

    def test_no_strikes_below_threshold(self, beam):
        params = BeamParameters(let=2.0, flux=5000, fluence=1e6, seed=3)
        assert beam.schedule(params) == []

    def test_mbu_fraction_grows_with_let(self, beam):
        assert beam.mbu_fraction(10) == 0.0
        assert 0 < beam.mbu_fraction(60) < beam.mbu_fraction(110)

    def test_apply_lands_in_target(self, beam):
        params = BeamParameters(let=110, flux=400, fluence=5e3, seed=4)
        strikes = beam.schedule(params)
        assert strikes
        before = list(beam.injector.injections)
        beam.apply(strikes[0])
        assert len(beam.injector.injections) > len(before)

    def test_higher_let_means_more_upsets(self, beam):
        low = beam.schedule(BeamParameters(let=10, flux=400, fluence=2e4, seed=5))
        high = beam.schedule(BeamParameters(let=110, flux=400, fluence=2e4, seed=5))
        assert len(high) > 2 * len(low)
