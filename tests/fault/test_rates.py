"""On-orbit SEU rate prediction (paper ref [5] methodology)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.fault.rates import (
    ENVIRONMENTS,
    LetSpectrum,
    RatePredictor,
    fold_rate,
)


class TestSpectrum:
    def test_integral_flux_monotone_decreasing(self):
        spectrum = ENVIRONMENTS["GEO"]
        lets = [1, 5, 10, 27, 50, 100]
        fluxes = [spectrum.integral_flux(let) for let in lets]
        assert fluxes == sorted(fluxes, reverse=True)
        assert fluxes[-1] > 0

    def test_cutoff(self):
        spectrum = ENVIRONMENTS["GEO"]
        assert spectrum.integral_flux(110.0) == 0.0
        assert spectrum.integral_flux(200.0) == 0.0

    def test_knee_steepens(self):
        spectrum = ENVIRONMENTS["GEO"]
        below = spectrum.integral_flux(20) / spectrum.integral_flux(25)
        above = spectrum.integral_flux(40) / spectrum.integral_flux(50)
        assert above > below  # steeper falloff past the knee

    def test_environment_ordering(self):
        geo = ENVIRONMENTS["GEO"].integral_flux(10)
        polar = ENVIRONMENTS["LEO-polar"].integral_flux(10)
        equatorial = ENVIRONMENTS["LEO-equatorial"].integral_flux(10)
        assert geo > polar > equatorial

    def test_invalid_let(self):
        with pytest.raises(ConfigurationError):
            ENVIRONMENTS["GEO"].integral_flux(0)


class TestFolding:
    def test_zero_sigma_zero_rate(self):
        rate = fold_rate(lambda let: 0.0, ENVIRONMENTS["GEO"])
        assert rate == 0.0

    def test_step_sigma_counts_fluence_above_threshold(self):
        """A step cross-section folds to sigma * F(> threshold)."""
        spectrum = ENVIRONMENTS["GEO"]
        threshold, sat = 10.0, 1e-6
        rate = fold_rate(lambda let: sat if let > threshold else 0.0,
                         spectrum, steps=3000)
        expected = sat * spectrum.integral_flux(threshold)
        assert rate == pytest.approx(expected, rel=0.02)

    def test_needs_steps(self):
        with pytest.raises(ConfigurationError):
            fold_rate(lambda let: 0.0, ENVIRONMENTS["GEO"], steps=1)


class TestPredictor:
    @pytest.fixture(scope="class")
    def predictor(self):
        return RatePredictor()

    def test_geo_rate_in_published_range(self, predictor):
        """A SEU-soft 0.35 um device sees roughly 0.1..1 upsets/day GEO."""
        rates = predictor.predict("GEO")
        assert 0.05 < rates.upsets_per_day < 2.0

    def test_environment_ordering(self, predictor):
        geo = predictor.predict("GEO").upsets_per_day
        polar = predictor.predict("LEO-polar").upsets_per_day
        equatorial = predictor.predict("LEO-equatorial").upsets_per_day
        assert geo > polar > equatorial > 0

    def test_per_target_rates_sum(self, predictor):
        rates = predictor.predict("GEO")
        assert sum(rates.by_target.values()) == pytest.approx(rates.upsets_per_day)
        # Cache data arrays dominate (bit population).
        assert rates.by_target["dcache-data"] > rates.by_target["regfile"]

    def test_corrected_rate_and_interval(self, predictor):
        rates = predictor.predict("GEO")
        assert rates.corrected_per_day(0.9) == pytest.approx(
            rates.upsets_per_day * 0.9)
        assert rates.seconds_between_upsets == pytest.approx(
            86_400.0 / rates.upsets_per_day)

    def test_unprotected_mttf_is_days_not_years(self, predictor):
        """The quantified section 4.1 motivation: without on-chip FT, a
        GEO mission loses the computer within days."""
        mttf = predictor.unprotected_failure_interval_days("GEO")
        assert 0.5 < mttf < 30.0

    def test_unknown_environment(self, predictor):
        with pytest.raises(ConfigurationError):
            predictor.predict("Mars")

    def test_predict_all(self, predictor):
        results = predictor.predict_all()
        assert {rates.environment for rates in results} == set(ENVIRONMENTS)

    def test_zero_rate_interval_is_infinite(self):
        from repro.fault.rates import MissionRates

        rates = MissionRates("nowhere", 0.0, {})
        assert math.isinf(rates.seconds_between_upsets)
