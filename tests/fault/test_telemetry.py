"""The telemetry subsystem: event bus, sinks, trace folding, campaigns.

The contract under test, in rough order of importance:

* telemetry never changes a measurement -- traced and untraced runs are
  byte-identical on every comparable field;
* every injected strike reaches a terminal lifecycle event (resolve or
  close), so the ``trace`` view is complete;
* the Table-2 counters rebuilt from ``detect`` events alone agree with
  the readouts each run reported (``TraceStats.consistent``);
* the JSONL sink round-trips, tolerates a crash-truncated tail, and
  unknown keys ride along untouched.
"""

import json

import pytest

from repro import LeonConfig, LeonSystem
from repro.errors import ConfigurationError
from repro.fault.campaign import Campaign, CampaignConfig
from repro.fault.executor import (
    CampaignExecutor,
    expand_runs,
    run_campaign,
    run_campaign_traced,
)
from repro.fault.injector import FaultInjector
from repro.telemetry import (
    CLOSE_STATES,
    NULL_TELEMETRY,
    Histogram,
    JsonlTraceSink,
    MemorySink,
    MetricsRegistry,
    Telemetry,
    fold_stats,
    lifecycles,
    read_trace,
    render_lifecycle,
    render_stats,
)

#: A LET-110 IUTEST burst: ~10 strikes, a mix of detected and latent.
TRACED = dict(program="iutest", let=110.0, flux=400.0, fluence=600.0,
              instructions_per_second=20_000.0, seed=1)


def traced_run(**overrides):
    settings = dict(TRACED)
    settings.update(overrides)
    sink = MemorySink()
    result = Campaign(CampaignConfig(**settings),
                      telemetry=Telemetry(sink)).run()
    return result, sink.events


# ----------------------------------------------------------------------
# Bus unit tests
# ----------------------------------------------------------------------

class TestBus:
    def test_strike_detect_resolve_correlate_by_site_word(self):
        sink = MemorySink()
        bus = Telemetry(sink)
        upset = bus.strike("regfile", 37, word=4, time_s=0.5, let=60.0,
                           mbu=False, instr=100)
        bus.detect("regfile", 4, mech="bch", kind="correctable",
                   counter="RFE", instr=150)
        bus.resolve("regfile", 4, action="pipeline-restart", instr=150)
        kinds = [event["ev"] for event in sink.events]
        assert kinds == ["strike", "detect", "resolve"]
        assert all(event["upset"] == upset for event in sink.events)
        assert bus.open_upsets == 0

    def test_word_none_matches_any_open_upset_of_target(self):
        bus = Telemetry(MemorySink())
        upset = bus.strike("fpregs", 3, word=7, time_s=0.1, let=60.0,
                           mbu=False, instr=10)
        bus.resolve("fpregs", None, action="correct-writeback", instr=20)
        assert bus.sink.events[-1]["upset"] == upset
        assert bus.open_upsets == 0

    def test_mbu_pair_in_one_word_resolves_together(self):
        bus = Telemetry(MemorySink())
        first = bus.strike("dcache-data", 64, word=2, time_s=0.1,
                           let=110.0, mbu=True, instr=10)
        second = bus.strike("dcache-data", 65, word=2, time_s=0.1,
                            let=110.0, mbu=True, instr=10)
        bus.resolve("dcache-data", 2, action="invalidate", instr=40)
        resolved = [event["upset"] for event in bus.sink.events
                    if event["ev"] == "resolve"]
        assert sorted(resolved) == sorted([first, second])

    def test_unmatched_resolve_still_emits_with_null_upset(self):
        bus = Telemetry(MemorySink())
        bus.resolve("ext-mem", None, action="trap", instr=5)
        assert bus.sink.events == [
            {"ev": "resolve", "upset": None, "site": "ext-mem",
             "word": None, "action": "trap", "instr": 5}]

    def test_tmr_scrub_closes_all_flipflop_upsets(self):
        bus = Telemetry(MemorySink())
        upsets = [bus.strike("flipflops", bit, word=None, time_s=0.1,
                             let=60.0, mbu=False, instr=1)
                  for bit in (3, 9)]
        bus.tmr_scrub(instr=2)
        events = bus.sink.events[2:]
        assert [e["ev"] for e in events] == ["detect", "resolve"] * 2
        assert {e["upset"] for e in events} == set(upsets)
        assert all(e["mech"] == "tmr-vote" for e in events
                   if e["ev"] == "detect")

    def test_close_open_classifies_every_remaining_upset(self):
        bus = Telemetry(MemorySink())
        bus.strike("icache-tag", 5, word=0, time_s=0.1, let=60.0,
                   mbu=False, instr=1)
        bus.strike("regfile", 9, word=3, time_s=0.2, let=60.0,
                   mbu=False, instr=2)
        bus.close_open(lambda target, word:
                       "latent" if target == "regfile" else "masked",
                       instr=99)
        closes = [e for e in bus.sink.events if e["ev"] == "close"]
        assert {e["state"] for e in closes} <= set(CLOSE_STATES)
        assert len(closes) == 2
        assert bus.open_upsets == 0

    def test_metrics_track_events_and_counters(self):
        bus = Telemetry(MemorySink())
        bus.strike("regfile", 1, word=0, time_s=0.0, let=60.0,
                   mbu=False, instr=0)
        bus.detect("regfile", 0, mech="bch", kind="correctable",
                   counter="RFE", instr=1)
        bus.detect("ext-mem", None, mech="edac", kind="correctable",
                   counter="EDAC", instr=2, count=3)
        counters = bus.metrics.counters
        assert counters["events.strike"] == 1
        assert counters["events.detect"] == 2
        assert counters["counter.RFE"] == 1
        assert counters["counter.EDAC"] == 3

    def test_null_telemetry_is_disabled(self):
        assert NULL_TELEMETRY.enabled is False


class TestMetrics:
    def test_histogram_log2_buckets(self):
        histogram = Histogram()
        for value in (0, 1, 2, 3, 4, 7, 8, 1000):
            histogram.observe(value)
        assert histogram.count == 8
        assert histogram.min == 0 and histogram.max == 1000
        assert histogram.buckets[0] == 1       # the zero
        assert histogram.buckets[1] == 1       # 1
        assert histogram.buckets[2] == 2       # 2..3
        assert histogram.buckets[3] == 2       # 4..7
        assert histogram.mean == pytest.approx(sum((0, 1, 2, 3, 4, 7, 8,
                                                    1000)) / 8)
        labels = dict(histogram.bucket_rows())
        assert labels["4-7"] == 2

    def test_registry_round_trip(self):
        registry = MetricsRegistry()
        registry.count("a", 2)
        registry.count("a")
        registry.observe("lat", 5)
        snapshot = registry.as_dict()
        assert snapshot["counters"] == {"a": 3}
        assert snapshot["histograms"]["lat"]["count"] == 1


# ----------------------------------------------------------------------
# Sinks and trace files
# ----------------------------------------------------------------------

class TestJsonlSink:
    def test_write_run_tags_and_round_trips(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlTraceSink(path) as sink:
            sink.write_run([{"ev": "strike", "upset": 0}], run=0)
            sink.write_run([{"ev": "run-end", "upsets": 1}], run=1)
        events = read_trace(path)
        assert [event["run"] for event in events] == [0, 1]
        assert events[0]["ev"] == "strike"

    def test_truncated_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        path_obj = tmp_path / "trace.jsonl"
        path_obj.write_text('{"ev": "strike", "upset": 0}\n'
                            '{"ev": "run-e')
        events = read_trace(path)
        assert len(events) == 1

    def test_mid_file_garbage_rejected(self, tmp_path):
        path_obj = tmp_path / "trace.jsonl"
        path_obj.write_text('not json\n{"ev": "strike"}\n')
        with pytest.raises(ConfigurationError):
            read_trace(str(path_obj))

    def test_unknown_keys_ride_along(self, tmp_path):
        path_obj = tmp_path / "trace.jsonl"
        path_obj.write_text(json.dumps(
            {"ev": "strike", "run": 0, "upset": 0, "target": "regfile",
             "word": 1, "instr": 5, "future_field": "kept"}) + "\n")
        events = read_trace(str(path_obj))
        assert events[0]["future_field"] == "kept"
        # Folding ignores what it does not know.
        stats = fold_stats(events)
        assert stats.strikes == 1

    def test_missing_ev_key_rejected(self, tmp_path):
        path_obj = tmp_path / "trace.jsonl"
        path_obj.write_text('{"upset": 0}\n{"ev": "x"}\n')
        with pytest.raises(ConfigurationError):
            read_trace(str(path_obj))


# ----------------------------------------------------------------------
# Injector telemetry helpers
# ----------------------------------------------------------------------

class TestLocate:
    @pytest.fixture
    def injector(self):
        return FaultInjector(LeonSystem(LeonConfig.leon_express()))

    def test_cache_words(self, injector):
        bits = injector.targets["icache-data"].bits_per_word
        assert injector.locate("icache-data", 0) == 0
        assert injector.locate("icache-data", bits) == 1

    def test_regfile_copies_map_to_same_word(self, injector):
        """The duplicated register file stores copy-major: a bit in copy
        1 must locate to the same physical word the protection layer
        reports."""
        regfile = injector.system.regfile
        per_copy = regfile.words * regfile.bits_per_word
        bit = 5 * regfile.bits_per_word + 3  # word 5, either copy
        assert injector.locate("regfile", bit) == 5
        if injector.targets["regfile"].bits > per_copy:
            assert injector.locate("regfile", per_copy + bit) == 5

    def test_flipflops_have_no_word(self, injector):
        assert injector.locate("flipflops", 10) is None


# ----------------------------------------------------------------------
# Traced campaigns (the integration contract)
# ----------------------------------------------------------------------

class TestTracedCampaign:
    @pytest.fixture(scope="class")
    def traced(self):
        return traced_run()

    def test_results_identical_with_and_without_telemetry(self, traced):
        result, _ = traced
        untraced = Campaign(CampaignConfig(**TRACED)).run()
        assert result.comparable() == untraced.comparable()

    def test_every_strike_reaches_a_terminal_event(self, traced):
        result, events = traced
        lives = lifecycles(events)
        strikes = [life for life in lives if life.strike is not None]
        assert len(strikes) == result.upsets
        assert all(life.terminal for life in lives)

    def test_fold_stats_reproduces_table2_counters(self, traced):
        result, events = traced
        stats = fold_stats(events)
        assert stats.consistent
        for name, value in result.counts.items():
            assert stats.counters[name] == value

    def test_spans_cover_all_phases(self, traced):
        _, events = traced
        phases = {event["phase"] for event in events
                  if event["ev"] == "span"}
        assert phases == {"setup", "golden-prefix", "beam", "drain"}

    def test_run_end_matches_result(self, traced):
        result, events = traced
        run_end = [e for e in events if e["ev"] == "run-end"]
        assert len(run_end) == 1
        assert run_end[0]["upsets"] == result.upsets
        assert run_end[0]["counts"] == dict(result.counts)

    def test_renderers_accept_real_traces(self, traced):
        _, events = traced
        stats_text = render_stats(fold_stats(events))
        assert "match" in stats_text
        life_text = render_lifecycle(lifecycles(events)[0])
        assert "upset 0" in life_text

    def test_traced_runner_matches_default_runner(self):
        config = CampaignConfig(**TRACED)
        plain = run_campaign(config)
        traced = run_campaign_traced(config)
        assert traced.trace, "traced runner must attach events"
        assert traced.comparable() == plain.comparable()

    def test_trace_survives_process_pool(self):
        """Traces must pickle back from workers, identically to serial."""
        configs = expand_runs(CampaignConfig(**TRACED), 2)
        serial = CampaignExecutor(1, runner=run_campaign_traced) \
            .run_many(configs)
        parallel = CampaignExecutor(2, runner=run_campaign_traced) \
            .run_many(configs)
        def stable(trace):
            # Host wall timings legitimately differ between attempts.
            return [{k: v for k, v in event.items() if k != "wall_s"}
                    for event in trace]

        for left, right in zip(serial, parallel):
            assert left.trace and stable(left.trace) == stable(right.trace)
            assert left.comparable() == right.comparable()

    def test_recovery_runs_emit_recovery_events(self):
        """The pinned halting scenario (standard device, LET 110, seed
        16) must show its recovery rungs in the trace."""
        result, events = traced_run(
            leon=LeonConfig.standard(), seed=16, flux=5000.0,
            fluence=10_000.0, instructions_per_second=30_000.0,
            recovery="ladder")
        assert result.recoveries
        by_level = {}
        for event in events:
            if event["ev"] == "recovery":
                by_level[event["level"]] = by_level.get(event["level"], 0) + 1
        assert by_level == dict(result.recoveries)

    def test_zero_upset_run_closes_cleanly(self):
        result, events = traced_run(let=3.0)
        assert result.upsets == 0
        assert not [e for e in events if e["ev"] == "strike"]
        assert [e for e in events if e["ev"] == "run-end"]
