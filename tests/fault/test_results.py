"""The crash-safe JSONL result store and campaign resume."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.core.config import LeonConfig
from repro.fault.campaign import CampaignConfig, CampaignResult
from repro.fault.executor import CampaignExecutor
from repro.fault.results import (
    ResultStore,
    config_key,
    result_from_dict,
    result_to_dict,
)

FAST = dict(flux=400.0, fluence=500.0, instructions_per_second=30_000.0)


def _config(seed=1, let=110.0, **overrides):
    settings = dict(FAST)
    settings.update(overrides)
    return CampaignConfig(program="iutest", let=let, seed=seed, **settings)


def _result(seed=1, **overrides) -> CampaignResult:
    return CampaignResult(
        config=_config(seed=seed, **overrides),
        counts={"ITE": 1, "IDE": 0, "DTE": 0, "DDE": 0, "RFE": 2, "Total": 3},
        upsets=4,
        upsets_by_target={"regfile": 2, "icache-tag": 2},
        sw_errors=0,
        error_traps=0,
        halted=False,
        iterations=12,
        instructions=25_000,
        wall_seconds=0.5,
    )


# -- serialization -------------------------------------------------------------


def test_result_dict_round_trip():
    result = _result(seed=5)
    again = result_from_dict(result_to_dict(result))
    assert again.comparable() == result.comparable()
    assert config_key(again.config) == config_key(result.config)


def test_config_key_distinguishes_runs():
    assert config_key(_config(seed=1)) != config_key(_config(seed=2))
    assert config_key(_config(let=60.0)) != config_key(_config(let=110.0))
    assert config_key(_config()) == config_key(_config())


def test_config_key_rejects_custom_device():
    with pytest.raises(ConfigurationError):
        config_key(_config(leon=LeonConfig.standard()))


# -- the store -----------------------------------------------------------------


def test_append_load_round_trip(tmp_path):
    path = str(tmp_path / "runs.jsonl")
    results = [_result(seed=seed) for seed in (1, 2, 3)]
    with ResultStore(path) as store:
        store.append(results[:2])
        store.append(results[2:])
    loaded = ResultStore(path).load()
    assert len(loaded) == 3
    for result in results:
        assert loaded[config_key(result.config)].comparable() == \
            result.comparable()


def test_later_lines_supersede(tmp_path):
    path = str(tmp_path / "runs.jsonl")
    first = _result(seed=1)
    second = _result(seed=1)
    second.iterations = 99
    with ResultStore(path) as store:
        store.append([first])
        store.append([second])
    loaded = ResultStore(path).load()
    assert len(loaded) == 1
    assert loaded[config_key(first.config)].iterations == 99


def test_truncated_tail_is_tolerated(tmp_path):
    path = str(tmp_path / "runs.jsonl")
    with ResultStore(path) as store:
        store.append([_result(seed=1)])
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"config": {"program": "iu')  # crash mid-append
    loaded = ResultStore(path).load()
    assert len(loaded) == 1


def test_append_after_crash_repairs_partial_tail(tmp_path):
    """Resuming *into* a store whose last append was cut mid-line must
    trim the fragment first -- otherwise the next append glues its row
    onto the fragment and poisons the whole line."""
    path = str(tmp_path / "runs.jsonl")
    with ResultStore(path) as store:
        store.append([_result(seed=1)])
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"config": {"program": "iu')  # crash mid-append
    with ResultStore(path) as store:
        store.append([_result(seed=2)])
    loaded = ResultStore(path).load()
    assert {config.seed for config in
            (r.config for r in loaded.values())} == {1, 2}
    # Every surviving line is intact JSON (the fragment is gone).
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            json.loads(line)


def test_append_trims_newline_free_fragment(tmp_path):
    """A store holding only a partial first line is repaired to empty."""
    path = str(tmp_path / "runs.jsonl")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"config"')
    with ResultStore(path) as store:
        store.append([_result(seed=7)])
    assert len(ResultStore(path).load()) == 1


def test_mid_file_garbage_raises(tmp_path):
    path = str(tmp_path / "runs.jsonl")
    line = json.dumps(result_to_dict(_result(seed=1)))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("not json at all\n" + line + "\n")
    with pytest.raises(ConfigurationError):
        ResultStore(path).load()


def test_missing_file_loads_empty(tmp_path):
    store = ResultStore(str(tmp_path / "absent.jsonl"))
    assert store.load() == {}


def test_split_pending_partitions(tmp_path):
    path = str(tmp_path / "runs.jsonl")
    configs = [_config(seed=seed) for seed in (1, 2, 3)]
    with ResultStore(path) as store:
        store.append([_result(seed=2)])
    done, pending = ResultStore(path).split_pending(configs)
    assert set(done) == {config_key(configs[1])}
    assert [config.seed for config in pending] == [1, 3]


def test_pre_grading_rows_load_with_defaults(tmp_path):
    """Stores written before fast grading lack the exit fields; loading
    them defaults to the legacy markers so mixed-version resumes work."""
    path = str(tmp_path / "runs.jsonl")
    row = result_to_dict(_result(seed=1))
    row.pop("exit_reason", None)
    row.pop("graded_at_instruction", None)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(row) + "\n")
    loaded = ResultStore(path).load()
    result = loaded[config_key(_config(seed=1))]
    assert result.exit_reason == ""
    assert result.graded_at_instruction is None
    # A resumed campaign appends new-format rows to the same store.
    with ResultStore(path) as store:
        store.append([_result(seed=2)])
    assert len(ResultStore(path).load()) == 2


# -- resume through the executor -----------------------------------------------


def test_resumed_campaign_recomputes_only_the_missing_runs(tmp_path):
    path = str(tmp_path / "runs.jsonl")
    configs = [_config(seed=seed) for seed in (21, 22, 23)]
    executor = CampaignExecutor(1)

    # First attempt: the store sees every completed run...
    with ResultStore(path) as store:
        full = executor.run_many(configs, on_results=store.append)
    # ...then lose one line, as if the host died before the last append.
    lines = open(path, encoding="utf-8").readlines()
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(lines[:-1])

    done, pending = ResultStore(path).split_pending(configs)
    assert len(done) == 2 and len(pending) == 1
    with ResultStore(path) as store:
        rerun = executor.run_many(pending, on_results=store.append)
    assert rerun[0].comparable() == full[-1].comparable()
    assert len(ResultStore(path).load()) == 3


def test_on_results_preserves_config_order_parallel(tmp_path):
    path = str(tmp_path / "runs.jsonl")
    configs = [_config(seed=seed) for seed in (31, 32, 33, 34)]
    with ResultStore(path) as store:
        CampaignExecutor(2, chunksize=1).run_many(
            configs, on_results=store.append)
    lines = open(path, encoding="utf-8").readlines()
    seeds = [json.loads(line)["config"]["seed"] for line in lines]
    assert seeds == [31, 32, 33, 34]
