"""The pluggable fault-model layer: registry, persistence, determinism.

The contracts under test:

* the default ``seu`` model is byte-identical to the pre-model-layer
  campaign -- result fields, store keys, and trace strike events (which
  must not even carry a ``kind`` key);
* stuck-at faults persist: rewriting the cell holds only until the next
  chunk boundary, ``is_latent`` never downgrades a stuck site to masked;
* every registered model is deterministic across ``--jobs``, warm vs
  cold start, and a resume from a crash-truncated result store;
* grading never takes the golden-digest early exit for persistent-fault
  runs (``exit_reason == "full"``), and the full execution it degrades
  to is oracle-equivalent to an early-exit-disabled run;
* the security readout classifies detected / silent / masked correctly.
"""

import dataclasses
import json

import pytest

from repro.core.config import LeonConfig
from repro.core.system import LeonSystem
from repro.errors import ConfigurationError
from repro.fault.campaign import Campaign, CampaignConfig, prepare_warm_start
from repro.fault.executor import CampaignExecutor, expand_runs
from repro.fault.injector import FaultInjector
from repro.fault.models import (
    MODELS,
    FaultModel,
    build_model,
    classify_outcome,
    model_names,
    register_model,
    security_fold,
)
from repro.fault.results import ResultStore, config_key
from repro.telemetry import MemorySink, Telemetry

#: Small, fast campaign settings shared by the determinism matrix.
FAST = dict(flux=400.0, fluence=500.0, instructions_per_second=20_000.0)

#: The attack site of the pinned test program (resolved lazily once).
_SITE = {}


def _attack_params():
    if not _SITE:
        from repro.fault.campaign import resolve_builder
        program, _expected = resolve_builder("iutest")(None)
        _SITE["pc"] = program.symbols["iutest_iteration"]
    return {"pc": _SITE["pc"], "window": 8, "time_s": 0.5}


def _config(model="seu", seed=5, **overrides):
    settings = dict(FAST)
    settings.update(overrides)
    params = _attack_params() if model in ("instruction-skip", "opcode") \
        else {}
    return CampaignConfig(program="iutest", seed=seed, fault_model=model,
                          fault_params=params, **settings)


def _comparable(result):
    fields = dataclasses.asdict(result)
    fields.pop("wall_seconds")
    return fields


# -- registry ------------------------------------------------------------------


def test_registry_names_every_model():
    assert model_names() == ("instruction-skip", "opcode", "sefi",
                             "seu", "seu-live", "stuck-at-0", "stuck-at-1")
    assert set(model_names()) == set(MODELS)


def test_build_model_rejects_unknown_kind():
    with pytest.raises(ConfigurationError):
        build_model("rowhammer", CampaignConfig())


def test_campaign_config_validates_model_early():
    with pytest.raises(ConfigurationError):
        Campaign(CampaignConfig(fault_model="rowhammer"))


def test_register_model_rejects_duplicates_and_blank_kinds():
    class Duplicate(FaultModel):
        kind = "seu"

    with pytest.raises(ConfigurationError):
        register_model(Duplicate)

    class Nameless(FaultModel):
        pass

    with pytest.raises(ConfigurationError):
        register_model(Nameless)


def test_every_model_enumerates_a_declared_fault_space():
    system = LeonSystem(LeonConfig.fault_tolerant())
    injector = FaultInjector(system, include_external_memory=True)
    config = CampaignConfig(fault_params=_attack_params())
    for kind in model_names():
        model = build_model(kind, config)
        space = model.fault_space(injector)
        assert space, kind
        for cell, bits in space.items():
            assert bits > 0, (kind, cell)
            assert cell in model.TARGETS, (kind, cell)


# -- default-model byte identity -----------------------------------------------


def test_default_config_key_has_no_model_fields():
    """Store keys written before the model layer existed must still match."""
    key = json.loads(config_key(CampaignConfig()))
    assert "fault_model" not in key
    assert "fault_params" not in key
    explicit = config_key(CampaignConfig(fault_model="seu"))
    assert explicit == config_key(CampaignConfig())


def test_non_default_model_is_in_the_key():
    key = json.loads(config_key(CampaignConfig(fault_model="stuck-at-1")))
    assert key["fault_model"] == "stuck-at-1"


def test_seu_trace_strikes_carry_no_kind():
    """Default-model strike events must stay byte-identical to recorded
    traces: the ``kind`` key only appears for non-default models."""
    sink = MemorySink()
    config = _config(let=110.0, fluence=600.0, seed=1)
    Campaign(config, telemetry=Telemetry(sink)).run()
    strikes = [e for e in sink.events if e.get("ev") == "strike"]
    assert strikes
    assert all("kind" not in event for event in strikes)


def test_stuck_at_trace_strikes_carry_their_kind():
    sink = MemorySink()
    config = _config("stuck-at-1", let=110.0, fluence=600.0, seed=1)
    Campaign(config, telemetry=Telemetry(sink)).run()
    strikes = [e for e in sink.events if e.get("ev") == "strike"]
    assert strikes
    assert all(event["kind"] == "stuck-at-1" for event in strikes)


# -- stuck-at persistence ------------------------------------------------------


def test_persistent_fault_survives_rewrite_until_reasserted():
    system = LeonSystem(LeonConfig.fault_tolerant())
    injector = FaultInjector(system, include_external_memory=True)
    target = injector.targets["ext-sram"]
    entry = injector.add_persistent("ext-sram", 3, 1)
    assert target.peek_flat(3) == 1
    # A rewrite (scrub / software store) holds the golden value...
    system.memctrl.sram_memory.write_word(0, 0)
    assert target.peek_flat(3) == 0
    # ...only until the next chunk boundary re-forces the defect.
    assert injector.reassert_persistent() == 1
    assert target.peek_flat(3) == 1
    assert injector.persistent_faults == (entry,)
    # A cell already at the stuck value is not re-forced.
    assert injector.reassert_persistent() == 0


def test_is_latent_true_for_persistent_sites():
    system = LeonSystem(LeonConfig.fault_tolerant())
    injector = FaultInjector(system)
    injector.add_persistent("regfile", 40, 1)
    word = injector.locate("regfile", 40)
    # Even after the suspect marking would have been cleared by a
    # rewrite, a stuck cell must classify latent, never masked.
    system.regfile._suspect.clear()
    assert injector.is_latent("regfile", word)
    assert not injector.is_latent("regfile", word + 1)


def test_snapshot_roundtrips_persistent_faults():
    system = LeonSystem(LeonConfig.fault_tolerant())
    injector = FaultInjector(system)
    injector.add_persistent("regfile", 40, 1)
    state = injector.capture()
    clone = FaultInjector(LeonSystem(LeonConfig.fault_tolerant()))
    clone.restore(state)
    assert clone.persistent_faults == injector.persistent_faults


# -- determinism matrix --------------------------------------------------------


@pytest.mark.parametrize("kind", model_names())
def test_model_is_jobs_invariant(kind):
    configs = expand_runs(_config(kind), 3)
    serial = CampaignExecutor(1).run_many(configs)
    parallel = CampaignExecutor(4, chunksize=1).run_many(configs)
    assert [_comparable(r) for r in parallel] == \
           [_comparable(r) for r in serial]


@pytest.mark.parametrize("kind", model_names())
def test_model_warm_matches_cold(kind):
    config = _config(kind, beam_delay_s=0.25)
    cold = Campaign(config).run()
    warm = Campaign(config).run(warm=prepare_warm_start(config))
    assert warm.comparable() == cold.comparable()


@pytest.mark.parametrize("kind", ("seu", "stuck-at-1", "instruction-skip"))
def test_model_resumes_from_truncated_store(kind, tmp_path):
    """A crash mid-append loses at most the partial line: the resumed
    campaign re-runs only the missing configs and the merged corpus is
    byte-identical to an uninterrupted run."""
    path = str(tmp_path / "results.jsonl")
    configs = expand_runs(_config(kind), 3)
    full = CampaignExecutor(1).run_many(configs)
    with ResultStore(path) as store:
        store.append(full[:2])
    # Simulate the crash: chop the final line mid-JSON.
    with open(path, "rb+") as handle:
        handle.truncate(handle.seek(0, 2) - 40)
    store = ResultStore(path)
    done, pending = store.split_pending(configs)
    assert [config_key(c) for c in pending] == \
        [config_key(c) for c in configs[1:]]
    with store:
        store.append(CampaignExecutor(1).run_many(pending))
    merged = store.load()
    assert [merged[config_key(c)].comparable() for c in configs] == \
        [r.comparable() for r in full]


# -- persistent faults never take the early exit -------------------------------


def test_stuck_at_run_is_never_graded_early():
    """The golden-digest timeline argument only holds for transients: a
    re-asserted fault invalidates it, so grading must degrade to full
    execution -- and that full execution must be oracle-equivalent to a
    run with early exit disabled."""
    config = _config("stuck-at-1", let=110.0, beam_delay_s=0.25)
    warm = prepare_warm_start(config)
    assert warm.timeline is not None  # the early exit *would* be armed
    graded = Campaign(config).run(warm=warm)
    assert graded.exit_reason == "full"
    assert not graded.effaced
    oracle = Campaign(
        dataclasses.replace(config, early_exit=False)).run(warm=warm)
    assert oracle.exit_reason == "full"
    assert graded.comparable() == oracle.comparable()


def test_transient_models_still_grade_early():
    config = _config("seu", let=3.0, beam_delay_s=0.25)
    warm = prepare_warm_start(config)
    result = Campaign(config).run(warm=warm)
    assert result.effaced  # below threshold: strike-free, golden readouts


# -- security readout ----------------------------------------------------------


def _result(model="instruction-skip", **overrides):
    fields = dict(
        config=CampaignConfig(fault_model=model),
        counts={"ITE": 0, "IDE": 0, "DTE": 0, "DDE": 0, "RFE": 0,
                "Total": 0},
        upsets=1, upsets_by_target={}, sw_errors=0, error_traps=0,
        halted=False, iterations=10, instructions=1000)
    fields.update(overrides)
    from repro.fault.campaign import CampaignResult
    return CampaignResult(**fields)


def test_classify_outcome_axes():
    assert classify_outcome(_result()) == "masked"
    assert classify_outcome(_result(sw_errors=2)) == "silent"
    assert classify_outcome(_result(counts={"Total": 1})) == "detected"
    assert classify_outcome(_result(counts={"EDAC": 3})) == "detected"
    assert classify_outcome(_result(error_traps=1)) == "detected"
    assert classify_outcome(_result(halted=True)) == "detected"
    assert classify_outcome(
        _result(sw_errors=5, counts={"Total": 1})) == "detected"


def test_security_fold_groups_by_model():
    results = [_result(), _result(sw_errors=1),
               _result(model="opcode", counts={"Total": 2})]
    fold = security_fold(results)
    assert fold == {
        "instruction-skip": {"detected": 0, "silent": 1, "masked": 1},
        "opcode": {"detected": 1, "silent": 0, "masked": 0},
    }


def test_attack_campaign_end_to_end_security_readout():
    """An instruction-skip burst at the iteration entry: every run lands
    on the silent/masked axis (a coherent NOP is invisible to the FT
    fabric) and at least one corrupts results silently."""
    configs = expand_runs(_config("instruction-skip", seed=2026,
                                  fluence=2_000.0,
                                  instructions_per_second=50_000.0), 4)
    results = CampaignExecutor(1).run_many(configs)
    fold = security_fold(results)["instruction-skip"]
    assert fold["detected"] == 0
    assert fold["silent"] >= 1
    assert sum(fold.values()) == 4


def test_opcode_attack_is_detected_by_edac():
    """Opcode corruption leaves stale check bits: EDAC flags it on
    refetch, so the run classifies detected."""
    config = _config("opcode", seed=1, fluence=2_000.0,
                     instructions_per_second=50_000.0)
    result = Campaign(config).run()
    assert classify_outcome(result) == "detected"
