"""The SEU target registry and deterministic injector."""

import random

import pytest

from repro import LeonConfig, LeonSystem
from repro.errors import InjectionError
from repro.fault.injector import FaultInjector


@pytest.fixture
def injector():
    return FaultInjector(LeonSystem(LeonConfig.leon_express()))


def test_targets_cover_section_4_2_groups(injector):
    names = set(injector.targets)
    assert {"icache-tag", "icache-data", "dcache-tag", "dcache-data",
            "regfile", "flipflops", "fpregs"} <= names


def test_bit_populations_match_structures(injector):
    system = injector.system
    assert injector.targets["icache-data"].bits == \
        system.icache.data_ram.total_bits
    assert injector.targets["regfile"].bits == system.regfile.total_bits
    assert injector.targets["flipflops"].bits == system.ffbank.total_bits
    assert injector.targets["fpregs"].bits == 32 * system.fpu.bits_per_word
    assert injector.total_bits == sum(t.bits for t in injector.targets.values())


def test_ram_dominates_bit_population(injector):
    """The paper's geometry: ~10 mm2 of RAM vs ~2500 flip-flops."""
    ram_bits = sum(injector.targets[name].bits
                   for name in ("icache-tag", "icache-data",
                                "dcache-tag", "dcache-data", "regfile"))
    assert ram_bits > 20 * injector.targets["flipflops"].bits


def test_deterministic_injection_lands(injector):
    system = injector.system
    system.regfile.write(0, 1, 0)
    bits_per_word = system.regfile.bits_per_word  # 39 with BCH
    injector.inject("regfile", bits_per_word + 3)  # physical word 1, bit 3
    data, _check, _physical = system.regfile.read_raw(0, 1)
    assert data == 8


def test_injection_bounds(injector):
    with pytest.raises(InjectionError):
        injector.inject("regfile", 10**9)
    with pytest.raises(InjectionError):
        injector.inject("nonexistent", 0)


def test_random_injection_is_area_weighted(injector):
    rng = random.Random(42)
    hits = {}
    for _ in range(2000):
        name = injector.inject_random(rng)
        hits[name] = hits.get(name, 0) + 1
    # Cache data arrays dwarf everything else.
    assert hits["icache-data"] + hits["dcache-data"] > hits.get("flipflops", 0) * 5
    total = injector.total_bits
    expected = injector.targets["icache-data"].bits / total
    observed = hits["icache-data"] / 2000
    assert abs(observed - expected) < 0.08


def test_weighted_injection_respects_scale(injector):
    rng = random.Random(7)
    weights = {name: 0.0 for name in injector.targets}
    weights["regfile"] = 1.0
    for _ in range(50):
        assert injector.inject_random(rng, weights) == "regfile"


def test_adjacent_injection_same_word(injector):
    system = injector.system
    ram = system.icache.data_ram
    injector.inject("icache-data", 100)
    injector.inject_adjacent("icache-data", 100)
    index = 100 // ram.bits_per_word
    word = ram.read_raw(index)[0] | (ram.read_raw(index)[1] << 32)
    assert bin(word).count("1") == 2  # both bits in the same word


def test_adjacent_injection_at_row_boundary(injector):
    ram = injector.system.icache.data_ram
    last_bit_of_word0 = ram.bits_per_word - 1
    neighbour = injector.inject_adjacent("icache-data", last_bit_of_word0)
    assert neighbour == last_bit_of_word0 - 1  # stays in the row


def test_external_memory_targets_optional():
    system = LeonSystem(LeonConfig.leon_express())
    without = FaultInjector(system)
    with_mem = FaultInjector(system, include_external_memory=True)
    assert "ext-sram" not in without.targets
    assert "ext-sram" in with_mem.targets


def test_injection_log(injector):
    injector.inject("regfile", 0)
    injector.inject("flipflops", 1)
    assert injector.injections == ["regfile", "flipflops"]
