"""Static pre-classification vs the executed oracle: bit-for-bit parity.

The analyzer lets ``Campaign.run`` grade provably-dead transient strikes
without executing the run.  These tests hold that shortcut to the same
standard as early-exit grading: byte-identical results, rows and traces
against full execution with the analyzer disabled, at any ``--jobs``.
"""

import dataclasses

import pytest

from repro.fault.campaign import (
    Campaign,
    CampaignConfig,
    prepare_warm_start,
)
from repro.fault.executor import (
    CampaignExecutor,
    expand_runs,
    run_campaign_traced,
)
from repro.fault.results import ResultStore, config_key

#: random:7 analyzes window-accurately (117/136 words provably dead, FP
#: file untouched), and the small-cache express device keeps the claimable
#: arrays (regfile + fpregs) the majority of the fault space -- so a good
#: fraction of struck runs is provably dead.  Tiny phases keep the
#: 200-replica executed oracle affordable.
STATIC = dict(flux=400.0, fluence=900.0, instructions_per_second=2_000.0,
              beam_delay_s=0.25, beam_tail_s=0.5,
              flush_period_instructions=400)


def _leon():
    from repro.core.config import CacheConfig, LeonConfig
    return LeonConfig.leon_express(icache=CacheConfig(size_bytes=256),
                                   dcache=CacheConfig(size_bytes=256))


def _cfg(let=20.0, seed=7, **overrides):
    settings = dict(STATIC)
    settings.update(overrides)
    return CampaignConfig(program="random:7", let=let, seed=seed,
                          leon=_leon(), **settings)


def _oracle(config):
    """The analyzer-disabled, full-execution twin of ``config``."""
    return dataclasses.replace(config, static_grading=False,
                               early_exit=False)


@pytest.fixture(scope="module")
def warm():
    return prepare_warm_start(_cfg())


def test_warm_start_carries_the_ace_map(warm):
    assert warm.ace is not None
    assert warm.ace.window_claims
    assert warm.ace.claimable_words > 100
    assert warm.timeline is not None


def test_static_masked_matches_full_oracle_200_runs(warm):
    """200 seeded replicas, graded statically where provable, against the
    executed oracle -- results must be byte-identical."""
    configs = expand_runs(_cfg(), 200)
    fast = CampaignExecutor(1).run_many(configs, warm=warm)
    oracle = CampaignExecutor(1).run_many(
        [_oracle(config) for config in configs], warm=warm, batch=False)
    assert [r.comparable() for r in fast] == \
        [r.comparable() for r in oracle]
    statics = [r for r in fast if r.exit_reason == "static_masked"]
    assert statics, "no run was statically graded -- test proves nothing"
    assert any(r.upsets > 0 for r in statics)
    assert all(r.exit_reason == "full" for r in oracle)
    # A statically-masked run reports the golden readouts.
    for result in statics:
        assert result.counts == warm.golden.counts
        assert result.effaced


def test_jobs_invariant(warm):
    configs = expand_runs(_cfg(), 24)
    serial = CampaignExecutor(1).run_many(configs, warm=warm)
    parallel = CampaignExecutor(4, chunksize=1).run_many(configs, warm=warm)
    assert [r.comparable() for r in parallel] == \
        [r.comparable() for r in serial]
    assert any(r.exit_reason == "static_masked" for r in serial)


def test_store_rows_are_identical(tmp_path):
    """The persisted rows of a static campaign reload equal to the
    oracle's -- the store sees no difference either.  (The JSONL store
    keys on the default device, so this variant drops the custom leon.)"""
    base = CampaignConfig(program="random:7", let=20.0, seed=7, **STATIC)
    warm = prepare_warm_start(base)
    configs = expand_runs(base, 40)
    fast_path = str(tmp_path / "fast.jsonl")
    with ResultStore(fast_path) as store:
        fast = CampaignExecutor(1).run_many(configs, warm=warm,
                                            on_results=store.append)
    assert any(r.exit_reason == "static_masked" for r in fast)
    oracle = CampaignExecutor(1).run_many(
        [_oracle(config) for config in configs], warm=warm, batch=False)
    stored = ResultStore(fast_path).load()
    assert [stored[config_key(config)].comparable() for config in configs] \
        == [r.comparable() for r in oracle]


def test_traced_streams_match_the_oracle(warm):
    """Strike/detect/resolve/close streams of a statically-graded run are
    byte-identical to the executed oracle's."""
    config = None
    for seed in range(1, 30):
        candidate = _cfg(seed=seed)
        probe = Campaign(candidate).run(warm=warm)
        if probe.exit_reason == "static_masked" and probe.upsets > 0:
            config = candidate
            break
    assert config is not None, "no struck seed graded statically"
    fast = run_campaign_traced(config, warm)
    oracle = run_campaign_traced(_oracle(config), warm)
    kinds = ("strike", "detect", "resolve", "close")
    assert [e for e in fast.trace if e["ev"] in kinds] == \
        [e for e in oracle.trace if e["ev"] in kinds]
    assert any(e["ev"] == "early-exit" and e["reason"] == "static-masked"
               for e in fast.trace)
    # Both traces describe the analysis identically.
    for trace in (fast.trace, oracle.trace):
        notes = [e for e in trace if e["ev"] == "ace"]
        assert len(notes) == 1
        assert notes[0]["claimable_words"] == warm.ace.claimable_words
    assert fast.comparable() == oracle.comparable()


def test_persistent_faults_are_never_statically_graded(warm):
    """Stuck-at faults re-assert into their 'dead' word; the static claim
    does not apply and the run must execute."""
    configs = expand_runs(_cfg(fault_model="stuck-at-0"), 12)
    results = CampaignExecutor(1).run_many(configs, warm=warm)
    assert all(r.exit_reason != "static_masked" for r in results)
    oracle = CampaignExecutor(1).run_many(
        [_oracle(config) for config in configs], warm=warm, batch=False)
    assert [r.comparable() for r in results] == \
        [r.comparable() for r in oracle]


def test_static_grading_flag_disables_the_shortcut(warm):
    configs = expand_runs(_cfg(static_grading=False), 12)
    results = CampaignExecutor(1).run_many(configs, warm=warm)
    assert all(r.exit_reason != "static_masked" for r in results)
    fast = CampaignExecutor(1).run_many(expand_runs(_cfg(), 12), warm=warm)
    assert [r.comparable() for r in results] == \
        [r.comparable() for r in fast]
