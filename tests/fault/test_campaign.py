"""The campaign runner: the simulated Louvain measurement procedure."""

import pytest

from repro.errors import ConfigurationError
from repro.fault.campaign import Campaign, CampaignConfig

#: Small, fast campaign settings shared by the tests (fluence is scaled
#: down from the paper's 1e5; cross-sections are scale-invariant).
FAST = dict(flux=400.0, fluence=1.0e3, instructions_per_second=40_000.0,
            program_kwargs={})


def run(program="iutest", let=110.0, seed=1, **overrides):
    settings = dict(FAST)
    settings.update(overrides)
    return Campaign(CampaignConfig(program=program, let=let, seed=seed,
                                   **settings)).run()


def test_unknown_program_rejected():
    with pytest.raises(ConfigurationError):
        Campaign(CampaignConfig(program="nosuch"))


def test_iutest_campaign_corrects_without_failures():
    """The headline result: every injected error corrected, no timing or
    software impact (beyond counted corrections)."""
    result = run("iutest", seed=11)
    assert result.upsets > 0
    assert result.counts["Total"] > 0
    assert result.failures == 0
    assert result.sw_errors == 0
    assert not result.halted
    assert result.iterations > 0


def test_cross_section_grows_with_let():
    low = run("iutest", let=8.0, seed=3)
    high = run("iutest", let=110.0, seed=3)
    assert high.counts["Total"] > low.counts["Total"]
    assert high.cross_section() > low.cross_section()


def test_below_threshold_no_errors():
    result = run("iutest", let=3.0, seed=5)
    assert result.upsets == 0
    assert result.counts["Total"] == 0


def test_iutest_has_highest_cross_section():
    """Table 2: IUTEST patrols the caches and register file continuously,
    so its measured sigma tops PARANOIA and CNCF."""
    iutest = run("iutest", seed=7)
    paranoia = run("paranoia", seed=7)
    cncf = run("cncf", seed=7)
    assert iutest.counts["Total"] > paranoia.counts["Total"]
    assert iutest.counts["Total"] > cncf.counts["Total"]


def test_detected_errors_bounded_by_upsets():
    result = run("iutest", seed=13)
    # Corrected errors cannot exceed physical strikes (incl. MBU doubles).
    mbu = sum(count for name, count in result.upsets_by_target.items()
              if name.endswith("+mbu"))
    assert result.counts["Total"] <= result.upsets + mbu


def test_result_row_shape():
    result = run("iutest", seed=1, fluence=500.0)
    row = result.row()
    assert row["TEST"] == "IUTE"
    assert set(row) >= {"LET", "ITE", "IDE", "DTE", "DDE", "RFE", "Total",
                        "X-sect"}
    sections = result.cross_sections()
    assert sections["Total"] == pytest.approx(result.counts["Total"] / 500.0)


def test_deterministic_given_seed():
    first = run("iutest", seed=21)
    second = run("iutest", seed=21)
    assert first.counts == second.counts
    assert first.upsets == second.upsets


def test_periodic_cache_flush_runs_clean():
    """Section 4.8: 'a cache flush could periodically be performed to
    force a refresh of all cache contents' -- the flush must not disturb a
    clean run (and discards latent errors before they can pair up)."""
    result = run("iutest", seed=17, flush_period_instructions=25_000)
    assert result.failures == 0
    assert result.iterations > 0


def test_campaign_reads_counters_like_the_host():
    """The campaign's counts must equal the APB error-monitor registers."""
    config = CampaignConfig(program="iutest", let=110.0, seed=2, **FAST)
    campaign = Campaign(config)
    result = campaign.run()
    # as_dict keys mirror the errmon register order.
    assert list(result.counts) == ["ITE", "IDE", "DTE", "DDE", "RFE", "Total"]
