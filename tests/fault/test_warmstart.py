"""Warm-start campaigns: byte-identity to cold runs, effaced early-out."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.fault.campaign import (
    Campaign,
    CampaignConfig,
    prepare_warm_start,
    warm_start_key,
)
from repro.fault.crosssection import measure_curve
from repro.fault.executor import CampaignExecutor

#: Small settings with a real warm-up prefix (0.5 beam-s = 10k instructions).
WARM = dict(flux=400.0, fluence=300.0, instructions_per_second=20_000.0,
            beam_delay_s=0.5, beam_tail_s=0.1)


def _config(let=60.0, seed=7, **overrides):
    settings = dict(WARM)
    settings.update(overrides)
    return CampaignConfig(program="iutest", let=let, seed=seed, **settings)


# -- byte identity -------------------------------------------------------------


def test_warm_run_matches_cold_run():
    config = _config()
    cold = Campaign(config).run()
    warm = Campaign(config).run(warm=prepare_warm_start(config))
    assert warm.comparable() == cold.comparable()


def test_one_warm_start_serves_sweeps_and_replicas():
    """The key excludes LET and seed: one prefix, many runs."""
    base = _config()
    warm = prepare_warm_start(base)
    for config in (_config(seed=123), _config(let=6.0), _config(let=110.0)):
        assert warm_start_key(config) == warm.key
        cold = Campaign(config).run()
        hot = Campaign(config).run(warm=warm)
        assert hot.comparable() == cold.comparable()


def test_executor_warm_matches_cold_serial_and_parallel():
    configs = [_config(seed=seed) for seed in (7, 8, 9, 10)]
    warm = prepare_warm_start(configs[0])
    cold = CampaignExecutor(1).run_many(configs)
    warm_serial = CampaignExecutor(1).run_many(configs, warm=warm)
    warm_parallel = CampaignExecutor(2, chunksize=1).run_many(
        configs, warm=warm)
    expected = [result.comparable() for result in cold]
    assert [result.comparable() for result in warm_serial] == expected
    assert [result.comparable() for result in warm_parallel] == expected


def test_measure_curve_warm_start_invariant():
    kwargs = dict(lets=(25.0, 60.0), flux=400.0, fluence=300.0, seed=3,
                  instructions_per_second=20_000.0, beam_delay_s=0.5)
    cold = measure_curve("iutest", **kwargs)
    warm = measure_curve("iutest", warm_start=True, **kwargs)
    for kind in cold.kinds():
        assert warm.series(kind) == cold.series(kind)


# -- effaced classification ----------------------------------------------------


def test_strike_free_warm_run_is_effaced():
    """Below the SEU threshold no strikes land: the window-close digest must
    equal golden's and the run reports the golden readouts early."""
    config = _config(let=3.0)
    warm = prepare_warm_start(config)
    assert warm.golden is not None
    result = Campaign(config).run(warm=warm)
    assert result.upsets == 0
    assert result.effaced
    assert result.comparable() == Campaign(config).run().comparable()


def test_cold_runs_never_report_effaced():
    assert not Campaign(_config(let=3.0)).run().effaced


def test_effaced_is_excluded_from_comparable():
    result = Campaign(_config(let=3.0)).run()
    assert "effaced" not in result.comparable()
    assert "wall_seconds" not in result.comparable()
    assert "counts" in result.comparable()


# -- configuration guards ------------------------------------------------------


def test_incompatible_warm_start_rejected():
    warm = prepare_warm_start(_config())
    mismatched = _config(beam_delay_s=0.25)
    with pytest.raises(ConfigurationError):
        Campaign(mismatched).run(warm=warm)


def test_zero_delay_and_tail_reproduce_legacy_timeline():
    """Defaults keep the pre-warm-start window formula exactly."""
    legacy = CampaignConfig(program="iutest", let=110.0, seed=1,
                            flux=400.0, fluence=1.0e3,
                            instructions_per_second=40_000.0)
    prefix, window, tail = legacy.phase_instructions()
    assert prefix == 0
    assert tail == 0
    assert window == int(legacy.beam_parameters().duration_s * 40_000.0)


def test_warm_start_is_picklable():
    import pickle

    warm = prepare_warm_start(_config())
    clone = pickle.loads(pickle.dumps(warm))
    assert clone == warm
