"""Campaign result reporting: tables, CSV, JSON."""

import csv
import io
import json

import pytest

from repro.fault.campaign import Campaign, CampaignConfig
from repro.fault.report import (
    TABLE2_COLUMNS,
    render_table,
    render_table2,
    table2_rows,
    to_csv,
    to_json,
)


@pytest.fixture(scope="module")
def results():
    runs = []
    for index, let in enumerate((20.0, 110.0)):
        config = CampaignConfig(program="iutest", let=let, flux=400.0,
                                fluence=500.0, seed=40 + index,
                                instructions_per_second=40_000.0)
        runs.append(Campaign(config).run())
    return runs


def test_table2_rows_structure(results):
    rows = table2_rows(results)
    assert len(rows) == 2
    for row in rows:
        assert set(TABLE2_COLUMNS) <= set(row)
    assert rows[0]["LET"] == 20.0


def test_render_table2(results):
    text = render_table2(results)
    assert "ITE" in text and "X-sect" in text
    assert text.count("\n") >= 3


def test_render_table_alignment():
    rows = [{"a": 1, "b": "xx"}, {"a": 22222, "b": "y"}]
    text = render_table(rows, ["a", "b"])
    lines = text.splitlines()
    assert len(lines) == 4
    assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2


def test_csv_export_parses(results):
    text = to_csv(results)
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert len(parsed) == 2
    assert float(parsed[0]["fluence"]) == 500.0
    assert int(parsed[0]["sw_errors"]) == 0


def test_json_export_parses(results):
    payload = json.loads(to_json(results))
    assert len(payload) == 2
    assert payload[1]["let"] == 110.0
    assert payload[1]["counts"]["Total"] == results[1].counts["Total"]
    assert "cross_sections" in payload[0]
