"""Detection-latency analysis (the section 4.8 latent-error discussion)."""

import pytest

from repro.errors import ConfigurationError
from repro.fault.latency import measure_detection_latency


@pytest.fixture(scope="module")
def iutest_report():
    # Default program sizes = full-cache patrol (the real IUTEST shape);
    # the window covers ~3 patrol iterations.
    return measure_detection_latency(
        "iutest", strikes=25, window_instructions=80_000, seed=3,
    )


def test_iutest_detects_most_upsets(iutest_report):
    """IUTEST patrols everything it touches: high detection fraction."""
    assert iutest_report.detection_fraction() > 0.5
    assert len(iutest_report.samples) == 25


def test_detected_latencies_within_patrol_period(iutest_report):
    """A detected upset is found within roughly one patrol iteration."""
    detected = [sample for sample in iutest_report.samples if sample.detected]
    assert detected
    for sample in detected:
        assert 0 < sample.latency_instructions <= 80_000


def test_summary_rows_shape(iutest_report):
    rows = iutest_report.summary_rows()
    assert rows
    assert {"target", "samples", "detected", "mean latency"} <= set(rows[0])


def test_mean_latency_finite_for_patrolled_targets(iutest_report):
    latency = iutest_report.mean_latency()
    assert latency != float("inf")
    assert latency > 0


def test_targeted_measurement_regfile():
    report = measure_detection_latency(
        "iutest", strikes=12, window_instructions=60_000, seed=5,
        targets=["regfile"],
        program_kwargs=dict(scrub_words=256, icode_words=128),
    )
    assert all(sample.target == "regfile" for sample in report.samples)
    # The register walk touches most (not all) of the file every iteration;
    # strikes in the runtime's anchor windows can stay latent.
    assert report.detection_fraction() >= 0.5


def test_paranoia_detects_less_than_iutest(iutest_report):
    """PARANOIA has no data-cache patrol: lower detection fraction, which
    is exactly why its measured cross-section (fig. 7) sits below fig. 6."""
    paranoia = measure_detection_latency(
        "paranoia", strikes=25, window_instructions=60_000, seed=3,
    )
    assert paranoia.detection_fraction() <= iutest_report.detection_fraction()


def test_unknown_program_rejected():
    with pytest.raises(ConfigurationError):
        measure_detection_latency("nope", strikes=1)
