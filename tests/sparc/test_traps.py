"""Trap types and priorities."""

import pytest

from repro.sparc.traps import Trap, TrapType


def test_trap_numbers_match_v8_manual():
    assert TrapType.ILLEGAL_INSTRUCTION == 0x02
    assert TrapType.WINDOW_OVERFLOW == 0x05
    assert TrapType.WINDOW_UNDERFLOW == 0x06
    assert TrapType.R_REGISTER_ACCESS_ERROR == 0x20
    assert TrapType.DATA_ACCESS_ERROR == 0x29
    assert TrapType.DIVISION_BY_ZERO == 0x2A


def test_interrupt_levels():
    assert TrapType.interrupt(1) == 0x11
    assert TrapType.interrupt(15) == 0x1F
    with pytest.raises(ValueError):
        TrapType.interrupt(0)
    with pytest.raises(ValueError):
        TrapType.interrupt(16)


def test_software_trap_numbers():
    assert TrapType.software(0) == 0x80
    assert TrapType.software(0x7F) == 0xFF
    assert TrapType.software(0x80) == 0x80  # masked to 7 bits


def test_priority_ordering():
    reset = Trap(TrapType.RESET)
    illegal = Trap(TrapType.ILLEGAL_INSTRUCTION)
    div = Trap(TrapType.DIVISION_BY_ZERO)
    assert reset.outranks(illegal)
    assert illegal.outranks(div)


def test_interrupt_priorities_by_level():
    low = Trap(TrapType.interrupt(1))
    high = Trap(TrapType.interrupt(15))
    assert high.outranks(low)
    # Synchronous traps outrank interrupts.
    assert Trap(TrapType.ILLEGAL_INSTRUCTION).outranks(high)


def test_software_trap_priority():
    ticc = Trap(0x85)
    assert Trap(TrapType.DIVISION_BY_ZERO).outranks(ticc)
