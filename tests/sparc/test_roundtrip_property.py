"""Property tests: encoder -> disassembler -> assembler round trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparc import encode
from repro.sparc.asm import assemble
from repro.sparc.decode import decode
from repro.sparc.disasm import disassemble
from repro.sparc.isa import Op, Op2, Op3, Op3Mem

PC = 0x40000000

REG = st.integers(min_value=0, max_value=31)
SIMM13 = st.integers(min_value=-4096, max_value=4095)

#: Arithmetic op3 values whose disassembly is a plain three-operand form.
_PLAIN_ARITH = st.sampled_from([
    Op3.ADD, Op3.ADDCC, Op3.ADDX, Op3.ADDXCC, Op3.SUB, Op3.SUBCC,
    Op3.SUBX, Op3.SUBXCC, Op3.AND, Op3.ANDCC, Op3.ANDN, Op3.ANDNCC,
    Op3.ORN, Op3.ORNCC, Op3.XOR, Op3.XORCC, Op3.XNOR, Op3.XNORCC,
    Op3.SLL, Op3.SRL, Op3.SRA, Op3.UMUL, Op3.UMULCC, Op3.SMUL,
    Op3.SMULCC, Op3.UDIV, Op3.UDIVCC, Op3.SDIV, Op3.SDIVCC,
    Op3.MULSCC, Op3.TADDCC, Op3.TSUBCC, Op3.TADDCCTV, Op3.TSUBCCTV,
])

_MEM_OPS = st.sampled_from([
    Op3Mem.LD, Op3Mem.LDUB, Op3Mem.LDUH, Op3Mem.LDSB, Op3Mem.LDSH,
    Op3Mem.ST, Op3Mem.STB, Op3Mem.STH, Op3Mem.LDSTUB, Op3Mem.SWAP,
])


def roundtrip(word: int) -> int:
    """disassemble -> reassemble -> word."""
    text = disassemble(word, PC)
    [reassembled] = assemble(text, base=PC).words
    return reassembled


@settings(max_examples=300)
@given(_PLAIN_ARITH, REG, REG, REG)
def test_arith_register_roundtrip(op3, rd, rs1, rs2):
    word = encode.fmt3_reg(Op.ARITH, op3, rd, rs1, rs2)
    assert roundtrip(word) == word


@settings(max_examples=300)
@given(_PLAIN_ARITH, REG, REG, SIMM13)
def test_arith_immediate_roundtrip(op3, rd, rs1, simm):
    word = encode.fmt3_imm(Op.ARITH, op3, rd, rs1, simm)
    assert roundtrip(word) == word


@settings(max_examples=300)
@given(_MEM_OPS, REG, REG, SIMM13)
def test_memory_immediate_roundtrip(op3, rd, rs1, simm):
    word = encode.fmt3_imm(Op.MEM, op3, rd, rs1, simm)
    assert roundtrip(word) == word


@settings(max_examples=200)
@given(_MEM_OPS, REG, REG, REG)
def test_memory_register_roundtrip(op3, rd, rs1, rs2):
    word = encode.fmt3_reg(Op.MEM, op3, rd, rs1, rs2)
    assert roundtrip(word) == word


@settings(max_examples=200)
@given(REG, st.integers(min_value=0, max_value=0x3FFFFF))
def test_sethi_roundtrip(rd, imm22):
    word = encode.fmt2_sethi(rd, imm22 << 10)
    if rd == 0 and imm22 == 0:
        return  # canonical nop; covered elsewhere
    assert roundtrip(word) == word


@settings(max_examples=200)
@given(st.integers(min_value=0, max_value=15), st.booleans(),
       st.integers(min_value=-(1 << 18), max_value=(1 << 18) - 1))
def test_branch_roundtrip(cond, annul, disp_words):
    word = encode.fmt2_branch(Op2.BICC, cond, annul, disp_words * 4)
    assert roundtrip(word) == word


@settings(max_examples=100)
@given(st.integers(min_value=-(1 << 25), max_value=(1 << 25) - 1))
def test_call_roundtrip(disp_words):
    word = encode.fmt1_call(disp_words * 4)
    assert roundtrip(word) == word


@settings(max_examples=300)
@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_decode_disassemble_total(word):
    """Every 32-bit pattern decodes and disassembles without raising."""
    instr = decode(word)
    text = disassemble(word, PC)
    assert isinstance(text, str) and text
    if not instr.valid:
        assert text.startswith(".word")
