"""Disassembler output formats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sparc.asm import assemble
from repro.sparc.disasm import disassemble

BASE = 0x40000000


@pytest.mark.parametrize("source,expected", [
    ("nop", "nop"),
    ("add %g1, %g2, %g3", "add %g1, %g2, %g3"),
    ("ld [%g1+8], %g2", "ld [%g1+0x8], %g2"),
    ("st %g2, [%g1]", "st %g2, [%g1]"),
    ("ret", "ret"),
    ("retl", "retl"),
    ("cmp %g1, 3", "cmp %g1, 3"),
    ("clr %g4", "clr %g4"),
    ("rd %psr, %g1", "rd %psr, %g1"),
    ("fadds %f1, %f2, %f3", "fadds %f1, %f2, %f3"),
    ("fcmps %f1, %f2", "fcmps %f1, %f2"),
    ("ta 3", "ta 3"),
])
def test_known_disassembly(source, expected):
    [word] = assemble(source, base=BASE).words
    assert disassemble(word, BASE) == expected


def test_branch_target_resolution():
    program = assemble("target:\n nop\n ba target\n nop", base=BASE)
    text = disassemble(program.words[1], BASE + 4)
    assert text == f"ba {BASE:#x}"


def test_call_target_resolution():
    program = assemble("call sub\n nop\nsub:\n nop", base=BASE)
    assert disassemble(program.words[0], BASE) == f"call {BASE + 8:#x}"


def test_invalid_word_renders_as_data():
    text = disassemble((2 << 30) | (0x2D << 19))
    assert text.startswith(".word")


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_disassemble_never_raises(word):
    assert isinstance(disassemble(word, BASE), str)
