"""Round-trip + semantics audit of every opcode the campaigns execute.

The static analyzer (:mod:`repro.analysis.program`) trusts the decoder
and disassembler pair: its CFG is recovered from decoded words, and the
randgen builder validates its emissions by disassemble -> re-assemble
round trips.  This audit pins that trust down program by program: every
instruction word of the three paper programs and of generated random
programs must disassemble to text the assembler maps back to the
*identical* word, and the annul-bit / delay-slot encodings the CFG walk
interprets must decode exactly as SPARC V8 defines them.
"""

import pytest

from repro.core.config import LeonConfig
from repro.programs import (
    build_cncf,
    build_iutest,
    build_paranoia,
    build_random,
)
from repro.sparc.asm import assemble
from repro.sparc.decode import decode
from repro.sparc.disasm import disassemble

BASE = 0x40000000


def _builders():
    config = LeonConfig.leon_express()  # has the FPU paranoia needs
    return [
        ("iutest", build_iutest(config)[0]),
        ("paranoia", build_paranoia(config)[0]),
        ("cncf", build_cncf(config)[0]),
        ("random:7", build_random(config, seed=7)[0]),
        ("random:123", build_random(config, seed=123)[0]),
    ]


@pytest.mark.parametrize("name,program",
                         _builders(), ids=lambda value: value
                         if isinstance(value, str) else "")
def test_every_program_instruction_round_trips(name, program):
    """disassemble -> re-assemble is byte-identical for every decodable
    word of the image (data words that do not decode are exempt -- the
    CFG walk never interprets them as instructions)."""
    mnemonics = set()
    for offset, word in enumerate(program.words):
        if offset in program.data_words:
            # .word constants can alias valid encodings with non-canonical
            # reserved fields (FP literals decode as branches); the CFG
            # walk never reaches them, so they are out of audit scope.
            continue
        instr = decode(word)
        if not instr.valid:
            continue
        pc = program.base + 4 * offset
        text = disassemble(word, pc)
        assert not text.startswith(".word"), \
            f"{name}+{4 * offset:#x}: valid word {word:#010x} has no " \
            f"disassembly"
        again = assemble(text, pc, name="audit")
        assert again.words == [word], \
            f"{name}+{4 * offset:#x}: {word:#010x} -> {text!r} -> " \
            f"{again.words[0]:#010x}"
        mnemonics.add(instr.mnemonic)
    # The audit is only meaningful if it covered a real instruction mix.
    assert len(mnemonics) > 10, f"{name}: suspiciously few opcodes"


def test_data_words_are_tracked():
    """The assembler marks ``.word``/``.skip`` emissions so audits (and
    anyone decoding an image) can tell data aliasing from instructions."""
    program = assemble("main:\n nop\npool:\n .word 0x3fc00000, 1\n"
                       " .skip 8\n nop", base=BASE)
    assert program.data_words == {1, 2, 3, 4}
    assert 0 not in program.data_words  # the nops are code
    assert 5 not in program.data_words


def test_coprocessor_branch_round_trips():
    """CBccc words get cb mnemonics, not fb ones: the float 1.5 bit
    pattern is ``cb012,a`` and must survive the round trip (it used to
    come back as an FBfcc word)."""
    word = 0x3FC00000  # float 1.5 == cb012,a .
    text = disassemble(word, BASE)
    assert text.startswith("cb012,a")
    assert assemble(text, BASE, name="audit").words == [word]
    instr = decode(word)
    assert instr.is_branch and instr.annul


# -- annul bit -----------------------------------------------------------------


@pytest.mark.parametrize("source,annul", [
    ("ba target", False),
    ("ba,a target", True),
    ("bne target", False),
    ("bne,a target", True),
    ("be,a target", True),
    ("bn,a target", True),
])
def test_annul_bit_decodes(source, annul):
    program = assemble(f"target:\n nop\n {source}\n nop", base=BASE)
    instr = decode(program.words[1])
    assert instr.is_branch
    assert instr.annul is annul
    # Bit 29 is the annul bit in the Format-2 encoding.
    assert bool((program.words[1] >> 29) & 1) is annul


def test_annul_bit_round_trips():
    taken = assemble("target:\n nop\n ba,a target\n nop", base=BASE)
    text = disassemble(taken.words[1], BASE + 4)
    assert ",a" in text
    again = assemble(text, BASE + 4, name="audit")
    assert again.words == [taken.words[1]]


def test_annulled_delay_slot_is_not_executed():
    """``ba,a`` skips its delay slot; plain ``ba`` executes it."""
    from repro.core.system import LeonSystem

    def run(branch):
        source = "\n".join([
            "main:",
            "    clr %l1",
            f"    {branch} done",
            "    add %l1, 1, %l1",  # the delay slot
            "done:",
            "    nop",
        ])
        system = LeonSystem(LeonConfig.fault_tolerant())
        program = assemble(source, base=BASE)
        system.load_program(program)
        system.run(16, stop_pc=BASE + 16)
        return system.regfile.read_raw(system.special.psr.cwp, 17)[0]  # %l1

    assert run("ba") == 1     # delay slot executed
    assert run("ba,a") == 0   # delay slot annulled


# -- delay slot of a branch ----------------------------------------------------


def test_branch_displacement_is_relative_to_branch_pc():
    """The branch target is branch-pc + disp -- NOT delay-slot + disp.
    This is the exact arithmetic the CFG builder replays."""
    program = assemble("target:\n nop\n nop\n ba target\n nop", base=BASE)
    branch_pc = BASE + 8
    instr = decode(program.words[2])
    assert (branch_pc + instr.disp) & 0xFFFFFFFF == BASE


def test_delay_slot_executes_before_branch_target():
    """The instruction after a taken branch still executes (delayed
    control transfer), so a def in the slot is visible at the target."""
    from repro.core.system import LeonSystem

    source = "\n".join([
        "main:",
        "    clr %l1",
        "    ba done",
        "    mov 7, %l1",  # delay slot: lands before 'done' runs
        "done:",
        "    nop",
    ])
    system = LeonSystem(LeonConfig.fault_tolerant())
    system.load_program(assemble(source, base=BASE))
    system.run(16, stop_pc=BASE + 16)
    assert system.regfile.read_raw(system.special.psr.cwp, 17)[0] == 7


def test_call_records_return_address_def():
    """``call`` defines %o7 = the call pc (decode metadata the analyzer's
    virtual call stack depends on)."""
    program = assemble("call sub\n nop\nsub:\n nop", base=BASE)
    instr = decode(program.words[0])
    assert instr.defs == (15,)
    assert (BASE + instr.disp) & 0xFFFFFFFF == BASE + 8
