"""Exhaustive opcode smoke coverage: every implemented mnemonic executes.

Table-driven: every arithmetic/control op3, every memory op3, every FPop
and every branch condition is executed at least once on a live system
without crashing the simulator, and ends in a defined processor state.
"""

import pytest

from repro import LeonConfig, LeonSystem, assemble
from repro.sparc.decode import decode
from repro.sparc.encode import fmt3_fp, fmt3_imm, fmt3_reg
from repro.sparc.isa import BRANCH_CONDS, FBRANCH_CONDS, Op, Op3, Op3Mem, Opf

SRAM = 0x40000000


def run_words(words, *, config=None, max_instructions=100):
    """Execute raw instruction words followed by a halt loop."""
    system = LeonSystem(config or LeonConfig.leon_express())
    system.special.psr.ef = 1  # enable the FPU (no crt0 in these tests)
    body = "\n".join(f"    .word {word:#010x}" for word in words)
    program = assemble(
        "    set 0x40100000, %g4\n"
        "    set 0x40100000, %g1\n"
        "    set 8, %g2\n"
        "    set 3, %g3\n"
        + body
        + "\nend:\n    ba end\n    nop\n",
        base=SRAM,
    )
    system.load_program(program)
    result = system.run(max_instructions, stop_pc=program.address_of("end"))
    return system, result


#: op3 values whose execution from a generic register setup is side-effect
#: safe (no traps expected with our operand values).
_SAFE_ARITH = [
    Op3.ADD, Op3.ADDCC, Op3.ADDX, Op3.ADDXCC, Op3.SUB, Op3.SUBCC,
    Op3.SUBX, Op3.SUBXCC, Op3.AND, Op3.ANDCC, Op3.ANDN, Op3.ANDNCC,
    Op3.OR, Op3.ORCC, Op3.ORN, Op3.ORNCC, Op3.XOR, Op3.XORCC,
    Op3.XNOR, Op3.XNORCC, Op3.SLL, Op3.SRL, Op3.SRA,
    Op3.UMUL, Op3.UMULCC, Op3.SMUL, Op3.SMULCC,
    Op3.UDIV, Op3.UDIVCC, Op3.SDIV, Op3.SDIVCC,
    Op3.MULSCC, Op3.TADDCC, Op3.TSUBCC,
]


@pytest.mark.parametrize("op3", _SAFE_ARITH, ids=lambda o: o.name)
def test_every_arith_op_executes(op3):
    word = fmt3_reg(Op.ARITH, op3, 5, 2, 3)  # %g5 = %g2 op %g3
    system, result = run_words([word])
    assert result.stop_reason == "stop-pc"
    assert system.halted.value == "running"


_SAFE_MEM = [
    Op3Mem.LD, Op3Mem.LDUB, Op3Mem.LDUH, Op3Mem.LDSB, Op3Mem.LDSH,
    Op3Mem.LDD, Op3Mem.ST, Op3Mem.STB, Op3Mem.STH, Op3Mem.STD,
    Op3Mem.LDSTUB, Op3Mem.SWAP,
]


@pytest.mark.parametrize("op3", _SAFE_MEM, ids=lambda o: o.name)
def test_every_memory_op_executes(op3):
    # rd must be even for LDD/STD; use %g6 with [%g1 + 0].
    word = fmt3_imm(Op.MEM, op3, 6, 1, 0)
    system, result = run_words([word])
    assert result.stop_reason == "stop-pc"


_SAFE_FPOPS = [
    Opf.FMOVS, Opf.FNEGS, Opf.FABSS, Opf.FADDS, Opf.FADDD, Opf.FSUBS,
    Opf.FSUBD, Opf.FMULS, Opf.FMULD, Opf.FDIVS, Opf.FDIVD, Opf.FSQRTS,
    Opf.FSQRTD, Opf.FITOS, Opf.FITOD, Opf.FSTOI, Opf.FDTOI, Opf.FSTOD,
    Opf.FDTOS, Opf.FCMPS, Opf.FCMPD, Opf.FCMPES, Opf.FCMPED,
]


@pytest.mark.parametrize("opf", _SAFE_FPOPS, ids=lambda o: o.name)
def test_every_fpop_executes(opf):
    op3 = Op3.FPOP2 if opf.name.startswith("FCMP") else Op3.FPOP1
    word = fmt3_fp(op3, opf, 4, 0, 2)
    system, result = run_words([word])
    assert result.stop_reason == "stop-pc"


@pytest.mark.parametrize("mnemonic", sorted(set(BRANCH_CONDS)),
                         ids=str)
def test_every_branch_mnemonic_assembles_and_runs(mnemonic):
    source = f"""
        cmp %g0, 0
        {mnemonic} target
        nop
    target:
        nop
    end:
        ba end
        nop
    """
    system = LeonSystem(LeonConfig.leon_express())
    system.special.psr.ef = 1
    program = assemble(source, base=SRAM)
    system.load_program(program)
    result = system.run(100, stop_pc=program.address_of("end"))
    assert result.stop_reason == "stop-pc"


@pytest.mark.parametrize("mnemonic", sorted(set(FBRANCH_CONDS)), ids=str)
def test_every_fbranch_mnemonic_runs(mnemonic):
    source = f"""
        fcmps %f0, %f0
        nop
        {mnemonic} target
        nop
    target:
        nop
    end:
        ba end
        nop
    """
    system = LeonSystem(LeonConfig.leon_express())
    system.special.psr.ef = 1
    program = assemble(source, base=SRAM)
    system.load_program(program)
    result = system.run(100, stop_pc=program.address_of("end"))
    assert result.stop_reason == "stop-pc"


def test_every_decoded_mnemonic_has_a_name():
    """All valid op3 encodings decode with a real mnemonic string."""
    for op3 in Op3:
        word = fmt3_reg(Op.ARITH, op3, 1, 1, 1)
        instr = decode(word)
        assert instr.mnemonic and instr.mnemonic != "invalid"
    for op3 in Op3Mem:
        word = fmt3_reg(Op.MEM, op3, 2, 1, 1)
        instr = decode(word)
        assert instr.mnemonic and instr.mnemonic != "invalid"
