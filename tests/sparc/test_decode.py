"""Instruction decoder: field extraction and validity."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sparc import encode
from repro.sparc.decode import decode
from repro.sparc.isa import Cond, Op, Op2, Op3, Op3Mem, Opf


def test_decode_call():
    instr = decode(encode.fmt1_call(0x1000))
    assert instr.op == Op.CALL
    assert instr.mnemonic == "call"
    assert instr.disp == 0x1000
    assert instr.rd == 15


def test_decode_call_negative_displacement():
    instr = decode(encode.fmt1_call(-8))
    assert instr.disp == -8


def test_decode_sethi():
    instr = decode(encode.fmt2_sethi(1, 0x40000000))
    assert instr.op2 == Op2.SETHI
    assert instr.rd == 1
    assert instr.imm22 == 0x40000000


def test_decode_nop_is_sethi_zero():
    instr = decode(encode.fmt2_sethi(0, 0))
    assert instr.mnemonic == "nop"


def test_decode_branch_with_annul():
    word = encode.fmt2_branch(Op2.BICC, Cond.NE, True, -64)
    instr = decode(word)
    assert instr.is_branch
    assert instr.cond == Cond.NE
    assert instr.annul is True
    assert instr.disp == -64


def test_decode_fbfcc():
    word = encode.fmt2_branch(Op2.FBFCC, 8, False, 16)
    instr = decode(word)
    assert instr.op2 == Op2.FBFCC
    assert instr.is_branch


def test_decode_arith_register_form():
    instr = decode(encode.fmt3_reg(Op.ARITH, Op3.ADD, 3, 1, 2))
    assert instr.mnemonic == "add"
    assert (instr.rd, instr.rs1, instr.rs2) == (3, 1, 2)
    assert instr.imm is None


def test_decode_arith_immediate_form():
    instr = decode(encode.fmt3_imm(Op.ARITH, Op3.SUB, 4, 5, -100))
    assert instr.mnemonic == "sub"
    assert instr.imm == -100
    assert instr.uses_immediate


def test_decode_immediate_sign_extension():
    instr = decode(encode.fmt3_imm(Op.ARITH, Op3.ADD, 0, 0, -1))
    assert instr.imm == -1
    instr = decode(encode.fmt3_imm(Op.ARITH, Op3.ADD, 0, 0, 4095))
    assert instr.imm == 4095


def test_decode_memory_ops():
    instr = decode(encode.fmt3_imm(Op.MEM, Op3Mem.LD, 2, 1, 8))
    assert instr.mnemonic == "ld"
    instr = decode(encode.fmt3_imm(Op.MEM, Op3Mem.STD, 2, 1, 8))
    assert instr.mnemonic == "std"


def test_decode_asi_field():
    word = encode.fmt3_reg(Op.MEM, Op3Mem.LDA, 2, 1, 0, asi=0x0C)
    instr = decode(word)
    assert instr.mnemonic == "lda"
    assert instr.asi == 0x0C


def test_decode_fpop():
    word = encode.fmt3_fp(Op3.FPOP1, Opf.FADDS, 2, 0, 1)
    instr = decode(word)
    assert instr.mnemonic == "fadds"
    assert instr.is_fpop
    assert instr.opf == Opf.FADDS


def test_decode_invalid_fpop():
    word = encode.fmt3_fp(Op3.FPOP1, 0x1FF, 0, 0, 0)
    instr = decode(word)
    assert not instr.valid


def test_decode_unimp():
    instr = decode(encode.fmt2_unimp(42))
    assert instr.mnemonic == "unimp"
    assert instr.imm22 == 42


def test_decode_invalid_op3():
    word = (2 << 30) | (0x2D << 19)  # op3 0x2D is unassigned
    assert not decode(word).valid


def test_decode_ticc():
    word = (2 << 30) | (Cond.A << 25) | (Op3.TICC << 19) | (1 << 13) | 5
    instr = decode(word)
    assert instr.mnemonic == "ticc"
    assert instr.cond == Cond.A
    assert instr.imm == 5


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_decode_never_raises(word):
    """Any 32-bit pattern decodes (possibly to an invalid instruction)."""
    instr = decode(word)
    assert instr.word == word
    assert isinstance(instr.valid, bool)


def test_decode_is_cached():
    assert decode(0) is decode(0)
