"""The two-pass assembler: syntax, labels, directives, synthetics."""

import pytest

from repro.errors import AssemblerError
from repro.sparc.asm import Program, assemble
from repro.sparc.decode import decode
from repro.sparc.disasm import disassemble

BASE = 0x40000000


def words(source, **kwargs):
    return assemble(source, base=BASE, **kwargs).words


def test_simple_alu():
    [word] = words("add %g1, %g2, %g3")
    instr = decode(word)
    assert (instr.mnemonic, instr.rd, instr.rs1, instr.rs2) == ("add", 3, 1, 2)


def test_immediate_forms():
    [word] = words("add %g1, -42, %g3")
    assert decode(word).imm == -42
    [word] = words("or %o0, 0x3ff, %o1")
    assert decode(word).imm == 0x3FF


def test_immediate_out_of_range():
    with pytest.raises(AssemblerError):
        words("add %g1, 5000, %g2")


def test_labels_and_branches():
    program = assemble("""
    start:
        nop
    loop:
        ba loop
        nop
        bne start
        nop
    """, base=BASE)
    assert program.symbols["start"] == BASE
    assert program.symbols["loop"] == BASE + 4
    branch = decode(program.words[1])
    assert branch.disp == 0  # ba loop from loop
    back = decode(program.words[3])
    assert BASE + 12 + back.disp == BASE  # bne start


def test_branch_annul_suffix():
    [word] = words("bne,a target\ntarget:")[:1]
    assert decode(word).annul


def test_call_and_displacement():
    program = assemble("""
        call far
        nop
    far:
        nop
    """, base=BASE)
    instr = decode(program.words[0])
    assert instr.disp == 8


def test_set_is_two_words():
    program = assemble("set 0x12345678, %g1", base=BASE)
    assert len(program.words) == 2
    sethi, orri = (decode(word) for word in program.words)
    assert sethi.imm22 == 0x12345400  # top 22 bits
    assert orri.imm == 0x278


def test_memory_operands():
    [word] = words("ld [%g1+8], %g2")
    instr = decode(word)
    assert instr.imm == 8
    [word] = words("ld [%g1-4], %g2")
    assert decode(word).imm == -4
    [word] = words("ld [%g1+%g2], %g3")
    instr = decode(word)
    assert instr.imm is None and instr.rs2 == 2
    [word] = words("ld [%g1], %g2")
    assert decode(word).imm == 0


def test_store_operand_order():
    [word] = words("st %g2, [%g1+4]")
    instr = decode(word)
    assert instr.mnemonic == "st"
    assert instr.rd == 2 and instr.rs1 == 1


def test_hi_lo_relocations():
    program = assemble("""
        sethi %hi(value), %g1
        or %g1, %lo(value), %g1
    """, base=BASE, symbols={"value": 0x40001234})
    sethi = decode(program.words[0])
    orri = decode(program.words[1])
    assert sethi.imm22 | (orri.imm & 0x3FF) == 0x40001234


def test_directives_word_align_skip():
    program = assemble("""
        .word 1, 2, 0xdeadbeef
        .align 8
        .skip 8
    lbl:
        .word lbl
    """, base=BASE)
    assert program.words[0] == 1
    assert program.words[2] == 0xDEADBEEF
    assert program.symbols["lbl"] % 8 == 0
    assert program.word_at(program.symbols["lbl"]) == program.symbols["lbl"]


def test_equ_and_expressions():
    program = assemble("""
        .equ FOO, 0x100
        .word FOO + 4 * 2
        .word (FOO + 4) * 2
        .word FOO << 4
        .word -FOO
    """, base=BASE)
    assert program.words[0] == 0x108
    assert program.words[1] == 0x208
    assert program.words[2] == 0x1000
    assert program.words[3] == (-0x100) & 0xFFFFFFFF


def test_org_pads_with_zeros():
    program = assemble("""
        nop
        .org 0x40000010
        nop
    """, base=BASE)
    assert len(program.words) == 5
    assert program.words[1] == 0


def test_synthetics():
    table = {
        "nop": "nop",
        "mov 5, %g1": "mov 0x5, %g1" if False else None,  # checked below
        "cmp %g1, 3": None,
        "clr %g5": "clr %g5",
        "ret": "ret",
        "retl": "retl",
    }
    for source in table:
        [word] = words(source)
        assert decode(word).valid


def test_mov_encodes_or():
    [word] = words("mov 5, %g1")
    instr = decode(word)
    assert instr.mnemonic == "or" and instr.rs1 == 0 and instr.imm == 5


def test_cmp_encodes_subcc_to_g0():
    [word] = words("cmp %g1, %g2")
    instr = decode(word)
    assert instr.mnemonic == "subcc" and instr.rd == 0


def test_not_neg_inc_dec():
    [word] = words("not %g1")
    assert decode(word).mnemonic == "xnor"
    [word] = words("neg %g2")
    instr = decode(word)
    assert instr.mnemonic == "sub" and instr.rs1 == 0
    [word] = words("inc %g3, 4")
    assert decode(word).imm == 4
    [word] = words("dec %g3")
    assert decode(word).imm == 1


def test_special_register_access():
    [word] = words("rd %psr, %g1")
    assert decode(word).mnemonic == "rdpsr"
    [word] = words("wr %g1, %psr")
    assert decode(word).mnemonic == "wrpsr"
    [word] = words("wr %g1, 0x20, %psr")
    instr = decode(word)
    assert instr.imm == 0x20
    [word] = words("rd %y, %g1")
    assert decode(word).mnemonic == "rdasr"


def test_trap_instructions():
    [word] = words("ta 0x10")
    instr = decode(word)
    assert instr.mnemonic == "ticc"
    assert instr.imm == 0x10


def test_float_mnemonics():
    for source, mnemonic in [
        ("fadds %f0, %f1, %f2", "fadds"),
        ("fmuld %f0, %f2, %f4", "fmuld"),
        ("fcmps %f1, %f2", "fcmps"),
        ("fmovs %f1, %f2", "fmovs"),
        ("ldf [%g1], %f0", "ldf"),
        ("stdf %f2, [%g1]", "stdf"),
    ]:
        [word] = words(source)
        assert decode(word).mnemonic == mnemonic


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("a:\na:\n nop", base=BASE)


def test_undefined_symbol_rejected():
    with pytest.raises(AssemblerError):
        assemble("ba nowhere\nnop", base=BASE)


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblerError):
        assemble("frobnicate %g1", base=BASE)


def test_error_carries_line_number():
    with pytest.raises(AssemblerError) as excinfo:
        assemble("nop\nnop\nbogus %g1", base=BASE)
    assert excinfo.value.line == 3


def test_comments_stripped():
    program = assemble("""
        nop ! trailing comment
        nop // c++ style
        ; whole-line comment
    """, base=BASE)
    assert len(program.words) == 2


def test_program_helpers():
    program = assemble("entry:\n nop\n nop", base=BASE, name="demo")
    assert program.size == 8
    assert program.end == BASE + 8
    assert program.address_of("entry") == BASE
    assert len(program.to_bytes()) == 8
    with pytest.raises(AssemblerError):
        program.address_of("missing")
    with pytest.raises(AssemblerError):
        program.word_at(BASE + 100)
    assert isinstance(program, Program)


def test_roundtrip_through_disassembler():
    """Assemble -> disassemble -> reassemble gives identical words."""
    source = """
        add %g1, %g2, %g3
        sub %o0, 0x10, %o1
        ld [%l0+8], %l1
        st %l1, [%l0+12]
        sethi %hi(0x40000000), %g1
        umul %g1, %g2, %g3
        sll %g1, 3, %g2
        save %sp, -96, %sp
        restore
    """
    program = assemble(source, base=BASE)
    for offset, word in enumerate(program.words):
        text = disassemble(word, BASE + offset * 4)
        [reassembled] = assemble(text, base=BASE + offset * 4).words
        assert reassembled == word, f"{text} -> {reassembled:#x} != {word:#x}"
