"""Memory write protection: the wild-write guard."""

import pytest

from repro import LeonConfig, LeonSystem, assemble
from repro.errors import BusError, ConfigurationError
from repro.mem.writeprotect import WpMode, WriteProtector

SRAM = 0x40000000


class TestUnit:
    def test_disabled_blocks_nothing(self):
        protector = WriteProtector()
        assert not protector.blocks(SRAM)
        assert protector.total_violations == 0

    def test_protect_inside(self):
        protector = WriteProtector()
        protector.protect_range(SRAM, SRAM + 0x1000)
        assert protector.blocks(SRAM)
        assert protector.blocks(SRAM + 0xFFC)
        assert not protector.blocks(SRAM + 0x1000)
        assert protector.total_violations == 2
        assert protector.units[0].last_violation == SRAM + 0xFFC

    def test_allow_only(self):
        protector = WriteProtector()
        protector.allow_only(SRAM + 0x1000, SRAM + 0x2000)
        assert protector.blocks(SRAM)  # outside the window
        assert not protector.blocks(SRAM + 0x1800)

    def test_two_units_combine(self):
        protector = WriteProtector()
        protector.protect_range(SRAM, SRAM + 0x100, unit=0)
        protector.protect_range(SRAM + 0x200, SRAM + 0x300, unit=1)
        assert protector.blocks(SRAM + 0x80)
        assert protector.blocks(SRAM + 0x280)
        assert not protector.blocks(SRAM + 0x180)

    def test_disable(self):
        protector = WriteProtector()
        protector.protect_range(SRAM, SRAM + 0x100)
        protector.disable()
        assert not protector.blocks(SRAM)

    def test_validation(self):
        protector = WriteProtector()
        with pytest.raises(ConfigurationError):
            protector.units[0].configure(0x100, 0x0, WpMode.PROTECT_INSIDE)
        with pytest.raises(ConfigurationError):
            WriteProtector(units=0)


class TestSystemIntegration:
    def test_blocked_store_is_bus_error(self):
        system = LeonSystem(LeonConfig.fault_tolerant())
        system.memctrl.write_protector.protect_range(SRAM + 0x1000,
                                                     SRAM + 0x2000)
        system.write_word(SRAM + 0x3000, 1)  # outside: fine
        with pytest.raises(BusError):
            system.write_word(SRAM + 0x1000, 1)

    def test_wild_store_takes_precise_trap(self):
        """A store into the protected code segment traps instead of
        corrupting the program."""
        system = LeonSystem(LeonConfig.fault_tolerant())
        program = assemble(f"""
            set {SRAM}, %g1
            st %g0, [%g1]           ! wild write into our own code
        done:
            ba done
            nop
        """, base=SRAM)
        system.load_program(program)
        system.memctrl.write_protector.protect_range(SRAM, SRAM + 0x1000)
        result = system.run(100, stop_pc=program.address_of("done"))
        assert result.halted.value == "error-mode"  # data_store_error
        # The code itself is intact.
        assert system.read_word(SRAM) == program.words[0]

    def test_programmable_through_apb(self):
        """Software configures the guard through the system registers."""
        system = LeonSystem(LeonConfig.fault_tolerant())
        program = assemble(f"""
            set 0x80000028, %g1     ! wp0 start
            set {SRAM + 0x1000}, %g2
            st %g2, [%g1]
            set 0x8000002C, %g1     ! wp0 end
            set {SRAM + 0x2000}, %g2
            st %g2, [%g1]
            set 0x80000030, %g1     ! wp0 control: protect-inside
            mov 1, %g2
            st %g2, [%g1]
        done:
            ba done
            nop
        """, base=SRAM)
        system.load_program(program)
        system.run(100, stop_pc=program.address_of("done"))
        unit = system.memctrl.write_protector.units[0]
        assert unit.mode is WpMode.PROTECT_INSIDE
        assert unit.start == SRAM + 0x1000
        with pytest.raises(BusError):
            system.write_word(SRAM + 0x1800, 0)
        # Read-back over the APB.
        assert system.read_word(0x80000028) == SRAM + 0x1000
        assert system.read_word(0x80000030) == 1

    def test_loading_bypasses_protection(self):
        """Image loading is a back-door (ROM emulation), not a bus write."""
        system = LeonSystem(LeonConfig.fault_tolerant())
        system.memctrl.write_protector.protect_range(SRAM, SRAM + 0x10000)
        program = assemble("nop", base=SRAM)
        system.load_program(program)  # must not raise
        assert system.read_word(SRAM) == program.words[0]
