"""External memory storage and the EDAC memory controller."""

import pytest

from repro.amba.ahb import TransferSize
from repro.core.config import MemoryConfig
from repro.errors import InjectionError
from repro.mem.memctrl import MemoryController
from repro.mem.storage import ExternalMemory


class TestExternalMemory:
    def test_word_roundtrip_with_edac(self):
        memory = ExternalMemory("m", 1024, edac=True)
        memory.write_word(0x10, 0xA5A5A5A5)
        data, check = memory.read_raw(0x10)
        assert data == 0xA5A5A5A5
        assert check != 0

    def test_image_loading_big_endian(self):
        memory = ExternalMemory("m", 64)
        memory.load_image(0, bytes([0x11, 0x22, 0x33, 0x44, 0xAA]))
        assert memory.read_raw(0)[0] == 0x11223344
        assert memory.read_raw(4)[0] == 0xAA000000  # padded

    def test_injection_data_and_check_bits(self):
        memory = ExternalMemory("m", 64, edac=True)
        memory.write_word(0, 0)
        memory.inject(0, 5)
        assert memory.read_raw(0)[0] == 1 << 5
        memory.inject(0, 34)  # check bit 2
        assert memory.read_raw(0)[1] & (1 << 2)

    def test_injection_bounds(self):
        memory = ExternalMemory("m", 64, edac=True)
        with pytest.raises(InjectionError):
            memory.inject(0, 39)
        with pytest.raises(InjectionError):
            memory.inject(2, 0)  # misaligned
        with pytest.raises(InjectionError):
            memory.inject(64, 0)  # out of range

    def test_total_bits_counts_check_plane(self):
        plain = ExternalMemory("m", 64, edac=False)
        protected = ExternalMemory("m", 64, edac=True)
        assert plain.total_bits == 16 * 32
        assert protected.total_bits == 16 * 39


@pytest.fixture
def controller():
    return MemoryController(MemoryConfig(edac=True, prom_bytes=4096,
                                         sram_bytes=4096, io_bytes=4096))


class TestMemoryBank:
    def test_word_access(self, controller):
        sram = controller.sram
        sram.ahb_write(0x40000010, 0x12345678, TransferSize.WORD)
        assert sram.ahb_read(0x40000010, TransferSize.WORD).data == 0x12345678

    def test_subword_reads(self, controller):
        sram = controller.sram
        sram.ahb_write(0x40000000, 0x11223344, TransferSize.WORD)
        assert sram.ahb_read(0x40000000, TransferSize.BYTE).data == 0x11
        assert sram.ahb_read(0x40000003, TransferSize.BYTE).data == 0x44
        assert sram.ahb_read(0x40000002, TransferSize.HALFWORD).data == 0x3344

    def test_subword_write_rmw_keeps_edac_consistent(self, controller):
        sram = controller.sram
        sram.ahb_write(0x40000000, 0x11223344, TransferSize.WORD)
        sram.ahb_write(0x40000001, 0xAB, TransferSize.BYTE)
        result = sram.ahb_read(0x40000000, TransferSize.WORD)
        assert result.data == 0x11AB3344
        assert not result.error
        # EDAC check bits were regenerated: no false error.
        assert controller.edac.uncorrectable == 0

    def test_single_error_corrected_and_scrubbed(self, controller):
        sram = controller.sram
        sram.ahb_write(0x40000000, 0xFEEDF00D, TransferSize.WORD)
        controller.sram_memory.inject(0, 7)
        first = sram.ahb_read(0x40000000, TransferSize.WORD)
        assert first.data == 0xFEEDF00D
        assert first.corrected == 1
        # Scrubbed on read: a second read is clean.
        second = sram.ahb_read(0x40000000, TransferSize.WORD)
        assert second.corrected == 0

    def test_double_error_returns_bus_error(self, controller):
        sram = controller.sram
        sram.ahb_write(0x40000000, 1, TransferSize.WORD)
        controller.sram_memory.inject(0, 0)
        controller.sram_memory.inject(0, 9)
        assert sram.ahb_read(0x40000000, TransferSize.WORD).error

    def test_subword_write_to_poisoned_word_errors(self, controller):
        sram = controller.sram
        sram.ahb_write(0x40000000, 1, TransferSize.WORD)
        controller.sram_memory.inject(0, 0)
        controller.sram_memory.inject(0, 9)
        assert sram.ahb_write(0x40000000, 0xFF, TransferSize.BYTE).error

    def test_burst_streams_waitstates(self, controller):
        sram = controller.sram
        results = sram.ahb_read_burst(0x40000000, 4)
        assert results[0].cycles == 1 + sram.waitstates
        assert all(result.cycles == 1 for result in results[1:])

    def test_cacheable_ranges(self, controller):
        assert controller.is_cacheable(controller.config.prom_base)
        assert controller.is_cacheable(controller.config.sram_base)
        assert not controller.is_cacheable(controller.config.io_base)
        assert not controller.is_cacheable(0x80000000)

    def test_no_edac_when_disabled(self):
        controller = MemoryController(MemoryConfig(edac=False, prom_bytes=4096,
                                                   sram_bytes=4096, io_bytes=4096))
        sram = controller.sram
        sram.ahb_write(0x40000000, 0, TransferSize.WORD)
        controller.sram_memory.inject(0, 3)
        result = sram.ahb_read(0x40000000, TransferSize.WORD)
        assert result.data == 8  # corruption delivered, undetected
        assert not result.error
