"""FT101/FT102: state-coverage and bit-cell fixtures."""

from repro.analysis import analyze_source

#: Virtual path inside a component package, so FT101 is in scope.
COMPONENT = "repro/cache/fixture.py"


def _codes(findings, *, active_only=True):
    return [f.code for f in findings
            if not (active_only and f.suppressed)]


def test_unregistered_stateful_attr_is_flagged():
    source = (
        "class Widget:\n"
        "    def __init__(self):\n"
        "        self.count = 0\n"
        "    def capture(self):\n"
        "        return {}\n"
        "    def restore(self, state):\n"
        "        pass\n"
    )
    findings = analyze_source(source, COMPONENT)
    assert _codes(findings) == ["FT101"]
    assert "Widget.count" in findings[0].message


def test_capture_reference_covers_the_attribute():
    source = (
        "class Widget:\n"
        "    def __init__(self):\n"
        "        self.count = 0\n"
        "    def capture(self):\n"
        "        return {'count': self.count}\n"
        "    def restore(self, state):\n"
        "        self.count = state['count']\n"
    )
    assert analyze_source(source, COMPONENT) == []


def test_state_annotation_silences_without_capture():
    source = (
        "class Widget:\n"
        "    def __init__(self):\n"
        "        self.count = 0  # state: diag -- observation tally\n"
        "    def capture(self):\n"
        "        return {}\n"
        "    def restore(self, state):\n"
        "        pass\n"
    )
    assert analyze_source(source, COMPONENT) == []


def test_vars_self_wildcard_covers_everything():
    source = (
        "class Counters:\n"
        "    def __init__(self):\n"
        "        self.a = 0\n"
        "        self.b = 0\n"
        "    def capture(self):\n"
        "        return dict(vars(self))\n"
        "    def restore(self, state):\n"
        "        vars(self).update(state)\n"
    )
    assert analyze_source(source, COMPONENT) == []


def test_base_class_capture_covers_subclass_attr():
    source = (
        "class Base:\n"
        "    def capture(self):\n"
        "        return {'count': self.count}\n"
        "    def restore(self, state):\n"
        "        self.count = state['count']\n"
        "class Widget(Base):\n"
        "    def __init__(self):\n"
        "        self.count = 0\n"
    )
    assert analyze_source(source, COMPONENT) == []


def test_wiring_values_are_not_stateful():
    source = (
        "class Widget:\n"
        "    def __init__(self, bus, config):\n"
        "        self.bus = bus\n"
        "        self.mask = config.size - 1\n"
        "        self.pending = None\n"
        "    def capture(self):\n"
        "        return {}\n"
        "    def restore(self, state):\n"
        "        pass\n"
    )
    assert analyze_source(source, COMPONENT) == []


def test_outside_component_packages_needs_capture_to_opt_in():
    source = (
        "class Helper:\n"
        "    def __init__(self):\n"
        "        self.items = []\n"
    )
    assert analyze_source(source, "repro/debug/fixture.py") == []


def test_injectable_cell_group_without_restore_is_flagged():
    source = (
        "class Ram:\n"
        "    def __init__(self, words):\n"
        "        self.data = [0] * words\n"
        "    @property\n"
        "    def total_bits(self):\n"
        "        return len(self.data) * 32\n"
        "    def inject_flat(self, bit):\n"
        "        self.data[bit // 32] ^= 1 << (bit % 32)\n"
        "    def capture(self):\n"
        "        return {'data': tuple(self.data)}\n"
    )
    findings = analyze_source(source, COMPONENT)
    assert "FT102" in _codes(findings)


def test_injectable_cell_group_with_both_is_clean():
    source = (
        "class Ram:\n"
        "    def __init__(self, words):\n"
        "        self.data = [0] * words\n"
        "    def inject_flat(self, bit):\n"
        "        self.data[bit // 32] ^= 1 << (bit % 32)\n"
        "    def capture(self):\n"
        "        return {'data': tuple(self.data)}\n"
        "    def restore(self, state):\n"
        "        self.data = list(state['data'])\n"
    )
    assert _codes(analyze_source(source, COMPONENT)) == []
