"""FT201-FT205: determinism fixtures (jobs-invariance contracts)."""

from repro.analysis import analyze_source


def _codes(findings):
    return [f.code for f in findings if not f.suppressed]


# -- FT201 det-random ---------------------------------------------------------


def test_global_random_api_is_flagged():
    findings = analyze_source(
        "import random\n"
        "def pick(items):\n"
        "    return random.choice(items)\n")
    assert _codes(findings) == ["FT201"]


def test_unseeded_random_instance_is_flagged():
    findings = analyze_source(
        "import random\n"
        "rng = random.Random()\n")
    assert _codes(findings) == ["FT201"]


def test_seeded_random_instance_is_clean():
    assert analyze_source(
        "import random\n"
        "def rng_for(seed):\n"
        "    return random.Random(seed)\n") == []


# -- FT202 det-time -----------------------------------------------------------


def test_wall_clock_reads_are_flagged():
    findings = analyze_source(
        "import time, datetime\n"
        "def stamp():\n"
        "    return time.time(), datetime.datetime.now()\n")
    assert _codes(findings) == ["FT202", "FT202"]


def test_perf_counter_is_legal_diagnostic_timing():
    assert analyze_source(
        "import time\n"
        "def elapsed(start):\n"
        "    return time.perf_counter() - start\n") == []


# -- FT203 det-id-order -------------------------------------------------------


def test_id_keyed_sort_is_flagged():
    findings = analyze_source(
        "def order(objs):\n"
        "    return sorted(objs, key=lambda o: id(o))\n")
    assert _codes(findings) == ["FT203"]


def test_name_keyed_sort_is_clean():
    assert analyze_source(
        "def order(objs):\n"
        "    return sorted(objs, key=lambda o: o.name)\n") == []


# -- FT204 det-set-iter -------------------------------------------------------


def test_iterating_a_set_local_is_flagged():
    findings = analyze_source(
        "def visit(items):\n"
        "    pending = set(items)\n"
        "    for item in pending:\n"
        "        print(item)\n")
    assert _codes(findings) == ["FT204"]


def test_sorted_set_iteration_is_clean():
    assert analyze_source(
        "def visit(items):\n"
        "    pending = set(items)\n"
        "    for item in sorted(pending):\n"
        "        print(item)\n") == []


def test_set_typed_self_attribute_iteration_is_flagged():
    findings = analyze_source(
        "class Tracker:\n"
        "    def __init__(self):\n"
        "        self._suspect = set()  # state: diag\n"
        "    def report(self):\n"
        "        return [word for word in self._suspect]\n",
        "repro/cache/fixture.py")
    assert _codes(findings) == ["FT204"]


def test_suppression_comment_silences_set_iteration():
    findings = analyze_source(
        "def visit(items):\n"
        "    pending = set(items)\n"
        "    for item in pending:  # lint: ok=det-set-iter -- order-free\n"
        "        print(item)\n")
    assert [f.suppressed for f in findings] == [True]


# -- FT205 det-digest-diag ----------------------------------------------------


def test_full_digest_comparison_is_flagged():
    findings = analyze_source(
        "def reconverged(snap, golden):\n"
        "    return snap.digest(architectural=False) == golden\n")
    assert _codes(findings) == ["FT205"]


def test_architectural_digest_is_clean():
    assert analyze_source(
        "def reconverged(snap, golden):\n"
        "    return snap.digest() == golden\n") == []


def test_hash_over_capture_without_strip_diag_is_flagged():
    findings = analyze_source(
        "import hashlib\n"
        "import pickle\n"
        "def digest(self):\n"
        "    payload = pickle.dumps(self.cache.capture())\n"
        "    return hashlib.sha256(payload).hexdigest()\n")
    assert _codes(findings) == ["FT205"]


def test_hash_with_strip_diag_is_clean():
    assert analyze_source(
        "import hashlib\n"
        "import pickle\n"
        "from repro.state.snapshot import strip_diag\n"
        "def digest(self):\n"
        "    payload = pickle.dumps(strip_diag(self.cache.capture()))\n"
        "    return hashlib.sha256(payload).hexdigest()\n") == []


def test_hash_over_components_without_strip_diag_is_flagged():
    findings = analyze_source(
        "import hashlib\n"
        "import pickle\n"
        "def digest(snapshot):\n"
        "    blob = pickle.dumps(snapshot.components)\n"
        "    return hashlib.sha256(blob).hexdigest()\n")
    assert _codes(findings) == ["FT205"]


def test_hash_unrelated_to_snapshots_is_clean():
    assert analyze_source(
        "import hashlib\n"
        "def content_hash(data):\n"
        "    return hashlib.sha256(data).hexdigest()\n") == []


def test_suppression_comment_silences_full_digest():
    findings = analyze_source(
        "def show(snap):\n"
        "    print(snap.digest(architectural=False))"
        "  # lint: ok=det-digest-diag -- display-only\n")
    assert [f.suppressed for f in findings] == [True]
