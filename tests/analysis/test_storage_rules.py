"""FT501: campaign reads flow through the repro.store query layer."""

from repro.analysis import analyze_source


def _codes(findings):
    return [f.code for f in findings if not f.suppressed]


def test_direct_chained_load_is_flagged():
    findings = analyze_source(
        "from repro.fault.results import ResultStore\n"
        "def read(path):\n"
        "    return ResultStore(path).load()\n")
    assert _codes(findings) == ["FT501"]


def test_named_store_read_is_flagged():
    findings = analyze_source(
        "from repro.fault.results import ResultStore\n"
        "def resume(path, configs):\n"
        "    store = ResultStore(path)\n"
        "    return store.split_pending(configs)\n")
    assert _codes(findings) == ["FT501"]


def test_with_block_store_read_is_flagged():
    findings = analyze_source(
        "from repro.fault.results import ResultStore\n"
        "def read(path):\n"
        "    with ResultStore(path) as store:\n"
        "        return store.load()\n")
    assert _codes(findings) == ["FT501"]


def test_append_stays_legal_everywhere():
    assert analyze_source(
        "from repro.fault.results import ResultStore\n"
        "def capture(path, batch):\n"
        "    store = ResultStore(path)\n"
        "    store.append(batch)\n") == []


def test_store_package_is_sanctioned():
    source = (
        "from repro.fault.results import ResultStore\n"
        "def load_results(path):\n"
        "    return list(ResultStore(path).load().values())\n")
    assert analyze_source(source, path="repro/store/sources.py") == []
    assert analyze_source(source, path="repro/fault/results.py") == []
    assert _codes(analyze_source(source, path="repro/cli.py")) == ["FT501"]


def test_unrelated_load_calls_are_clean():
    assert analyze_source(
        "import json\n"
        "def read(fh):\n"
        "    return json.load(fh)\n") == []
