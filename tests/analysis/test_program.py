"""Unit tests for the static program analyzer (CFG, liveness, ACE map).

Small hand-assembled programs pin the CFG walk's delay-slot/annul
semantics and the liveness lattice; the built-in programs pin the
system-level entry points and the degradation ladder.
"""

import pytest

from repro.analysis.program import (
    EntryContext,
    _physical_index,
    analyze_program,
    analyze_system,
    render_report,
)
from repro.core.config import LeonConfig
from repro.core.system import LeonSystem
from repro.programs import build_paranoia, build_random
from repro.sparc.asm import assemble

BASE = 0x40000000

#: A bare entry for hand-written fragments: window 0, no FPU, the
#: express-sized register file (8 windows -> 136 words).
ENTRY = EntryContext(pc=BASE, npc=BASE + 4, cwp=0, wim=0,
                     nwindows=8, regfile_words=136, has_fpu=False)


def _analyze(source):
    return analyze_program(assemble(source, base=BASE), ENTRY)


def _word(reg, cwp=0, nwindows=8):
    return _physical_index(cwp, reg, nwindows)


# -- delay slots and the annul bit in the CFG walk ----------------------------


def test_annulled_ba_slot_is_unreachable():
    """``ba,a`` never executes its delay slot, so a def there must not
    appear in the explored def/use map (nor poison liveness)."""
    analysis = _analyze("\n".join([
        "main:",
        "    ba,a done",
        "    add %l1, 1, %l2",  # annulled: never executes
        "done:",
        "    ta 0",
    ]))
    assert BASE + 4 not in analysis.arch_defuse
    # %l2 was never written on any reachable path -> never word.
    assert _word(18) in analysis.ace.never_words


def test_plain_ba_slot_is_reachable():
    analysis = _analyze("\n".join([
        "main:",
        "    ba done",
        "    add %l1, 1, %l2",  # delay slot executes
        "done:",
        "    ta 0",
    ]))
    assert BASE + 4 in analysis.arch_defuse
    uses, defs = analysis.arch_defuse[BASE + 4]
    assert 17 in uses and 18 in defs
    assert _word(18) in analysis.ace.writeonly_words


def test_conditional_annul_keeps_both_paths():
    """``bne,a`` executes the slot on the taken path and annuls it on the
    fall-through -- both the slot and pc+8 must be explored."""
    analysis = _analyze("\n".join([
        "main:",
        "    bne done",
        "    nop",
        "done:",
        "    ta 0",
    ]))
    annulled = _analyze("\n".join([
        "main:",
        "    bne,a done",
        "    add %l1, 1, %l2",  # only on the taken path
        "done:",
        "    ta 0",
    ]))
    assert BASE + 4 in annulled.arch_defuse   # taken path runs the slot
    assert BASE + 8 in annulled.arch_defuse   # fall-through lands past it
    assert BASE + 4 in analysis.arch_defuse


def test_loop_is_recovered_with_its_head():
    analysis = _analyze("\n".join([
        "main:",
        "    mov 3, %l1",
        "loop:",
        "    subcc %l1, 1, %l1",
        "    bne loop",
        "    nop",
        "    ta 0",
    ]))
    assert analysis.loops
    assert BASE + 4 in analysis.ace.loop_heads


# -- liveness / ACE classification --------------------------------------------


def test_dead_def_is_writeonly_and_read_def_is_not():
    analysis = _analyze("\n".join([
        "main:",
        "    mov 5, %l5",
        "    add %l5, 1, %l6",   # reads %l5, %l6 is never read
        "    ta 0",
    ]))
    ace = analysis.ace
    assert _word(22) in ace.writeonly_words        # %l6: written, dead
    assert _word(21) not in ace.writeonly_words    # %l5 is read back
    assert _word(21) not in ace.never_words
    assert _word(23) in ace.never_words            # %l7: untouched
    assert ace.classify("regfile", _word(23)) == "latent"
    assert ace.classify("regfile", _word(22)) == "ambiguous"
    assert ace.classify("regfile", _word(21)) is None
    assert analysis.dead_def_sites >= 1


def test_g0_is_always_claimed_dead():
    analysis = _analyze("main:\n    ta 0\n")
    assert 0 in analysis.ace.never_words
    assert analysis.ace.classify("regfile", 0) == "latent"


def test_no_claims_outside_the_register_file():
    ace = _analyze("main:\n    ta 0\n").ace
    assert ace.classify("icache", 3) is None
    assert ace.classify("flipflops", 0) is None
    assert ace.classify("regfile", None) is None
    # No FPU at this entry -> no whole-file FP claim either.
    assert ace.classify("fpregs", 0) is None


def test_ace_fraction_tracks_claims():
    ace = _analyze("main:\n    ta 0\n").ace
    assert ace.ace_fraction() == pytest.approx(
        1.0 - ace.claimable_words / 136)
    assert 0.0 <= ace.ace_fraction() <= 1.0


# -- degradation ladder -------------------------------------------------------


def test_wrwim_degrades_to_global_claims():
    analysis = _analyze("\n".join([
        "main:",
        "    wr %g1, %g2, %wim",
        "    ta 0",
    ]))
    ace = analysis.ace
    assert not ace.window_claims
    assert "wrwim" in ace.degraded_reason
    assert not analysis.blocks           # no CFG survives degradation
    # Global-only claims never include windowed words.
    assert all(word < 8 for word in ace.never_words)


def test_return_register_writer_degrades():
    analysis = _analyze("\n".join([
        "main:",
        "    mov 1, %o7",
        "    ta 0",
    ]))
    assert not analysis.ace.window_claims
    assert "return" in analysis.ace.degraded_reason


# -- system-level entry points ------------------------------------------------


@pytest.fixture(scope="module")
def random7():
    config = LeonConfig.leon_express()
    program, _expected = build_random(config, seed=7)
    system = LeonSystem(config)
    system.load_program(program)
    system.run(2000)  # past boot: trap table, window init
    return analyze_system(system, program, name="random:7")


def test_random_program_analyzes_window_accurately(random7):
    ace = random7.ace
    assert ace.window_claims
    assert ace.degraded_reason == ""
    assert random7.blocks and random7.loops
    assert 0 in ace.never_words
    # Random programs touch a handful of windows; most words stay dead.
    assert len(ace.never_words) > 50
    assert ace.ace_fraction() < 0.5
    assert ace.fpregs_dead  # randgen emits no FP ops
    assert ace.classify("fpregs", 17) == "latent"


def test_analysis_report_and_dict_are_consistent(random7):
    payload = random7.as_dict()
    assert payload["cfg"]["blocks"] == len(random7.blocks)
    assert payload["ace"]["never_words"] == sorted(random7.ace.never_words)
    report = render_report(random7)
    assert "ACE fraction" in report
    assert random7.program_name in report


def test_paranoia_degrades_but_keeps_global_claims():
    config = LeonConfig.leon_express()
    program, _expected = build_paranoia(config)
    system = LeonSystem(config)
    system.load_program(program)
    system.run(2000)
    analysis = analyze_system(system, program, name="paranoia")
    ace = analysis.ace
    assert not ace.window_claims
    assert ace.degraded_reason
    assert ace.never_words  # globals are still provable image-wide
    assert all(word < 8 for word in ace.never_words)
    assert not ace.fpregs_dead  # paranoia exercises the FPU
