"""End-to-end: the shipped source tree lints clean and audits clean.

These are the CI-gating assertions: a change that adds unregistered
state, an unguarded telemetry emit, ambient nondeterminism, or a
counter-rewinding reset path fails here (and in the ``lint`` CI job)
before it can corrupt campaign results.
"""

from pathlib import Path

import pytest

import repro
from repro.analysis import analyze_paths
from repro.analysis.audit import check_injector_coverage, run_audit
from repro.cli import main

PACKAGE = Path(repro.__file__).parent


def test_source_tree_has_no_active_findings():
    findings = analyze_paths([PACKAGE])
    active = [f for f in findings if not f.suppressed]
    assert active == [], "\n".join(
        f"{f.location()}: {f.code} {f.message}" for f in active)


def test_cli_lint_exits_zero_on_repo(capsys):
    assert main(["lint"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_lint_exits_nonzero_on_violating_file(tmp_path, capsys):
    bad = tmp_path / "repro" / "fixture.py"
    bad.parent.mkdir()
    bad.write_text("import random\nx = random.random()\n")
    assert main(["lint", str(bad)]) == 1
    assert "FT201" in capsys.readouterr().out


def test_cli_lint_writes_json_report(tmp_path):
    report = tmp_path / "report.json"
    assert main(["lint", "--report", str(report)]) == 0
    text = report.read_text()
    assert '"version": 1' in text
    assert '"findings": []' in text


@pytest.mark.slow
def test_runtime_audit_passes():
    result = run_audit()
    assert result["ok"], result


def test_audit_catches_a_missing_injector_target(monkeypatch):
    """Regression: io_memory was absent from the injector's target map
    (storage outside the fault space); the audit must catch any relapse."""
    from repro.fault.injector import FaultInjector

    original = FaultInjector._build_targets

    def drop_io(self, include_external_memory):
        original(self, include_external_memory)
        self.targets.pop("ext-io", None)

    monkeypatch.setattr(FaultInjector, "_build_targets", drop_io)
    failures = check_injector_coverage(None)
    assert any("ExternalMemory" in failure for failure in failures)
