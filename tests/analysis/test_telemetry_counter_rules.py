"""FT301 telemetry-guard and FT401/FT402 counter-preservation fixtures."""

from repro.analysis import analyze_source


def _codes(findings):
    return [f.code for f in findings if not f.suppressed]


# -- FT301 tel-guard ----------------------------------------------------------


def test_unguarded_emit_is_flagged():
    findings = analyze_source(
        "def refill(self, telemetry):\n"
        "    telemetry.note('refill', index=3)\n")
    assert _codes(findings) == ["FT301"]


def test_direct_guard_is_clean():
    assert analyze_source(
        "def refill(self, telemetry):\n"
        "    if telemetry.enabled:\n"
        "        telemetry.note('refill', index=3)\n") == []


def test_alias_guard_is_clean():
    assert analyze_source(
        "def run(self):\n"
        "    telemetry = self.telemetry\n"
        "    traced = telemetry.enabled\n"
        "    if traced:\n"
        "        telemetry.note('begin')\n") == []


def test_early_exit_guard_is_clean():
    assert analyze_source(
        "def finish(self, telemetry):\n"
        "    if not telemetry.enabled:\n"
        "        return\n"
        "    telemetry.close_open(lambda t, w: 'latent', instr=0)\n"
        "    telemetry.note('run-end')\n") == []


def test_emits_inside_telemetry_package_are_exempt():
    assert analyze_source(
        "def emit(self):\n"
        "    self.telemetry.note('internal')\n",
        "repro/telemetry/fixture.py") == []


def test_else_branch_of_guard_is_not_guarded():
    findings = analyze_source(
        "def refill(self, telemetry):\n"
        "    if telemetry.enabled:\n"
        "        pass\n"
        "    else:\n"
        "        telemetry.note('refill')\n")
    assert _codes(findings) == ["FT301"]


# -- FT401 ctr-reset ----------------------------------------------------------


def test_counter_reset_inside_reset_path_is_flagged():
    findings = analyze_source(
        "def watchdog_reset(system):\n"
        "    system.errors.reset()\n")
    assert _codes(findings) == ["FT401"]


def test_counter_zeroing_inside_recovery_module_is_flagged():
    findings = analyze_source(
        "def apply(system):\n"
        "    system.perf.cycles = 0\n",
        "repro/recovery/fixture.py")
    assert _codes(findings) == ["FT401"]


def test_counter_reset_outside_reset_path_is_clean():
    assert analyze_source(
        "def clear_monitor(system):\n"
        "    system.errors.reset()\n") == []


# -- FT402 ctr-skip -----------------------------------------------------------


def test_restore_without_skip_in_reset_path_is_flagged():
    findings = analyze_source(
        "def warm_reset(system, checkpoint):\n"
        "    system.restore(checkpoint)\n")
    assert _codes(findings) == ["FT402"]


def test_restore_with_reset_skip_is_clean():
    assert analyze_source(
        "RESET_SKIP = ('errors', 'perf')\n"
        "def warm_reset(system, checkpoint):\n"
        "    system.restore(checkpoint, skip=RESET_SKIP)\n") == []


def test_restore_with_incomplete_literal_skip_is_flagged():
    findings = analyze_source(
        "def warm_reset(system, checkpoint):\n"
        "    system.restore(checkpoint, skip=('errors',))\n")
    assert _codes(findings) == ["FT402"]
    assert "perf" in findings[0].message


def test_resolvable_module_constant_with_both_names_is_clean():
    assert analyze_source(
        "KEEP = ('memory', 'errors', 'perf')\n"
        "def warm_reset(system, checkpoint):\n"
        "    system.restore(checkpoint, skip=KEEP)\n") == []
