"""FT103: fault-model coverage fixtures."""

from repro.analysis import analyze_source

#: Virtual path inside the fault package, mirroring the real models.
MODULE = "repro/fault/fixture.py"


def _codes(findings, *, active_only=True):
    return [f.code for f in findings
            if not (active_only and f.suppressed)]


COMPLETE = (
    "class FaultModel:\n"
    "    kind = ''\n"
    "    TARGETS = ()\n"
    "    def fault_space(self, injector):\n"
    "        raise NotImplementedError\n"
)


def test_complete_model_passes():
    source = COMPLETE + (
        "class StuckOpen(FaultModel):\n"
        "    kind = 'stuck-open'\n"
        "    TARGETS = ('regfile',)\n"
        "    def fault_space(self, injector):\n"
        "        return {'regfile': 1}\n"
    )
    assert analyze_source(source, MODULE) == []


def test_model_missing_declarations_is_flagged():
    source = COMPLETE + (
        "class Rowhammer(FaultModel):\n"
        "    def schedule(self, injector):\n"
        "        return []\n"
    )
    findings = analyze_source(source, MODULE)
    assert _codes(findings) == ["FT103"]
    message = findings[0].message
    assert "Rowhammer" in message
    assert "kind" in message
    assert "TARGETS" in message
    assert "fault_space" in message


def test_root_defaults_do_not_satisfy_the_rule():
    """Inheriting the base's empty ``kind``/``TARGETS``/stub is exactly
    the hole FT103 exists to catch: the subclass must override them."""
    source = COMPLETE + (
        "class Lazy(FaultModel):\n"
        "    kind = 'lazy'\n"
        "    def fault_space(self, injector):\n"
        "        return {}\n"
    )
    findings = analyze_source(source, MODULE)
    assert _codes(findings) == ["FT103"]
    assert "TARGETS" in findings[0].message


def test_mixin_provides_the_declarations():
    source = COMPLETE + (
        "class _StuckBase:\n"
        "    TARGETS = ('regfile',)\n"
        "    def fault_space(self, injector):\n"
        "        return {'regfile': 1}\n"
        "class StuckShut(_StuckBase, FaultModel):\n"
        "    kind = 'stuck-shut'\n"
    )
    assert analyze_source(source, MODULE) == []


def test_underscore_mixins_are_not_models():
    source = COMPLETE + (
        "class _Partial(FaultModel):\n"
        "    kind = 'partial'\n"
    )
    assert analyze_source(source, MODULE) == []


def test_unrelated_classes_are_ignored():
    source = (
        "class Widget:\n"
        "    def fault_space(self, injector):\n"
        "        return {}\n"
    )
    assert analyze_source(source, MODULE) == []


def test_real_model_module_is_clean():
    import repro.fault.models as models
    with open(models.__file__, encoding="utf-8") as handle:
        source = handle.read()
    assert _codes(analyze_source(source, "repro/fault/models.py")) == []
