"""The lint framework itself: suppressions, paths, reports, registry."""

import json

from repro.analysis import all_rules, analyze_source, render_json, \
    render_text
from repro.analysis.core import SourceModule, parse_suppressions


def test_every_rule_has_code_name_and_protects():
    rules = all_rules()
    assert len(rules) >= 9
    codes = [rule.code for rule in rules]
    assert len(set(codes)) == len(codes), "duplicate rule codes"
    for rule in rules:
        assert rule.code.startswith("FT")
        assert rule.name and rule.protects


def test_parse_suppressions_lint_ok_with_reason():
    source = "x = 1  # lint: ok=det-random,tel-guard -- replay path\n"
    hits = parse_suppressions(source)
    assert len(hits) == 1
    (hit,) = hits
    assert hit.rules == ("det-random", "tel-guard")
    assert hit.reason == "replay path"


def test_parse_suppressions_state_annotation():
    source = "self.x = []  # state: wiring -- bus topology\n"
    (hit,) = parse_suppressions(source)
    assert hit.category == "wiring"
    assert hit.reason == "bus topology"


def test_unknown_state_category_is_not_an_annotation():
    module = SourceModule("repro/fixture.py",
                          "self_x = 1  # state: bogus\n")
    assert module.state_annotation(1, 1) is None


def test_package_path_strips_leading_directories():
    module = SourceModule("/somewhere/src/repro/cache/icache.py", "pass\n")
    assert module.package_path == "cache/icache.py"
    assert module.subpackage() == "cache"


def test_findings_sorted_and_suppression_marks_not_removes():
    source = (
        "import random\n"
        "def pick():\n"
        "    a = random.random()  # lint: ok=det-random -- fixture\n"
        "    return random.random()\n"
    )
    findings = analyze_source(source)
    assert [f.suppressed for f in findings] == [True, False]
    assert [f.line for f in findings] == [3, 4]


def test_render_text_counts_and_suppressed_visibility():
    source = (
        "import random\n"
        "x = random.random()  # lint: ok=det-random\n"
    )
    findings = analyze_source(source)
    short = render_text(findings)
    assert "0 finding(s), 1 suppressed, 1 total" in short
    assert "det-random" not in short.splitlines()[0]
    full = render_text(findings, show_suppressed=True)
    assert "(suppressed)" in full


def test_render_json_report_shape():
    findings = analyze_source("import random\nx = random.random()\n")
    payload = json.loads(render_json(findings, files=1,
                                     audit={"ok": True, "checks": []}))
    assert payload["version"] == 1
    assert payload["files"] == 1
    assert payload["counts"]["active"] == 1
    assert payload["audit"]["ok"] is True
    (finding,) = payload["findings"]
    assert finding["code"] == "FT201"
    assert finding["path"] == "repro/fixture.py"
