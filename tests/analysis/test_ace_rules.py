"""FT701: ACE-map consumers must gate on the fault model's transience."""

from repro.analysis import analyze_source

#: Virtual path inside the fault package, where the rule is scoped.
MODULE = "repro/fault/fixture.py"


def _codes(findings, *, active_only=True):
    return [f.code for f in findings
            if not (active_only and f.suppressed)]


def test_ungated_consumer_is_flagged():
    source = (
        "def grade(warm, target, word):\n"
        "    claim = warm.ace.classify(target, word)\n"
        "    return claim == 'latent'\n"
    )
    findings = analyze_source(source, MODULE)
    assert _codes(findings) == ["FT701"]
    assert "grade" in findings[0].message
    assert "transient" in findings[0].message


def test_classify_call_on_ace_receiver_is_consumption():
    """Calling ``classify`` on something named like the map counts even
    without an ``.ace`` attribute read."""
    source = (
        "def grade(ace_map, target, word):\n"
        "    return ace_map.classify(target, word)\n"
    )
    assert _codes(analyze_source(source, MODULE)) == ["FT701"]


def test_transient_gate_passes():
    source = (
        "def grade(warm, model, target, word):\n"
        "    if not model.transient:\n"
        "        return None\n"
        "    return warm.ace.classify(target, word)\n"
    )
    assert analyze_source(source, MODULE) == []


def test_class_declaring_transient_passes():
    """Fault models state their contract in the class body; methods of a
    class that declares ``transient`` are trusted."""
    source = (
        "class LiveSiteUpset:\n"
        "    transient = True\n"
        "    def space(self, warm):\n"
        "        return warm.ace.claimable_words\n"
    )
    assert analyze_source(source, MODULE) == []


def test_suppression_records_a_reason():
    source = (
        "def report(warm):\n"
        "    ace = warm.ace  "
        "# lint: ok=ace-transient-gate -- reporting only\n"
        "    return ace\n"
    )
    findings = analyze_source(source, MODULE)
    assert _codes(findings) == []
    assert [f.code for f in findings if f.suppressed] == ["FT701"]


def test_rule_is_scoped_to_the_fault_package():
    """Reporting code renders the map but makes no grading decision."""
    source = (
        "def render(warm):\n"
        "    return warm.ace.ace_fraction()\n"
    )
    assert analyze_source(source, "repro/service/fixture.py") == []
