"""FT601: the trace-JIT codegen commits every declared FT observable."""

from repro.analysis import analyze_source

_PATH = "repro/jit/blocks.py"


def _codes(findings):
    return [f.code for f in findings if not f.suppressed]


def _module(observables, fragments):
    decl = ", ".join(repr(name) for name in observables)
    lines = [f"BLOCK_OBSERVABLES = ({decl},)" if observables
             else "BLOCK_OBSERVABLES = ()"]
    lines.append("def assemble(e):")
    body = [f'    e("PERF.{name} += n")' for name in fragments]
    lines.extend(body or ["    pass"])
    return "\n".join(lines) + "\n"


def test_complete_commit_coverage_is_clean():
    source = _module(["cycles", "instructions"], ["cycles", "instructions"])
    assert analyze_source(source, path=_PATH) == []


def test_missing_commit_is_flagged():
    source = _module(["cycles", "instructions"], ["cycles"])
    findings = analyze_source(source, path=_PATH)
    assert _codes(findings) == ["FT601"]
    assert "instructions" in findings[0].message


def test_non_literal_contract_is_flagged():
    source = ("_NAMES = ['cycles']\n"
              "BLOCK_OBSERVABLES = tuple(_NAMES)\n")
    assert _codes(analyze_source(source, path=_PATH)) == ["FT601"]


def test_rule_is_scoped_to_the_codegen_module():
    source = _module(["cycles"], [])
    assert analyze_source(source, path="repro/fault/campaign.py") == []


def test_shipped_codegen_commits_every_observable():
    import repro.jit.blocks as blocks
    from pathlib import Path

    source = Path(blocks.__file__).read_text()
    assert analyze_source(source, path=_PATH) == []
    # The contract itself names every per-step PerfCounters field a burst
    # can advance.
    assert set(blocks.BLOCK_OBSERVABLES) == {
        "cycles", "instructions", "icache_hits", "dcache_hits",
        "loads", "stores"}
