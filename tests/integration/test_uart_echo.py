"""Interrupt-driven UART echo (the examples/uart_echo.py flow as a test)."""

import importlib.util
import pathlib

from repro import LeonConfig, LeonSystem, assemble

_EXAMPLE = pathlib.Path(__file__).resolve().parents[2] / "examples" / "uart_echo.py"
_spec = importlib.util.spec_from_file_location("uart_echo_example", _EXAMPLE)
_module = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_module)


def _boot():
    system = LeonSystem(LeonConfig.fault_tolerant())
    program = assemble(_module.PROGRAM, base=0x40000000)
    system.load_program(program)
    entry = program.address_of("_start")
    system.special.pc, system.special.npc = entry, entry + 4
    system.run(200)
    return system


def test_echo_uppercases_stream():
    system = _boot()
    for byte in b"abc XYZ 123":
        system.uart1.receive(bytes([byte]))
        system.run(2_000, max_idle_steps=3_000)
        system.apb.tick(2_000)
    assert system.uart_output() == b"ABC XYZ 123"


def test_processor_sleeps_between_bytes():
    system = _boot()
    instructions_idle = system.perf.instructions
    # With no input, the processor stays in power-down.
    system.run(1_000, max_idle_steps=500)
    assert system.perf.instructions - instructions_idle < 20


def test_each_byte_costs_one_interrupt():
    system = _boot()
    traps_before = system.perf.traps
    for byte in b"12345":
        system.uart1.receive(bytes([byte]))
        system.run(2_000, max_idle_steps=3_000)
        system.apb.tick(2_000)
    assert system.perf.traps - traps_before == 5
