"""The paper's actual test setup: master under the beam, checker watching.

Section 6: "During the heavy-ion injection, the master device was submitted
to the ion beam while the compare error signal from the slave was monitored
for compare errors.  When a compare error is detected, the current software
cycle is completed and the checksum is verified to control that correction
has been done successfully.  The error counters are also inspected to
verify that the compare error originated from a correction operation and
not from an undetected (and uncorrected) error."

This test replays that procedure end to end on the lock-stepped pair.
"""

from repro import LeonConfig, MasterChecker
from repro.fault.beam import BeamParameters, HeavyIonBeam
from repro.fault.injector import FaultInjector
from repro.programs import build_iutest


def test_beam_on_master_procedure():
    config = LeonConfig.leon_express()
    program, expected = build_iutest(config, iterations=1_000_000,
                                     scrub_words=256, icode_words=128)
    pair = MasterChecker(config)
    pair.load_program(program)
    entry = program.address_of("_start")
    for system in (pair.master, pair.checker):
        system.special.pc, system.special.npc = entry, entry + 4

    injector = FaultInjector(pair.master)  # the beam hits the master only
    beam = HeavyIonBeam(injector)
    params = BeamParameters(let=110.0, flux=2000.0, fluence=2000.0, seed=8)
    strikes = beam.schedule(params)
    assert strikes, "need at least one strike for the procedure"

    compare_events = 0
    verified_corrections = 0
    steps_per_strike = 6_000
    layout_checksum = program.symbols["CHECKSUM"]
    iterations_addr = program.symbols["ITERATIONS"]
    sw_errors_addr = program.symbols["SW_ERRORS"]

    for strike in strikes:
        beam.apply(strike)
        counters_before = pair.master.errors.total
        _steps, errors = pair.run(steps_per_strike, stop_on_compare_error=True)
        if not errors:
            continue  # latent strike: not touched within the window
        compare_events += 1
        # "The current software cycle is completed": run the master alone
        # until the iteration counter advances, then verify the checksum.
        master = pair.master
        target = master.read_word(iterations_addr) + 1
        master.run(100_000, stop_when=lambda r:
                   master.read_word(iterations_addr) >= target)
        assert master.read_word(sw_errors_addr) == 0
        assert master.read_word(layout_checksum) == expected
        # "The error counters are also inspected": the compare error must be
        # explained by a counted correction, not an undetected error.
        assert master.errors.total > counters_before
        verified_corrections += 1
        # "A reset is necessary to synchronize the two processors."
        pair.resynchronize()
        pair.checker.load_program(program)
        pair.checker.special.pc = entry
        pair.checker.special.npc = entry + 4
        break  # one full verified cycle is the point of this test

    # At this flux/fluence at least one strike must have been observed.
    assert compare_events >= 1
    assert verified_corrections >= 1
