"""Bus contention: CPU and DMA sharing the AHB (the SOC story of §2)."""

from repro import LeonConfig, LeonSystem, assemble

SRAM = 0x40000000


def test_dma_and_cpu_share_the_bus_consistently():
    """A DMA block copy running concurrently with a store-heavy program:
    both finish, and neither corrupts the other's data."""
    system = LeonSystem(LeonConfig.fault_tolerant())
    # Source block for the DMA.
    for index in range(64):
        system.write_word(SRAM + 0x10000 + 4 * index, 0xD0000 + index)
    # Program writes its own block while the DMA runs.
    program = assemble(f"""
        set {SRAM + 0x30000}, %g1
        set 64, %g2
        clr %g3
    loop:
        st %g3, [%g1]
        add %g3, 5, %g3
        add %g1, 4, %g1
        subcc %g2, 1, %g2
        bne loop
        nop
    done:
        ba done
        nop
    """, base=SRAM)
    system.load_program(program)
    # Kick off the DMA, then run the program; system.step ticks the DMA.
    system.dma.apb_write(0x00, SRAM + 0x10000)
    system.dma.apb_write(0x04, SRAM + 0x20000)
    system.dma.apb_write(0x08, 64)
    result = system.run(5_000, stop_pc=program.address_of("done"))
    assert result.stop_reason == "stop-pc"
    system.apb.tick(2_000)  # let any remaining DMA words move
    assert system.dma.done
    for index in range(64):
        assert system.read_word(SRAM + 0x20000 + 4 * index) == 0xD0000 + index
        assert system.read_word(SRAM + 0x30000 + 4 * index) == 5 * index


def test_bus_accounting_attributes_cycles_to_both_masters():
    system = LeonSystem(LeonConfig.fault_tolerant())
    for index in range(32):
        system.write_word(SRAM + 0x10000 + 4 * index, index)
    program = assemble(f"""
        set {SRAM + 0x40000}, %g1
        set 200, %g2
    loop:
        ld [%g1], %g3
        add %g1, 4, %g1
        subcc %g2, 1, %g2
        bne loop
        nop
    done:
        ba done
        nop
    """, base=SRAM)
    system.load_program(program)
    system.dma.apb_write(0x00, SRAM + 0x10000)
    system.dma.apb_write(0x04, SRAM + 0x50000)
    system.dma.apb_write(0x08, 32)
    system.run(10_000, stop_pc=program.address_of("done"))
    system.apb.tick(2_000)
    assert system.cpu_master.granted_cycles > 0
    assert system.dma.master.granted_cycles > 0
    assert system.bus.busy_cycles >= (system.cpu_master.granted_cycles
                                      + system.dma.master.granted_cycles)
