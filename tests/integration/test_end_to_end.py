"""End-to-end scenarios crossing every subsystem."""

import pytest

from repro import LeonConfig, LeonSystem, assemble
from repro.fault import Campaign, CampaignConfig, FaultInjector
from repro.programs import ProgramHarness, build_iutest

SRAM = 0x40000000


def test_quickstart_from_module_docstring():
    """The README/package quickstart must keep working verbatim."""
    system = LeonSystem(LeonConfig.fault_tolerant())
    program = assemble("""
        set 0x40001000, %g1
        set 42, %g2
        st %g2, [%g1]
        done: ba done
        nop
    """, base=0x40000000)
    system.load_program(program)
    system.run(stop_pc=program.address_of("done"))
    assert system.read_word(0x40001000) == 42


def test_timer_interrupt_drives_handler():
    """Timers -> irqctrl -> trap -> handler -> rett, the full loop."""
    table = "\n".join(
        ["trap_table:"]
        + [f"    mov {tt}, %l3\n    ba handler\n    nop\n    nop"
           for tt in range(256)]
    )
    program = assemble(table + """
handler:
    set 0x40100000, %l4
    ld [%l4], %l5
    add %l5, 1, %l5
    st %l5, [%l4]
    set 0x8000009C, %l4     ! irq clear
    set 0xfffe, %l5
    st %l5, [%l4]
    jmp [%l2]
    rett [%l2+4]

_start:
    wr %g0, %wim
    set trap_table, %g1
    wr %g1, %tbr
    wr %g0, 0xE0, %psr
    nop
    nop
    nop
    set 0x40100000, %g1
    st %g0, [%g1]
    set 0x80000090, %g1     ! irq mask: enable level 8
    set 0x100, %g2
    st %g2, [%g1]
    set 0x80000064, %g1     ! prescaler reload = 0 (tick every cycle)
    st %g0, [%g1]
    set 0x80000044, %g1     ! timer1 reload
    mov 50, %g2
    st %g2, [%g1]
    set 0x80000048, %g1     ! timer1 control: load+reload+enable
    mov 7, %g2
    st %g2, [%g1]
wait:
    set 0x40100000, %g1
    ld [%g1], %g2
    cmp %g2, 3
    bl wait
    nop
done:
    ba done
    nop
""", base=SRAM)
    system = LeonSystem(LeonConfig.fault_tolerant())
    system.load_program(program)
    system.special.pc = program.address_of("_start")
    system.special.npc = program.address_of("_start") + 4
    result = system.run(100_000, stop_pc=program.address_of("done"))
    assert result.stop_reason == "stop-pc"
    assert system.read_word(0x40100000) >= 3
    assert system.timers.timer1.underflows >= 3


def test_iutest_survives_scripted_barrage():
    """Deterministic mini-campaign: strikes into every target type while
    IUTEST runs; everything must be corrected."""
    config = LeonConfig.leon_express()
    program, expected = build_iutest(config, iterations=30,
                                     scrub_words=256, icode_words=128)
    system = LeonSystem(config)
    harness = ProgramHarness(system, program)
    injector = FaultInjector(system)
    schedule = [
        (2_000, "regfile", 40 * 39 + 3),
        (4_000, "icache-data", 500),
        (6_000, "dcache-data", 800),
        (8_000, "icache-tag", 90),
        (10_000, "dcache-tag", 120),
        (12_000, "flipflops", 10),
    ]
    executed = 0
    for when, target, bit in schedule:
        system.run(when - executed)
        executed = when
        injector.inject(target, bit)
    result = harness.run(2_000_000)
    assert result.exited
    assert result.sw_errors == 0
    assert not result.trapped
    # At least the cache strikes in patrolled areas were found & corrected.
    assert system.errors.total >= 1


def test_error_counters_reported_over_uart_style_readout():
    """Software can read the error monitor via the APB like the real test
    program reported counters to the host."""
    config = LeonConfig.leon_express()
    system = LeonSystem(config)
    system.errors.ite = 2
    system.errors.rfe = 5
    program = assemble("""
        set 0x800000B0, %g1
        ld [%g1], %g2           ! ITE
        ld [%g1+0x10], %g3      ! RFE
        set 0x40100000, %g4
        st %g2, [%g4]
        st %g3, [%g4+4]
    done:
        ba done
        nop
    """, base=SRAM)
    system.load_program(program)
    system.run(1000, stop_pc=program.address_of("done"))
    assert system.read_word(0x40100000) == 2
    assert system.read_word(0x40100004) == 5


@pytest.mark.slow
def test_small_campaign_smoke():
    result = Campaign(CampaignConfig(
        program="cncf", let=60.0, flux=400.0, fluence=500.0,
        instructions_per_second=30_000.0)).run()
    assert result.failures == 0
