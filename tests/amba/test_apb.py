"""APB bridge: decoding, word-only access, bridge penalty, ticking."""

import pytest

from repro.amba.apb import BRIDGE_PENALTY_CYCLES, ApbBridge, ApbSlave
from repro.amba.ahb import TransferSize
from repro.errors import ConfigurationError


class Reg(ApbSlave):
    def __init__(self, name, offset, size=0x10):
        super().__init__(name, offset, size)
        self.regs = {}
        self.ticks = 0

    def apb_read(self, offset):
        return self.regs.get(offset, 0)

    def apb_write(self, offset, value):
        self.regs[offset] = value

    def tick(self, cycles):
        self.ticks += cycles


@pytest.fixture
def bridge():
    bridge = ApbBridge(0x80000000)
    bridge.attach(Reg("a", 0x00))
    bridge.attach(Reg("b", 0x40))
    return bridge


def test_decode_and_roundtrip(bridge):
    bridge.ahb_write(0x80000044, 123, TransferSize.WORD)
    assert bridge.ahb_read(0x80000044, TransferSize.WORD).data == 123
    # Slave "a" unaffected.
    assert bridge.ahb_read(0x80000004, TransferSize.WORD).data == 0


def test_unmapped_offset_errors(bridge):
    assert bridge.ahb_read(0x80000800, TransferSize.WORD).error


def test_subword_access_rejected(bridge):
    assert bridge.ahb_read(0x80000000, TransferSize.BYTE).error
    assert bridge.ahb_write(0x80000000, 0, TransferSize.HALFWORD).error


def test_bridge_penalty_in_cycles(bridge):
    result = bridge.ahb_read(0x80000000, TransferSize.WORD)
    assert result.cycles == 1 + BRIDGE_PENALTY_CYCLES


def test_overlap_rejected(bridge):
    with pytest.raises(ConfigurationError):
        bridge.attach(Reg("clash", 0x08))


def test_outside_window_rejected():
    bridge = ApbBridge(0x80000000, size=0x100)
    with pytest.raises(ConfigurationError):
        bridge.attach(Reg("far", 0x200))


def test_tick_reaches_tickable_slaves(bridge):
    bridge.tick(10)
    for slave in bridge.slaves():
        assert slave.ticks == 10


def test_misaligned_slave_rejected():
    with pytest.raises(ConfigurationError):
        Reg("odd", 0x02)
