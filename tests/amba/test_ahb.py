"""AHB bus: decoding, transfers, bursts, arbitration bookkeeping."""

import pytest

from repro.amba.ahb import AhbBus, AhbSlave, BusResult, TransferSize
from repro.errors import BusError, ConfigurationError


class RamSlave(AhbSlave):
    """A trivial word-addressed RAM slave for bus tests."""

    def __init__(self, name, base, size, waitstates=0):
        super().__init__(name, base, size)
        self.words = {}
        self.waitstates = waitstates
        self.burst_calls = 0

    def ahb_read(self, address, size):
        data = self.words.get((address - self.base) & ~3, 0)
        return BusResult(data=data, cycles=1 + self.waitstates)

    def ahb_write(self, address, value, size):
        self.words[(address - self.base) & ~3] = value
        return BusResult(cycles=1 + self.waitstates)

    def ahb_read_burst(self, address, nwords):
        self.burst_calls += 1
        return super().ahb_read_burst(address, nwords)


@pytest.fixture
def bus():
    bus = AhbBus()
    bus.attach(RamSlave("ram0", 0x40000000, 0x1000))
    bus.attach(RamSlave("ram1", 0x50000000, 0x1000, waitstates=3))
    return bus


def test_decode_routes_by_address(bus):
    assert bus.decode(0x40000010).name == "ram0"
    assert bus.decode(0x50000FFC).name == "ram1"
    assert bus.decode(0x60000000) is None


def test_read_write_roundtrip(bus):
    bus.write(0x40000020, 0xCAFE, TransferSize.WORD)
    assert bus.read(0x40000020).data == 0xCAFE


def test_unmapped_address_error_response(bus):
    assert bus.read(0x00000000).error
    assert bus.write(0x99999999, 0).error


def test_read_word_checked_raises(bus):
    with pytest.raises(BusError):
        bus.read_word_checked(0x70000000)


def test_waitstates_reflected_in_cycles(bus):
    assert bus.read(0x40000000).cycles == 1
    assert bus.read(0x50000000).cycles == 4


def test_burst_dispatches_to_slave(bus):
    slave = bus.decode(0x40000000)
    results = bus.read_burst(0x40000000, 4)
    assert len(results) == 4
    assert slave.burst_calls == 1


def test_burst_to_unmapped_is_all_errors(bus):
    results = bus.read_burst(0x70000000, 4)
    assert all(result.error for result in results)


def test_overlapping_slaves_rejected(bus):
    with pytest.raises(ConfigurationError):
        bus.attach(RamSlave("clash", 0x40000800, 0x1000))


def test_master_accounting(bus):
    master = bus.add_master("cpu", priority=1)
    bus.read(0x50000000, TransferSize.WORD, master)
    assert master.granted_cycles == 4
    assert bus.transfers == 1
    assert bus.busy_cycles == 4


def test_slave_covers():
    slave = RamSlave("r", 0x1000, 0x100)
    assert slave.covers(0x1000)
    assert slave.covers(0x10FF)
    assert not slave.covers(0x1100)


def test_zero_size_slave_rejected():
    with pytest.raises(ConfigurationError):
        RamSlave("bad", 0, 0)
