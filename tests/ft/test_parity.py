"""Parity codes: section 4.3 behaviour."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ft.parity import (
    DualParityCodec,
    SingleParityCodec,
    parity32,
    parity_even_bits,
    parity_odd_bits,
)
from repro.ft.protection import ErrorKind

WORDS = st.integers(min_value=0, max_value=0xFFFFFFFF)
BITS = st.integers(min_value=0, max_value=31)


def test_parity32_known_values():
    assert parity32(0) == 0
    assert parity32(1) == 1
    assert parity32(0b11) == 0
    assert parity32(0xFFFFFFFF) == 0
    assert parity32(0x80000001) == 0
    assert parity32(0x80000000) == 1


def test_parity_splits_cover_all_bits():
    assert parity_even_bits(0x55555555) == 0  # 16 even bits set
    assert parity_odd_bits(0x55555555) == 0
    assert parity_even_bits(0x1) == 1
    assert parity_odd_bits(0x2) == 1


@given(WORDS)
def test_single_parity_clean_word_checks_ok(word):
    codec = SingleParityCodec()
    check = codec.encode(word)
    assert codec.check(word, check).kind is ErrorKind.NONE


@given(WORDS, BITS)
def test_single_parity_detects_any_single_error(word, bit):
    codec = SingleParityCodec()
    check = codec.encode(word)
    corrupted = word ^ (1 << bit)
    assert codec.check(corrupted, check).kind is ErrorKind.DETECTED


@given(WORDS)
def test_single_parity_detects_check_bit_error(word):
    codec = SingleParityCodec()
    check = codec.encode(word)
    assert codec.check(word, check ^ 1).kind is ErrorKind.DETECTED


@given(WORDS, BITS, BITS)
def test_single_parity_misses_every_double_error(word, bit_a, bit_b):
    """One parity bit 'can only detect odd number of errors'."""
    if bit_a == bit_b:
        return
    codec = SingleParityCodec()
    check = codec.encode(word)
    corrupted = word ^ (1 << bit_a) ^ (1 << bit_b)
    assert codec.check(corrupted, check).kind is ErrorKind.NONE


@given(WORDS, BITS)
def test_dual_parity_detects_single_errors(word, bit):
    codec = DualParityCodec()
    check = codec.encode(word)
    assert codec.check(word ^ (1 << bit), check).kind is ErrorKind.DETECTED


@given(WORDS, st.integers(min_value=0, max_value=30))
def test_dual_parity_detects_adjacent_double_errors(word, bit):
    """The point of the second parity bit: 'a double error in any adjacent
    cells can then be detected' (section 4.3)."""
    codec = DualParityCodec()
    check = codec.encode(word)
    corrupted = word ^ (1 << bit) ^ (1 << (bit + 1))
    assert codec.check(corrupted, check).kind is ErrorKind.DETECTED


@given(WORDS, st.integers(min_value=0, max_value=29))
def test_dual_parity_misses_same_group_double_errors(word, bit):
    """The residual weakness: two errors in the same odd/even group escape
    -- the mechanism behind the paper's high-flux anomaly (section 6)."""
    codec = DualParityCodec()
    check = codec.encode(word)
    corrupted = word ^ (1 << bit) ^ (1 << (bit + 2))
    assert codec.check(corrupted, check).kind is ErrorKind.NONE


@given(WORDS)
def test_dual_parity_round_trip(word):
    codec = DualParityCodec()
    result = codec.check(word, codec.encode(word))
    assert result.kind is ErrorKind.NONE
    assert result.data == word


@pytest.mark.parametrize("codec,bits", [(SingleParityCodec(), 1),
                                        (DualParityCodec(), 2)])
def test_check_bit_width(codec, bits):
    assert codec.scheme.check_bits == bits
    assert codec.encode(0xFFFFFFFF) < (1 << bits)
