"""The EDAC unit over external memory words (section 4.6)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ft.edac import Edac, EdacStatus

WORDS = st.integers(min_value=0, max_value=0xFFFFFFFF)


@given(WORDS)
def test_clean_read(word):
    edac = Edac()
    result = edac.read(word, edac.encode(word))
    assert result.status is EdacStatus.OK
    assert result.data == word
    assert edac.corrected == 0


@given(WORDS, st.integers(min_value=0, max_value=31))
def test_single_data_error_corrected(word, bit):
    edac = Edac()
    check = edac.encode(word)
    result = edac.read(word ^ (1 << bit), check)
    assert result.status is EdacStatus.CORRECTED
    assert result.data == word
    assert edac.corrected == 1


@given(WORDS, st.integers(min_value=0, max_value=6))
def test_single_check_bit_error_corrected(word, bit):
    edac = Edac()
    check = edac.encode(word) ^ (1 << bit)
    result = edac.read(word, check)
    assert result.status is EdacStatus.CORRECTED
    assert result.data == word


@given(WORDS, st.integers(min_value=0, max_value=31),
       st.integers(min_value=0, max_value=31))
def test_double_error_uncorrectable(word, bit_a, bit_b):
    if bit_a == bit_b:
        return
    edac = Edac()
    check = edac.encode(word)
    result = edac.read(word ^ (1 << bit_a) ^ (1 << bit_b), check)
    assert result.status is EdacStatus.UNCORRECTABLE
    assert edac.uncorrectable == 1


def test_counter_reset():
    edac = Edac()
    edac.read(1, edac.encode(1) ^ 1)
    assert edac.corrected == 1
    edac.reset_counters()
    assert edac.corrected == 0
    assert edac.uncorrectable == 0
