"""The protection-scheme factory and metadata."""

import pytest

from repro.ft.protection import (
    CheckResult,
    ErrorKind,
    ProtectionScheme,
    describe,
    make_codec,
)


@pytest.mark.parametrize("scheme,bits", [
    (ProtectionScheme.NONE, 0),
    (ProtectionScheme.PARITY, 1),
    (ProtectionScheme.DUAL_PARITY, 2),
    (ProtectionScheme.BCH, 7),
])
def test_check_bits(scheme, bits):
    assert scheme.check_bits == bits


@pytest.mark.parametrize("scheme", list(ProtectionScheme))
def test_factory_builds_matching_codec(scheme):
    codec = make_codec(scheme)
    assert codec.scheme is scheme
    check = codec.encode(0xA5A5A5A5)
    assert check < (1 << max(scheme.check_bits, 1))
    result = codec.check(0xA5A5A5A5, check)
    assert isinstance(result, CheckResult)
    assert result.kind is ErrorKind.NONE
    assert result.data == 0xA5A5A5A5


def test_null_codec_never_reports():
    codec = make_codec(ProtectionScheme.NONE)
    assert codec.check(0xFFFFFFFF, 0).kind is ErrorKind.NONE
    # Corruption is invisible to the null codec (by design).
    assert codec.check(0x00000001, 0).kind is ErrorKind.NONE


@pytest.mark.parametrize("scheme", list(ProtectionScheme))
def test_describe_is_informative(scheme):
    assert isinstance(describe(scheme), str)
    assert describe(scheme)
