"""TMR registers and clock trees (section 4.5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InjectionError
from repro.ft.tmr import FlipFlopBank, TmrRegister, vote3


@given(st.integers(min_value=0), st.integers(min_value=0), st.integers(min_value=0))
def test_vote3_majority(a, b, c):
    result = vote3(a, b, c)
    for bit in range(max(a, b, c).bit_length() + 1):
        votes = ((a >> bit) & 1) + ((b >> bit) & 1) + ((c >> bit) & 1)
        assert ((result >> bit) & 1) == (1 if votes >= 2 else 0)


def test_single_lane_upset_is_masked():
    reg = TmrRegister("r", 32, tmr=True)
    reg.load(0xCAFEBABE)
    reg.inject(bit=7, lane=1)
    assert reg.value == 0xCAFEBABE  # voter hides it
    assert reg.lane_value(1) != 0xCAFEBABE


def test_upset_scrubbed_on_clock_edge():
    """'Any SEU register error will automatically be removed within one
    clock cycle.'"""
    reg = TmrRegister("r", 16, tmr=True)
    reg.load(0x1234)
    reg.inject(bit=0, lane=2)
    reg.refresh()  # one clock edge, recirculating data
    assert reg.lane_value(2) == 0x1234
    assert reg.value == 0x1234


def test_double_lane_upset_same_bit_defeats_tmr():
    reg = TmrRegister("r", 8, tmr=True)
    reg.load(0x00)
    reg.inject(bit=3, lane=0)
    reg.inject(bit=3, lane=1)
    assert reg.value == 0x08  # two corrupted lanes out-vote the clean one


def test_non_tmr_register_corrupts_directly():
    reg = TmrRegister("r", 8, tmr=False)
    reg.load(0xAA)
    reg.inject(bit=0, lane=0)
    assert reg.value == 0xAB


def test_inject_bounds():
    reg = TmrRegister("r", 4, tmr=True)
    with pytest.raises(InjectionError):
        reg.inject(bit=4)
    with pytest.raises(InjectionError):
        reg.inject(bit=0, lane=3)


def test_width_mask():
    reg = TmrRegister("r", 4, tmr=False)
    reg.load(0xFF)
    assert reg.value == 0xF


class TestFlipFlopBank:
    def test_registration_and_totals(self):
        bank = FlipFlopBank(tmr=True)
        bank.register("a", 32)
        bank.register("b", 16)
        assert bank.total_bits == 48
        assert bank.total_cells == 144  # 3 lanes

    def test_reregistration_same_width_returns_same(self):
        bank = FlipFlopBank(tmr=False)
        first = bank.register("a", 8)
        second = bank.register("a", 8)
        assert first is second
        with pytest.raises(InjectionError):
            bank.register("a", 16)

    def test_locate_bit_spans_registers(self):
        bank = FlipFlopBank(tmr=True)
        reg_a = bank.register("a", 4)
        reg_b = bank.register("b", 4)
        assert bank.locate_bit(0) == (reg_a, 0)
        assert bank.locate_bit(3) == (reg_a, 3)
        assert bank.locate_bit(4) == (reg_b, 0)
        with pytest.raises(InjectionError):
            bank.locate_bit(8)

    def test_inject_flat_and_scrub(self):
        bank = FlipFlopBank(tmr=True)
        reg = bank.register("a", 8)
        reg.load(0x55)
        name = bank.inject_flat(2, lane=0)
        assert name == "a"
        assert reg.value == 0x55  # masked
        bank.scrub()
        assert reg.lane_value(0) == 0x55

    def test_clock_tree_strike_corrupts_one_lane_of_everything(self):
        """Section 4.5: 'an SEU hit in one clock-tree can be tolerated even
        if the data of a complete lane of 2,500 registers is corrupted. On
        the following clock edge, all errors will be removed.'"""
        bank = FlipFlopBank(tmr=True)
        regs = [bank.register(f"r{i}", 32) for i in range(10)]
        for index, reg in enumerate(regs):
            reg.load(index * 3)
        touched = bank.inject_clock_tree(lane=1)
        assert touched == 10
        # All voted outputs still correct.
        for index, reg in enumerate(regs):
            assert reg.value == index * 3
            assert reg.lane_value(1) != index * 3
        bank.scrub()  # the following clock edge
        for index, reg in enumerate(regs):
            assert reg.lane_value(1) == index * 3

    def test_clock_tree_strike_without_tmr_is_catastrophic(self):
        bank = FlipFlopBank(tmr=False)
        reg = bank.register("a", 8)
        reg.load(0x12)
        bank.inject_clock_tree(lane=0)
        assert reg.value != 0x12

    def test_shared_clock_tree_defeats_tmr(self):
        """The figure 3 ablation: without *separate* clock trees, a clock
        glitch corrupts all three lanes at once and the voter is blind."""
        separate = FlipFlopBank(tmr=True, separate_clock_trees=True)
        shared = FlipFlopBank(tmr=True, separate_clock_trees=False)
        for bank in (separate, shared):
            bank.register("a", 16).load(0x1234)
            bank.inject_clock_tree(lane=0)
        assert separate.get("a").value == 0x1234  # voted away
        assert shared.get("a").value != 0x1234  # all lanes corrupted
        # And the shared-tree corruption survives the scrub (it IS the
        # majority now).
        shared.scrub()
        assert shared.get("a").value != 0x1234

    def test_voter_disagreements_counted(self):
        bank = FlipFlopBank(tmr=True)
        reg = bank.register("a", 8)
        reg.load(1)
        reg.inject(bit=0, lane=0)
        _ = reg.value
        assert bank.lane_disagreements() >= 1
