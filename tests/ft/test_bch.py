"""The (32,7) BCH SEC-DED code: corrects one, detects two (section 4.4)."""

import itertools

from hypothesis import given
from hypothesis import strategies as st

from repro.ft.bch import BCH_CHECK_BITS, BchCodec, bch_encode, bch_syndrome
from repro.ft.protection import ErrorKind

WORDS = st.integers(min_value=0, max_value=0xFFFFFFFF)
CODE_BITS = st.integers(min_value=0, max_value=31 + BCH_CHECK_BITS)


def _flip(data: int, check: int, bit: int):
    """Flip codeword bit: 0..31 data, 32..38 check."""
    if bit < 32:
        return data ^ (1 << bit), check
    return data, check ^ (1 << (bit - 32))


def test_check_bits_count():
    assert BCH_CHECK_BITS == 7
    assert bch_encode(0xFFFFFFFF) < (1 << 7)


@given(WORDS)
def test_clean_word_has_zero_syndrome(word):
    assert bch_syndrome(word, bch_encode(word)) == 0


@given(WORDS, CODE_BITS)
def test_single_error_corrected_anywhere(word, bit):
    """Single errors in data *or* check bits are corrected."""
    codec = BchCodec()
    data, check = _flip(word, bch_encode(word), bit)
    result = codec.check(data, check)
    assert result.kind is ErrorKind.CORRECTABLE
    assert result.data == word


@given(WORDS, CODE_BITS, CODE_BITS)
def test_double_error_always_detected_never_miscorrected(word, bit_a, bit_b):
    """SEC-DED: any double error is flagged DETECTED, and in particular is
    never silently 'corrected' to a wrong word."""
    if bit_a == bit_b:
        return
    codec = BchCodec()
    data, check = _flip(word, bch_encode(word), bit_a)
    data, check = _flip(data, check, bit_b)
    result = codec.check(data, check)
    assert result.kind is ErrorKind.DETECTED


def test_exhaustive_single_corrections_for_one_word():
    codec = BchCodec()
    word = 0xDEADBEEF
    check = bch_encode(word)
    for bit in range(32 + BCH_CHECK_BITS):
        data, chk = _flip(word, check, bit)
        result = codec.check(data, chk)
        assert result.kind is ErrorKind.CORRECTABLE
        assert result.data == word


def test_exhaustive_double_detection_for_one_word():
    codec = BchCodec()
    word = 0x12345678
    check = bch_encode(word)
    for bit_a, bit_b in itertools.combinations(range(39), 2):
        data, chk = _flip(word, check, bit_a)
        data, chk = _flip(data, chk, bit_b)
        assert codec.check(data, chk).kind is ErrorKind.DETECTED


def test_all_data_columns_distinct_odd_weight():
    """Structural invariant of the Hsiao construction."""
    from repro.ft.bch import _CHECK_COLUMNS, _DATA_COLUMNS

    columns = _DATA_COLUMNS + _CHECK_COLUMNS
    assert len(set(columns)) == len(columns) == 39
    assert all(bin(column).count("1") % 2 == 1 for column in columns)


@given(WORDS, WORDS)
def test_linearity(word_a, word_b):
    """BCH is linear: encode(a ^ b) == encode(a) ^ encode(b)."""
    assert bch_encode(word_a ^ word_b) == bch_encode(word_a) ^ bch_encode(word_b)
