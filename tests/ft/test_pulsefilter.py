"""The section 9 proposal: skewed clock trees as a SET pulse filter."""

import pytest

from repro.errors import ConfigurationError
from repro.ft.pulsefilter import (
    SkewedClockTmr,
    TransientPulse,
    evaluate_skew,
)
from repro.ft.tmr import TmrRegister


def make_cell(skew_ns):
    register = TmrRegister("r", 32, tmr=True)
    register.load(0)
    return SkewedClockTmr(register, skew_ns)


def test_aligned_clocks_latch_all_lanes():
    """Baseline LEON-FT: a pulse covering the common edge corrupts all
    three lanes at once -- TMR alone does not protect against SETs."""
    cell = make_cell(skew_ns=0.0)
    pulse = TransientPulse(arrival_ns=-0.1, duration_ns=0.5, bit=3)
    result = cell.apply(pulse)
    assert result.lanes_hit == [0, 1, 2]
    assert not result.masked
    assert cell.register.value == 8


def test_short_pulse_filtered_by_skew():
    """'Any pulse shorter than the skew would only be latched by one of
    the flip-flops in the cell, and be removed by the voter.'"""
    cell = make_cell(skew_ns=1.0)
    pulse = TransientPulse(arrival_ns=-0.1, duration_ns=0.5, bit=3)
    result = cell.apply(pulse)
    assert len(result.lanes_hit) == 1
    assert result.masked
    assert cell.register.value == 0
    # ...and the corrupted lane scrubs on the next edge.
    cell.register.refresh()
    assert cell.register.lane_value(result.lanes_hit[0]) == 0


def test_long_pulse_defeats_the_filter():
    cell = make_cell(skew_ns=0.4)
    pulse = TransientPulse(arrival_ns=-0.1, duration_ns=1.2, bit=0)
    result = cell.apply(pulse)
    assert len(result.lanes_hit) >= 2
    assert not result.masked


def test_pulse_missing_every_edge_is_harmless():
    cell = make_cell(skew_ns=1.0)
    pulse = TransientPulse(arrival_ns=5.0, duration_ns=0.3, bit=0)
    result = cell.apply(pulse)
    assert not result.latched
    assert result.masked


def test_guaranteed_filter_width_is_the_skew():
    assert make_cell(0.7).max_filtered_pulse_ns() == pytest.approx(0.7)


def test_requires_tmr_register():
    register = TmrRegister("r", 8, tmr=False)
    with pytest.raises(ConfigurationError):
        SkewedClockTmr(register, 1.0)
    with pytest.raises(ConfigurationError):
        SkewedClockTmr(TmrRegister("r2", 8, tmr=True), -1.0)


def test_monte_carlo_skew_reduces_corruption():
    """The feasibility result the paper proposes to investigate: skewing
    the clocks sharply reduces the SET corruption rate."""
    baseline = evaluate_skew(0.0, pulses=3000, seed=5)
    filtered = evaluate_skew(1.0, pulses=3000, seed=5)
    assert baseline.corrupted > 0
    assert filtered.corruption_rate < 0.3 * baseline.corruption_rate
    # The skewed cell samples at three instants, so it *latches* at least
    # as often -- the win is in masking, not in avoidance.
    assert filtered.latched >= baseline.latched


def test_monte_carlo_monotone_in_skew():
    rates = [evaluate_skew(skew, pulses=2000, seed=9).corruption_rate
             for skew in (0.0, 0.5, 1.5)]
    assert rates[0] >= rates[1] >= rates[2]
