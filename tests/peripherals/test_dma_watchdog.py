"""The DMA engine and the watchdog timer."""

import pytest

from repro import LeonConfig, LeonSystem, assemble
from repro.peripherals.timer import TimerUnit

SRAM = 0x40000000
DMA_BASE = 0x800000D0


@pytest.fixture
def system():
    return LeonSystem(LeonConfig.fault_tolerant())


class TestDma:
    def _program(self, system, source, destination, count):
        system.dma.apb_write(0x00, source)
        system.dma.apb_write(0x04, destination)
        system.dma.apb_write(0x08, count)

    def test_block_copy(self, system):
        for index in range(16):
            system.write_word(SRAM + 0x1000 + 4 * index, index * 7)
        self._program(system, SRAM + 0x1000, SRAM + 0x2000, 16)
        assert system.dma.busy
        system.dma.drain()
        assert system.dma.done and not system.dma.busy
        for index in range(16):
            assert system.read_word(SRAM + 0x2000 + 4 * index) == index * 7
        assert system.dma.words_moved == 16

    def test_transfer_progresses_with_ticks(self, system):
        self._program(system, SRAM, SRAM + 0x100, 8)
        system.apb.tick(16)  # 0.25 words/cycle -> 4 words
        assert 0 < system.dma.words_moved < 8
        system.apb.tick(1000)
        assert system.dma.done

    def test_bus_error_latched(self, system):
        self._program(system, 0xF0000000, SRAM, 4)  # unmapped source
        system.dma.drain()
        assert system.dma.error
        system.dma.apb_write(0x0C, 0)
        assert not system.dma.error

    def test_dma_scrubs_single_edac_errors(self, system):
        """A DMA sweep through EDAC memory corrects latent single errors."""
        address = SRAM + 0x3000
        system.write_word(address, 0xABCD)
        system.memctrl.sram_memory.inject(address - SRAM, 3)
        self._program(system, address, SRAM + 0x4000, 1)
        system.dma.drain()
        assert system.dma.corrected == 1
        assert system.read_word(SRAM + 0x4000) == 0xABCD
        # The source was scrubbed by the corrected read.
        raw, _check = system.memctrl.sram_memory.read_raw(address - SRAM)
        assert raw == 0xABCD

    def test_dma_steals_bus_cycles(self, system):
        self._program(system, SRAM, SRAM + 0x100, 32)
        before = system.dma.master.granted_cycles
        system.dma.drain()
        assert system.dma.master.granted_cycles > before

    def test_programmable_from_software(self, system):
        """The processor programs the DMA through the APB like any core."""
        for index in range(4):
            system.write_word(SRAM + 0x5000 + 4 * index, 0x100 + index)
        program = assemble(f"""
            set {DMA_BASE}, %g1
            set {SRAM + 0x5000}, %g2
            st %g2, [%g1]
            set {SRAM + 0x6000}, %g2
            st %g2, [%g1+4]
            mov 4, %g2
            st %g2, [%g1+8]         ! start
        wait:
            ld [%g1+12], %g3        ! status
            andcc %g3, 4, %g0       ! done bit
            be wait
            nop
        done:
            ba done
            nop
        """, base=SRAM)
        system.load_program(program)
        result = system.run(50_000, stop_pc=program.address_of("done"))
        assert result.stop_reason == "stop-pc"
        for index in range(4):
            assert system.read_word(SRAM + 0x6000 + 4 * index) == 0x100 + index


class TestWatchdog:
    def test_counts_down_and_expires(self):
        unit = TimerUnit()
        unit.apb_write(0x24, 0)  # prescaler 1:1
        unit.apb_write(0x28, 100)
        unit.tick(50)
        assert unit.apb_read(0x28) == 50
        assert not unit.watchdog_expired
        unit.tick(60)
        assert unit.watchdog_expired
        assert unit.apb_read(0x28) == 0

    def test_refresh_prevents_expiry(self):
        unit = TimerUnit()
        unit.apb_write(0x24, 0)
        unit.apb_write(0x28, 100)
        for _ in range(10):
            unit.tick(50)
            unit.apb_write(0x28, 100)  # software kicks the dog
        assert not unit.watchdog_expired

    def test_write_clears_expired_flag(self):
        unit = TimerUnit()
        unit.apb_write(0x24, 0)
        unit.apb_write(0x28, 10)
        unit.tick(20)
        assert unit.watchdog_expired
        unit.apb_write(0x28, 10)
        assert not unit.watchdog_expired

    def test_watchdog_catches_hung_processor(self):
        """System-level: a program that stops kicking the watchdog (e.g.
        crashed after an unhandled SEU) is caught by the expiry."""
        system = LeonSystem(LeonConfig.standard())
        program = assemble(f"""
            set 0x80000064, %g1     ! prescaler reload = 0
            st %g0, [%g1]
            set 0x80000068, %g1     ! watchdog
            set 2000, %g2
            st %g2, [%g1]
            ta 0                    ! crash (no trap table -> error mode)
        """, base=SRAM)
        system.load_program(program)
        system.run(100)
        assert system.halted.value == "error-mode"
        system.apb.tick(5000)  # wall-clock continues; nobody kicks the dog
        assert system.timers.watchdog_expired

    def test_watchdog_expiry_resets_hung_processor(self):
        """The watchdog output is wired to system reset (section 2): a
        program that hangs without kicking the dog is rebooted from the
        reset vector, not left spinning forever."""
        system = LeonSystem(LeonConfig.standard())
        counter = SRAM + 0x100
        # Boot code at the reset vector (PROM base 0): count the boot,
        # arm the watchdog, then hang without ever kicking it.
        program = assemble(f"""
            set {counter}, %g1
            ld [%g1], %g2
            add %g2, 1, %g2
            st %g2, [%g1]
            set 0x80000064, %g3     ! prescaler reload = 0 (1:1)
            st %g0, [%g3]
            set 0x80000068, %g3     ! arm the watchdog...
            set 500, %g4
            st %g4, [%g3]
        hang:
            ba hang                 ! ...and never kick it again
            nop
        """, base=0x0)
        system.load_program(program)
        system.run(5_000)
        # The system rebooted repeatedly: each expiry restarted boot code.
        assert system.read_word(counter) >= 2
        assert system.perf.watchdog_resets >= 2
        assert system.halted.value == "running"

    def test_watchdog_reset_can_be_unwired(self):
        """Harnesses that only observe the latch can unwire the reset."""
        system = LeonSystem(LeonConfig.standard())
        system.watchdog_reset_enabled = False
        program = assemble(f"""
            set 0x80000064, %g1
            st %g0, [%g1]
            set 0x80000068, %g1
            set 500, %g2
            st %g2, [%g1]
        hang:
            ba hang
            nop
        """, base=0x0)
        system.load_program(program)
        system.run(5_000)
        assert system.timers.watchdog_expired
        assert system.perf.watchdog_resets == 0
