"""On-chip peripherals: timers, UART, interrupt controller, I/O port,
error monitor, system registers."""

import pytest

from repro.core.statistics import ErrorCounters
from repro.core.config import LeonConfig
from repro.peripherals.errmon import ErrorMonitor
from repro.peripherals.ioport import IoPort
from repro.peripherals.irqctrl import InterruptController
from repro.peripherals.sysregs import SystemRegisters
from repro.peripherals.timer import TimerUnit
from repro.peripherals.uart import Uart


class TestInterruptController:
    def test_mask_and_pending(self):
        irq = InterruptController()
        irq.apb_write(0x00, 0xFFFE)  # unmask all
        irq.raise_interrupt(5)
        assert irq.apb_read(0x04) == 1 << 5
        assert irq.pending_level(0) == 5

    def test_masked_interrupt_invisible(self):
        irq = InterruptController()
        irq.raise_interrupt(5)  # mask is 0
        assert irq.pending_level(0) == 0

    def test_priority_highest_wins(self):
        irq = InterruptController()
        irq.apb_write(0x00, 0xFFFE)
        irq.raise_interrupt(3)
        irq.raise_interrupt(12)
        assert irq.pending_level(0) == 12

    def test_pil_threshold(self):
        irq = InterruptController()
        irq.apb_write(0x00, 0xFFFE)
        irq.raise_interrupt(4)
        assert irq.pending_level(4) == 0
        assert irq.pending_level(3) == 4

    def test_force_and_clear_registers(self):
        irq = InterruptController()
        irq.apb_write(0x00, 0xFFFE)
        irq.apb_write(0x08, 1 << 7)  # force
        assert irq.pending_level(0) == 7
        irq.apb_write(0x0C, 1 << 7)  # clear
        assert irq.pending_level(0) == 0

    def test_acknowledge_clears_one_level(self):
        irq = InterruptController()
        irq.apb_write(0x00, 0xFFFE)
        irq.raise_interrupt(2)
        irq.raise_interrupt(9)
        irq.acknowledge(9)
        assert irq.pending_level(0) == 2


class TestTimerUnit:
    def make(self):
        fired = []
        unit = TimerUnit(raise_irq=fired.append)
        return unit, fired

    def test_countdown_and_underflow_irq(self):
        unit, fired = self.make()
        unit.apb_write(0x24, 0)  # prescaler: 1 cycle per tick
        unit.apb_write(0x04, 10)  # reload
        unit.apb_write(0x08, 0b111)  # load + reload + enable
        unit.tick(5)
        assert unit.apb_read(0x00) == 5
        unit.tick(6)  # crosses zero
        assert fired == [8]
        assert unit.timer1.underflows == 1

    def test_reload_on_underflow(self):
        unit, _fired = self.make()
        unit.apb_write(0x24, 0)
        unit.apb_write(0x04, 4)
        unit.apb_write(0x08, 0b111)
        unit.tick(5)  # 4,3,2,1,0 -> underflow -> reload to 4
        assert unit.apb_read(0x00) == 4

    def test_oneshot_disables_after_underflow(self):
        unit, fired = self.make()
        unit.apb_write(0x24, 0)
        unit.apb_write(0x04, 2)
        unit.apb_write(0x08, 0b101)  # load + enable, no reload
        unit.tick(10)
        assert fired == [8]
        assert unit.apb_read(0x08) & 1 == 0  # disabled

    def test_prescaler_divides(self):
        unit, _fired = self.make()
        unit.apb_write(0x24, 9)  # 10 cycles per tick
        unit.apb_write(0x04, 100)
        unit.apb_write(0x08, 0b111)
        unit.tick(50)
        assert unit.apb_read(0x00) == 95

    def test_second_timer_independent(self):
        unit, fired = self.make()
        unit.apb_write(0x24, 0)
        unit.apb_write(0x14, 3)
        unit.apb_write(0x18, 0b111)
        unit.tick(4)
        assert fired == [9]
        assert unit.apb_read(0x00) == 0  # timer1 untouched (disabled)


class TestUart:
    def make(self):
        fired = []
        uart = Uart(raise_irq=fired.append)
        uart.apb_write(0x0C, 0)  # scaler: fastest
        uart.apb_write(0x08, 0b0011)  # rx + tx enable
        return uart, fired

    def test_transmit_byte(self):
        uart, _fired = self.make()
        uart.apb_write(0x00, ord("A"))
        uart.tick(100)
        assert uart.transcript() == b"A"

    def test_transmit_uses_holding_register(self):
        uart, _fired = self.make()
        uart.apb_write(0x00, ord("A"))
        uart.apb_write(0x00, ord("B"))
        assert uart.apb_read(0x04) & 0b110 == 0  # shifter and holder full
        uart.tick(1000)
        assert uart.transcript() == b"AB"

    def test_transmit_timing_follows_scaler(self):
        uart, _fired = self.make()
        uart.apb_write(0x0C, 9)  # 10 cycles/bit -> 100 cycles/frame
        uart.apb_write(0x00, ord("X"))
        uart.tick(99)
        assert uart.transcript() == b""
        uart.tick(1)
        assert uart.transcript() == b"X"

    def test_receive_path(self):
        uart, _fired = self.make()
        uart.receive(b"hi")
        assert uart.apb_read(0x04) & 1  # data ready
        assert uart.apb_read(0x00) == ord("h")
        assert uart.apb_read(0x00) == ord("i")
        assert uart.apb_read(0x04) & 1 == 0

    def test_rx_irq(self):
        uart, fired = self.make()
        uart.apb_write(0x08, 0b0111)  # + rx irq
        uart.receive(b"x")
        assert fired == [uart.irq_level]

    def test_tx_disabled_drops_data(self):
        uart, _fired = self.make()
        uart.apb_write(0x08, 0)
        uart.apb_write(0x00, ord("A"))
        uart.tick(1000)
        assert uart.transcript() == b""


class TestIoPort:
    def test_direction_and_readback(self):
        port = IoPort()
        port.apb_write(0x04, 0x00FF)  # low byte outputs
        port.apb_write(0x00, 0xABCD)
        port.drive_inputs(0x1200)
        assert port.outputs == 0x00CD
        assert port.apb_read(0x00) == 0x12CD

    def test_input_edge_interrupt(self):
        fired = []
        port = IoPort(raise_irq=fired.append)
        port.apb_write(0x08, 1)
        port.drive_inputs(0x8000)
        assert fired == [port.irq_level]


class TestErrorMonitor:
    def test_counters_visible_and_clearable(self):
        counters = ErrorCounters(ite=1, ide=2, dte=3, dde=4, rfe=5)
        monitor = ErrorMonitor(counters)
        assert monitor.apb_read(0x00) == 1
        assert monitor.apb_read(0x10) == 5
        assert monitor.apb_read(0x14) == 15
        monitor.apb_write(0x00, 0)
        assert monitor.apb_read(0x14) == 0

    def test_clear_preserves_trap_tallies(self):
        """A software clear wipes the monitor registers only: the
        uncorrectable-trap tallies are host bookkeeping, not monitor
        registers, and a resumed campaign must not under-report failures."""
        counters = ErrorCounters(ite=1, rfe=2, edac_corrected=3,
                                 register_error_traps=4,
                                 memory_error_traps=5)
        monitor = ErrorMonitor(counters)
        monitor.apb_write(0x04, 0xFFFFFFFF)
        assert monitor.apb_read(0x14) == 0
        assert monitor.apb_read(0x18) == 0
        assert counters.register_error_traps == 4
        assert counters.memory_error_traps == 5


class TestSystemRegisters:
    def test_cache_control_flush_and_enable(self):
        class FakeCache:
            def __init__(self):
                self.enabled = True
                self.flushed = 0

            def flush(self):
                self.flushed += 1

        regs = SystemRegisters(LeonConfig.fault_tolerant())
        regs.icache = FakeCache()
        regs.dcache = FakeCache()
        regs.apb_write(0x14, 0b1101)  # flush both... icache ena, dcache dis
        assert regs.icache.flushed == 1
        assert regs.dcache.flushed == 1
        assert regs.icache.enabled is True
        assert regs.dcache.enabled is False

    def test_power_down(self):
        regs = SystemRegisters(LeonConfig.standard())
        regs.apb_write(0x18, 1)
        assert regs.power_down_requested

    def test_config_word_encodes_build(self):
        regs = SystemRegisters(LeonConfig.fault_tolerant())
        word = regs.apb_read(0x24)
        assert (word >> 16) & 1  # TMR on
        assert (word >> 15) & 1  # EDAC on
        assert (word >> 17) & 3 == 3  # BCH regfile
        standard = SystemRegisters(LeonConfig.standard())
        assert (standard.apb_read(0x24) >> 16) & 1 == 0
