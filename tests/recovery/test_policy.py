"""Recovery policies: the built-in ladders and their cycle costs."""

import pytest

from repro.errors import ConfigurationError
from repro.recovery import (
    COLD_REBOOT_CYCLES,
    POLICIES,
    RESTART_CYCLES,
    WARM_RESET_CYCLES,
    RecoveryLevel,
    RecoveryPolicy,
    resolve_policy,
)


def test_restart_cost_matches_paper():
    """Section 4.4: 'the time for the complete restart operation takes 4
    clock cycles, the same as for taking a normal trap'."""
    assert RESTART_CYCLES == 4


def test_cost_ordering():
    assert RESTART_CYCLES < WARM_RESET_CYCLES < COLD_REBOOT_CYCLES


def test_builtin_policies_resolve():
    for name in POLICIES:
        policy = resolve_policy(name)
        if name == "none":
            assert policy is None
        else:
            assert policy.name == name
            assert policy.ladder


def test_resolve_none_and_passthrough():
    assert resolve_policy(None) is None
    policy = POLICIES["ladder"]
    assert resolve_policy(policy) is policy


def test_resolve_unknown_name_raises():
    with pytest.raises(ConfigurationError, match="unknown recovery policy"):
        resolve_policy("percussive-maintenance")


def test_ladder_policy_is_the_full_staircase():
    ladder = POLICIES["ladder"].ladder
    assert ladder == (
        RecoveryLevel.PIPELINE_RESTART,
        RecoveryLevel.CACHE_FLUSH,
        RecoveryLevel.WARM_RESET,
        RecoveryLevel.COLD_REBOOT,
    )
    assert POLICIES["ladder"].can_reset


def test_restart_policy_cannot_reset():
    policy = POLICIES["restart"]
    assert policy.ladder == (RecoveryLevel.PIPELINE_RESTART,)
    assert not policy.can_reset
    assert policy.max_recoveries == 8


def test_state_loss_classification():
    assert not RecoveryLevel.PIPELINE_RESTART.state_loss
    assert not RecoveryLevel.CACHE_FLUSH.state_loss
    assert RecoveryLevel.WARM_RESET.state_loss
    assert RecoveryLevel.COLD_REBOOT.state_loss


def test_empty_ladder_rejected():
    with pytest.raises(ConfigurationError, match="empty ladder"):
        RecoveryPolicy(name="hollow", ladder=())
