"""The recovery controller: ladder climbing, downtime, state restoration."""

import pytest

from repro import LeonConfig, LeonSystem, assemble
from repro.errors import RecoveryError
from repro.iu.pipeline import HaltReason
from repro.recovery import (
    POLICIES,
    RESTART_CYCLES,
    WARM_RESET_CYCLES,
    RecoveryController,
    RecoveryLevel,
    RecoveryPolicy,
)

SRAM = 0x40000000

FULL_LADDER = (
    RecoveryLevel.PIPELINE_RESTART,
    RecoveryLevel.CACHE_FLUSH,
    RecoveryLevel.WARM_RESET,
    RecoveryLevel.COLD_REBOOT,
)


def _system():
    system = LeonSystem(LeonConfig.standard())
    program = assemble("""
    loop:
        ba loop
        nop
    """, base=SRAM)
    system.load_program(program)
    return system


def _controller(system, ladder=FULL_LADDER, **overrides):
    policy = RecoveryPolicy(name="test", ladder=ladder, **overrides)
    snapshot = system.snapshot()
    return RecoveryController(system, policy, checkpoint=snapshot,
                              boot_snapshot=snapshot)


def test_reset_rungs_require_their_snapshots():
    system = _system()
    with pytest.raises(RecoveryError, match="warm-reset"):
        RecoveryController(system, POLICIES["ladder"])
    with pytest.raises(RecoveryError, match="cold-reboot"):
        RecoveryController(system, POLICIES["ladder"],
                           checkpoint=system.snapshot())


def test_pipeline_restart_costs_four_cycles():
    system = _system()
    controller = _controller(system)
    cycles_before = system.perf.cycles
    event = controller.recover("error-trap", executed=100)
    assert event.level is RecoveryLevel.PIPELINE_RESTART
    assert event.downtime_cycles == RESTART_CYCLES == 4
    assert not event.state_loss
    assert system.perf.cycles == cycles_before + 4
    assert controller.counts_by_level == {"pipeline-restart": 1}


def test_refailure_inside_stability_window_escalates():
    system = _system()
    controller = _controller(system, stability_window=2_000)
    levels = [controller.recover("error-trap", executed=at).level
              for at in (1_000, 1_500, 1_900, 2_200)]
    assert levels == [
        RecoveryLevel.PIPELINE_RESTART,
        RecoveryLevel.CACHE_FLUSH,
        RecoveryLevel.WARM_RESET,
        RecoveryLevel.COLD_REBOOT,
    ]
    # Surviving the window de-escalates back to the cheapest rung.
    event = controller.recover("error-trap", executed=50_000)
    assert event.level is RecoveryLevel.PIPELINE_RESTART


def test_halt_climbs_straight_to_a_reset_rung():
    """A halted processor cannot run recovery code: detection waits for
    the watchdog, and the cheapest applicable rung is a reset."""
    system = _system()
    controller = _controller(system)
    system.iu.halted = HaltReason.ERROR_MODE
    event = controller.recover("halt", executed=500)
    assert event.level is RecoveryLevel.WARM_RESET
    assert event.state_loss
    # Downtime = watchdog detection latency + the reset itself.
    policy = controller.policy
    assert event.downtime_cycles == policy.watchdog_cycles + WARM_RESET_CYCLES
    assert system.perf.watchdog_resets == 1
    assert system.iu.halted is HaltReason.RUNNING


def test_restart_only_policy_gives_up_on_halt():
    system = _system()
    policy = POLICIES["restart"]
    controller = RecoveryController(system, policy)
    assert controller.recover("halt", executed=10) is None
    assert controller.gave_up
    # Once given up, everything else is refused too.
    assert controller.recover("error-trap", executed=20) is None


def test_warm_reset_restores_state_but_keeps_counters():
    system = _system()
    system.run(50)
    system.write_word(SRAM + 0x1000, 0x1111)
    controller = _controller(system, ladder=(RecoveryLevel.WARM_RESET,))
    harvested = []
    controller.on_state_loss = lambda sys_: harvested.append(True)

    system.write_word(SRAM + 0x1000, 0xDEAD)
    system.errors.rfe = 5
    cycles_before = system.perf.cycles
    digest_before = controller.checkpoint.digest()

    event = controller.recover("error-trap", executed=1_000)
    assert event.level is RecoveryLevel.WARM_RESET
    # Execution state (memory included) is back at the checkpoint...
    assert system.read_word(SRAM + 0x1000) == 0x1111
    assert system.snapshot().digest() == digest_before
    # ...but the observation counters survived and downtime was charged.
    assert system.errors.rfe == 5
    assert system.perf.cycles == cycles_before + WARM_RESET_CYCLES
    assert harvested == [True]


def test_cold_reboot_restores_boot_image():
    system = _system()
    boot = system.snapshot()
    system.run(100)
    system.write_word(SRAM + 0x1000, 0xBEEF)
    policy = RecoveryPolicy(name="test", ladder=(RecoveryLevel.COLD_REBOOT,))
    controller = RecoveryController(system, policy, boot_snapshot=boot)
    event = controller.recover("error-trap", executed=100)
    assert event.level is RecoveryLevel.COLD_REBOOT
    assert system.read_word(SRAM + 0x1000) == 0
    assert system.special.pc == SRAM


def test_attempt_budget_exhaustion_gives_up():
    system = _system()
    controller = _controller(system, ladder=(RecoveryLevel.PIPELINE_RESTART,),
                             max_recoveries=2)
    assert controller.recover("error-trap", executed=10) is not None
    assert controller.recover("error-trap", executed=10_000) is not None
    assert controller.recover("error-trap", executed=20_000) is None
    assert controller.gave_up
    assert len(controller.events) == 2


def test_downtime_bookkeeping_views():
    system = _system()
    controller = _controller(system, stability_window=2_000)
    controller.recover("error-trap", executed=1_000)
    controller.recover("error-trap", executed=1_200)  # escalates to flush
    assert set(controller.counts_by_level) == {"pipeline-restart",
                                               "cache-flush"}
    assert controller.downtime_cycles == \
        sum(controller.downtime_by_level.values())
    assert controller.downtime_by_level["pipeline-restart"] == RESTART_CYCLES


def test_unknown_event_kind_rejected():
    system = _system()
    controller = _controller(system)
    with pytest.raises(RecoveryError, match="unknown recovery event"):
        controller.recover("gremlins", executed=1)
