"""Beam campaigns that recover: runs continue *through* failures.

The pinned scenario: the standard (no-FT) device at LET 110 with a dense
beam -- seed 16 halts in error mode partway through the window, seeds 1
and 3 park in the unexpected-trap handler persistently enough to climb
the ladder.  With a recovery policy those runs complete end to end and
report per-level counts, downtime and MTTR; without one they terminate
at the first failure exactly as before.
"""

import pytest

from repro import LeonConfig
from repro.fault.campaign import Campaign, CampaignConfig, prepare_warm_start
from repro.fault.executor import CampaignExecutor
from repro.fault.results import ResultStore, result_from_dict, result_to_dict
from repro.recovery import RESTART_CYCLES

#: Beam dense enough to halt the unprotected device (seed 16).
HOSTILE = dict(let=110.0, flux=5_000.0, fluence=10_000.0,
               instructions_per_second=30_000.0)
WINDOW = 60_000  # instructions in the beam window at these settings


def _config(seed, recovery="none", **overrides):
    settings = dict(HOSTILE)
    settings.update(overrides)
    return CampaignConfig(program="iutest", seed=seed, recovery=recovery,
                          leon=LeonConfig.standard(), **settings)


@pytest.fixture(scope="module")
def halting_baseline():
    """Seed 16 without recovery: the device halts mid-window."""
    result = Campaign(_config(16)).run()
    assert result.halted, "seed 16 must halt for these tests to bite"
    return result


def test_ladder_recovers_the_halting_run(halting_baseline):
    result = Campaign(_config(16, recovery="ladder")).run()
    assert not result.halted
    assert not result.unrecovered
    # The run reached the window close instead of dying early.
    assert result.instructions == WINDOW
    assert result.instructions > halting_baseline.instructions
    # The halt was recovered by a watchdog-detected reset, with downtime.
    assert result.halts >= 1
    assert "warm-reset" in result.recoveries or \
        "cold-reboot" in result.recoveries
    assert result.downtime_cycles > 0
    assert result.mttr_cycles > 0
    assert 0.0 < result.availability < 1.0
    assert result.cycles > result.downtime_cycles
    # Recovered halts count as failures: totals stay comparable.
    assert result.failures >= halting_baseline.failures


def test_persistent_park_climbs_the_ladder():
    """Seed 1 parks at the trap handler and re-fails immediately after a
    restart, so the controller escalates rung by rung."""
    result = Campaign(_config(1, recovery="ladder")).run()
    assert not result.halted
    assert "pipeline-restart" in result.recoveries
    assert "warm-reset" in result.recoveries
    # The paper's 4-cycle restart is what pipeline-restart recoveries cost.
    assert result.recovery_downtime["pipeline-restart"] == \
        RESTART_CYCLES * result.recoveries["pipeline-restart"]


def test_restart_only_policy_cannot_recover_a_halt(halting_baseline):
    result = Campaign(_config(16, recovery="restart")).run()
    assert result.halted
    assert result.unrecovered
    assert result.instructions == halting_baseline.instructions


def test_fault_free_run_identical_across_policies():
    """At a LET below threshold nothing fails, so an armed recovery policy
    must not perturb the measurement at all."""
    quiet = dict(let=2.0, flux=400.0, fluence=500.0,
                 instructions_per_second=30_000.0)
    plain = Campaign(_config(7, **quiet)).run()
    guarded = Campaign(_config(7, recovery="ladder", **quiet)).run()
    assert guarded.recoveries == {}
    fields = plain.comparable()
    guarded_fields = guarded.comparable()
    fields.pop("config")
    guarded_fields.pop("config")
    assert guarded_fields == fields


def test_recovery_campaign_jobs_invariant():
    """The acceptance bar: identical results at --jobs 1 and --jobs 2."""
    configs = [_config(16, recovery="ladder"), _config(1, recovery="ladder")]
    serial = CampaignExecutor(1).run_many(configs)
    parallel = CampaignExecutor(2, chunksize=1).run_many(configs)
    assert [r.comparable() for r in parallel] == \
           [r.comparable() for r in serial]


def test_warm_start_recovery_identical_to_cold():
    """The warm-reset checkpoint is the beam-entry state either way, so a
    warm-started recovery run reproduces the cold run byte for byte."""
    config = _config(16, recovery="ladder", beam_delay_s=0.2)
    cold = Campaign(config).run()
    warm = Campaign(config).run(warm=prepare_warm_start(config))
    assert warm.comparable() == cold.comparable()


#: Fast default-device settings for the serialization tests.
FAST = dict(flux=400.0, fluence=300.0, instructions_per_second=20_000.0)


def test_result_store_roundtrip_with_recovery_fields(tmp_path):
    config = CampaignConfig(program="iutest", seed=3, recovery="ladder",
                            **FAST)
    result = Campaign(config).run()
    # Make the recovery fields non-trivial regardless of what the run did.
    result.cycles = 123_456
    result.recoveries = {"warm-reset": 2, "pipeline-restart": 3}
    result.recovery_downtime = {"warm-reset": 90_000, "pipeline-restart": 12}
    result.halts = 2
    result.unrecovered = True
    store = ResultStore(str(tmp_path / "runs.jsonl"))
    store.append([result])
    store.close()
    loaded, = store.load().values()
    assert loaded.comparable() == result.comparable()
    assert loaded.config.recovery == "ladder"
    assert loaded.mttr_cycles == result.mttr_cycles


def test_old_result_lines_load_with_defaults():
    """Pre-recovery JSONL lines (no recovery fields) stay loadable."""
    result = Campaign(CampaignConfig(program="iutest", seed=3, **FAST)).run()
    payload = result_to_dict(result)
    for key in ("cycles", "recoveries", "recovery_downtime", "halts",
                "unrecovered"):
        payload.pop(key)
    payload["config"].pop("recovery")
    loaded = result_from_dict(payload)
    assert loaded.config.recovery == "none"
    assert loaded.recoveries == {}
    assert loaded.cycles == 0
    assert not loaded.unrecovered
    assert loaded.sw_errors == result.sw_errors
