"""The Table 1 area/timing model."""

import pytest

from repro.area.model import AreaModel, TimingModel, table1
from repro.core.config import FtConfig, LeonConfig
from repro.ft.protection import ProtectionScheme


@pytest.fixture
def breakdown():
    return table1()


def test_logic_overhead_about_100_percent(breakdown):
    """'The area overhead for the LEON core without ram blocks is around
    100%.'"""
    assert breakdown.logic_only().increase_percent == pytest.approx(100, abs=10)


def test_total_overhead_about_39_percent(breakdown):
    """'The overhead including ram cells is only 39%.'"""
    assert breakdown.total.increase_percent == pytest.approx(39, abs=3)


def test_regfile_overhead_is_bch_checkbit_ratio(breakdown):
    row = breakdown.row("Register file (136x32)")
    assert row.increase_percent == pytest.approx(7 / 32 * 100, abs=0.5)


def test_cache_ram_overhead_is_parity_ratio(breakdown):
    row = breakdown.row("Cache mem. (16 Kbyte)")
    assert row.increase_percent == pytest.approx(2 / 32 * 100, abs=0.5)


def test_every_module_grows_under_ft(breakdown):
    for module in breakdown.modules:
        assert module.area_ft_mm2 > module.area_mm2


def test_rows_render(breakdown):
    rows = breakdown.as_rows()
    assert rows[-1]["Module"] == "Total"
    assert all("Increase" in row for row in rows)


def test_timing_penalty_8_percent():
    """'Approximately two gate-delays or 8% of the cycle time.'"""
    timing = TimingModel()
    assert timing.penalty_fraction == pytest.approx(0.08, abs=0.005)
    assert timing.ft_frequency(100.0) == pytest.approx(92.6, abs=0.5)


def test_duplicated_regfile_cheaper_than_bch_three_port():
    """Ablation: parity + two 2-port RAMs vs BCH + one 3-port RAM."""
    bch = LeonConfig.fault_tolerant()
    dup = bch.with_changes(ft=FtConfig(
        tmr_flipflops=True,
        regfile_protection=ProtectionScheme.PARITY,
        regfile_duplicated=True,
    ))
    bch_area = AreaModel(LeonConfig.standard(), bch).breakdown()
    dup_area = AreaModel(LeonConfig.standard(), dup).breakdown()
    bch_rf = bch_area.row("Register file (136x32)").area_ft_mm2
    dup_rf = dup_area.row("Register file (136x32)").area_ft_mm2
    # Two cheap 2-port copies cost more silicon than one 3-port + BCH bits
    # in this technology model, but both stay within 2x of the baseline.
    baseline = bch_area.row("Register file (136x32)").area_mm2
    assert bch_rf < 2 * baseline
    assert dup_rf < 2 * baseline


def test_tmr_off_removes_logic_overhead():
    no_tmr = LeonConfig.fault_tolerant().with_changes(ft=FtConfig(
        tmr_flipflops=False,
        regfile_protection=ProtectionScheme.BCH,
    ))
    breakdown = AreaModel(LeonConfig.standard(), no_tmr).breakdown()
    assert breakdown.logic_only().increase_percent < 40


def test_identical_configs_zero_overhead():
    breakdown = AreaModel(LeonConfig.standard(), LeonConfig.standard()).breakdown()
    assert breakdown.total.increase_percent == pytest.approx(0.0)
