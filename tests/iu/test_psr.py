"""PSR / WIM / TBR / Y bit-level behaviour."""

from repro.ft.tmr import FlipFlopBank
from repro.iu.psr import PSR, SpecialRegisters


def make_psr(nwindows=8):
    return PSR(FlipFlopBank(tmr=False), nwindows)


def test_reset_state():
    psr = make_psr()
    assert psr.s == 1
    assert psr.et == 0
    assert psr.cwp == 0


def test_impl_ver_fields_read_only():
    psr = make_psr()
    psr.write(0xFFFFFFFF)
    assert (psr.value >> 28) == 0xF  # impl forced
    assert ((psr.value >> 24) & 0xF) == 0x3  # ver forced


def test_icc_fields():
    psr = make_psr()
    psr.icc = 0b1010  # N=1, Z=0, V=1, C=0
    assert psr.n == 1 and psr.z == 0 and psr.v == 1 and psr.c == 0
    assert (psr.value >> 20) & 0xF == 0b1010


def test_mode_fields_roundtrip():
    psr = make_psr()
    psr.ef = 1
    psr.pil = 9
    psr.s = 0
    psr.ps = 1
    psr.et = 1
    assert (psr.ef, psr.pil, psr.s, psr.ps, psr.et) == (1, 9, 0, 1, 1)


def test_cwp_wraps_modulo_nwindows():
    psr = make_psr(8)
    psr.cwp = 9
    assert psr.cwp == 1
    psr.cwp = -1
    assert psr.cwp == 7


def test_special_registers_tbr_tt_field():
    special = SpecialRegisters(FlipFlopBank(tmr=False), 8)
    special.tbr = 0x40000FFF  # only bits 31:12 written
    special.set_tt(0x2A)
    assert special.tbr_read == 0x40000000 | (0x2A << 4)
    assert special.trap_vector == 0x40000000 | (0x2A << 4)


def test_wim_masked_to_nwindows():
    special = SpecialRegisters(FlipFlopBank(tmr=False), 8)
    special.wim = 0xFFFFFFFF
    assert special.wim == 0xFF


def test_pc_pair_reset():
    special = SpecialRegisters(FlipFlopBank(tmr=False), 8, reset_pc=0x100)
    assert special.pc == 0x100
    assert special.npc == 0x104


def test_y_register():
    special = SpecialRegisters(FlipFlopBank(tmr=False), 8)
    special.y = 0x123456789  # truncated to 32 bits
    assert special.y == 0x23456789
