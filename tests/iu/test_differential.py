"""Differential testing: random ALU programs vs. a Python golden model.

Hypothesis generates short straight-line integer programs; each runs on
the full LEON system (fetch through the caches, decode, execute, write
back through the protected register file) and on a minimal golden model
of the SPARC V8 ALU semantics.  Register files must agree afterwards.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import LeonConfig, LeonSystem, assemble

SRAM = 0x40000000

#: Working registers (avoid %g0 and the harness registers).
REGS = ["%g1", "%g2", "%g3", "%g4", "%l0", "%l1", "%o0", "%o1"]

_OPS = ["add", "sub", "and", "or", "xor", "andn", "orn", "xnor",
        "sll", "srl", "sra", "umul", "smul"]


def _u32(value):
    return value & 0xFFFFFFFF


def _s32(value):
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value & 0x80000000 else value


def _golden(op, a, b):
    if op == "add":
        return _u32(a + b)
    if op == "sub":
        return _u32(a - b)
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "andn":
        return a & _u32(~b)
    if op == "orn":
        return a | _u32(~b)
    if op == "xnor":
        return _u32(~(a ^ b))
    if op == "sll":
        return _u32(a << (b & 31))
    if op == "srl":
        return a >> (b & 31)
    if op == "sra":
        return _u32(_s32(a) >> (b & 31))
    if op == "umul":
        return _u32(a * b)
    if op == "smul":
        return _u32(_s32(a) * _s32(b))
    raise AssertionError(op)


instruction = st.tuples(
    st.sampled_from(_OPS),
    st.integers(min_value=0, max_value=len(REGS) - 1),  # rs1
    st.one_of(st.integers(min_value=0, max_value=len(REGS) - 1),  # rs2 reg
              st.integers(min_value=-4096, max_value=4095)
              .map(lambda imm: ("imm", imm))),
    st.integers(min_value=0, max_value=len(REGS) - 1),  # rd
)

programs = st.lists(instruction, min_size=1, max_size=12)
seeds = st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF),
                 min_size=len(REGS), max_size=len(REGS))


@settings(max_examples=60, deadline=None)
@given(programs, seeds)
def test_random_alu_programs_match_golden_model(program, initial):
    # Golden model.
    golden = dict(zip(REGS, (value & 0xFFFFFFFF for value in initial)))
    lines = []
    for reg, value in golden.items():
        lines.append(f"    set {value}, {reg}")
    for op, rs1, src2, rd in program:
        if isinstance(src2, tuple):
            imm = src2[1]
            lines.append(f"    {op} {REGS[rs1]}, {imm}, {REGS[rd]}")
            golden[REGS[rd]] = _golden(op, golden[REGS[rs1]], _u32(imm))
        else:
            lines.append(f"    {op} {REGS[rs1]}, {REGS[src2]}, {REGS[rd]}")
            golden[REGS[rd]] = _golden(op, golden[REGS[rs1]], golden[REGS[src2]])
    lines.append("end:")
    lines.append("    ba end")
    lines.append("    nop")

    system = LeonSystem(LeonConfig.fault_tolerant())
    assembled = assemble("\n".join(lines), base=SRAM)
    system.load_program(assembled)
    result = system.run(10_000, stop_pc=assembled.address_of("end"))
    assert result.stop_reason == "stop-pc"

    from repro.sparc.isa import REGISTER_ALIASES

    cwp = system.special.psr.cwp
    for reg, expected in golden.items():
        index = REGISTER_ALIASES[reg[1:]]
        actual = system.regfile.read_raw(cwp, index)[0]
        assert actual == expected, f"{reg}: {actual:#x} != {expected:#x}"
