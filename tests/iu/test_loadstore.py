"""Loads and stores: sizes, sign extension, doubles, atomics, alignment."""

import pytest

RES = 0x40100000


def result(system, offset=0):
    return system.read_word(RES + offset)


def test_word_store_load_roundtrip(system, run):
    run(f"""
        set {RES}, %g4
        set 0xdeadbeef, %g1
        st %g1, [%g4+8]
        ld [%g4+8], %g2
        st %g2, [%g4]
    """)
    assert result(system) == 0xDEADBEEF


def test_byte_halfword_access_big_endian(system, run):
    run(f"""
        set {RES}, %g4
        set 0x11223344, %g1
        st %g1, [%g4+8]
        ldub [%g4+8], %g2       ! byte 0 = most significant (big endian)
        st %g2, [%g4]
        lduh [%g4+10], %g2      ! halfword 1 = low half
        st %g2, [%g4+4]
    """)
    assert result(system) == 0x11
    assert result(system, 4) == 0x3344


def test_byte_store_merges(system, run):
    run(f"""
        set {RES}, %g4
        set 0x11223344, %g1
        st %g1, [%g4+8]
        set 0xaa, %g2
        stb %g2, [%g4+9]
        ld [%g4+8], %g3
        st %g3, [%g4]
    """)
    assert result(system) == 0x11AA3344


def test_halfword_store_merges(system, run):
    run(f"""
        set {RES}, %g4
        set 0x11223344, %g1
        st %g1, [%g4+8]
        set 0xbeef, %g2
        sth %g2, [%g4+8]
        ld [%g4+8], %g3
        st %g3, [%g4]
    """)
    assert result(system) == 0xBEEF3344


def test_signed_byte_halfword_loads(system, run):
    run(f"""
        set {RES}, %g4
        set 0x80fF8001, %g1
        st %g1, [%g4+8]
        ldsb [%g4+8], %g2       ! 0x80 -> sign extended
        st %g2, [%g4]
        ldsh [%g4+10], %g2      ! 0x8001 -> sign extended
        st %g2, [%g4+4]
    """)
    assert result(system) == 0xFFFFFF80
    assert result(system, 4) == 0xFFFF8001


def test_ldd_std_pair(system, run):
    run(f"""
        set {RES}, %g4
        set 0x11111111, %g2
        set 0x22222222, %g3
        std %g2, [%g4+8]
        ldd [%g4+8], %l0
        st %l0, [%g4]
        st %l1, [%g4+4]
    """)
    assert result(system) == 0x11111111
    assert result(system, 4) == 0x22222222


def test_misaligned_word_load_traps(system, run):
    _, rr = run("""
        set 0x40100002, %g1
        ld [%g1], %g2
    """)
    assert rr.halted.value == "error-mode"


def test_misaligned_halfword_traps(system, run):
    _, rr = run("""
        set 0x40100001, %g1
        lduh [%g1], %g2
    """)
    assert rr.halted.value == "error-mode"


def test_ldd_odd_register_traps(system, run):
    # ldd with odd rd is illegal_instruction; hand-encode it.
    from repro.sparc.encode import fmt3_imm
    from repro.sparc.isa import Op, Op3Mem

    word = fmt3_imm(Op.MEM, Op3Mem.LDD, 3, 4, 0)  # rd = %g3 (odd)
    _, rr = run(f"""
        set {RES}, %g4
        .word {word}
    """)
    assert rr.halted.value == "error-mode"


def test_ldstub_atomic_sets_ff(system, run):
    run(f"""
        set {RES}, %g4
        st %g0, [%g4+8]
        ldstub [%g4+8], %g2     ! reads 0, writes 0xff
        st %g2, [%g4]
        ldub [%g4+8], %g3
        st %g3, [%g4+4]
    """)
    assert result(system) == 0
    assert result(system, 4) == 0xFF


def test_swap_exchanges(system, run):
    run(f"""
        set {RES}, %g4
        set 111, %g1
        st %g1, [%g4+8]
        set 222, %g2
        swap [%g4+8], %g2
        st %g2, [%g4]
        ld [%g4+8], %g3
        st %g3, [%g4+4]
    """)
    assert result(system) == 111
    assert result(system, 4) == 222


def test_load_delay_timing(system, run):
    """Loads cost 2 cycles, LDD 3 (cache hits)."""
    _, rr = run(f"""
        set {RES}, %g4
        ld [%g4], %g1
        ld [%g4], %g1
    """)
    # Detailed cycle totals vary with misses; just check loads were counted.
    assert system.perf.loads == 2


def test_store_counted(system, run):
    run(f"""
        set {RES}, %g4
        st %g0, [%g4]
        std %g2, [%g4+8]
    """)
    assert system.perf.stores == 2


def test_io_space_is_uncached(system, run):
    """Accesses to the I/O area bypass the caches."""
    io_base = system.config.memory.io_base
    before = system.perf.dcache_hits + system.perf.dcache_misses
    run(f"""
        set {io_base}, %g1
        set 77, %g2
        st %g2, [%g1]
        ld [%g1], %g3
        set {RES}, %g4
        st %g3, [%g4]
    """)
    assert result(system) == 77


def test_store_to_unmapped_address_traps(system, run):
    _, rr = run("""
        set 0xf0000000, %g1
        st %g0, [%g1]
    """)
    assert rr.halted.value == "error-mode"


@pytest.mark.parametrize("asi,ram_attr", [(0x0C, "tag_ram"), (0x0D, "data_ram")])
def test_diagnostic_asi_reads_icache_rams(system, run, asi, ram_attr):
    """LEON diagnostic ASIs expose the cache RAMs to software."""
    from repro.sparc.encode import fmt3_reg
    from repro.sparc.isa import Op, Op3Mem

    ram = getattr(system.icache, ram_attr)
    # Use an index far from the test program's own footprint: the program's
    # fetches refill low cache lines and would overwrite low RAM indices.
    index = ram.words - 1
    ram.write(index, 0x5A5A5A5A)
    # lda [%g1] asi, %g2 with %g1 = index * 4
    word = fmt3_reg(Op.MEM, Op3Mem.LDA, 2, 1, 0, asi=asi)
    run(f"""
        set {index * 4}, %g1
        .word {word}
        set {RES}, %g4
        st %g2, [%g4]
    """)
    assert result(system) == 0x5A5A5A5A
