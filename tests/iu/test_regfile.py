"""The windowed register file as a unit: mapping, protection, scrubbing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, InjectionError
from repro.ft.protection import ErrorKind, ProtectionScheme
from repro.iu.regfile import RegisterFile


def test_size_matches_table1():
    regfile = RegisterFile(8)
    assert regfile.words == 136  # "Register file (136x32)"


def test_window_overlap_outs_are_next_ins():
    regfile = RegisterFile(8)
    # outs of window w (r8..r15) == ins of window w-1 (r24..r31).
    for w in range(8):
        for i in range(8):
            assert (regfile.physical_index(w, 8 + i)
                    == regfile.physical_index((w - 1) % 8, 24 + i))


def test_globals_shared_across_windows():
    regfile = RegisterFile(8)
    for w in range(8):
        for g in range(8):
            assert regfile.physical_index(w, g) == g


def test_locals_unique_per_window():
    regfile = RegisterFile(8)
    seen = set()
    for w in range(8):
        for loc in range(16, 24):
            physical = regfile.physical_index(w, loc)
            assert physical not in seen
            seen.add(physical)


def test_g0_reads_zero_and_ignores_writes():
    regfile = RegisterFile(8, ProtectionScheme.BCH)
    regfile.write(0, 0, 0xFFFFFFFF)
    data, check, physical = regfile.read_raw(0, 0)
    assert data == 0 and physical == 0
    assert regfile.check_operand(0, 0).kind is ErrorKind.NONE


@given(st.integers(min_value=0, max_value=7),
       st.integers(min_value=1, max_value=31),
       st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_write_read_roundtrip(window, reg, value):
    regfile = RegisterFile(8, ProtectionScheme.BCH)
    regfile.write(window, reg, value)
    data, _check, _physical = regfile.read_raw(window, reg)
    assert data == value
    assert regfile.operand_ok(window, reg)


def test_bch_corrects_and_writes_back():
    regfile = RegisterFile(8, ProtectionScheme.BCH)
    regfile.write(0, 1, 0x1234)
    physical = regfile.physical_index(0, 1)
    regfile.inject(physical, bit=3)
    assert not regfile.operand_ok(0, 1)
    check = regfile.check_operand(0, 1)
    assert check.kind is ErrorKind.CORRECTABLE
    assert check.data == 0x1234
    regfile.correct(check)
    assert regfile.operand_ok(0, 1)


def test_parity_three_port_cannot_correct():
    regfile = RegisterFile(8, ProtectionScheme.PARITY)
    regfile.write(0, 1, 0x1234)
    regfile.inject(regfile.physical_index(0, 1), bit=3)
    assert regfile.check_operand(0, 1).kind is ErrorKind.DETECTED


def test_correct_requires_correctable():
    regfile = RegisterFile(8, ProtectionScheme.PARITY)
    regfile.write(0, 1, 5)
    regfile.inject(regfile.physical_index(0, 1), bit=0)
    check = regfile.check_operand(0, 1)
    with pytest.raises(InjectionError):
        regfile.correct(check)


def test_duplicated_requires_parity():
    with pytest.raises(ConfigurationError):
        RegisterFile(8, ProtectionScheme.BCH, duplicated=True)
    with pytest.raises(ConfigurationError):
        RegisterFile(8, ProtectionScheme.NONE, duplicated=True)


def test_duplicated_total_bits_doubled():
    single = RegisterFile(8, ProtectionScheme.PARITY)
    double = RegisterFile(8, ProtectionScheme.PARITY, duplicated=True)
    assert double.total_bits == 2 * single.total_bits


def test_scrub_all_fixes_latent_errors():
    """Models the section 4.8 task-switch window flush."""
    regfile = RegisterFile(8, ProtectionScheme.BCH)
    for reg in range(1, 32):
        regfile.write(0, reg, reg * 17)
    regfile.inject(regfile.physical_index(0, 5), bit=2)
    regfile.inject(regfile.physical_index(0, 9), bit=30)
    corrected, uncorrectable = regfile.scrub_all()
    assert corrected == 2
    assert uncorrectable == 0
    for reg in range(1, 32):
        assert regfile.read_raw(0, reg)[0] == reg * 17


def test_scrub_all_reports_uncorrectable():
    regfile = RegisterFile(8, ProtectionScheme.BCH)
    regfile.write(0, 1, 1)
    physical = regfile.physical_index(0, 1)
    regfile.inject(physical, bit=0)
    regfile.inject(physical, bit=1)
    corrected, uncorrectable = regfile.scrub_all()
    assert uncorrectable == 1


def test_inject_flat_covers_copies():
    regfile = RegisterFile(8, ProtectionScheme.PARITY, duplicated=True)
    per_copy = regfile.words * regfile.bits_per_word
    copy, physical, bit = regfile.inject_flat(per_copy + 33)
    assert copy == 1
    assert physical == 1
    assert bit == 0


def test_window_view():
    regfile = RegisterFile(8)
    regfile.write(2, 17, 99)
    assert regfile.window_view(2)[17] == 99
