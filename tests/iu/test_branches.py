"""Control transfer: branches, delay slots, annulment, call/jmpl."""

import pytest

RES = 0x40100000


def result(system, offset=0):
    return system.read_word(RES + offset)


@pytest.mark.parametrize("setup,branch,taken", [
    ("cmp %g0, 0", "be", True),
    ("cmp %g0, 0", "bne", False),
    ("cmp %g0, 1", "bl", True),
    ("cmp %g0, 1", "bge", False),
    ("set 1, %g1\n cmp %g1, 0", "bg", True),
    ("set 1, %g1\n cmp %g1, 0", "ble", False),
    ("set -1, %g1\n cmp %g1, 0", "bneg", True),
    ("set -1, %g1\n cmp %g1, 0", "bpos", False),
    ("set -1, %g1\n cmp %g1, 1", "blu", False),  # unsigned: 0xffffffff > 1
    ("set -1, %g1\n cmp %g1, 1", "bgu", True),
    ("cmp %g0, 0", "ba", True),
    ("cmp %g0, 0", "bn", False),
])
def test_branch_conditions(system, run, setup, branch, taken):
    run(f"""
        set {RES}, %g4
        st %g0, [%g4]
        {setup}
        {branch} taken_path
        nop
        ba join
        nop
    taken_path:
        mov 1, %g3
        st %g3, [%g4]
    join:
    """)
    assert result(system) == (1 if taken else 0)


def test_delay_slot_executes_on_taken_branch(system, run):
    run(f"""
        set {RES}, %g4
        clr %g1
        ba over
        add %g1, 1, %g1         ! delay slot executes
        add %g1, 100, %g1       ! skipped
    over:
        st %g1, [%g4]
    """)
    assert result(system) == 1


def test_annulled_slot_on_untaken_branch(system, run):
    run(f"""
        set {RES}, %g4
        clr %g1
        cmp %g0, 1
        be,a never
        add %g1, 100, %g1       ! annulled (branch untaken)
        add %g1, 1, %g1
    never:
        st %g1, [%g4]
    """)
    assert result(system) == 1


def test_taken_conditional_with_annul_executes_slot(system, run):
    run(f"""
        set {RES}, %g4
        clr %g1
        cmp %g0, 0
        be,a target
        add %g1, 1, %g1         ! executes: conditional taken + annul
        add %g1, 100, %g1
    target:
        st %g1, [%g4]
    """)
    assert result(system) == 1


def test_ba_annul_skips_its_own_slot(system, run):
    run(f"""
        set {RES}, %g4
        clr %g1
        ba,a target
        add %g1, 100, %g1       ! annulled: ba,a annuls its own slot
        add %g1, 50, %g1
    target:
        st %g1, [%g4]
    """)
    assert result(system) == 0


def test_call_links_o7_and_returns(system, run):
    run(f"""
        set {RES}, %g4
        clr %g1
        call sub
        nop
        st %g1, [%g4]
        ba end
        nop
    sub:
        retl
        add %g1, 7, %g1         ! delay slot of retl
    end:
    """)
    assert result(system) == 7


def test_jmpl_indirect_jump(system, run):
    program, _ = run(f"""
        set {RES}, %g4
        set target, %g1
        jmp [%g1]
        nop
        st %g0, [%g4]
        ba end
        nop
    target:
        mov 1, %g3
        st %g3, [%g4]
    end:
    """)
    assert result(system) == 1


def test_jmpl_misaligned_target_traps(system, run):
    program, rr = run("""
        set 0x40000001, %g1
        jmp [%g1]
        nop
    """)
    assert rr.halted.value == "error-mode"


def test_nested_calls_preserve_return_chain(system, run):
    run(f"""
        set {RES}, %g4
        clr %g1
        call outer
        nop
        st %g1, [%g4]
        ba end
        nop
    outer:
        save %sp, -96, %sp
        call inner
        nop
        ret
        restore %g1, 1, %g1     ! add 1 on the way out, restore window
    inner:
        retl
        add %g1, 10, %g1
    end:
    """, symbols=None)
    # inner adds 10 in outer's window %g1 (global), outer restores +1.
    assert result(system) == 11


def test_branch_loop_counts_cycles(system, run):
    _, rr = run("""
        set 50, %g1
    loop:
        subcc %g1, 1, %g1
        bne loop
        nop
    """)
    assert rr.instructions >= 150
    assert system.perf.cycles >= rr.instructions
