"""Integer-unit edge cases: Y register, annul corners, power-down wake,
privilege transitions, atomics in I/O space."""

import pytest

from repro import LeonConfig, LeonSystem, assemble

RES = 0x40100000
SRAM = 0x40000000


def result(system, offset=0):
    return system.read_word(RES + offset)


def test_wry_rdy_roundtrip(system, run):
    run(f"""
        set {RES}, %g4
        set 0xabcd1234, %g1
        wr %g1, %y
        nop
        nop
        nop
        rd %y, %g2
        st %g2, [%g4]
    """)
    assert result(system) == 0xABCD1234


def test_wry_xor_form(system, run):
    """WRY writes rs1 XOR operand2 (SPARC V8 semantics)."""
    run(f"""
        set {RES}, %g4
        set 0xff00, %g1
        wr %g1, 0xff, %y
        nop
        nop
        nop
        rd %y, %g2
        st %g2, [%g4]
    """)
    assert result(system) == 0xFFFF


def test_annulled_slot_skips_side_effects(system, run):
    """An annulled delay slot must not store, trap, or touch memory."""
    run(f"""
        set {RES}, %g4
        st %g0, [%g4]
        cmp %g0, 1
        be,a never
        st %g4, [%g4]           ! annulled store: must not land
        mov 1, %g1
    never:
        st %g1, [%g4+4]
    """)
    assert result(system) == 0
    assert result(system, 4) == 1


def test_back_to_back_branches(system, run):
    """A branch in a branch's delay slot region (sequential branches)."""
    run(f"""
        set {RES}, %g4
        clr %g1
        ba first
        add %g1, 1, %g1
    first:
        ba second
        add %g1, 2, %g1
    second:
        st %g1, [%g4]
    """)
    assert result(system) == 3


def test_call_in_delay_slot_chain(system, run):
    run(f"""
        set {RES}, %g4
        clr %g1
        call sub
        add %g1, 5, %g1         ! delay slot of call
        st %g1, [%g4]
        ba end
        nop
    sub:
        retl
        add %g1, 10, %g1        ! delay slot of retl
    end:
    """)
    assert result(system) == 15


def test_power_down_wakes_on_interrupt():
    """§3 peripherals: power-down idles the pipeline until an interrupt."""
    system = LeonSystem(LeonConfig.fault_tolerant())
    table = "\n".join(
        ["trap_table:"]
        + [f"    mov {tt}, %l3\n    ba handler\n    nop\n    nop"
           for tt in range(256)]
    )
    program = assemble(table + f"""
handler:
    set {RES}, %l4
    mov 1, %l5
    st %l5, [%l4]
    ! interrupt return: resume exactly where the processor was (l1/l2) --
    ! unlike software traps, nothing is skipped.
    jmp [%l1]
    rett [%l2]
_start:
    wr %g0, %wim
    set trap_table, %g1
    wr %g1, %tbr
    wr %g0, 0xE0, %psr
    nop
    nop
    nop
    set 0x80000090, %g1     ! unmask timer1 (level 8)
    set 0x100, %g2
    st %g2, [%g1]
    set 0x80000064, %g1     ! prescaler = 1 cycle/tick
    st %g0, [%g1]
    set 0x80000044, %g1     ! timer1 reload = 200
    set 200, %g2
    st %g2, [%g1]
    set 0x80000048, %g1     ! timer1 on
    mov 7, %g2
    st %g2, [%g1]
    set 0x80000018, %g1     ! power down
    st %g0, [%g1]
    ! ...sleeping until the timer fires...
    set {RES}, %g1
    mov 2, %g2
    st %g2, [%g1+4]
done:
    ba done
    nop
""", base=SRAM)
    system.load_program(program)
    entry = program.address_of("_start")
    system.special.pc, system.special.npc = entry, entry + 4
    run = system.run(10_000, stop_pc=program.address_of("done"))
    assert run.stop_reason == "stop-pc"
    assert system.read_word(RES) == 1  # handler ran
    assert system.read_word(RES + 4) == 2  # execution resumed after wake


def test_atomics_in_io_space(system, run):
    io = system.config.memory.io_base
    run(f"""
        set {RES}, %g4
        set {io}, %g1
        set 0x55, %g2
        st %g2, [%g1]
        ldstub [%g1], %g3       ! reads byte 0 (big endian: 0x00)
        st %g3, [%g4]
        ldub [%g1], %g3
        st %g3, [%g4+4]
    """)
    assert result(system) == 0x00
    assert result(system, 4) == 0xFF


def test_user_mode_cannot_rett(system, run):
    _, rr = run("""
        rd %psr, %g1
        set 0x80, %g2
        andn %g1, %g2, %g1
        wr %g1, %psr            ! drop to user mode
        nop
        nop
        nop
        rett [%g0+4]            ! privileged (and ET=1): trap -> error mode
    """)
    assert rr.halted.value == "error-mode"


def test_flush_invalidates_icache_word(system, run):
    """FLUSH after self-modifying code: the new instruction is fetched."""
    run(f"""
        set {RES}, %g4
        set patch_me, %g1
        call patch_me           ! warm the icache with the old code
        nop
        set new_instr, %g3
        ld [%g3], %g2
        st %g2, [%g1+4]         ! overwrite 'mov 1, %g5' (the delay slot)
        flush [%g1+4]
        call patch_me
        nop
        st %g5, [%g4]
        ba end
        nop
    patch_me:
        retl
        mov 1, %g5
    new_instr:
        .word 0x8A102002        ! mov 2, %g5
    end:
    """)
    assert result(system) == 2


def test_swap_with_register_address(system, run):
    run(f"""
        set {RES}, %g4
        set 8, %g1
        set 123, %g2
        st %g2, [%g4+8]
        set 321, %g3
        swap [%g4+%g1], %g3
        st %g3, [%g4]
    """)
    assert result(system) == 123


@pytest.mark.parametrize("tcond,icc_setup,taken", [
    ("te", "cmp %g0, 0", True),
    ("tne", "cmp %g0, 0", False),
    ("tg", "cmp %g0, 1", False),
    ("tl", "cmp %g0, 1", True),
])
def test_conditional_traps(system, run, tcond, icc_setup, taken):
    _, rr = run(f"""
        {icc_setup}
        {tcond} 4
        nop
    """)
    if taken:
        assert rr.halted.value == "error-mode"  # no table installed
    else:
        assert rr.halted.value == "running"
