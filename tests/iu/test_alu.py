"""Integer ALU semantics: arithmetic, flags, multiply/divide."""

import pytest

RES = 0x40100000


def result(system, offset=0):
    return system.read_word(RES + offset)


def check(system, run, body, expected):
    run(f"set {RES}, %g4\n" + body + "\n    st %g1, [%g4]")
    assert result(system) == expected & 0xFFFFFFFF


@pytest.mark.parametrize("body,expected", [
    ("set 5, %g1\n add %g1, 7, %g1", 12),
    ("set 5, %g1\n sub %g1, 7, %g1", -2),
    ("set 0xf0f0, %g1\n and %g1, 0xff, %g1", 0xF0),
    ("set 0xf0f0, %g1\n or %g1, 0xf, %g1", 0xF0FF),
    ("set 0xff, %g1\n xor %g1, 0xf0, %g1", 0x0F),
    ("set 0xff, %g1\n andn %g1, 0xf0, %g1", 0x0F),
    ("set 0, %g1\n orn %g1, 0, %g1", 0xFFFFFFFF),
    ("set 0xff, %g1\n xnor %g1, 0xff, %g1", 0xFFFFFFFF),
    ("set 1, %g1\n sll %g1, 31, %g1", 0x80000000),
    ("set 0x80000000, %g1\n srl %g1, 31, %g1", 1),
    ("set 0x80000000, %g1\n sra %g1, 31, %g1", 0xFFFFFFFF),
    ("set 7, %g1\n set 6, %g2\n umul %g1, %g2, %g1", 42),
    ("set -7, %g1\n set 6, %g2\n smul %g1, %g2, %g1", -42),
])
def test_alu_results(system, run, body, expected):
    check(system, run, body, expected)


def test_shift_count_masked_to_5_bits(system, run):
    check(system, run, "set 1, %g1\n set 33, %g2\n sll %g1, %g2, %g1", 2)


def test_addcc_sets_zero_flag_and_branch(system, run):
    run(f"""
        set {RES}, %g4
        set 5, %g1
        subcc %g1, 5, %g0
        be is_zero
        nop
        st %g0, [%g4]
        ba out
        nop
    is_zero:
        mov 1, %g3
        st %g3, [%g4]
    out:
    """)
    assert result(system) == 1


def test_carry_flag_and_addx(system, run):
    """64-bit add via addcc/addx: 0xFFFFFFFF + 1 carries into the high word."""
    run(f"""
        set {RES}, %g4
        set 0xffffffff, %g1
        set 1, %g2
        addcc %g1, %g2, %g3     ! low word, sets C
        clr %g1
        addx %g1, 0, %g1        ! high word picks up the carry
        st %g3, [%g4]
        st %g1, [%g4+4]
    """)
    assert result(system) == 0
    assert result(system, 4) == 1


def test_subx_borrows(system, run):
    run(f"""
        set {RES}, %g4
        clr %g1
        subcc %g1, 1, %g2       ! 0 - 1: borrow
        clr %g3
        subx %g3, 0, %g3        ! high word loses the borrow
        st %g2, [%g4]
        st %g3, [%g4+4]
    """)
    assert result(system) == 0xFFFFFFFF
    assert result(system, 4) == 0xFFFFFFFF


def test_overflow_flag(system, run):
    run(f"""
        set {RES}, %g4
        set 0x7fffffff, %g1
        addcc %g1, 1, %g2
        bvs overflowed
        nop
        st %g0, [%g4]
        ba out
        nop
    overflowed:
        mov 1, %g3
        st %g3, [%g4]
    out:
    """)
    assert result(system) == 1


def test_umul_writes_y_high_bits(system, run):
    run(f"""
        set {RES}, %g4
        set 0x10000, %g1
        set 0x10000, %g2
        umul %g1, %g2, %g3
        rd %y, %g1
        st %g3, [%g4]
        st %g1, [%g4+4]
    """)
    assert result(system) == 0
    assert result(system, 4) == 1


def test_udiv_uses_y_as_high_word(system, run):
    run(f"""
        set {RES}, %g4
        mov 1, %g1
        wr %g1, %y              ! dividend = 0x1_00000000 + 0
        nop
        nop
        nop
        clr %g1
        set 0x10, %g2
        udiv %g1, %g2, %g3      ! 2^32 / 16
        st %g3, [%g4]
    """)
    assert result(system) == 0x10000000


def test_sdiv_negative(system, run):
    run(f"""
        set {RES}, %g4
        wr %g0, %y
        nop
        nop
        nop
        set 100, %g1
        ! make the 64-bit dividend negative: y = 0xffffffff, g1 = -100
        set -100, %g1
        set 0xffffffff, %g2
        wr %g2, %y
        nop
        nop
        nop
        set 7, %g2
        sdiv %g1, %g2, %g3
        st %g3, [%g4]
    """)
    assert result(system) == (-14) & 0xFFFFFFFF


def test_division_by_zero_traps(system, run):
    program, rr = run("""
        clr %g2
        udiv %g1, %g2, %g3
    """)
    # No trap table is installed: trap with ET=0 -> error mode halt.
    assert rr.halted.value == "error-mode"


def test_mulscc_step_sequence(system, run):
    """32 MULScc steps + final shift implement 32x32 multiply (V8 idiom)."""
    a, b = 1234, 5678
    steps = "\n".join(["    mulscc %g3, %g1, %g3"] * 32)
    run(f"""
        set {RES}, %g4
        set {a}, %g1
        set {b}, %g2
        wr %g2, %y
        nop
        nop
        nop
        andcc %g0, %g0, %g3     ! clear partial product and icc
{steps}
        mulscc %g3, %g0, %g3    ! final shift step
        rd %y, %g2
        st %g2, [%g4]
    """)
    assert result(system) == a * b


def test_taddcctv_traps_on_tagged_operand(system, run):
    program, rr = run("""
        set 2, %g1              ! tag bits 01 -> not a clean tagged value
        taddcctv %g1, %g1, %g2
    """)
    assert rr.halted.value == "error-mode"  # tag_overflow with no handler


def test_taddcc_sets_overflow_without_trap(system, run):
    run(f"""
        set {RES}, %g4
        set 2, %g1
        taddcc %g1, %g1, %g2
        bvs tagged
        nop
        st %g0, [%g4]
        ba out
        nop
    tagged:
        mov 1, %g3
        st %g3, [%g4]
    out:
    """)
    assert result(system) == 1
