"""Register windows, traps, RETT, interrupts, privileged operations."""

RES = 0x40100000

#: A minimal trap table: entry 0 unused; every entry jumps to 'handler'.
TRAP_TABLE = "\n".join(
    [
        "trap_table:",
    ]
    + [f"    mov {tt}, %l3\n    ba handler\n    nop\n    nop" for tt in range(256)]
)

RUNTIME = f"""
{TRAP_TABLE}

handler:
    set {RES + 0x20}, %l4
    st %l3, [%l4]           ! record tt
    ld [%l4+4], %l5
    add %l5, 1, %l5
    st %l5, [%l4+4]         ! count traps
    ! Interrupts (tt 0x11..0x1F) resume at l1/l2; synchronous traps skip
    ! the trapping instruction (return to l2/l2+4).
    cmp %l3, 0x11
    bl handler_sync
    nop
    cmp %l3, 0x1F
    bg handler_sync
    nop
    jmp [%l1]
    rett [%l2]
handler_sync:
    jmp [%l2]               ! return to the instruction after the trap
    rett [%l2+4]

_start:
    wr %g0, %wim
    set trap_table, %g1
    wr %g1, %tbr
    wr %g0, 0xE0, %psr      ! S=1, ET=1, PS=1, CWP=0
    nop
    nop
    nop
    set 0x401ffff0, %sp
"""


def trap_tt(system):
    return system.read_word(RES + 0x20)


def trap_count(system):
    return system.read_word(RES + 0x24)


def result(system, offset=0):
    return system.read_word(RES + offset)


def run_with_traps(run, body):
    return run(RUNTIME + body)


def test_software_trap_vectors_and_returns(system, run):
    run_with_traps(run, f"""
        set {RES}, %g4
        ta 5
        mov 1, %g1              ! execution continues after the trap
        st %g1, [%g4]
    """)
    assert trap_tt(system) == 0x80 + 5
    assert trap_count(system) == 1
    assert result(system) == 1


def test_window_overflow_trap(system, run):
    """Saving into an invalid window (WIM bit set) traps with tt=5."""
    nwin = system.config.nwindows
    run_with_traps(run, f"""
        mov 1, %g1
        sll %g1, {nwin - 1}, %g1
        wr %g1, %wim            ! window nwin-1 invalid; CWP=0
        nop
        nop
        nop
        save %sp, -96, %sp      ! CWP 0 -> nwin-1: overflow
    """)
    assert trap_tt(system) == 0x05
    assert trap_count(system) == 1


def test_window_underflow_trap(system, run):
    nwin = system.config.nwindows
    run_with_traps(run, f"""
        mov 1, %g1
        sll %g1, 1, %g1
        wr %g1, %wim            ! window 1 invalid
        nop
        nop
        nop
        restore                 ! CWP 0 -> 1: underflow
    """)
    assert trap_tt(system) == 0x06
    assert trap_count(system) == 1


def test_save_restore_window_data(system, run):
    run_with_traps(run, f"""
        set {RES}, %g4
        set 11, %o0
        save %sp, -96, %sp      ! %o0 becomes %i0
        st %i0, [%g4]
        set 22, %l0
        restore %g0, 33, %o1    ! computed in old window, written after restore
        st %o1, [%g4+4]
    """)
    assert result(system) == 11
    assert result(system, 4) == 33


def test_illegal_instruction_traps(system, run):
    run_with_traps(run, """
        unimp 0
        nop
    """)
    assert trap_tt(system) == 0x02


def test_privileged_instruction_traps_in_user_mode(system, run):
    run_with_traps(run, """
        rd %psr, %g1
        set 0x80, %g2
        andn %g1, %g2, %g1      ! clear S
        wr %g1, %psr            ! drop to user mode (ET stays 1)
        nop
        nop
        nop
        rd %wim, %g3            ! privileged -> trap 3
    """)
    assert trap_tt(system) == 0x03


def test_wrpsr_illegal_cwp_traps(system, run):
    nwin = system.config.nwindows
    run_with_traps(run, f"""
        rd %psr, %g1
        or %g1, {nwin}, %g1     ! CWP field >= nwindows
        wr %g1, %psr
        nop
    """)
    assert trap_tt(system) == 0x02


def test_trap_saves_pc_in_locals(system, run):
    """The trap handler sees pc/npc of the trapping instruction in l1/l2."""
    run_with_traps(run, f"""
        set {RES}, %g4
    trap_here:
        ta 0
        nop
    """)
    # The handler returned via jmp l2 / rett l2+4; verify it ran exactly once
    assert trap_count(system) == 1


def test_interrupt_taken_and_acknowledged(system, run):
    """Force an interrupt through the interrupt controller."""
    irq_force = 0x80000098  # irqctrl force register
    irq_mask = 0x80000090
    run_with_traps(run, f"""
        set {RES}, %g4
        set {irq_mask}, %g1
        set 0xfffe, %g2
        st %g2, [%g1]           ! unmask all levels
        set {irq_force}, %g1
        set 0x100, %g2          ! force level 8
        st %g2, [%g1]
        nop
        nop
        mov 1, %g3
        st %g3, [%g4]
    """)
    assert trap_tt(system) == 0x18  # interrupt level 8
    assert result(system) == 1


def test_interrupt_masked_by_pil(system, run):
    irq_force = 0x80000098
    irq_mask = 0x80000090
    run_with_traps(run, f"""
        set {RES}, %g4
        rd %psr, %g1
        set 0xf00, %g2
        or %g1, %g2, %g1        ! PIL = 15: mask everything
        wr %g1, %psr
        nop
        nop
        nop
        set {irq_mask}, %g1
        set 0xfffe, %g2
        st %g2, [%g1]
        set {irq_force}, %g1
        set 0x100, %g2
        st %g2, [%g1]
        nop
        nop
        mov 1, %g3
        st %g3, [%g4]
    """)
    assert trap_count(system) == 0
    assert result(system) == 1


def test_rett_requires_supervisor_and_et0(system, run):
    """RETT executed with traps enabled is an illegal instruction."""
    run_with_traps(run, """
        rett [%l2+4]
        nop
    """)
    assert trap_tt(system) == 0x02


def test_trap_in_error_mode_halts(system, run):
    """A trap while ET=0 puts the processor in error mode (section 4.x)."""
    _, rr = run("""
        ta 0                    ! no trap table, ET=0 at reset... but crt-less
    """)
    assert rr.halted.value == "error-mode"


def test_cwp_wraps_modulo_nwindows(system, run):
    nwin = system.config.nwindows
    saves = "\n".join(["    save %sp, -96, %sp"] * nwin)
    restores = "\n".join(["    restore"] * nwin)
    run_with_traps(run, f"""
        set {RES}, %g4
        set 99, %l0
{saves}
{restores}
        st %l0, [%g4]           ! back in the original window
    """)
    assert result(system) == 99
