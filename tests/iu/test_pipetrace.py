"""The Figure 2 pipeline diagrams."""

from repro.iu.pipetrace import (
    BUBBLE,
    STAGES,
    PipelineTracer,
    render_diagram,
    trace_normal,
    trace_restart,
    trace_trap,
    trace_uncorrectable,
)

LABELS = ["INST1", "INST2", "INST3", "INST4", "INST5"]


def test_normal_execution_one_per_cycle():
    diagram = trace_normal(LABELS)
    fe = diagram.stage_row("FE")
    assert fe[:5] == LABELS
    # Every instruction completes, in order, one cycle apart.
    completions = [diagram.completion_cycle(label) for label in LABELS]
    assert completions == sorted(completions)
    assert all(done is not None for done in completions)
    assert completions[1] - completions[0] == 1


def test_trap_flushes_younger_instructions():
    diagram = trace_trap(LABELS, trap_index=1)
    # The trapped instruction and everything younger never reach WR.
    for label in LABELS[1:]:
        assert diagram.completion_cycle(label) is None
    assert diagram.completion_cycle("INST1") is not None
    # The handler runs.
    assert diagram.completion_cycle("TA1") is not None


def test_restart_reexecutes_failing_instruction():
    """Figure 2-C: the failing instruction completes on the second try."""
    diagram = trace_restart(LABELS, error_index=1)
    fe = diagram.stage_row("FE")
    assert fe.count("INST2") == 2  # fetched twice
    assert diagram.completion_cycle("INST2") is not None
    assert diagram.completion_cycle("INST5") is not None  # stream resumes
    assert "CHECK" in diagram.stage_row("EX")
    assert "CORR." in diagram.stage_row("ME")
    assert "UPDATE" in diagram.stage_row("WR")


def test_restart_and_trap_cost_the_same():
    """'The time for the complete restart operation takes 4 clock cycles,
    the same as for taking a normal trap.'"""
    trap = trace_trap(LABELS, trap_index=1, handler_labels=("TA1",))
    restart = trace_restart(LABELS, error_index=1)
    trap_refetch = trap.stage_row("FE").index("TA1")
    restart_refetch = restart.stage_row("FE").index("INST2", 2)
    assert trap_refetch == restart_refetch
    assert PipelineTracer.restart_penalty_cycles() == 4


def test_uncorrectable_takes_error_trap():
    diagram = trace_uncorrectable(LABELS, error_index=1)
    assert "CHECK" in diagram.stage_row("EX")
    assert "ERROR" in diagram.stage_row("ME")
    assert "TRAP" in diagram.stage_row("WR")
    assert diagram.completion_cycle("INST2") is None
    assert diagram.completion_cycle("TA1") is not None


def test_render_contains_all_stages():
    text = render_diagram(trace_normal(LABELS))
    for stage in STAGES:
        assert stage in text
    assert "INST1" in text


def test_tracer_bundle():
    tracer = PipelineTracer()
    diagrams = tracer.figure2()
    assert len(diagrams) == 4
    titles = [diagram.title for diagram in diagrams]
    assert titles[0].startswith("A.")
    assert titles[3].startswith("D.")
    text = tracer.render_all()
    assert "CORR." in text and "TRAP" in text


def test_bubble_constant_used_for_empty_slots():
    diagram = trace_normal(["X"])
    assert diagram.stage_row("WR")[0] == BUBBLE
