"""The LEON-FT error-handling paths of sections 4.3-4.6, end to end.

These tests inject SEUs into live systems and verify the exact paper
behaviour: transparent correction with a 4-cycle pipeline restart for the
register file, forced cache miss for cache parity errors, EDAC correction
and sub-blocking for external memory, and TMR masking for flip-flops.
"""

import pytest

from repro import LeonConfig, LeonSystem, ProtectionScheme
from repro.ft.protection import ErrorKind
from repro.iu.pipeline import StepEvent
from repro.iu.timing import CYCLES_TRAP
from repro.sparc.asm import assemble

RES = 0x40100000
BASE = 0x40000000


def load(system, body, symbols=None):
    source = body + "\n_test_done:\n    ba _test_done\n    nop\n"
    program = assemble(source, base=BASE, symbols=symbols)
    system.load_program(program)
    return program


def run_to_end(system, program, max_instructions=100_000):
    return system.run(max_instructions, stop_pc=program.address_of("_test_done"))


class TestRegfileBch:
    def test_single_error_corrected_transparently(self, system):
        """Section 4.4: correctable error -> corrected operand, pipeline
        restart, instruction re-executes with the right value."""
        program = load(system, f"""
            set {RES}, %g4
            set 1234, %g1
        inject_here:
            add %g1, 1, %g2
            st %g2, [%g4]
        """)
        # Run until %g1 holds 1234, then flip a bit in it.
        system.run(stop_pc=program.address_of("inject_here"))
        physical = system.regfile.physical_index(system.special.psr.cwp, 1)
        system.regfile.inject(physical, bit=5)
        run_to_end(system, program)
        assert system.read_word(RES) == 1235  # corrected before use
        assert system.errors.rfe == 1
        assert system.perf.pipeline_restarts == 1
        assert system.errors.register_error_traps == 0

    def test_restart_costs_four_cycles(self, system):
        program = load(system, f"""
            set 1, %g1
        inject_here:
            add %g1, 1, %g2
        """)
        system.run(stop_pc=program.address_of("inject_here"))
        physical = system.regfile.physical_index(system.special.psr.cwp, 1)
        system.regfile.inject(physical, bit=0)
        result = system.step()
        assert result.event is StepEvent.RESTART
        assert result.cycles == 1 + CYCLES_TRAP  # fetch + restart refill
        # The next step re-executes the same instruction successfully.
        again = system.step()
        assert again.event is StepEvent.OK
        assert again.pc == result.pc

    def test_one_register_corrected_per_restart(self, system):
        """'The instruction will be restarted once for each error,
        correcting and storing one register value each time.'"""
        program = load(system, f"""
            set {RES}, %g4
            set 10, %g1
            set 20, %g2
        inject_here:
            add %g1, %g2, %g3
            st %g3, [%g4]
        """)
        system.run(stop_pc=program.address_of("inject_here"))
        cwp = system.special.psr.cwp
        system.regfile.inject(system.regfile.physical_index(cwp, 1), bit=1)
        system.regfile.inject(system.regfile.physical_index(cwp, 2), bit=2)
        run_to_end(system, program)
        assert system.read_word(RES) == 30
        assert system.errors.rfe == 2
        assert system.perf.pipeline_restarts == 2

    def test_double_store_can_restart_four_times(self, system):
        """Worst case of section 4.4: STD with four distinct bad registers."""
        program = load(system, f"""
            set {RES}, %g4
            clr %g5
            set 1, %g2
            set 2, %g3
        inject_here:
            std %g2, [%g4+%g5]
        """)
        system.run(stop_pc=program.address_of("inject_here"))
        cwp = system.special.psr.cwp
        for reg in (2, 3, 4, 5):  # rd, rd+1, rs1, rs2
            system.regfile.inject(system.regfile.physical_index(cwp, reg), bit=3)
        run_to_end(system, program)
        assert system.errors.rfe == 4
        assert system.perf.pipeline_restarts == 4
        assert system.read_word(RES) == 1
        assert system.read_word(RES + 4) == 2

    def test_double_bit_error_takes_register_error_trap(self, system):
        program = load(system, """
            set 77, %g1
        inject_here:
            add %g1, 1, %g2
        """)
        system.run(stop_pc=program.address_of("inject_here"))
        physical = system.regfile.physical_index(system.special.psr.cwp, 1)
        system.regfile.inject(physical, bit=0)
        system.regfile.inject(physical, bit=7)
        result = system.step()
        assert result.event is StepEvent.HALTED  # no trap table: error mode
        assert result.trap_tt == 0x20  # r_register_access_error
        assert system.errors.register_error_traps == 1


class TestRegfileDuplicatedParity:
    @pytest.fixture
    def dup_system(self):
        config = LeonConfig.fault_tolerant().with_changes(
            ft=LeonConfig.fault_tolerant().ft.__class__(
                tmr_flipflops=True,
                regfile_protection=ProtectionScheme.PARITY,
                regfile_duplicated=True,
            )
        )
        return LeonSystem(config)

    def test_parity_corrects_via_duplicate_copy(self, dup_system):
        """Section 4.4: with two 2-port RAMs, parity errors are corrected
        by copying from the error-free memory."""
        system = dup_system
        program = load(system, f"""
            set {RES}, %g4
            set 555, %g1
        inject_here:
            add %g1, 1, %g2
            st %g2, [%g4]
        """)
        system.run(stop_pc=program.address_of("inject_here"))
        physical = system.regfile.physical_index(system.special.psr.cwp, 1)
        system.regfile.inject(physical, bit=4, copy=0)
        run_to_end(system, program)
        assert system.read_word(RES) == 556
        assert system.errors.rfe == 1

    def test_both_copies_bad_is_uncorrectable(self, dup_system):
        """'During the copy operation, the (presumed) error-free ram is also
        checked; if an error is found an uncorrectable error trap is
        generated.'"""
        system = dup_system
        program = load(system, """
            set 1, %g1
        inject_here:
            add %g1, 1, %g2
        """)
        system.run(stop_pc=program.address_of("inject_here"))
        physical = system.regfile.physical_index(system.special.psr.cwp, 1)
        system.regfile.inject(physical, bit=4, copy=0)
        system.regfile.inject(physical, bit=9, copy=1)
        result = system.step()
        assert result.trap_tt == 0x20


class TestCacheParity:
    def test_icache_data_parity_forces_miss(self, system):
        """Section 4.3: parity error -> forced miss, data refetched."""
        program = load(system, f"""
            set {RES}, %g4
            clr %g1
        loop:
            add %g1, 1, %g1
            cmp %g1, 3
            bne loop
            nop
            st %g1, [%g4]
        """)
        # Warm the icache, then corrupt the cached 'add' instruction.
        system.run(max_instructions=6)
        loop_addr = program.address_of("loop")
        index = system.icache._index(loop_addr)
        slot = index * system.icache.words_per_line + system.icache._word(loop_addr)
        system.icache.data_ram.inject(slot, bit=3)
        run_to_end(system, program)
        assert system.read_word(RES) == 3  # re-fetch got the clean copy
        assert system.errors.ide == 1

    def test_icache_tag_parity_forces_miss(self, system):
        program = load(system, f"""
            set {RES}, %g4
            clr %g1
        loop:
            add %g1, 1, %g1
            cmp %g1, 3
            bne loop
            nop
            st %g1, [%g4]
        """)
        system.run(max_instructions=6)
        loop_addr = program.address_of("loop")
        system.icache.tag_ram.inject(system.icache._index(loop_addr), bit=2)
        run_to_end(system, program)
        assert system.read_word(RES) == 3
        assert system.errors.ite == 1

    def test_dcache_data_parity_forces_miss(self, system):
        program = load(system, f"""
            set {RES}, %g4
            set 4242, %g1
            st %g1, [%g4+16]
            ld [%g4+16], %g2        ! allocate in dcache
        inject_here:
            ld [%g4+16], %g3        ! read the (corrupted) cached copy
            st %g3, [%g4]
        """)
        system.run(stop_pc=program.address_of("inject_here"))
        address = RES + 16
        index = system.dcache._index(address)
        slot = index * system.dcache.words_per_line + system.dcache._word(address)
        system.dcache.data_ram.inject(slot, bit=11)
        run_to_end(system, program)
        assert system.read_word(RES) == 4242  # write-through copy wins
        assert system.errors.dde == 1

    def test_dcache_tag_parity_forces_miss(self, system):
        program = load(system, f"""
            set {RES}, %g4
            set 777, %g1
            st %g1, [%g4+16]
            ld [%g4+16], %g2
        inject_here:
            ld [%g4+16], %g3
            st %g3, [%g4]
        """)
        system.run(stop_pc=program.address_of("inject_here"))
        system.dcache.tag_ram.inject(system.dcache._index(RES + 16), bit=0)
        run_to_end(system, program)
        assert system.read_word(RES) == 777
        assert system.errors.dte == 1

    def test_adjacent_double_error_detected_with_dual_parity(self, system):
        """Two parity bits catch MBU doubles in adjacent cells (4.3)."""
        program = load(system, f"""
            set {RES}, %g4
            set 31337, %g1
            st %g1, [%g4+16]
            ld [%g4+16], %g2
        inject_here:
            ld [%g4+16], %g3
            st %g3, [%g4]
        """)
        system.run(stop_pc=program.address_of("inject_here"))
        address = RES + 16
        slot = (system.dcache._index(address) * system.dcache.words_per_line
                + system.dcache._word(address))
        system.dcache.data_ram.inject(slot, bit=8)
        system.dcache.data_ram.inject(slot, bit=9)  # adjacent cell
        run_to_end(system, program)
        assert system.read_word(RES) == 31337
        assert system.errors.dde == 1

    def test_same_group_double_error_escapes_dual_parity(self, system):
        """The residual hole: bits 8 and 10 are both even -> undetected,
        the corrupted value is *used* (the high-flux failure mode)."""
        program = load(system, f"""
            set {RES}, %g4
            set 31337, %g1
            st %g1, [%g4+16]
            ld [%g4+16], %g2
        inject_here:
            ld [%g4+16], %g3
            st %g3, [%g4]
        """)
        system.run(stop_pc=program.address_of("inject_here"))
        address = RES + 16
        slot = (system.dcache._index(address) * system.dcache.words_per_line
                + system.dcache._word(address))
        system.dcache.data_ram.inject(slot, bit=8)
        system.dcache.data_ram.inject(slot, bit=10)
        run_to_end(system, program)
        assert system.read_word(RES) == 31337 ^ (1 << 8) ^ (1 << 10)
        assert system.errors.dde == 0


class TestEdacSubblocking:
    def test_single_memory_error_corrected_on_refill(self, system):
        address = 0x40200000
        system.write_word(address, 0xABCD0123)
        system.memctrl.sram_memory.inject(address - 0x40000000, bit=6)
        program = load(system, f"""
            set {RES}, %g4
            set {address}, %g1
            ld [%g1], %g2
            st %g2, [%g4]
        """)
        run_to_end(system, program)
        assert system.read_word(RES) == 0xABCD0123
        assert system.errors.edac_corrected >= 1

    def test_uncorrectable_word_takes_precise_trap_when_accessed(self, system):
        address = 0x40200000
        system.write_word(address, 0x12345678)
        system.memctrl.sram_memory.inject(address - 0x40000000, bit=0)
        system.memctrl.sram_memory.inject(address - 0x40000000, bit=9)
        program = load(system, f"""
            set {address}, %g1
            ld [%g1], %g2
        """)
        result = run_to_end(system, program)
        assert result.halted.value == "error-mode"  # data_access_error, no table
        assert system.errors.memory_error_traps == 1

    def test_speculative_uncorrectable_word_is_harmless(self, system):
        """Section 4.6 sub-blocking: an uncorrectable error in a word the
        processor never asks for must not trap -- its valid bit just stays
        clear while the rest of the line is used."""
        line = 0x40200000
        for offset in range(0, 16, 4):
            system.write_word(line + offset, offset)
        # Poison word 3 of the line with a double error.
        system.memctrl.sram_memory.inject(line + 12 - 0x40000000, bit=1)
        system.memctrl.sram_memory.inject(line + 12 - 0x40000000, bit=4)
        program = load(system, f"""
            set {RES}, %g4
            set {line}, %g1
            ld [%g1], %g2           ! refills the whole line speculatively
            st %g2, [%g4]
            ld [%g1+4], %g2
            st %g2, [%g4+4]
        """)
        result = run_to_end(system, program)
        assert result.halted.value == "running"
        assert system.read_word(RES) == 0
        assert system.read_word(RES + 4) == 4

    def test_without_subblocking_speculative_error_poisons_line(self):
        """The ablation: single valid bit per line -> the speculative error
        is signalled even though the processor never wanted that word."""
        from repro.core.config import CacheConfig

        config = LeonConfig.fault_tolerant()
        config = config.with_changes(
            dcache=CacheConfig(size_bytes=config.dcache.size_bytes,
                               parity=config.dcache.parity,
                               subblocking=False))
        system = LeonSystem(config)
        line = 0x40200000
        for offset in range(0, 16, 4):
            system.write_word(line + offset, offset)
        system.memctrl.sram_memory.inject(line + 12 - 0x40000000, bit=1)
        system.memctrl.sram_memory.inject(line + 12 - 0x40000000, bit=4)
        program = load(system, f"""
            set {line}, %g1
            ld [%g1], %g2           ! wants word 0, but the line is poisoned
        """)
        result = run_to_end(system, program)
        assert result.halted.value == "error-mode"


class TestTmrProtection:
    def test_psr_upset_masked_with_tmr(self, system):
        program = load(system, f"""
            set {RES}, %g4
            set 42, %g1
        inject_here:
            st %g1, [%g4]
        """)
        system.run(stop_pc=program.address_of("inject_here"))
        system.ffbank.get("iu.psr").inject(bit=7, lane=1)  # S bit, one lane
        system.mark_ffbank_dirty()
        run_to_end(system, program)
        assert system.read_word(RES) == 42
        assert system.special.psr.s == 1

    def test_pc_upset_corrupts_flow_without_tmr(self):
        config = LeonConfig.standard()
        system = LeonSystem(config)
        program = load(system, f"""
            set {RES}, %g4
            set 42, %g1
        inject_here:
            st %g1, [%g4]
        """)
        system.run(stop_pc=program.address_of("inject_here"))
        pc_reg = system.ffbank.get("iu.pc")
        pc_reg.inject(bit=20, lane=0)  # jump 1 MiB away
        system.mark_ffbank_dirty()
        result = system.run(1000, stop_pc=program.address_of("_test_done"))
        # Execution went off the rails: either halted or never reached done.
        assert result.stop_reason != "stop-pc" or system.read_word(RES) != 42

    def test_clock_tree_strike_survived_with_tmr(self, system):
        program = load(system, f"""
            set {RES}, %g4
            set 4711, %g1
        inject_here:
            st %g1, [%g4]
        """)
        system.run(stop_pc=program.address_of("inject_here"))
        system.ffbank.inject_clock_tree(lane=2)
        system.mark_ffbank_dirty()
        run_to_end(system, program)
        assert system.read_word(RES) == 4711


class TestDoubleStoreDelay:
    def test_ft_double_store_costs_one_extra_cycle(self):
        """Section 4.4: the write buffer delays the bus one cycle so the
        second STD word is checked before the store cycle starts."""
        results = {}
        for name, config in (("std", LeonConfig.standard()),
                             ("ft", LeonConfig.fault_tolerant())):
            system = LeonSystem(config)
            program = load(system, f"""
                set {RES}, %g4
                set 1, %g2
                set 2, %g3
                std %g2, [%g4+8]
                std %g2, [%g4+16]
            """)
            run_to_end(system, program)
            results[name] = system.perf.cycles
        assert results["ft"] == results["std"] + 2  # one per STD
