"""The command-line interface."""

import pytest

from repro.cli import main


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Register file" in out
    assert "+100%" in out


def test_figure2(capsys):
    assert main(["figure2"]) == 0
    out = capsys.readouterr().out
    assert "CHECK" in out and "TRAP" in out


def test_rates_single_environment(capsys):
    assert main(["rates", "--environment", "GEO"]) == 0
    out = capsys.readouterr().out
    assert "GEO" in out and "upsets/day" in out
    assert "LEO-polar" not in out


def test_info(capsys):
    assert main(["info", "--config", "express"]) == 0
    out = capsys.readouterr().out
    assert "leon-express" in out
    assert "TMR flip-flops: True" in out
    assert "apb-bridge" in out or "APB peripherals" in out


def test_run_source_file(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("""
        set 0x40100000, %g1
        set 7, %g2
        st %g2, [%g1]
    done:
        ba done
        nop
    """)
    assert main(["run", str(source), "--stop", "done"]) == 0
    out = capsys.readouterr().out
    assert "stopped: stop-pc" in out


def test_run_halting_program_exit_code(tmp_path, capsys):
    source = tmp_path / "crash.s"
    source.write_text("    ta 0\n    nop\n")
    assert main(["run", str(source)]) == 1


def test_campaign(capsys):
    code = main(["campaign", "--program", "cncf", "--let", "60",
                 "--fluence", "300", "--ips", "30000"])
    assert code == 0
    out = capsys.readouterr().out
    assert "X-sect" in out
    assert "failures: 0" in out


def test_campaign_recovery_prints_summary(capsys):
    """The pinned halting scenario: the standard device at LET 110, seed
    16, completes under --recovery ladder and reports the recovery block."""
    code = main(["campaign", "--device", "standard", "--recovery", "ladder",
                 "--let", "110", "--flux", "5000", "--fluence", "10000",
                 "--ips", "30000", "--seed", "16"])
    out = capsys.readouterr().out
    assert code == 1  # the recovered halt still counts as a failure
    assert "recovery summary" in out
    assert "warm-reset" in out or "cold-reboot" in out
    assert "MTTR" in out and "availability" in out


def test_campaign_device_conflicts_with_result_store(tmp_path, capsys):
    code = main(["campaign", "--device", "standard",
                 "--results", str(tmp_path / "runs.jsonl")])
    assert code == 2
    assert "express" in capsys.readouterr().err


def test_availability_analytic_table(capsys):
    assert main(["availability", "--environment", "GEO"]) == 0
    out = capsys.readouterr().out
    assert "LEON-FT" in out and "unprotected" in out
    assert "availability" in out


def test_availability_measured(tmp_path, capsys):
    from repro.fault.campaign import Campaign, CampaignConfig
    from repro.fault.results import ResultStore

    result = Campaign(CampaignConfig(
        program="iutest", seed=3, recovery="ladder", fluence=300.0,
        instructions_per_second=20_000.0)).run()
    result.cycles = 1_000_000
    result.recoveries = {"pipeline-restart": 2, "warm-reset": 1}
    result.recovery_downtime = {"pipeline-restart": 8, "warm-reset": 45_000}
    result.halts = 1
    with ResultStore(str(tmp_path / "meas.jsonl")) as store:
        store.append([result])
    code = main(["availability", "--measured", str(tmp_path / "meas.jsonl")])
    out = capsys.readouterr().out
    assert code == 0
    assert "measured from" in out
    assert "warm-reset" in out
    assert "mean outage" in out
    assert "measured outage" in out


def test_availability_measured_empty_store(tmp_path, capsys):
    assert main(["availability", "--measured",
                 str(tmp_path / "missing.jsonl")]) == 1
    assert "no results" in capsys.readouterr().err


def test_campaign_reports_elapsed_wall_throughput(capsys):
    """The throughput line must use batch-elapsed wall time (parallel
    runs overlap; summing per-run times understates by ~--jobs x), and
    report the per-run CPU alongside."""
    code = main(["campaign", "--program", "iutest", "--let", "60",
                 "--fluence", "300", "--ips", "20000",
                 "--runs", "2", "--jobs", "2"])
    assert code == 0
    out = capsys.readouterr().out
    line = next(l for l in out.splitlines() if "host-throughput" in l)
    assert "s wall" in line and "s run CPU" in line
    assert "--jobs 2" in line


def test_campaign_trace_and_trace_stats_subcommands(tmp_path, capsys):
    trace = str(tmp_path / "trace.jsonl")
    assert main(["campaign", "--program", "iutest", "--let", "110",
                 "--flux", "400", "--fluence", "600", "--ips", "20000",
                 "--runs", "2", "--jobs", "2", "--trace", trace]) == 0
    capsys.readouterr()

    assert main(["trace", trace]) == 0
    out = capsys.readouterr().out
    assert "upset 0" in out
    assert "without a terminal event" not in out

    assert main(["trace", trace, "--run", "1", "--target",
                 "icache-tag"]) == 0
    out = capsys.readouterr().out
    assert "run 0" not in out

    assert main(["trace", trace, "--events"]) == 0
    lines = capsys.readouterr().out.splitlines()
    assert all(l.startswith("{") for l in lines if l)

    # stats folds the trace alone and must agree with the run readouts.
    assert main(["stats", trace]) == 0
    out = capsys.readouterr().out
    assert "events vs run-end readouts: match" in out
    assert "phase timers" in out


def test_campaign_resume_reuses_zero_upset_run(tmp_path, capsys):
    """A stored run with zero upsets (below-threshold LET) must count as
    done on resume -- the lookup checks for None, not falsiness."""
    log = str(tmp_path / "runs.jsonl")
    base = ["campaign", "--program", "iutest", "--let", "3",
            "--fluence", "200", "--ips", "20000"]
    assert main(base + ["--results", log]) == 0
    out = capsys.readouterr().out
    assert "upsets: 0" in out
    assert len(open(log).readlines()) == 1
    assert main(base + ["--resume", log]) == 0
    out = capsys.readouterr().out
    assert "resume: 1 of 1" in out
    assert "upsets: 0" in out
    assert len(open(log).readlines()) == 1  # nothing re-ran


def test_campaign_warm_start_results_and_resume(tmp_path, capsys):
    log = str(tmp_path / "runs.jsonl")
    base = ["campaign", "--program", "iutest", "--let", "60",
            "--fluence", "150", "--ips", "20000", "--beam-delay", "0.5",
            "--warm-start"]
    assert main(base + ["--runs", "2", "--results", log]) == 0
    capsys.readouterr()
    assert len(open(log).readlines()) == 2
    # Resuming with more replicas reuses the stored two, runs three more.
    assert main(base + ["--runs", "5", "--resume", log]) == 0
    out = capsys.readouterr().out
    assert "resume: 2 of 5" in out
    assert len(open(log).readlines()) == 5


def test_sweep_warm_start(capsys):
    assert main(["sweep", "--program", "iutest", "--lets", "25,60",
                 "--fluence", "150", "--ips", "20000",
                 "--beam-delay", "0.5", "--warm-start"]) == 0
    out = capsys.readouterr().out
    assert "2 LET points" in out


def test_state_save_and_info(tmp_path, capsys):
    path = str(tmp_path / "snap.bin")
    assert main(["state", "save", path, "--program", "iutest",
                 "--instructions", "2000"]) == 0
    assert main(["state", "info", path]) == 0
    out = capsys.readouterr().out
    assert "format version: 1" in out
    assert "regfile" in out
    assert "architectural digest" in out


def test_ingest_results_into_database(tmp_path, capsys):
    log = str(tmp_path / "runs.jsonl")
    db = str(tmp_path / "campaigns.db")
    assert main(["campaign", "--program", "iutest", "--let", "60",
                 "--fluence", "150", "--ips", "20000", "--runs", "2",
                 "--results", log]) == 0
    capsys.readouterr()
    assert main(["ingest", log, "--db", db]) == 0
    out = capsys.readouterr().out
    assert "2 run(s) -> campaign 'runs' (#1)" in out  # stem names it
    # Re-ingest is idempotent: the upsert keeps the same campaign.
    assert main(["ingest", log, "--db", db, "--name", "named"]) == 0

    from repro.store import CampaignDatabase

    with CampaignDatabase(db) as database:
        assert len(database.results(database.campaign_id("runs"))) == 2
        assert len(database.results(database.campaign_id("named"))) == 2


def test_ingest_missing_file_fails(tmp_path, capsys):
    db = str(tmp_path / "campaigns.db")
    assert main(["ingest", str(tmp_path / "absent.jsonl"),
                 "--db", db]) == 1
    assert "error:" in capsys.readouterr().err


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
