"""The command-line interface."""

import pytest

from repro.cli import main


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Register file" in out
    assert "+100%" in out


def test_figure2(capsys):
    assert main(["figure2"]) == 0
    out = capsys.readouterr().out
    assert "CHECK" in out and "TRAP" in out


def test_rates_single_environment(capsys):
    assert main(["rates", "--environment", "GEO"]) == 0
    out = capsys.readouterr().out
    assert "GEO" in out and "upsets/day" in out
    assert "LEO-polar" not in out


def test_info(capsys):
    assert main(["info", "--config", "express"]) == 0
    out = capsys.readouterr().out
    assert "leon-express" in out
    assert "TMR flip-flops: True" in out
    assert "apb-bridge" in out or "APB peripherals" in out


def test_run_source_file(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("""
        set 0x40100000, %g1
        set 7, %g2
        st %g2, [%g1]
    done:
        ba done
        nop
    """)
    assert main(["run", str(source), "--stop", "done"]) == 0
    out = capsys.readouterr().out
    assert "stopped: stop-pc" in out


def test_run_halting_program_exit_code(tmp_path, capsys):
    source = tmp_path / "crash.s"
    source.write_text("    ta 0\n    nop\n")
    assert main(["run", str(source)]) == 1


def test_campaign(capsys):
    code = main(["campaign", "--program", "cncf", "--let", "60",
                 "--fluence", "300", "--ips", "30000"])
    assert code == 0
    out = capsys.readouterr().out
    assert "X-sect" in out
    assert "failures: 0" in out


def test_campaign_warm_start_results_and_resume(tmp_path, capsys):
    log = str(tmp_path / "runs.jsonl")
    base = ["campaign", "--program", "iutest", "--let", "60",
            "--fluence", "150", "--ips", "20000", "--beam-delay", "0.5",
            "--warm-start"]
    assert main(base + ["--runs", "2", "--results", log]) == 0
    capsys.readouterr()
    assert len(open(log).readlines()) == 2
    # Resuming with more replicas reuses the stored two, runs three more.
    assert main(base + ["--runs", "5", "--resume", log]) == 0
    out = capsys.readouterr().out
    assert "resume: 2 of 5" in out
    assert len(open(log).readlines()) == 5


def test_sweep_warm_start(capsys):
    assert main(["sweep", "--program", "iutest", "--lets", "25,60",
                 "--fluence", "150", "--ips", "20000",
                 "--beam-delay", "0.5", "--warm-start"]) == 0
    out = capsys.readouterr().out
    assert "2 LET points" in out


def test_state_save_and_info(tmp_path, capsys):
    path = str(tmp_path / "snap.bin")
    assert main(["state", "save", path, "--program", "iutest",
                 "--instructions", "2000"]) == 0
    assert main(["state", "info", path]) == 0
    out = capsys.readouterr().out
    assert "format version: 1" in out
    assert "regfile" in out
    assert "architectural digest" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
