"""The command-line interface."""

import pytest

from repro.cli import main


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Register file" in out
    assert "+100%" in out


def test_figure2(capsys):
    assert main(["figure2"]) == 0
    out = capsys.readouterr().out
    assert "CHECK" in out and "TRAP" in out


def test_rates_single_environment(capsys):
    assert main(["rates", "--environment", "GEO"]) == 0
    out = capsys.readouterr().out
    assert "GEO" in out and "upsets/day" in out
    assert "LEO-polar" not in out


def test_info(capsys):
    assert main(["info", "--config", "express"]) == 0
    out = capsys.readouterr().out
    assert "leon-express" in out
    assert "TMR flip-flops: True" in out
    assert "apb-bridge" in out or "APB peripherals" in out


def test_run_source_file(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("""
        set 0x40100000, %g1
        set 7, %g2
        st %g2, [%g1]
    done:
        ba done
        nop
    """)
    assert main(["run", str(source), "--stop", "done"]) == 0
    out = capsys.readouterr().out
    assert "stopped: stop-pc" in out


def test_run_halting_program_exit_code(tmp_path, capsys):
    source = tmp_path / "crash.s"
    source.write_text("    ta 0\n    nop\n")
    assert main(["run", str(source)]) == 1


def test_campaign(capsys):
    code = main(["campaign", "--program", "cncf", "--let", "60",
                 "--fluence", "300", "--ips", "30000"])
    assert code == 0
    out = capsys.readouterr().out
    assert "X-sect" in out
    assert "failures: 0" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
