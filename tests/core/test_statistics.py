"""Error and performance counters."""

from repro.core.statistics import ErrorCounters, PerfCounters


class TestErrorCounters:
    def test_total_sums_table2_columns(self):
        counters = ErrorCounters(ite=1, ide=2, dte=3, dde=4, rfe=5)
        assert counters.total == 15
        assert counters.as_dict() == {
            "ITE": 1, "IDE": 2, "DTE": 3, "DDE": 4, "RFE": 5, "Total": 15,
        }

    def test_edac_not_in_table2_total(self):
        counters = ErrorCounters(edac_corrected=100)
        assert counters.total == 0

    def test_reset(self):
        counters = ErrorCounters(ite=1, rfe=2, edac_corrected=3,
                                 register_error_traps=4, memory_error_traps=5)
        counters.reset()
        assert counters.total == 0
        assert counters.edac_corrected == 0
        assert counters.register_error_traps == 0
        assert counters.memory_error_traps == 0


class TestPerfCounters:
    def test_ipc(self):
        perf = PerfCounters(cycles=200, instructions=100)
        assert perf.ipc == 0.5
        assert PerfCounters().ipc == 0.0

    def test_hit_rates(self):
        perf = PerfCounters(icache_hits=90, icache_misses=10,
                            dcache_hits=30, dcache_misses=10)
        assert perf.icache_hit_rate == 0.9
        assert perf.dcache_hit_rate == 0.75
        assert PerfCounters().icache_hit_rate == 0.0

    def test_reset_clears_everything(self):
        perf = PerfCounters(cycles=10, instructions=5, traps=2,
                            pipeline_restarts=1, restart_cycles=4)
        perf.reset()
        assert perf.cycles == perf.instructions == perf.traps == 0
        assert perf.pipeline_restarts == perf.restart_cycles == 0
