"""Guard: ``run()``'s predicate path and ``run_fast()`` are interchangeable.

The campaign drives its fault-free stretches through :meth:`LeonSystem.run`,
which takes the tight :meth:`run_fast` loop whenever no ``stop_when``
predicate is given.  The two loops must stay semantically identical -- a
divergence would silently change recorded campaign results -- so this runs
the same workload down both paths and compares the complete device state.
"""

from repro.fault.campaign import Campaign, CampaignConfig


def _built(program="iutest"):
    campaign = Campaign(CampaignConfig(program=program))
    system, spin, _base, _program = campaign._build_program()
    return system, spin


def _run_slow(system, budget, spin):
    """Force run()'s per-step predicate path with a never-firing predicate."""
    return system.run(budget, stop_pc=spin, stop_when=lambda result: False)


def test_run_and_run_fast_reach_identical_state():
    budget = 8_000
    fast_system, spin = _built()
    fast_result = fast_system.run_fast(budget, stop_pc=spin)

    slow_system, _ = _built()
    slow_result = _run_slow(slow_system, budget, spin)

    assert fast_result.instructions == slow_result.instructions == budget
    assert fast_result.cycles == slow_result.cycles
    assert fast_result.steps == slow_result.steps
    assert fast_result.stop_reason == slow_result.stop_reason
    assert fast_result.pc == slow_result.pc
    assert fast_system.snapshot() == slow_system.snapshot()


def test_equivalence_survives_an_injected_error():
    """The loops must also agree through a correction event."""
    budget = 6_000
    systems = []
    for _ in range(2):
        system, spin = _built()
        system.run(1_000, stop_pc=spin)
        system.regfile.inject_flat(40)
        system.icache.tag_ram.inject_flat(8)
        systems.append((system, spin))

    (fast_system, spin), (slow_system, _) = systems
    fast_result = fast_system.run_fast(budget, stop_pc=spin)
    slow_result = _run_slow(slow_system, budget, spin)

    assert fast_result.instructions == slow_result.instructions
    assert fast_result.cycles == slow_result.cycles
    assert fast_system.errors.as_dict() == slow_system.errors.as_dict()
    assert fast_system.snapshot() == slow_system.snapshot()


def test_run_dispatches_to_run_fast_without_predicate():
    budget = 3_000
    via_run, spin = _built()
    run_result = via_run.run(budget, stop_pc=spin)

    via_fast, _ = _built()
    fast_result = via_fast.run_fast(budget, stop_pc=spin)

    assert run_result.instructions == fast_result.instructions
    assert run_result.cycles == fast_result.cycles
    assert via_run.snapshot() == via_fast.snapshot()
