"""Master/checker lock-step operation (section 4.7)."""

from repro import LeonConfig, MasterChecker, assemble
from repro.fault.injector import FaultInjector

SRAM = 0x40000000

PROGRAM = """
    set 0x40100000, %g4
    clr %g1
loop:
    add %g1, 1, %g1
    st %g1, [%g4]
    cmp %g1, 50
    bne loop
    nop
end:
    ba end
    nop
"""


def test_identical_devices_never_mismatch():
    pair = MasterChecker(LeonConfig.fault_tolerant())
    pair.load_program(assemble(PROGRAM, base=SRAM))
    steps, errors = pair.run(500)
    assert errors == []
    assert pair.master.read_word(0x40100000) == pair.checker.read_word(0x40100000)


def test_correction_skews_the_pair():
    """Section 4.7: 'the correction of register file or cache memory errors
    will also result in a master/checker error since the execution in the
    two processors will be skewed.'"""
    pair = MasterChecker(LeonConfig.fault_tolerant())
    pair.load_program(assemble(PROGRAM, base=SRAM))
    pair.run(20)
    # Inject a correctable error into the master only.
    cwp = pair.master.special.psr.cwp
    physical = pair.master.regfile.physical_index(cwp, 1)
    pair.master.regfile.inject(physical, bit=2)
    _steps, errors = pair.run(100, stop_on_compare_error=True)
    assert errors  # compare error raised even though the master corrected
    assert pair.master.errors.rfe == 1
    assert pair.checker.errors.rfe == 0


def test_uncorrected_corruption_also_caught():
    """An upset the FT logic cannot see (unprotected config) still trips
    the checker -- the high-coverage detection mode used during SEU tests."""
    pair = MasterChecker(LeonConfig.standard())
    pair.load_program(assemble(PROGRAM, base=SRAM))
    pair.run(20)
    cwp = pair.master.special.psr.cwp
    physical = pair.master.regfile.physical_index(cwp, 1)
    pair.master.regfile.inject(physical, bit=2)
    _steps, errors = pair.run(200, stop_on_compare_error=True)
    assert errors
    assert errors[0].field in ("writes", "pc", "cycles", "event")


def test_flipflop_upset_with_tmr_stays_in_step():
    pair = MasterChecker(LeonConfig.fault_tolerant())
    pair.load_program(assemble(PROGRAM, base=SRAM))
    pair.run(10)
    injector = FaultInjector(pair.master)
    injector.inject("flipflops", 40)
    _steps, errors = pair.run(200, stop_on_compare_error=True)
    # TMR masks the upset: no skew, no compare error.
    assert errors == []


def test_resynchronize_resets_checker():
    pair = MasterChecker(LeonConfig.fault_tolerant())
    pair.load_program(assemble(PROGRAM, base=SRAM))
    pair.run(10)
    pair.master.regfile.inject(1, bit=0)
    pair.run(100, stop_on_compare_error=True)
    pair.resynchronize()
    assert pair.compare_errors == []
