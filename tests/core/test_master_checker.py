"""Master/checker lock-step operation (section 4.7)."""

from repro import LeonConfig, MasterChecker, assemble
from repro.fault.injector import FaultInjector
from repro.iu.pipeline import HaltReason

SRAM = 0x40000000

PROGRAM = """
    set 0x40100000, %g4
    clr %g1
loop:
    add %g1, 1, %g1
    st %g1, [%g4]
    cmp %g1, 50
    bne loop
    nop
end:
    ba end
    nop
"""


def test_identical_devices_never_mismatch():
    pair = MasterChecker(LeonConfig.fault_tolerant())
    pair.load_program(assemble(PROGRAM, base=SRAM))
    steps, errors = pair.run(500)
    assert errors == []
    assert pair.master.read_word(0x40100000) == pair.checker.read_word(0x40100000)


def test_correction_skews_the_pair():
    """Section 4.7: 'the correction of register file or cache memory errors
    will also result in a master/checker error since the execution in the
    two processors will be skewed.'"""
    pair = MasterChecker(LeonConfig.fault_tolerant())
    pair.load_program(assemble(PROGRAM, base=SRAM))
    pair.run(20)
    # Inject a correctable error into the master only.
    cwp = pair.master.special.psr.cwp
    physical = pair.master.regfile.physical_index(cwp, 1)
    pair.master.regfile.inject(physical, bit=2)
    _steps, errors = pair.run(100, stop_on_compare_error=True)
    assert errors  # compare error raised even though the master corrected
    assert pair.master.errors.rfe == 1
    assert pair.checker.errors.rfe == 0


def test_uncorrected_corruption_also_caught():
    """An upset the FT logic cannot see (unprotected config) still trips
    the checker -- the high-coverage detection mode used during SEU tests."""
    pair = MasterChecker(LeonConfig.standard())
    pair.load_program(assemble(PROGRAM, base=SRAM))
    pair.run(20)
    cwp = pair.master.special.psr.cwp
    physical = pair.master.regfile.physical_index(cwp, 1)
    pair.master.regfile.inject(physical, bit=2)
    _steps, errors = pair.run(200, stop_on_compare_error=True)
    assert errors
    assert errors[0].field in ("writes", "pc", "cycles", "event")


def test_flipflop_upset_with_tmr_stays_in_step():
    pair = MasterChecker(LeonConfig.fault_tolerant())
    pair.load_program(assemble(PROGRAM, base=SRAM))
    pair.run(10)
    injector = FaultInjector(pair.master)
    injector.inject("flipflops", 40)
    _steps, errors = pair.run(200, stop_on_compare_error=True)
    # TMR masks the upset: no skew, no compare error.
    assert errors == []


def test_resynchronize_resets_checker():
    pair = MasterChecker(LeonConfig.fault_tolerant())
    pair.load_program(assemble(PROGRAM, base=SRAM))
    pair.run(10)
    pair.master.regfile.inject(1, bit=0)
    pair.run(100, stop_on_compare_error=True)
    pair.resynchronize()
    assert pair.compare_errors == []


def test_resynchronize_from_master_restores_lockstep():
    """The paper's synchronizing reset: after a skew, the checker is
    restored from the master and lock-step execution simply continues."""
    pair = MasterChecker(LeonConfig.standard())
    pair.load_program(assemble(PROGRAM, base=SRAM))
    pair.run(10)
    cwp = pair.checker.special.psr.cwp
    physical = pair.checker.regfile.physical_index(cwp, 1)
    pair.checker.regfile.inject(physical, bit=3)
    _steps, errors = pair.run(100, stop_on_compare_error=True)
    assert errors  # the pair skewed
    pair.resynchronize()
    assert pair.resyncs == 1
    _steps, errors = pair.run(200, stop_on_compare_error=True)
    assert errors == []  # back in step, no harness reload needed
    assert pair.master.read_word(0x40100000) == \
        pair.checker.read_word(0x40100000)


def test_fail_over_promotes_healthy_checker():
    pair = MasterChecker(LeonConfig.fault_tolerant())
    pair.load_program(assemble(PROGRAM, base=SRAM))
    pair.run(20)
    pair.master.iu.halted = HaltReason.ERROR_MODE
    failed = pair.master
    pair.fail_over()
    assert pair.checker is failed
    assert pair.failovers == 1 and pair.resyncs == 1
    # The failed device was restored from the new master: both run.
    assert pair.master.halted.value == "running"
    assert pair.checker.halted.value == "running"
    _steps, errors = pair.run(100, stop_on_compare_error=True)
    assert errors == []


def test_run_with_recovery_rides_through_compare_errors():
    pair = MasterChecker(LeonConfig.fault_tolerant())
    pair.load_program(assemble(PROGRAM, base=SRAM))
    pair.run(10)
    cwp = pair.checker.special.psr.cwp
    physical = pair.checker.regfile.physical_index(cwp, 1)
    pair.checker.regfile.inject(physical, bit=3)
    report = pair.run_with_recovery(400, resync_cycles=1_000)
    assert report.completed
    assert report.steps == 400
    assert report.compare_errors >= 1
    assert report.resyncs >= 1
    assert report.failovers == 0
    assert report.downtime_cycles == report.resyncs * 1_000


def test_run_with_recovery_stops_when_both_devices_die():
    pair = MasterChecker(LeonConfig.standard())
    pair.load_program(assemble("    ta 0\n    nop\n", base=SRAM))
    report = pair.run_with_recovery(100)
    assert not report.completed
    assert report.steps < 100
