"""The assembled LEON system: wiring, program loading, run control."""

import pytest

from repro import LeonConfig, LeonSystem, assemble
from repro.errors import BusError, SimulationError

SRAM = 0x40000000


def test_default_configuration_is_ft():
    system = LeonSystem()
    assert system.config.ft.tmr_flipflops


def test_memory_map_has_all_slaves():
    system = LeonSystem()
    names = {slave.name for slave in system.bus.slaves()}
    assert names == {"prom", "sram", "io", "apb-bridge"}
    apb_names = {slave.name for slave in system.apb.slaves()}
    assert apb_names == {"sysregs", "timers", "uart1", "uart2",
                         "irqctrl", "ioport", "errmon", "dma"}


def test_load_program_and_read_back():
    system = LeonSystem()
    program = assemble("nop\nnop", base=SRAM)
    system.load_program(program)
    assert system.read_word(SRAM) == program.words[0]
    assert system.special.pc == SRAM


def test_load_program_into_prom():
    system = LeonSystem()
    program = assemble("nop", base=0)
    system.load_program(program)
    assert system.special.pc == 0


def test_image_must_fit_one_bank():
    system = LeonSystem()
    with pytest.raises(SimulationError):
        system.write_image(0x30000000, b"\x00" * 8)  # unmapped
    size = system.config.memory.sram_bytes
    with pytest.raises(SimulationError):
        system.write_image(SRAM + size - 4, b"\x00" * 8)  # straddles the end


def test_read_write_word_helpers():
    system = LeonSystem()
    system.write_word(SRAM + 4, 123)
    assert system.read_word(SRAM + 4) == 123
    with pytest.raises(BusError):
        system.read_word(0x70000000)


def test_run_stop_conditions():
    system = LeonSystem()
    program = assemble("""
    start:
        add %g1, 1, %g1
    stopper:
        ba start
        nop
    """, base=SRAM)
    system.load_program(program)
    result = system.run(10_000, stop_pc=program.address_of("stopper"))
    assert result.stop_reason == "stop-pc"
    result = system.run(5)
    assert result.stop_reason == "budget"
    assert result.instructions == 5


def test_run_stop_when_predicate():
    system = LeonSystem()
    program = assemble("nop\nnop\nnop\nend:\n ba end\n nop", base=SRAM)
    system.load_program(program)
    result = system.run(100, stop_when=lambda r: r.pc == SRAM + 8)
    assert result.stop_reason == "predicate"


def test_power_down_idles_until_interrupt():
    """A write to the power-down register stops execution; a timer
    interrupt wakes the processor (if it were enabled)."""
    system = LeonSystem()
    program = assemble(f"""
        set 0x80000018, %g1
        st %g0, [%g1]           ! power down
        nop
    """, base=SRAM)
    system.load_program(program)
    result = system.run(100, max_idle_steps=10)
    assert result.stop_reason == "idle"


def test_error_counters_surface_on_apb():
    system = LeonSystem()
    system.errors.rfe = 7
    assert system.read_word(0x800000B0 + 0x10) == 7


def test_uart_output_capture():
    system = LeonSystem()
    program = assemble("""
        set 0x80000078, %g1     ! uart1 control
        mov 3, %g2              ! rx+tx enable
        st %g2, [%g1]
        set 0x80000070, %g1     ! uart1 data
        mov 65, %g2
        st %g2, [%g1]
    end:
        ba end
        nop
    """, base=SRAM)
    system.load_program(program)
    system.run(100, stop_pc=program.address_of("end"))
    system.apb.tick(1000)
    assert system.uart_output() == b"A"


def test_perf_counters_accumulate():
    system = LeonSystem()
    program = assemble("nop\nnop\nend:\n ba end\n nop", base=SRAM)
    system.load_program(program)
    system.run(10, stop_pc=program.address_of("end"))
    assert system.perf.instructions == 2
    assert system.perf.cycles >= 2
    assert 0 < system.perf.ipc <= 1
