"""Configuration package validation (the VHDL config package mirror)."""

import pytest

from repro.core.config import CacheConfig, FtConfig, LeonConfig, MemoryConfig
from repro.errors import ConfigurationError
from repro.ft.protection import ProtectionScheme


def test_standard_preset_matches_table1():
    config = LeonConfig.standard()
    assert not config.has_fpu
    assert config.regfile_words == 136
    assert config.icache.size_bytes + config.dcache.size_bytes == 16384
    assert not config.ft.tmr_flipflops
    assert config.icache.parity is ProtectionScheme.NONE


def test_ft_preset_matches_table1():
    config = LeonConfig.fault_tolerant()
    assert config.ft.tmr_flipflops
    assert config.ft.regfile_protection is ProtectionScheme.BCH
    assert config.icache.parity is ProtectionScheme.DUAL_PARITY
    assert config.memory.edac


def test_leon_express_has_fpu():
    config = LeonConfig.leon_express()
    assert config.has_fpu
    assert config.ft.tmr_flipflops


def test_with_changes_returns_new_config():
    config = LeonConfig.standard()
    changed = config.with_changes(nwindows=4)
    assert changed.nwindows == 4
    assert config.nwindows == 8
    assert changed.regfile_words == 4 * 16 + 8


def test_cache_validation():
    with pytest.raises(ConfigurationError):
        CacheConfig(size_bytes=1000)  # not a power of two
    with pytest.raises(ConfigurationError):
        CacheConfig(line_bytes=64)
    with pytest.raises(ConfigurationError):
        CacheConfig(size_bytes=8, line_bytes=16)
    with pytest.raises(ConfigurationError):
        CacheConfig(parity=ProtectionScheme.BCH)


def test_cache_derived_fields():
    cache = CacheConfig(size_bytes=8192, line_bytes=16)
    assert cache.lines == 512
    assert cache.words_per_line == 4


def test_memory_validation():
    with pytest.raises(ConfigurationError):
        MemoryConfig(sram_bytes=10)
    with pytest.raises(ConfigurationError):
        MemoryConfig(prom_waitstates=-1)


def test_ft_validation():
    with pytest.raises(ConfigurationError):
        FtConfig(regfile_duplicated=True,
                 regfile_protection=ProtectionScheme.BCH)
    with pytest.raises(ConfigurationError):
        FtConfig(regfile_duplicated=True,
                 regfile_protection=ProtectionScheme.NONE)
    FtConfig(regfile_duplicated=True,
             regfile_protection=ProtectionScheme.PARITY)  # fine


def test_nwindows_bounds():
    with pytest.raises(ConfigurationError):
        LeonConfig(nwindows=1)
    with pytest.raises(ConfigurationError):
        LeonConfig(nwindows=33)
