"""The job queue: lifecycle, resume, cancel, concurrent submitters."""

import threading

import pytest

from repro.fault.campaign import CampaignConfig
from repro.fault.executor import CampaignExecutor, expand_runs
from repro.fault.results import config_key
from repro.service import JobQueue
from repro.store import CampaignDatabase

#: Tiny settings (2.25k instructions end to end): queue turnaround in
#: well under a second per run.
TINY = dict(flux=400.0, fluence=150.0, instructions_per_second=2_000.0,
            beam_delay_s=0.25, beam_tail_s=0.5,
            flush_period_instructions=400)


def _tiny(let=60.0, seed=11, **overrides):
    settings = dict(TINY)
    settings.update(overrides)
    return CampaignConfig(program="iutest", let=let, seed=seed, **settings)


@pytest.fixture()
def db():
    with CampaignDatabase(":memory:") as database:
        yield database


@pytest.fixture()
def queue(db):
    q = JobQueue(db).start()
    yield q
    q.stop()


def test_job_runs_to_done(db, queue):
    configs = expand_runs(_tiny(), 3)
    job_id = queue.submit(configs, name="smoke")
    record = queue.wait(job_id, timeout_s=120)
    assert record["state"] == "done"
    assert record["completed"] == 3
    results = db.results(db.campaign_id("smoke"))
    assert [config_key(r.config) for r in results] == \
        [config_key(config) for config in configs]


def test_job_results_match_direct_executor(db, queue):
    configs = expand_runs(_tiny(), 3)
    job_id = queue.submit(configs, name="via-queue")
    queue.wait(job_id, timeout_s=120)
    direct = CampaignExecutor(1).run_many(configs)
    stored = db.results(db.campaign_id("via-queue"))
    assert [r.comparable() for r in stored] == \
        [r.comparable() for r in direct]


def test_concurrent_submitters_both_complete(db, queue):
    """Two submitters racing: both jobs finish and their campaigns hold
    exactly their own configs' results (jobs-invariant)."""
    jobs = {}

    def submit(name, seed):
        jobs[name] = queue.submit(expand_runs(_tiny(seed=seed), 2),
                                  name=name)

    threads = [threading.Thread(target=submit, args=(f"racer-{i}", 20 + i))
               for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for name, job_id in jobs.items():
        record = queue.wait(job_id, timeout_s=120)
        assert record["state"] == "done"
        assert len(db.results(db.campaign_id(name))) == 2
    direct = CampaignExecutor(1).run_many(expand_runs(_tiny(seed=20), 2))
    stored = db.results(db.campaign_id("racer-0"))
    assert [r.comparable() for r in stored] == \
        [r.comparable() for r in direct]


def test_cancel_queued_job(db, queue):
    # Pin the scheduler down with a real job, then cancel one behind it.
    first = queue.submit(expand_runs(_tiny(), 2), name="ahead")
    victim = queue.submit(expand_runs(_tiny(seed=77), 50), name="victim")
    assert queue.cancel(victim)
    queue.wait(first, timeout_s=120)
    record = queue.wait(victim, timeout_s=120)
    assert record["state"] == "cancelled"
    assert not queue.cancel(victim)  # already finished


def test_resume_skips_stored_runs(db):
    """A restarted queue re-enqueues unfinished jobs and only runs the
    configs whose results are not already stored."""
    configs = expand_runs(_tiny(), 3)
    job_id = db.create_job(configs, name="interrupted")
    campaign = db.campaign_id("interrupted")
    # Simulate a crash after two runs landed.
    done = CampaignExecutor(1).run_many(configs[:2])
    db.add_results(campaign, done)
    db.update_job(job_id, state="running", completed=2)

    q = JobQueue(db).start()
    try:
        record = q.wait(job_id, timeout_s=120)
    finally:
        q.stop()
    assert record["state"] == "done"
    assert record["completed"] == 3
    stored = db.results(campaign)
    assert [config_key(r.config) for r in stored] == \
        [config_key(config) for config in configs]
    direct = CampaignExecutor(1).run_many(configs)
    assert [r.comparable() for r in stored] == \
        [r.comparable() for r in direct]


def test_trace_option_stores_run_events(db, queue):
    job_id = queue.submit(expand_runs(_tiny(), 2), name="traced",
                          options={"trace": True})
    queue.wait(job_id, timeout_s=120)
    events = db.events(db.campaign_id("traced"))
    assert events
    assert {event["run"] for event in events} <= {0, 1}
    assert any(event["ev"] == "run-end" for event in events)


def test_submit_rejects_empty(queue):
    with pytest.raises(ValueError):
        queue.submit([])
