"""The HTTP API: submission payloads, endpoints, error mapping."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.fault.executor import CampaignExecutor
from repro.fault.results import config_key
from repro.service.api import build_job_request, make_server

#: Tiny submission: 2.25k instructions end to end per run.
TINY_PAYLOAD = {
    "program": "iutest", "let": 60.0, "flux": 400.0, "fluence": 150.0,
    "seed": 11, "ips": 2_000.0, "beam_delay": 0.25, "beam_tail": 0.5,
    "flush_period": 400,
}


# -- payload validation --------------------------------------------------------


def test_build_job_request_single_point():
    configs, name, options = build_job_request(dict(TINY_PAYLOAD, runs=3))
    assert len(configs) == 3
    assert configs[0].seed == 11  # replica 0 keeps the seed
    assert configs[0].let == 60.0
    assert configs[0].flush_period_instructions == 400
    assert name is None
    assert options["jobs"] == 1 and options["early_exit"] is True


def test_build_job_request_lets_mirror_measure_curve():
    configs, _, _ = build_job_request(
        dict(TINY_PAYLOAD, lets=[25.0, 60.0, 110.0]))
    assert [config.let for config in configs] == [25.0, 60.0, 110.0]
    # The published seed-plus-index mapping of measure_curve.
    assert [config.seed for config in configs] == [11, 12, 13]


def test_build_job_request_rejects_bad_input():
    with pytest.raises(ValueError):
        build_job_request(dict(TINY_PAYLOAD, program="rowhammer"))
    with pytest.raises(ValueError):
        build_job_request(dict(TINY_PAYLOAD, recovery="prayer"))
    with pytest.raises(ValueError):
        build_job_request(dict(TINY_PAYLOAD, runs=0))
    with pytest.raises(ValueError):
        build_job_request(dict(TINY_PAYLOAD, let="not-a-number"))
    with pytest.raises(ValueError):
        build_job_request(dict(TINY_PAYLOAD, lets=[]))
    with pytest.raises(ValueError):
        build_job_request([1, 2, 3])


# -- the server ----------------------------------------------------------------


@pytest.fixture(scope="module")
def server():
    instance = make_server(":memory:", port=0)
    thread = threading.Thread(target=instance.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.queue.stop()
    instance.db.close()


def _call(server, path, payload=None):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode() if payload is not None else None,
        headers={"Content-Type": "application/json"}
        if payload is not None else {},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def test_submit_poll_and_read_back(server):
    job = _call(server, "/api/jobs",
                dict(TINY_PAYLOAD, runs=2, name="api-smoke"))
    assert job["state"] == "queued" and job["total"] == 2
    record = server.queue.wait(job["id"], timeout_s=120)
    assert record["state"] == "done"

    results = _call(server, "/api/campaigns/api-smoke/results")
    assert results["runs"] == 2
    table2 = _call(server, "/api/campaigns/api-smoke/table2")
    assert table2["runs"] == 2 and "totals" in table2
    curve = _call(server, "/api/campaigns/api-smoke/curve")
    assert [point["let"] for point in curve["points"]["Total"]] == [60.0]
    availability = _call(server, "/api/campaigns/api-smoke/availability")
    assert availability["runs"] == 2
    diff = _call(server, "/api/diff?a=api-smoke&b=api-smoke")
    assert diff["matched"] == 2 and diff["changed"] == []

    configs, _, _ = build_job_request(dict(TINY_PAYLOAD, runs=2))
    direct = CampaignExecutor(1).run_many(configs)
    stored = server.db.results(server.db.campaign_id("api-smoke"))
    assert [r.comparable() for r in stored] == \
        [r.comparable() for r in direct]
    assert [config_key(r.config) for r in stored] == \
        [config_key(config) for config in configs]


def test_status_and_job_listing(server):
    status = _call(server, "/api/status")
    assert status["jobs"] >= 1
    jobs = _call(server, "/api/jobs")["jobs"]
    assert any(job["name"] == "api-smoke" for job in jobs)
    campaigns = _call(server, "/api/campaigns")["campaigns"]
    assert any(campaign["name"] == "api-smoke" for campaign in campaigns)


def test_dashboard_served(server):
    with urllib.request.urlopen(server.url + "/") as response:
        body = response.read().decode()
    assert "campaign service" in body
    assert "/api/jobs" in body


def test_build_job_request_fault_model():
    configs, _, _ = build_job_request(
        dict(TINY_PAYLOAD, fault_model="stuck-at-1"))
    assert all(config.fault_model == "stuck-at-1" for config in configs)
    configs, _, _ = build_job_request(dict(TINY_PAYLOAD, program="random:3"))
    assert configs[0].program == "random:3"
    with pytest.raises(ValueError):
        build_job_request(dict(TINY_PAYLOAD, fault_model="rowhammer"))
    with pytest.raises(ValueError):
        build_job_request(dict(TINY_PAYLOAD, fault_params="pc=0x40000000"))


def test_attack_job_end_to_end(server):
    """An instruction-skip job through the HTTP API: the stored rows keep
    their fault model, table2 carries the security fold, and the
    fault-model filter selects rows."""
    from repro.fault.campaign import resolve_builder

    program, _ = resolve_builder("iutest")(None)
    payload = dict(
        TINY_PAYLOAD, runs=3, name="attack-api",
        fault_model="instruction-skip",
        fault_params={"pc": program.symbols["iutest_iteration"],
                      "window": 8, "time_s": 0.1})
    job = _call(server, "/api/jobs", payload)
    record = server.queue.wait(job["id"], timeout_s=120)
    assert record["state"] == "done"

    stored = server.db.results(server.db.campaign_id("attack-api"))
    assert [r.config.fault_model for r in stored] == \
        ["instruction-skip"] * 3

    table2 = _call(server, "/api/campaigns/attack-api/table2")
    fold = table2["security"]["instruction-skip"]
    assert sum(fold.values()) == 3
    assert set(fold) == {"detected", "silent", "masked"}

    filtered = _call(
        server, "/api/campaigns/attack-api/results?fault_model=instruction-skip")
    assert filtered["runs"] == 3
    empty = _call(server, "/api/campaigns/attack-api/results?fault_model=seu")
    assert empty["runs"] == 0


def test_default_model_table2_has_no_security_block(server):
    table2 = _call(server, "/api/campaigns/api-smoke/table2")
    assert "security" not in table2


def test_error_mapping(server):
    with pytest.raises(urllib.error.HTTPError) as err:
        _call(server, "/api/campaigns/absent/table2")
    assert err.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as err:
        _call(server, "/api/jobs", {"program": "rowhammer"})
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        _call(server, "/api/nope")
    assert err.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as err:
        _call(server, "/api/diff?a=missing")
    assert err.value.code == 400
