"""Differential fuzz: compiled execution is byte-identical to interpreted.

Every test runs the same program on two identically-configured systems --
trace JIT enabled and disabled -- and asserts the *complete* observable
surface matches: architectural ``state_digest``, every performance and
error counter, and the telemetry event stream.  The corpus covers the
three paper programs, seeded random programs, mid-run fault strikes into
cells covered by compiled blocks, stuck-at reasserts, and the
snapshot/restore and stop-pc edges of ``run_fast``.
"""

import dataclasses

import pytest

from repro.core.config import LeonConfig
from repro.core.system import LeonSystem
from repro.fault.campaign import CampaignConfig
from repro.fault.executor import CampaignExecutor, expand_runs
from repro.fault.injector import FaultInjector
from repro.programs import build_cncf, build_iutest, build_paranoia
from repro.programs.builder import ProgramHarness
from repro.programs.randgen import build_random
from repro.telemetry import MemorySink, Telemetry

#: Campaign settings small enough for the test budget, large enough to
#: schedule strikes inside the beam window.
FAST = dict(flux=400.0, fluence=500.0, instructions_per_second=20_000.0)


def _boot(builder, config, jit):
    sink = MemorySink()
    system = LeonSystem(config, telemetry=Telemetry(sink), jit=jit)
    built = builder(config)
    program = built[0] if isinstance(built, tuple) else built
    ProgramHarness(system, program)
    return system, sink


def _observables(system, sink):
    return (system.state_digest(), system.perf.capture(),
            system.errors.capture(), sink.events)


def _assert_pair_equal(interp, jit_sys):
    (d0, p0, e0, t0), (d1, p1, e1, t1) = interp, jit_sys
    assert d1 == d0
    assert p1 == p0
    assert e1 == e0
    assert t1 == t0


def _run_differential(builder, config, *, chunks=(60_000, 60_000, 60_000)):
    """Run both systems chunk by chunk, comparing after every chunk so a
    divergence is caught near where it happens, not at the end."""
    interp, interp_sink = _boot(builder, config, False)
    compiled, compiled_sink = _boot(builder, config, True)
    for chunk in chunks:
        r0 = interp.run_fast(chunk)
        r1 = compiled.run_fast(chunk)
        assert (r1.instructions, r1.cycles, r1.stop_reason, r1.pc) == \
            (r0.instructions, r0.cycles, r0.stop_reason, r0.pc)
        _assert_pair_equal(_observables(interp, interp_sink),
                           _observables(compiled, compiled_sink))
    assert compiled.jit.stats["bursts"] > 0, \
        "differential run never exercised a compiled burst"
    return compiled


def test_iutest_equivalence():
    config = LeonConfig.fault_tolerant()
    compiled = _run_differential(
        lambda c: build_iutest(c, iterations=1_000_000), config)
    assert compiled.jit.stats["compiles"] > 0


def test_cncf_equivalence():
    config = LeonConfig.leon_express()
    _run_differential(lambda c: build_cncf(c, iterations=1_000_000), config,
                      chunks=(80_000, 80_000))


def test_paranoia_equivalence():
    config = LeonConfig.leon_express()
    _run_differential(lambda c: build_paranoia(c, iterations=1_000_000),
                      config, chunks=(80_000, 80_000))


@pytest.mark.parametrize("seed", [7, 99, 123, 20260808])
def test_random_program_equivalence(seed):
    config = LeonConfig.fault_tolerant()
    _run_differential(
        lambda c: build_random(c, seed=seed, iterations=1_000_000),
        config, chunks=(50_000, 50_000))


# -- mid-run strikes -----------------------------------------------------------


def _strike_sites(injector):
    """A deterministic spread of strikes across every on-chip target,
    including cells the hot blocks cover (i-cache words, register file,
    d-cache, flip-flops)."""
    sites = []
    for name in ("icache-data", "icache-tag", "dcache-data", "dcache-tag",
                 "regfile", "flipflops"):
        bits = injector.target(name).bits
        sites.extend((name, (bits * k) // 7) for k in (1, 3, 5))
    return sites


def test_strikes_into_covered_cells_equivalent():
    """SEUs landing mid-campaign -- after blocks are hot and compiled --
    must produce identical detection, correction, and digests: the strike
    either fails a burst entry guard, fails word verification (dropping
    the block), or lands in state the burst writes back exactly."""
    config = LeonConfig.fault_tolerant()
    builder = lambda c: build_iutest(c, iterations=1_000_000)
    interp, interp_sink = _boot(builder, config, False)
    compiled, compiled_sink = _boot(builder, config, True)
    pair = ((interp, interp_sink), (compiled, compiled_sink))
    injectors = [FaultInjector(system) for system, _sink in pair]
    for system, _sink in pair:
        system.run_fast(40_000)  # get the patrol loop hot and compiled
    assert compiled.jit.stats["bursts"] > 0
    for name, flat_bit in _strike_sites(injectors[0]):
        for injector in injectors:
            injector.inject(name, flat_bit)
        r0 = interp.run_fast(8_000)
        r1 = compiled.run_fast(8_000)
        assert (r1.instructions, r1.cycles, r1.pc) == \
            (r0.instructions, r0.cycles, r0.pc), (name, flat_bit)
        _assert_pair_equal(_observables(interp, interp_sink),
                           _observables(compiled, compiled_sink))


def test_stuck_at_reassert_equivalent():
    """A stuck cell re-asserted at chunk boundaries keeps deopting or
    guard-failing the compiled path; the readout must not change."""
    config = LeonConfig.fault_tolerant()
    builder = lambda c: build_iutest(c, iterations=1_000_000)
    interp, interp_sink = _boot(builder, config, False)
    compiled, compiled_sink = _boot(builder, config, True)
    pair = ((interp, interp_sink), (compiled, compiled_sink))
    injectors = [FaultInjector(system) for system, _sink in pair]
    for system, _sink in pair:
        system.run_fast(40_000)
    for injector in injectors:
        injector.add_persistent("regfile", 40 * 32 + 3, 1)
        injector.add_persistent("dcache-data", 129, 0)
    for _ in range(4):  # chunk boundaries: reassert, then run
        for injector in injectors:
            injector.reassert_persistent()
        r0 = interp.run_fast(6_000)
        r1 = compiled.run_fast(6_000)
        assert (r1.instructions, r1.cycles, r1.pc) == \
            (r0.instructions, r0.cycles, r0.pc)
        _assert_pair_equal(_observables(interp, interp_sink),
                           _observables(compiled, compiled_sink))


# -- campaign-level identity ---------------------------------------------------


def _comparable(results):
    out = []
    for result in results:
        fields = dataclasses.asdict(result)
        fields.pop("wall_seconds")
        out.append(fields)
    return out


@pytest.mark.parametrize("model", ["seu", "stuck-at-1", "sefi"])
def test_campaign_results_jit_invariant(model, monkeypatch):
    """Full campaigns -- scheduled beam strikes, golden grading, early
    exits -- report byte-identical results with the JIT on and off."""
    configs = expand_runs(CampaignConfig(program="iutest", seed=5,
                                         fault_model=model, **FAST), runs=2)
    monkeypatch.setenv("REPRO_JIT", "0")
    off = CampaignExecutor(1).run_many(configs)
    monkeypatch.setenv("REPRO_JIT", "1")
    on = CampaignExecutor(1).run_many(configs)
    assert _comparable(on) == _comparable(off)


# -- run_fast edges ------------------------------------------------------------


def _warm_system(jit):
    config = LeonConfig.fault_tolerant()
    system = LeonSystem(config, jit=jit)
    program, _ = build_iutest(config, iterations=1_000_000)
    ProgramHarness(system, program)
    system.run_fast(40_000)
    return system


@pytest.mark.parametrize("jit", [False, True])
def test_run_fast_entry_pc_equals_stop_pc_is_zero_progress(jit):
    """A run whose entry PC already equals ``stop_pc`` (batched grading
    landing exactly on a boundary) must terminate immediately with
    zero-progress semantics -- no wedge, no miscount, no state change."""
    system = _warm_system(jit)
    before = system.state_digest()
    perf = system.perf.capture()
    result = system.run_fast(1_000, stop_pc=system.special.pc)
    assert result.stop_reason == "stop-pc"
    assert result.instructions == 0
    assert result.steps == 0
    assert result.pc == system.special.pc
    assert system.state_digest() == before
    assert system.perf.capture() == perf
    # The budget check precedes the stop compare: a zero budget reports
    # "budget", still with zero progress.
    zero = system.run_fast(0, stop_pc=system.special.pc)
    assert zero.stop_reason == "budget"
    assert zero.instructions == 0


def test_run_fast_stop_pc_inside_compiled_block():
    """A stop_pc covered by a hot compiled block must stop exactly there:
    the engine refuses bursts whose footprint contains it."""
    scout = _warm_system(False)
    visited = set()
    for _ in range(4_000):  # where the patrol loop goes next
        scout.step()
        visited.add(scout.special.pc)
    compiled = _warm_system(True)
    inner = {addr
             for block in compiled.jit.blocks.values() if block is not False
             for addr in block.addresses - {block.pc}} & visited
    assert inner, "no compiled block interior on the upcoming path"
    inner = min(inner)
    interp = _warm_system(False)
    r0 = interp.run_fast(30_000, stop_pc=inner)
    r1 = compiled.run_fast(30_000, stop_pc=inner)
    assert (r1.instructions, r1.cycles, r1.stop_reason, r1.pc) == \
        (r0.instructions, r0.cycles, r0.stop_reason, r0.pc)
    assert r1.stop_reason == "stop-pc" and r1.pc == inner
    assert compiled.state_digest() == interp.state_digest()


def test_snapshot_restore_invalidates_compiled_blocks():
    """Restore rebinds component internals; stale closures must never
    run.  After a restore the system re-detects its hot loops and still
    matches interpreted execution."""
    compiled = _warm_system(True)
    assert compiled.jit.blocks
    snap = compiled.snapshot()
    compiled.run_fast(10_000)
    compiled.restore(snap)
    assert compiled.jit.blocks == {} and compiled.jit.counts == {}
    interp = _warm_system(False)
    r0 = interp.run_fast(30_000)
    r1 = compiled.run_fast(30_000)
    assert (r1.instructions, r1.cycles) == (r0.instructions, r0.cycles)
    assert compiled.state_digest() == interp.state_digest()


def test_repro_jit_env_disables(monkeypatch):
    monkeypatch.setenv("REPRO_JIT", "0")
    assert LeonSystem(LeonConfig.fault_tolerant()).jit is None
    monkeypatch.delenv("REPRO_JIT")
    assert LeonSystem(LeonConfig.fault_tolerant()).jit is not None
