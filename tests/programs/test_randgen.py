"""Seeded random programs: round-trip validation, mirror, campaigns."""

import pytest

from repro.core.config import LeonConfig
from repro.errors import ConfigurationError
from repro.fault.campaign import Campaign, CampaignConfig, resolve_builder
from repro.programs import build_random
from repro.programs.randgen import validate_defuse, validate_roundtrip


def test_same_seed_same_program():
    first, expected_a = build_random(seed=7)
    second, expected_b = build_random(seed=7)
    assert first.words == second.words
    assert expected_a == expected_b


def test_different_seeds_differ():
    first, _ = build_random(seed=7)
    second, _ = build_random(seed=8)
    assert first.words != second.words


def test_generated_block_round_trips():
    """Every generated instruction survives disassemble -> re-assemble;
    validate_roundtrip raises on any encoding the two sides disagree on."""
    program, _ = build_random(seed=3)
    assert program.symbols["rand_iteration"]
    block = validate_roundtrip(["    add %l0, 5, %l1",
                                "    xor %g6, %l1, %g6"])
    assert len(block.words) == 2


def test_roundtrip_rejects_encoding_mismatch():
    # A synthetic label the disassembler cannot reproduce textually is
    # fine -- but a *data* word that decodes to a different re-encoding
    # must fail.  0x00000000 decodes to "unimp 0" which re-assembles
    # identically, so use the degenerate op-count guard instead.
    with pytest.raises(ConfigurationError):
        build_random(seed=1, ops=0)


def test_defuse_intent_matches_decoder():
    """The generator's recorded def/use intent agrees with the decoder
    metadata the static analyzer's liveness is built on -- for every op
    of several seeds (build_random runs this check; here it is explicit)."""
    import random

    from repro.programs.randgen import _generate_ops, _REGS

    for seed in (0, 7, 123):
        rng = random.Random(seed)
        state = {reg: rng.getrandbits(32) for reg in _REGS}
        op_lines, _checksum, intent = _generate_ops(rng, 96, state)
        validate_defuse(op_lines, intent)  # must not raise


def test_defuse_mismatch_fails_the_build():
    """A wrong intent entry names the line and both register sets."""
    lines = ["    add %l1, %l2, %l3"]
    with pytest.raises(ConfigurationError) as err:
        validate_defuse(lines, [((17,), (20,))])  # defs should be 19
    message = str(err.value)
    assert "add %l1, %l2, %l3" in message
    assert "generator intended" in message
    assert "decoder reports" in message


def test_defuse_length_mismatch_fails_the_build():
    with pytest.raises(ConfigurationError):
        validate_defuse(["    add %l1, %l2, %l3"], [])


def test_mirror_matches_machine_fault_free():
    """The build-time expected checksum equals what the simulated
    processor computes: a fault-free campaign reports zero sw_errors
    and the configured iteration count."""
    config = CampaignConfig(program="random:5", let=3.0, flux=400.0,
                            fluence=500.0, instructions_per_second=20_000.0)
    result = Campaign(config).run()
    assert result.sw_errors == 0
    assert result.iterations > 0
    assert not result.halted


def test_resolve_builder_random_spec():
    builder = resolve_builder("random:0x10")
    program, expected = builder(LeonConfig.fault_tolerant())
    reference, ref_expected = build_random(
        LeonConfig.fault_tolerant(), seed=16, iterations=1_000_000)
    assert expected == ref_expected

    with pytest.raises(ConfigurationError):
        resolve_builder("random:not-a-seed")
    with pytest.raises(ConfigurationError):
        resolve_builder("rowhammer")


def test_random_campaign_under_beam_is_deterministic():
    config = CampaignConfig(program="random:9", let=110.0, flux=400.0,
                            fluence=500.0, instructions_per_second=20_000.0,
                            seed=4)
    assert Campaign(config).run().comparable() == \
        Campaign(config).run().comparable()
