"""The three self-checking test programs of the SEU campaign (section 6)."""

import pytest

from repro import LeonConfig, LeonSystem
from repro.errors import ConfigurationError
from repro.programs import (
    EXIT_MAGIC,
    ProgramHarness,
    TestLayout as ResultLayout,
    build_cncf,
    build_iutest,
    build_paranoia,
    build_test_program,
)


@pytest.fixture
def express():
    return LeonConfig.leon_express()


class TestBuilder:
    def test_layout_symbols(self, express):
        layout = ResultLayout.for_config(express)
        symbols = layout.symbols
        assert symbols["EXIT_FLAG"] == layout.result
        assert symbols["SW_ERRORS"] == layout.result + 0x14
        assert symbols["STACK_TOP"] > symbols["DATA"]
        assert symbols["SCRUB_BASE"] % 0x10000 == 0

    def test_minimal_program_exits_cleanly(self, express):
        program = build_test_program("main:\n    retl\n    nop", express)
        system = LeonSystem(express)
        harness = ProgramHarness(system, program)
        result = harness.run(10_000)
        assert result.exited
        assert not result.trapped
        assert not result.failed

    def test_unexpected_trap_recorded(self, express):
        program = build_test_program("""
main:
    unimp 0
    retl
    nop
""", express)
        system = LeonSystem(express)
        harness = ProgramHarness(system, program)
        result = harness.run(10_000)
        assert result.trapped
        assert result.trap_tt == 0x02
        assert result.failed

    def test_custom_trap_handler(self, express):
        """A tt can be routed to program-supplied code instead of the spin."""
        program = build_test_program("""
main:
    ta 9
    retl
    nop
handler9:
    jmp [%l2]
    rett [%l2+4]
""", express, handlers={0x80 + 9: "handler9"})
        system = LeonSystem(express)
        result = ProgramHarness(system, program).run(10_000)
        assert result.exited
        assert not result.trapped

    def test_exit_magic_constant(self):
        assert EXIT_MAGIC == 0x900DD00D


class TestIutest:
    def test_runs_clean_with_exact_checksum(self, express):
        program, expected = build_iutest(express, iterations=2,
                                         scrub_words=128, icode_words=64)
        system = LeonSystem(express)
        result = ProgramHarness(system, program).run(1_000_000)
        assert result.exited
        assert result.iterations == 2
        assert result.sw_errors == 0
        assert result.checksum == expected

    def test_detects_undetected_cache_corruption(self, express):
        """If a corrupted value sneaks past the FT machinery, the checksum
        self-check must catch it (the SW_ERRORS outcome of section 6)."""
        program, expected = build_iutest(express, iterations=20,
                                         scrub_words=128, icode_words=64)
        system = LeonSystem(express)
        harness = ProgramHarness(system, program)
        scrub_base = harness.layout.scrub_base
        iterations_addr = harness.layout.result + 0x10
        # Let the first iteration initialize the scrub region and pass.
        system.run(1_000_000,
                   stop_when=lambda r: system.read_word(iterations_addr) >= 1)
        # Corrupt a scrub word in *memory* (consistent check bits, wrong
        # value -- the kind of escape no on-chip code can see) and force the
        # cache to refetch it.
        clean = system.read_word(scrub_base)
        system.write_word(scrub_base, clean ^ 4)
        system.dcache.flush()
        result = harness.run(2_000_000)
        assert result.sw_errors >= 1

    def test_default_sizes_cover_caches(self, express):
        program, _ = build_iutest(express, iterations=1)
        # Scrub region defaults to the full data cache.
        assert program.symbols["SCRUB_WORDS"] == express.dcache.size_bytes // 4


class TestParanoia:
    def test_runs_clean_with_exact_checksum(self, express):
        program, expected = build_paranoia(express, iterations=2,
                                           chain1=8, chain2=5, chain3=8)
        system = LeonSystem(express)
        result = ProgramHarness(system, program).run(1_000_000)
        assert result.exited
        assert result.sw_errors == 0
        assert result.checksum == expected

    def test_requires_fpu(self):
        with pytest.raises(ConfigurationError):
            build_paranoia(LeonConfig.fault_tolerant())  # FPU-less

    def test_fpu_register_seu_corrected_transparently(self, express):
        """An SEU in an f-register mid-chain is corrected by the register
        file protection (the f-regs share the protected RAM, section 4.4):
        the checksum stays clean and RFE counts the correction."""
        program, expected = build_paranoia(express, iterations=5,
                                           chain1=20, chain2=10, chain3=20)
        system = LeonSystem(express)
        harness = ProgramHarness(system, program)
        # Stop right as chain 1 starts, then flip a bit in its accumulator.
        system.run(100_000, stop_pc=program.address_of("par_chain1"))
        system.fpu.inject(4, 12)  # chain-1 accumulator %f4
        result = harness.run(3_000_000)
        assert result.sw_errors == 0
        assert result.exited
        assert system.errors.rfe == 1

    def test_fpu_register_double_error_traps(self, express):
        """A double-bit f-register error exceeds SEC-DED: register error
        trap, like the integer file."""
        program, _ = build_paranoia(express, iterations=5,
                                    chain1=20, chain2=10, chain3=20)
        system = LeonSystem(express)
        harness = ProgramHarness(system, program)
        system.run(100_000, stop_pc=program.address_of("par_chain1"))
        system.fpu.inject(4, 12)
        system.fpu.inject(4, 20)
        result = harness.run(3_000_000)
        assert result.trapped
        assert result.trap_tt == 0x20


class TestCncf:
    def test_runs_clean_with_exact_checksum(self, express):
        program, expected = build_cncf(express, iterations=2, steps=10)
        system = LeonSystem(express)
        result = ProgramHarness(system, program).run(1_000_000)
        assert result.exited
        assert result.sw_errors == 0
        assert result.checksum == expected

    def test_orbit_stays_bounded(self):
        """Physics sanity: the integrator conserves energy well enough that
        the orbit radius stays within sane bounds over the run."""
        from repro.programs.cncf import _propagate

        rx, ry, vx, vy = _propagate(500)
        radius = (rx * rx + ry * ry) ** 0.5
        assert 0.3 < radius < 3.0

    def test_requires_fpu(self):
        with pytest.raises(ConfigurationError):
            build_cncf(LeonConfig.fault_tolerant())
