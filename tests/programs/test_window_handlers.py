"""The SPARC window overflow/underflow spill/fill handlers.

Deep call chains exceed the register windows; the trap handlers must
spill/fill frames to the stack transparently.  This exercises nearly the
entire trap machinery at once: WIM arithmetic, trap entry in the invalid
window, save/restore inside handlers, rett re-execution, and stack
addressing through alternating windows.
"""

import pytest

from repro import LeonConfig, LeonSystem
from repro.programs import ProgramHarness, build_test_program

#: Recursive function: each level does a full save-frame call.
_RECURSION = """
main:
    save %sp, -96, %sp
    mov DEPTH, %o0
    call recurse
    nop
    set RESULT + 0x40, %g4  ! stash the result for the harness
    st %o0, [%g4]
    ret
    restore

! int recurse(int n) { return n == 0 ? 0 : n + recurse(n - 1); }
recurse:
    save %sp, -96, %sp
    cmp %i0, 0
    be recurse_base
    nop
    call recurse
    sub %i0, 1, %o0
    add %o0, %i0, %i0
recurse_base:
    ret
    restore %g0, %i0, %o0
"""


def run_recursion(depth, nwindows=8):
    config = LeonConfig.fault_tolerant().with_changes(nwindows=nwindows)
    program = build_test_program(
        _RECURSION, config, name="recursion",
        window_handlers=True,
        extra_symbols={"DEPTH": depth},
    )
    system = LeonSystem(config)
    harness = ProgramHarness(system, program)
    result = harness.run(2_000_000)
    stored = system.read_word(harness.layout.result + 0x40)
    return result, stored, system


@pytest.mark.parametrize("depth", [0, 1, 3])
def test_shallow_recursion_no_spill_needed(depth):
    result, value, system = run_recursion(depth)
    assert result.exited and not result.trapped
    assert value == sum(range(depth + 1))


@pytest.mark.parametrize("depth", [8, 20, 60])
def test_deep_recursion_spills_and_fills(depth):
    """Depth far beyond the 8 windows: overflow/underflow handlers fire."""
    result, value, system = run_recursion(depth)
    assert result.exited and not result.trapped
    assert value == sum(range(depth + 1))
    assert system.perf.traps > 0  # the handlers actually ran


def test_deep_recursion_with_fewer_windows():
    """The same program must work on a 4-window configuration (the
    scalability goal of section 2)."""
    result, value, _system = run_recursion(25, nwindows=4)
    assert result.exited and not result.trapped
    assert value == sum(range(26))


def test_spill_traffic_survives_regfile_seu():
    """Section 4.8: window spills to the stack scrub latent errors -- and
    the spill/fill path itself runs through the protected register file."""
    config = LeonConfig.fault_tolerant()
    program = build_test_program(
        _RECURSION, config, name="recursion",
        window_handlers=True, extra_symbols={"DEPTH": 30},
    )
    system = LeonSystem(config)
    harness = ProgramHarness(system, program)
    system.run(300)  # somewhere inside the recursion
    # Strike a handful of register-file words.
    for physical in (12, 40, 77, 100):
        system.regfile.inject(physical, bit=physical % 32)
    result = harness.run(2_000_000)
    stored = system.read_word(harness.layout.result + 0x40)
    assert result.exited and not result.trapped
    assert stored == sum(range(31))
    assert result.sw_errors == 0
