"""Property test: the data cache against a flat reference memory model.

Random sequences of reads/writes/flushes/invalidations must always observe
the same values as a plain dict-backed memory -- regardless of hits,
misses, evictions, or write-through traffic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amba.ahb import AhbBus, TransferSize
from repro.cache.dcache import DataCache
from repro.core.config import CacheConfig, MemoryConfig
from repro.core.statistics import ErrorCounters, PerfCounters
from repro.ft.protection import ProtectionScheme
from repro.mem.memctrl import MemoryController

SRAM = 0x40000000
#: A tiny cache over a small footprint maximizes evictions and conflicts.
FOOTPRINT_WORDS = 256


def make_dcache(size=256, line=16):
    bus = AhbBus()
    master = bus.add_master("cpu")
    controller = MemoryController(MemoryConfig(
        edac=True, prom_bytes=4096, sram_bytes=64 * 1024, io_bytes=4096))
    for bank in controller.banks():
        bus.attach(bank)
    dcache = DataCache(
        CacheConfig(size_bytes=size, line_bytes=line,
                    parity=ProtectionScheme.DUAL_PARITY),
        bus, master, ErrorCounters(), PerfCounters())
    return dcache


operation = st.one_of(
    st.tuples(st.just("write"),
              st.integers(min_value=0, max_value=FOOTPRINT_WORDS - 1),
              st.integers(min_value=0, max_value=0xFFFFFFFF)),
    st.tuples(st.just("read"),
              st.integers(min_value=0, max_value=FOOTPRINT_WORDS - 1)),
    st.tuples(st.just("write-byte"),
              st.integers(min_value=0, max_value=FOOTPRINT_WORDS * 4 - 1),
              st.integers(min_value=0, max_value=0xFF)),
    st.tuples(st.just("flush")),
    st.tuples(st.just("invalidate"),
              st.integers(min_value=0, max_value=FOOTPRINT_WORDS - 1)),
)


@settings(max_examples=80, deadline=None)
@given(st.lists(operation, min_size=1, max_size=60))
def test_dcache_matches_reference_memory(operations):
    dcache = make_dcache()
    reference = {}

    def ref_read(word_index):
        return reference.get(word_index, 0)

    for op in operations:
        kind = op[0]
        if kind == "write":
            _, word_index, value = op
            dcache.write(SRAM + word_index * 4, value, TransferSize.WORD)
            reference[word_index] = value
        elif kind == "read":
            _, word_index = op
            access = dcache.read(SRAM + word_index * 4, TransferSize.WORD)
            assert not access.mem_error
            assert access.data == ref_read(word_index)
        elif kind == "write-byte":
            _, byte_address, value = op
            dcache.write(SRAM + byte_address, value, TransferSize.BYTE)
            word_index, offset = divmod(byte_address, 4)
            shift = (3 - offset) * 8
            current = ref_read(word_index)
            reference[word_index] = (current & ~(0xFF << shift)) | (value << shift)
        elif kind == "flush":
            dcache.flush()
        elif kind == "invalidate":
            _, word_index = op
            dcache.invalidate_word(SRAM + word_index * 4)

    # Final sweep: every word agrees.
    for word_index in range(FOOTPRINT_WORDS):
        access = dcache.read(SRAM + word_index * 4, TransferSize.WORD)
        assert access.data == ref_read(word_index)


@settings(max_examples=30, deadline=None)
@given(st.lists(operation, min_size=1, max_size=40),
       st.lists(st.integers(min_value=0, max_value=10_000), max_size=8))
def test_dcache_consistent_under_parity_strikes(operations, strikes):
    """Same property with SEUs landing in the cache RAMs mid-sequence:
    parity + forced miss must keep the observed values correct."""
    dcache = make_dcache()
    reference = {}
    strike_iter = iter(sorted(strikes))
    next_strike = next(strike_iter, None)
    struck_words = set()

    for step, op in enumerate(operations):
        if next_strike is not None and step * 100 >= next_strike:
            flat = (next_strike * 7919) % dcache.total_bits
            # One strike per word: two hits in the same word could defeat
            # parity (that failure mode is exercised deterministically in
            # test_ft_restart; here we verify single-strike transparency).
            word = flat // 34
            if word not in struck_words:
                struck_words.add(word)
                dcache.inject_flat(flat)
            next_strike = next(strike_iter, None)
        kind = op[0]
        if kind == "write":
            _, word_index, value = op
            dcache.write(SRAM + word_index * 4, value, TransferSize.WORD)
            reference[word_index] = value
        elif kind == "read":
            _, word_index = op
            access = dcache.read(SRAM + word_index * 4, TransferSize.WORD)
            assert access.data == reference.get(word_index, 0)
        elif kind == "write-byte":
            _, byte_address, value = op
            dcache.write(SRAM + byte_address, value, TransferSize.BYTE)
            word_index, offset = divmod(byte_address, 4)
            shift = (3 - offset) * 8
            current = reference.get(word_index, 0)
            reference[word_index] = (current & ~(0xFF << shift)) | (value << shift)
        elif kind == "flush":
            dcache.flush()
        elif kind == "invalidate":
            _, word_index = op
            dcache.invalidate_word(SRAM + word_index * 4)
