"""Direct-mapped caches: lookup, refill, write-through, parity policy."""

import pytest

from repro.amba.ahb import AhbBus, TransferSize
from repro.cache.dcache import DataCache
from repro.cache.icache import InstructionCache
from repro.cache.ram import CacheRam
from repro.core.config import CacheConfig, MemoryConfig
from repro.core.statistics import ErrorCounters, PerfCounters
from repro.errors import ConfigurationError, InjectionError
from repro.ft.protection import ErrorKind, ProtectionScheme
from repro.mem.memctrl import MemoryController

SRAM = 0x40000000


def make_system(parity=ProtectionScheme.DUAL_PARITY, subblocking=True,
                size=1024, line=16):
    bus = AhbBus()
    master = bus.add_master("cpu")
    controller = MemoryController(MemoryConfig(edac=True, prom_bytes=4096,
                                               sram_bytes=65536, io_bytes=4096))
    for bank in controller.banks():
        bus.attach(bank)
    errors = ErrorCounters()
    perf = PerfCounters()
    config = CacheConfig(size_bytes=size, line_bytes=line, parity=parity,
                         subblocking=subblocking)
    icache = InstructionCache(config, bus, master, errors, perf)
    dcache = DataCache(config, bus, master, errors, perf)
    return bus, controller, icache, dcache, errors, perf


class TestCacheRam:
    def test_roundtrip_and_parity(self):
        ram = CacheRam("r", 16, ProtectionScheme.DUAL_PARITY)
        ram.write(3, 0xDEADBEEF)
        data, kind = ram.read(3)
        assert data == 0xDEADBEEF
        assert kind is ErrorKind.NONE

    def test_injection_detected(self):
        ram = CacheRam("r", 16, ProtectionScheme.PARITY)
        ram.write(0, 0)
        ram.inject(0, 4)
        _data, kind = ram.read(0)
        assert kind is ErrorKind.DETECTED

    def test_check_bit_injection(self):
        ram = CacheRam("r", 16, ProtectionScheme.DUAL_PARITY)
        ram.write(0, 0)
        ram.inject(0, 33)  # second parity bit
        assert ram.read(0)[1] is ErrorKind.DETECTED

    def test_flat_injection_geometry(self):
        """Consecutive flat bits live in the same word (adjacent cells)."""
        ram = CacheRam("r", 4, ProtectionScheme.DUAL_PARITY)
        index_a, bit_a = ram.inject_flat(0)
        index_b, bit_b = ram.inject_flat(1)
        assert index_a == index_b == 0
        assert bit_b == bit_a + 1

    def test_bch_rejected_for_cache(self):
        with pytest.raises(ConfigurationError):
            CacheRam("r", 4, ProtectionScheme.BCH)

    def test_bounds(self):
        ram = CacheRam("r", 4, ProtectionScheme.PARITY)
        with pytest.raises(InjectionError):
            ram.inject(4, 0)
        with pytest.raises(InjectionError):
            ram.inject(0, 33)  # only 1 check bit
        with pytest.raises(InjectionError):
            ram.inject_flat(4 * 33)


class TestLookupAndRefill:
    def test_miss_then_hit(self):
        _bus, controller, _icache, dcache, _errors, perf = make_system()
        controller.sram.ahb_write(SRAM + 0x100, 42, TransferSize.WORD)
        first = dcache.read(SRAM + 0x100, TransferSize.WORD)
        assert first.data == 42 and not first.hit
        second = dcache.read(SRAM + 0x100, TransferSize.WORD)
        assert second.data == 42 and second.hit
        assert second.cycles == 0  # hits are free beyond base timing
        assert perf.dcache_misses == 1 and perf.dcache_hits == 1

    def test_line_refill_brings_neighbours(self):
        _bus, controller, _icache, dcache, _errors, _perf = make_system()
        for offset in range(0, 16, 4):
            controller.sram.ahb_write(SRAM + offset, offset, TransferSize.WORD)
        dcache.read(SRAM + 0, TransferSize.WORD)
        for offset in range(4, 16, 4):
            access = dcache.read(SRAM + offset, TransferSize.WORD)
            assert access.hit and access.data == offset

    def test_conflicting_lines_evict(self):
        _bus, controller, _icache, dcache, _errors, perf = make_system(size=256)
        controller.sram.ahb_write(SRAM, 1, TransferSize.WORD)
        controller.sram.ahb_write(SRAM + 256, 2, TransferSize.WORD)
        dcache.read(SRAM, TransferSize.WORD)
        dcache.read(SRAM + 256, TransferSize.WORD)  # same index, evicts
        access = dcache.read(SRAM, TransferSize.WORD)
        assert not access.hit
        assert access.data == 1

    def test_flush_clears_valid_bits(self):
        _bus, controller, _icache, dcache, _errors, perf = make_system()
        controller.sram.ahb_write(SRAM, 9, TransferSize.WORD)
        dcache.read(SRAM, TransferSize.WORD)
        dcache.flush()
        assert not dcache.read(SRAM, TransferSize.WORD).hit

    def test_uncached_read_bypasses(self):
        _bus, _controller, _icache, dcache, _errors, perf = make_system()
        access = dcache.read(SRAM, TransferSize.WORD, cacheable=False)
        assert not access.hit
        assert not dcache.read(SRAM, TransferSize.WORD, cacheable=False).hit


class TestWriteThrough:
    def test_store_reaches_memory_always(self):
        _bus, controller, _icache, dcache, _errors, _perf = make_system()
        dcache.write(SRAM + 8, 77, TransferSize.WORD)
        assert controller.sram.ahb_read(SRAM + 8, TransferSize.WORD).data == 77

    def test_no_allocate_on_write_miss(self):
        _bus, _controller, _icache, dcache, _errors, perf = make_system()
        dcache.write(SRAM + 8, 77, TransferSize.WORD)
        assert not dcache.read(SRAM + 8, TransferSize.WORD).hit

    def test_update_on_write_hit(self):
        _bus, controller, _icache, dcache, _errors, _perf = make_system()
        controller.sram.ahb_write(SRAM, 1, TransferSize.WORD)
        dcache.read(SRAM, TransferSize.WORD)
        dcache.write(SRAM, 99, TransferSize.WORD)
        access = dcache.read(SRAM, TransferSize.WORD)
        assert access.hit and access.data == 99

    def test_subword_write_hit_merges_in_cache(self):
        _bus, controller, _icache, dcache, _errors, _perf = make_system()
        controller.sram.ahb_write(SRAM, 0x11223344, TransferSize.WORD)
        dcache.read(SRAM, TransferSize.WORD)
        dcache.write(SRAM + 1, 0xAB, TransferSize.BYTE)
        access = dcache.read(SRAM, TransferSize.WORD)
        assert access.hit and access.data == 0x11AB3344

    def test_double_store_delay_flag(self):
        _bus, _controller, _icache, dcache, _errors, _perf = make_system()
        dcache.double_store_delay = True
        plain = dcache.write(SRAM, 0, TransferSize.WORD)
        double = dcache.write(SRAM + 4, 0, TransferSize.WORD, double=True)
        assert double.cycles == plain.cycles + 1


class TestParityPolicy:
    def test_data_parity_error_forces_miss_and_counts(self):
        _bus, controller, _icache, dcache, errors, _perf = make_system()
        controller.sram.ahb_write(SRAM, 0x5A, TransferSize.WORD)
        dcache.read(SRAM, TransferSize.WORD)
        dcache.data_ram.inject(0, 1)
        access = dcache.read(SRAM, TransferSize.WORD)
        assert access.data == 0x5A  # refetched clean copy
        assert not access.hit
        assert access.data_parity_error
        assert errors.dde == 1

    def test_tag_parity_error_forces_miss_and_counts(self):
        _bus, controller, icache, _dcache, errors, _perf = make_system()
        controller.sram.ahb_write(SRAM, 0xEE, TransferSize.WORD)
        icache.fetch(SRAM)
        icache.tag_ram.inject(0, 0)
        access = icache.fetch(SRAM)
        assert access.data == 0xEE
        assert access.tag_parity_error
        assert errors.ite == 1

    def test_unprotected_cache_delivers_corruption(self):
        _bus, controller, _icache, dcache, errors, _perf = make_system(
            parity=ProtectionScheme.NONE)
        controller.sram.ahb_write(SRAM, 0, TransferSize.WORD)
        dcache.read(SRAM, TransferSize.WORD)
        dcache.data_ram.inject(0, 1)
        access = dcache.read(SRAM, TransferSize.WORD)
        assert access.hit and access.data == 2  # silent corruption
        assert errors.dde == 0


class TestSubblocking:
    def _poison(self, controller, address):
        controller.sram_memory.inject(address - SRAM, 0)
        controller.sram_memory.inject(address - SRAM, 9)

    def test_error_word_not_validated(self):
        _bus, controller, _icache, dcache, _errors, _perf = make_system()
        self._poison(controller, SRAM + 8)
        access = dcache.read(SRAM, TransferSize.WORD)  # refill whole line
        assert not access.mem_error  # requested word fine
        clean = dcache.read(SRAM + 4, TransferSize.WORD)
        assert clean.hit
        bad = dcache.read(SRAM + 8, TransferSize.WORD)
        assert bad.mem_error  # precise error on actual access

    def test_requested_error_word_signals_immediately(self):
        _bus, controller, _icache, dcache, _errors, _perf = make_system()
        self._poison(controller, SRAM + 8)
        access = dcache.read(SRAM + 8, TransferSize.WORD)
        assert access.mem_error

    def test_without_subblocking_line_poisoned(self):
        _bus, controller, _icache, dcache, _errors, _perf = make_system(
            subblocking=False)
        self._poison(controller, SRAM + 8)
        access = dcache.read(SRAM, TransferSize.WORD)
        assert access.mem_error  # speculative word poisons the whole line

    def test_edac_correction_counted_through_cache(self):
        _bus, controller, _icache, dcache, errors, _perf = make_system()
        controller.sram.ahb_write(SRAM, 5, TransferSize.WORD)
        controller.sram_memory.inject(0, 2)
        access = dcache.read(SRAM, TransferSize.WORD)
        assert access.data == 5
        assert access.corrected == 1
        assert errors.edac_corrected == 1

    def test_invalidate_word(self):
        _bus, controller, _icache, dcache, _errors, _perf = make_system()
        controller.sram.ahb_write(SRAM, 5, TransferSize.WORD)
        dcache.read(SRAM, TransferSize.WORD)
        dcache.invalidate_word(SRAM)
        assert not dcache.read(SRAM, TransferSize.WORD).hit
        # Other words of the line stay valid.
        assert dcache.read(SRAM + 4, TransferSize.WORD).hit
