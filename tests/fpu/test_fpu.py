"""Behavioral FPU: arithmetic, conversions, comparisons, exceptions."""

import math
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fpu.fpu import Fpu
from repro.fpu.fsr import (
    EXC_DIVZERO,
    EXC_INVALID,
    Fcc,
)
from repro.ft.tmr import FlipFlopBank
from repro.sparc.isa import Opf


def f32_bits(value: float) -> int:
    return struct.unpack(">I", struct.pack(">f", value))[0]


def bits_f32(bits: int) -> float:
    return struct.unpack(">f", struct.pack(">I", bits))[0]


@pytest.fixture
def fpu():
    return Fpu(FlipFlopBank(tmr=False))


def set_single(fpu, index, value):
    fpu.write_reg(index, f32_bits(value))


def get_single(fpu, index):
    return bits_f32(fpu.read_reg(index))


def set_double(fpu, index, value):
    raw = struct.unpack(">Q", struct.pack(">d", value))[0]
    fpu.write_reg(index, raw >> 32)
    fpu.write_reg(index + 1, raw & 0xFFFFFFFF)


def get_double(fpu, index):
    raw = (fpu.read_reg(index) << 32) | fpu.read_reg(index + 1)
    return struct.unpack(">d", raw.to_bytes(8, "big"))[0]


def test_single_add(fpu):
    set_single(fpu, 0, 1.5)
    set_single(fpu, 1, 2.25)
    cycles = fpu.execute(Opf.FADDS, 0, 1, 2)
    assert get_single(fpu, 2) == 3.75
    assert cycles >= 1


def test_single_rounding_to_f32(fpu):
    set_single(fpu, 0, 1.0)
    set_single(fpu, 1, 1e-10)
    fpu.execute(Opf.FADDS, 0, 1, 2)
    assert get_single(fpu, 2) == 1.0  # 1e-10 lost in single precision


def test_double_mul(fpu):
    set_double(fpu, 0, 1.1)
    set_double(fpu, 2, 2.0)
    fpu.execute(Opf.FMULD, 0, 2, 4)
    assert get_double(fpu, 4) == 1.1 * 2.0


def test_double_registers_use_even_pairs(fpu):
    set_double(fpu, 0, 3.0)
    set_double(fpu, 2, 4.0)
    fpu.execute(Opf.FADDD, 1, 3, 5)  # odd indices round down
    assert get_double(fpu, 4) == 7.0


def test_divide_by_zero_flags(fpu):
    set_single(fpu, 0, 1.0)
    set_single(fpu, 1, 0.0)
    fpu.execute(Opf.FDIVS, 0, 1, 2)
    assert math.isinf(get_single(fpu, 2))
    assert fpu.fsr.aexc & EXC_DIVZERO


def test_zero_over_zero_invalid(fpu):
    set_single(fpu, 0, 0.0)
    set_single(fpu, 1, 0.0)
    fpu.execute(Opf.FDIVS, 0, 1, 2)
    assert math.isnan(get_single(fpu, 2))
    assert fpu.fsr.aexc & EXC_INVALID


def test_sqrt(fpu):
    set_single(fpu, 1, 9.0)
    fpu.execute(Opf.FSQRTS, 0, 1, 2)
    assert get_single(fpu, 2) == 3.0


def test_sqrt_negative_invalid(fpu):
    set_single(fpu, 1, -1.0)
    fpu.execute(Opf.FSQRTS, 0, 1, 2)
    assert math.isnan(get_single(fpu, 2))
    assert fpu.fsr.aexc & EXC_INVALID


def test_mov_neg_abs(fpu):
    set_single(fpu, 1, -2.5)
    fpu.execute(Opf.FMOVS, 0, 1, 2)
    assert get_single(fpu, 2) == -2.5
    fpu.execute(Opf.FNEGS, 0, 1, 3)
    assert get_single(fpu, 3) == 2.5
    fpu.execute(Opf.FABSS, 0, 1, 4)
    assert get_single(fpu, 4) == 2.5


@pytest.mark.parametrize("value", [0, 1, -1, 123456, -7])
def test_int_float_conversions(fpu, value):
    fpu.write_reg(1, value & 0xFFFFFFFF)
    fpu.execute(Opf.FITOS, 0, 1, 2)
    assert get_single(fpu, 2) == float(value)
    fpu.execute(Opf.FSTOI, 0, 2, 3)
    assert fpu.read_reg(3) == value & 0xFFFFFFFF


def test_fstoi_truncates_toward_zero(fpu):
    set_single(fpu, 1, -2.7)
    fpu.execute(Opf.FSTOI, 0, 1, 2)
    assert fpu.read_reg(2) == (-2) & 0xFFFFFFFF


def test_fstoi_nan_invalid(fpu):
    set_single(fpu, 1, math.nan)
    fpu.execute(Opf.FSTOI, 0, 1, 2)
    assert fpu.fsr.aexc & EXC_INVALID


def test_precision_conversions(fpu):
    set_single(fpu, 1, 1.5)
    fpu.execute(Opf.FSTOD, 0, 1, 2)
    assert get_double(fpu, 2) == 1.5
    set_double(fpu, 4, 2.25)
    fpu.execute(Opf.FDTOS, 0, 4, 6)
    assert get_single(fpu, 6) == 2.25


@pytest.mark.parametrize("a,b,expected", [
    (1.0, 1.0, Fcc.EQUAL),
    (1.0, 2.0, Fcc.LESS),
    (3.0, 2.0, Fcc.GREATER),
])
def test_compare_sets_fcc(fpu, a, b, expected):
    set_single(fpu, 0, a)
    set_single(fpu, 1, b)
    fpu.execute(Opf.FCMPS, 0, 1, 0)
    assert fpu.fsr.fcc is expected


def test_compare_nan_unordered(fpu):
    set_single(fpu, 0, math.nan)
    set_single(fpu, 1, 1.0)
    fpu.execute(Opf.FCMPS, 0, 1, 0)
    assert fpu.fsr.fcc is Fcc.UNORDERED
    # FCMPES signals invalid on unordered; FCMPS does not.
    before = fpu.fsr.aexc
    fpu.execute(Opf.FCMPES, 0, 1, 0)
    assert fpu.fsr.aexc & EXC_INVALID


def test_injection_flips_register_bit(fpu):
    set_single(fpu, 3, 1.0)
    before = fpu.read_reg(3)
    fpu.inject(3, 22)
    assert fpu.read_reg(3) == before ^ (1 << 22)


@given(st.floats(allow_nan=False, allow_infinity=False, width=32),
       st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_single_arithmetic_matches_host_f32(a, b):
    """The FPU must match struct-rounded host arithmetic bit for bit --
    the property the test-program checksums rely on."""
    fpu = Fpu(FlipFlopBank(tmr=False))
    set_single(fpu, 0, a)
    set_single(fpu, 1, b)
    fpu.execute(Opf.FADDS, 0, 1, 2)
    try:
        expected = struct.unpack(">f", struct.pack(">f", a + b))[0]
    except (OverflowError, ValueError):
        expected = math.copysign(math.inf, a + b)
    got = get_single(fpu, 2)
    assert (math.isnan(got) and math.isnan(expected)) or got == expected
