"""Snapshot round-trips: per-component properties and whole-system futures.

The property under test, for every stateful component: ``capture()`` ->
arbitrary further execution or a targeted injection -> ``restore()`` ->
``capture()`` reproduces the original payload bit-for-bit.  At the system
level, a restored device's future is the uninterrupted device's future.
"""

import pytest

from repro.core.config import LeonConfig
from repro.core.system import LeonSystem
from repro.errors import StateError
from repro.fault.campaign import Campaign, CampaignConfig
from repro.state.snapshot import Snapshot


def _built(program="iutest", leon=None):
    """A fresh system with the test program loaded; returns (system, spin)."""
    campaign = Campaign(CampaignConfig(program=program, leon=leon))
    system, spin, _base, _program = campaign._build_program()
    return system, spin


def _warmed(instructions=3_000):
    system, spin = _built()
    system.run(instructions, stop_pc=spin)
    return system, spin


# -- whole-system round-trips --------------------------------------------------


def test_restore_undoes_further_execution():
    system, spin = _warmed()
    snap = system.snapshot()
    system.run(1_500, stop_pc=spin)
    assert system.snapshot() != snap
    system.restore(snap)
    assert system.snapshot() == snap


def test_snapshot_survives_bytes_into_fresh_system():
    system, _spin = _warmed()
    snap = system.snapshot()
    clone, _ = _built()
    clone.restore(Snapshot.from_bytes(snap.to_bytes()))
    assert clone.snapshot() == snap
    assert clone.state_digest() == system.state_digest()


def test_restored_future_equals_uninterrupted_future():
    straight, spin = _built()
    straight.run(5_000, stop_pc=spin)

    prefix, _ = _built()
    prefix.run(3_000, stop_pc=spin)
    data = prefix.snapshot().to_bytes()

    resumed, _ = _built()
    resumed.restore(Snapshot.from_bytes(data))
    resumed.run(2_000, stop_pc=spin)
    assert resumed.snapshot() == straight.snapshot()


def test_restore_rejects_config_mismatch():
    express, _ = _warmed()
    other = LeonSystem(LeonConfig.fault_tolerant())
    with pytest.raises(StateError):
        other.restore(express.snapshot())


def test_counter_mutations_keep_architectural_digest():
    system, _spin = _warmed()
    digest = system.state_digest()
    system.errors.ite += 7
    system.errors.register_error_traps += 1
    assert system.state_digest() == digest  # observation only
    system.regfile.inject_flat(3)
    assert system.state_digest() != digest  # architectural


# -- per-component round-trips -------------------------------------------------


def _mutate_errors(system):
    system.errors.ite += 99


def _mutate_ffbank(system):
    system.ffbank.inject_flat(0, lane=0)


CASES = [
    ("regfile", lambda s: s.regfile, lambda s: s.regfile.inject_flat(40)),
    ("icache", lambda s: s.icache, lambda s: s.icache.tag_ram.inject_flat(8)),
    ("dcache", lambda s: s.dcache, lambda s: s.dcache.data_ram.inject_flat(8)),
    ("ffbank", lambda s: s.ffbank, _mutate_ffbank),
    ("memory", lambda s: s.memctrl,
     lambda s: s.memctrl.sram_memory.inject_flat(64)),
    ("errors", lambda s: s.errors, _mutate_errors),
]


@pytest.mark.parametrize("name,component_of,mutate", CASES,
                         ids=[case[0] for case in CASES])
def test_component_capture_restore_round_trip(name, component_of, mutate):
    system, _spin = _warmed()
    component = component_of(system)
    before = component.capture()
    mutate(system)
    assert component.capture() != before  # the mutation is capture-visible
    component.restore(before)
    assert component.capture() == before


def test_fpu_capture_restore_round_trip():
    system, _spin = _warmed()
    if system.fpu is None:
        pytest.skip("configuration has no FPU")
    before = system.fpu.capture()
    system.fpu.inject(0, 5)
    assert system.fpu.capture() != before
    system.fpu.restore(before)
    assert system.fpu.capture() == before
