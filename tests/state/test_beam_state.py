"""Mid-schedule beam/injector state capture: the warm-start RNG contract."""

import pytest

from repro.core.config import LeonConfig
from repro.core.system import LeonSystem
from repro.errors import ConfigurationError, StateError
from repro.fault.beam import BeamParameters, HeavyIonBeam
from repro.fault.injector import FaultInjector

PARAMS = BeamParameters(let=60.0, flux=400.0, fluence=2_000.0, seed=5)


def _beam() -> HeavyIonBeam:
    system = LeonSystem(LeonConfig.leon_express())
    return HeavyIonBeam(FaultInjector(system))


def _drain(beam: HeavyIonBeam) -> list:
    strikes = []
    while True:
        strike = beam.next_strike()
        if strike is None:
            return strikes
        strikes.append(strike)


def test_incremental_draws_match_schedule():
    expected = _beam().schedule(PARAMS)
    assert expected  # the setting produces strikes at all
    beam = _beam()
    beam.begin(PARAMS)
    assert _drain(beam) == expected


def test_mid_schedule_capture_resumes_identically():
    beam = _beam()
    beam.begin(PARAMS)
    head = [beam.next_strike() for _ in range(3)]
    assert all(strike is not None for strike in head)
    state = beam.capture()
    rest = _drain(beam)

    other = _beam()
    other.restore(state)
    assert _drain(other) == rest


def test_capture_before_begin_rejected():
    with pytest.raises(StateError):
        _beam().capture()


def test_next_strike_before_begin_rejected():
    with pytest.raises(ConfigurationError):
        _beam().next_strike()


def test_injector_log_round_trip():
    system = LeonSystem(LeonConfig.leon_express())
    injector = FaultInjector(system)
    injector.inject("regfile", 3)
    state = injector.capture()
    injector.inject("icache-tag", 1)
    injector.restore(state)
    assert injector.injections == ["regfile"]
