"""The Snapshot container: serialization, digests, RNG capture."""

import random

import pytest

from repro.errors import StateError
from repro.state.snapshot import (
    FORMAT_VERSION,
    Snapshot,
    capture_rng,
    restore_rng,
    strip_diag,
)


def _snapshot(**components) -> Snapshot:
    parts = {"regfile": {"data": (1, 2, 3)}, "errors": {"ite": 5}}
    parts.update(components)
    return Snapshot("config-A", parts)


# -- serialization -------------------------------------------------------------


def test_bytes_round_trip():
    snap = _snapshot()
    again = Snapshot.from_bytes(snap.to_bytes())
    assert again == snap
    assert again.config_key == "config-A"
    assert again.version == FORMAT_VERSION


def test_garbage_bytes_rejected():
    with pytest.raises(StateError):
        Snapshot.from_bytes(b"not a snapshot")


def test_version_mismatch_rejected():
    snap = _snapshot()
    snap.version = FORMAT_VERSION + 1
    with pytest.raises(StateError):
        Snapshot.from_bytes(snap.to_bytes())


def test_equality_covers_config_key():
    assert _snapshot() != Snapshot("config-B", _snapshot().components)
    assert _snapshot() != object()


# -- digests -------------------------------------------------------------------


def test_architectural_digest_ignores_observation_components():
    plain = _snapshot()
    noisy = _snapshot(errors={"ite": 999}, perf={"cycles": 123})
    assert plain.digest() == noisy.digest()
    assert plain.digest(architectural=False) != \
        noisy.digest(architectural=False)


def test_architectural_digest_ignores_diag_subtrees():
    plain = _snapshot(dcache={"enabled": True, "diag": {"stores": 0}})
    noisy = _snapshot(dcache={"enabled": True, "diag": {"stores": 42}})
    assert plain.digest() == noisy.digest()


def test_architectural_digest_sees_architectural_changes():
    assert _snapshot().digest() != \
        _snapshot(regfile={"data": (1, 2, 4)}).digest()


def test_strip_diag_recurses_containers():
    value = {"a": {"diag": 1, "keep": [{"diag": 2, "x": 3}]}, "diag": 4}
    assert strip_diag(value) == {"a": {"keep": [{"x": 3}]}}


# -- RNG capture ---------------------------------------------------------------


def test_rng_round_trip_continues_identically():
    rng = random.Random(7)
    rng.random()
    state = capture_rng(rng)
    expected = [rng.random() for _ in range(10)]
    other = random.Random(99)
    restore_rng(other, state)
    assert [other.random() for _ in range(10)] == expected


def test_rng_state_is_picklable_plain_data():
    version, internal, gauss = capture_rng(random.Random(1))
    assert isinstance(internal, tuple)
    assert all(isinstance(word, int) for word in internal)


def test_rng_restore_rejects_garbage():
    with pytest.raises(StateError):
        restore_rng(random.Random(), ("bogus",))
