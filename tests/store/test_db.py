"""The campaign database: schema, idempotent ingest, job rows."""

import pytest

from repro.errors import ConfigurationError
from repro.fault.campaign import CampaignConfig, CampaignResult
from repro.fault.results import ResultStore, config_key, config_to_dict
from repro.store import CampaignDatabase, DatabaseResults, JsonlResults

FAST = dict(flux=400.0, fluence=500.0, instructions_per_second=30_000.0)


def _config(seed=1, let=110.0, **overrides):
    settings = dict(FAST)
    settings.update(overrides)
    return CampaignConfig(program="iutest", let=let, seed=seed, **settings)


def _result(seed=1, counts=None, **overrides) -> CampaignResult:
    return CampaignResult(
        config=_config(seed=seed, **overrides),
        counts=counts or {"ITE": 1, "IDE": 0, "DTE": 0, "DDE": 0,
                          "RFE": 2, "Total": 3},
        upsets=4,
        upsets_by_target={"regfile": 2, "icache-tag": 2},
        sw_errors=0,
        error_traps=1,
        halted=False,
        iterations=12,
        instructions=25_000,
        wall_seconds=0.5,
    )


@pytest.fixture()
def db():
    with CampaignDatabase(":memory:") as database:
        yield database


def test_results_round_trip_in_order(db):
    campaign = db.ensure_campaign("alpha")
    results = [_result(seed=seed) for seed in (3, 1, 2)]
    assert db.add_results(campaign, results) == 3
    loaded = db.results(campaign)
    # Insertion order is preserved, not seed order.
    assert [r.config.seed for r in loaded] == [3, 1, 2]
    assert [r.comparable() for r in loaded] == \
        [r.comparable() for r in results]


def test_upsert_keeps_position(db):
    campaign = db.ensure_campaign("alpha")
    db.add_results(campaign, [_result(seed=seed) for seed in (1, 2, 3)])
    replacement = _result(seed=2)
    replacement.iterations = 99
    db.add_results(campaign, [replacement])
    loaded = db.results(campaign)
    assert [r.config.seed for r in loaded] == [1, 2, 3]
    assert loaded[1].iterations == 99


def test_huge_derived_seeds_survive(db):
    """splitmix64 seeds exceed SQLite's signed 64-bit INTEGER range."""
    campaign = db.ensure_campaign("alpha")
    big = _result(seed=2**64 - 99)
    db.add_results(campaign, [big])
    loaded = db.results(campaign)
    assert loaded[0].config.seed == 2**64 - 99


def test_split_pending_resumes(db):
    campaign = db.ensure_campaign("alpha")
    configs = [_config(seed=seed) for seed in (1, 2, 3)]
    db.add_results(campaign, [_result(seed=2)])
    done, pending = db.split_pending(campaign, configs)
    assert set(done) == {config_key(configs[1])}
    assert [config.seed for config in pending] == [1, 3]


def test_campaign_resolution(db):
    cid = db.ensure_campaign("alpha")
    assert db.campaign_id("alpha") == cid
    assert db.campaign_id(cid) == cid
    assert db.campaign_id(str(cid)) == cid
    with pytest.raises(ConfigurationError):
        db.campaign_id("missing")


def test_ingest_results_idempotent(db, tmp_path):
    path = str(tmp_path / "runs.jsonl")
    with ResultStore(path) as store:
        store.append([_result(seed=seed) for seed in (1, 2)])
    campaign, written = db.ingest_results(path, name="imported")
    assert written == 2
    again_campaign, _ = db.ingest_results(path, name="imported")
    assert again_campaign == campaign
    assert len(db.results(campaign)) == 2


def test_jsonl_and_database_sources_agree(db, tmp_path):
    path = str(tmp_path / "runs.jsonl")
    results = [_result(seed=seed) for seed in (1, 2, 3)]
    with ResultStore(path) as store:
        store.append(results)
    campaign, _ = db.ingest_results(path, name="imported")
    from_file = JsonlResults(path).results()
    from_db = DatabaseResults(db, campaign).results()
    assert [r.comparable() for r in from_file] == \
        [r.comparable() for r in from_db]


def test_run_events_round_trip(db):
    campaign = db.ensure_campaign("alpha")
    events = [{"ev": "strike", "target": "regfile", "run": 0},
              {"ev": "detect", "target": "regfile", "run": 0}]
    db.add_run_events(campaign, 4, events)
    stored = db.events(campaign)
    assert [event["ev"] for event in stored] == ["strike", "detect"]
    assert all(event["run"] == 4 for event in stored)
    # Idempotent per run: replacing shrinks, never accumulates.
    db.add_run_events(campaign, 4, events[:1])
    assert len(db.events(campaign)) == 1


def test_job_rows(db):
    configs = [_config(seed=seed) for seed in (1, 2)]
    job_id = db.create_job(configs, options={"jobs": 2})
    record = db.job(job_id)
    assert record["state"] == "queued"
    assert record["name"] == f"job-{job_id}"
    assert record["total"] == 2
    assert record["options"]["jobs"] == 2
    assert [config_to_dict(config) for config in db.job_configs(job_id)] \
        == [config_to_dict(config) for config in configs]
    db.update_job(job_id, state="running", completed=1)
    assert db.job(job_id)["completed"] == 1
    assert [row["id"] for row in db.jobs(states=("running",))] == [job_id]
    assert db.jobs(states=("done",)) == []


def test_named_job_shares_campaign(db):
    first = db.create_job([_config(seed=1)], name="corpus")
    second = db.create_job([_config(seed=2)], name="corpus")
    assert db.job(first)["campaign_id"] == db.job(second)["campaign_id"]


# -- fault-model column and schema migration -----------------------------------


def test_fault_model_round_trips(db):
    campaign = db.ensure_campaign("attack")
    result = _result(seed=1, fault_model="stuck-at-1",
                     fault_params={"pc": 0x40000000})
    db.add_results(campaign, [result])
    loaded, = db.results(campaign)
    assert loaded.config.fault_model == "stuck-at-1"
    assert loaded.config.fault_params == {"pc": 0x40000000}
    assert loaded.comparable() == result.comparable()
    row = db._conn.execute("SELECT fault_model FROM runs").fetchone()
    assert row["fault_model"] == "stuck-at-1"


def test_default_rows_store_seu(db):
    campaign = db.ensure_campaign("alpha")
    db.add_results(campaign, [_result(seed=1)])
    row = db._conn.execute("SELECT fault_model FROM runs").fetchone()
    assert row["fault_model"] == "seu"


def test_v1_database_migrates_in_place(tmp_path):
    """A database written before the fault-model layer (schema v1, no
    runs.fault_model column) opens cleanly: the column is added and
    every pre-existing row reads back as the default 'seu' model."""
    path = str(tmp_path / "v1.sqlite")
    with CampaignDatabase(path) as database:
        campaign = database.ensure_campaign("legacy")
        database.add_results(campaign, [_result(seed=1)])
        # Rewind the file to the v1 shape.
        database._conn.execute("ALTER TABLE runs DROP COLUMN fault_model")
        database._conn.execute(
            "UPDATE meta SET value = '1' WHERE key = 'schema_version'")
        database._conn.commit()
    with CampaignDatabase(path) as database:
        row = database._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'").fetchone()
        assert row["value"] == "2"
        loaded, = database.results(database.campaign_id("legacy"))
        assert loaded.config.fault_model == "seu"
        # And new-model rows insert fine post-migration.
        campaign = database.ensure_campaign("legacy")
        database.add_results(
            campaign, [_result(seed=2, fault_model="sefi")])
        rows = database._conn.execute(
            "SELECT fault_model FROM runs ORDER BY position").fetchall()
        assert [r["fault_model"] for r in rows] == ["seu", "sefi"]


def test_newer_schema_is_refused(tmp_path):
    path = str(tmp_path / "future.sqlite")
    with CampaignDatabase(path) as database:
        database._conn.execute(
            "UPDATE meta SET value = '99' WHERE key = 'schema_version'")
        database._conn.commit()
    with pytest.raises(ConfigurationError):
        CampaignDatabase(path)
