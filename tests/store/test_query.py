"""Query-layer equivalence: JSONL-backed and SQLite-backed campaigns
must fold, render, and curve byte-identically."""

import pytest

from repro.fault.campaign import CampaignConfig, prepare_warm_start
from repro.fault.crosssection import measure_curve
from repro.fault.executor import CampaignExecutor, expand_runs, run_campaign_traced
from repro.fault.report import render_table2
from repro.fault.results import ResultStore
from repro.store import (
    CampaignDatabase,
    DatabaseResults,
    JsonlResults,
    availability_readout,
    curve_from_results,
    diff_results,
    fold_results,
    trace_stats,
)
from repro.telemetry import JsonlTraceSink, fold_stats, read_trace

#: Tiny settings (2.25k instructions end to end): real campaign output
#: at unit-test cost.
TINY = dict(flux=400.0, fluence=150.0, instructions_per_second=2_000.0,
            beam_delay_s=0.25, beam_tail_s=0.5,
            flush_period_instructions=400)


def _tiny(let=60.0, seed=11, **overrides):
    settings = dict(TINY)
    settings.update(overrides)
    return CampaignConfig(program="iutest", let=let, seed=seed, **settings)


@pytest.fixture(scope="module")
def campaign_results():
    config = _tiny()
    warm = prepare_warm_start(config)
    return CampaignExecutor(1).run_many(expand_runs(config, 6), warm=warm)


@pytest.fixture()
def stores(tmp_path, campaign_results):
    """The same campaign in a JSONL log and a database campaign."""
    path = str(tmp_path / "runs.jsonl")
    with ResultStore(path) as store:
        store.append(campaign_results)
    db = CampaignDatabase(":memory:")
    campaign, _ = db.ingest_results(path, name="tiny")
    yield JsonlResults(path), DatabaseResults(db, campaign)
    db.close()


def test_table2_identical_across_backends(stores):
    jsonl, database = stores
    assert render_table2(jsonl.results()) == render_table2(database.results())
    assert fold_results(jsonl.results()) == fold_results(database.results())


def test_fold_totals_match_results(campaign_results):
    fold = fold_results(campaign_results)
    assert fold["runs"] == len(campaign_results)
    assert fold["totals"]["counts"]["Total"] == \
        sum(r.counts["Total"] for r in campaign_results)
    assert fold["totals"]["upsets"] == \
        sum(r.upsets for r in campaign_results)
    assert fold["rendered"] == render_table2(campaign_results)


def test_curve_identical_across_backends(stores):
    jsonl, database = stores
    assert curve_from_results(jsonl.results()).as_dict() == \
        curve_from_results(database.results()).as_dict()


def test_curve_matches_live_sweep():
    """Rebuilding the curve from stored runs reproduces measure_curve
    byte for byte -- the HTTP service's equivalence guarantee."""
    lets = (25.0, 110.0)
    live = measure_curve("iutest", lets=lets, flux=TINY["flux"],
                         fluence=TINY["fluence"], seed=11,
                         instructions_per_second=TINY[
                             "instructions_per_second"],
                         beam_delay_s=TINY["beam_delay_s"],
                         beam_tail_s=TINY["beam_tail_s"])
    configs = [_tiny(let=let, seed=11 + index)
               for index, let in enumerate(lets)]
    results = CampaignExecutor(1).run_many(configs)
    rebuilt = curve_from_results(results)
    assert rebuilt.as_dict() == live.as_dict()


def test_availability_identical_across_backends(stores):
    jsonl, database = stores
    assert availability_readout(jsonl.results()) == \
        availability_readout(database.results())


def test_diff_of_identical_campaigns_is_clean(campaign_results):
    diff = diff_results(campaign_results, campaign_results)
    assert diff["matched"] == len(campaign_results)
    assert diff["changed"] == []
    assert diff["counter_delta"] == {}


def test_diff_flags_changed_runs(campaign_results):
    import copy

    mutated = [copy.deepcopy(result) for result in campaign_results]
    mutated[0].iterations += 7
    diff = diff_results(campaign_results, mutated)
    assert diff["matched"] == len(campaign_results) - 1
    assert len(diff["changed"]) == 1
    assert "iterations" in diff["changed"][0]["fields"]


def test_trace_stats_identical_across_backends(tmp_path):
    config = _tiny()
    warm = prepare_warm_start(config)
    path = str(tmp_path / "trace.jsonl")
    sink = JsonlTraceSink(path)
    results = CampaignExecutor(1, runner=run_campaign_traced).run_many(
        expand_runs(config, 3), warm=warm)
    for run, result in enumerate(results):
        sink.write_run(result.trace or [], run=run)
    sink.close()
    with CampaignDatabase(":memory:") as db:
        campaign, events = db.ingest_trace(path, name="trace")
        assert events == len(read_trace(path))
        stats_file = fold_stats(read_trace(path))
        assert trace_stats(db.events(campaign)) == {
            "runs": stats_file.runs,
            "strikes": stats_file.strikes,
            "strikes_by_target": dict(stats_file.strikes_by_target),
            "strikes_by_kind": dict(stats_file.strikes_by_kind),
            "counters": dict(stats_file.counters),
            "reported": dict(stats_file.reported),
            "consistent": stats_file.consistent,
            "states": dict(stats_file.states),
            "recoveries": dict(stats_file.recoveries),
            "early_exits": dict(stats_file.early_exits),
            "ace": (dict(stats_file.ace)
                    if stats_file.ace is not None else None),
        }
