#!/usr/bin/env python
"""Predict on-orbit SEU rates from the measured cross-section curves.

Folds the device's sigma(LET) curves with synthetic orbital LET spectra
(the standard rate-prediction method of the paper's ref [5]) and prints the
mission-level picture: how often the FT machinery will fire in each orbit,
and how quickly an *unprotected* device would fail -- the quantified
motivation of section 4.1 ("error-detection is not enough to maintain
correct operation").

Run:  python examples/mission_rates.py
"""

from repro.fault.rates import ENVIRONMENTS, RatePredictor


def main() -> None:
    predictor = RatePredictor()

    print("On-orbit SEU rate prediction for the LEON-Express device\n")
    header = (f"{'environment':<16} {'upsets/day':>11} {'interval':>12} "
              f"{'corrected/day':>14} {'unprotected MTTF':>17}")
    print(header)
    print("-" * len(header))
    for name in ENVIRONMENTS:
        rates = predictor.predict(name)
        hours = rates.seconds_between_upsets / 3600
        mttf = predictor.unprotected_failure_interval_days(name)
        print(f"{name:<16} {rates.upsets_per_day:>11.3f} "
              f"{hours:>10.1f} h {rates.corrected_per_day():>14.3f} "
              f"{mttf:>14.1f} d")

    geo = predictor.predict("GEO")
    print("\nGEO breakdown by storage type (upsets/day):")
    for target, rate in sorted(geo.by_target.items(),
                               key=lambda item: -item[1]):
        if rate > 0:
            print(f"  {target:<14} {rate:10.4f}")

    print(
        "\nWith LEON-FT every one of these upsets is detected and corrected"
        "\non access (Table 2's result); an unprotected device in GEO would"
        "\nfail within days -- which is why the paper implements fault"
        "\ntolerance on-chip rather than relying on spare computers."
    )


if __name__ == "__main__":
    main()
