#!/usr/bin/env python
"""Explore the synthesis-area trade-offs of the FT configuration space.

Reproduces Table 1 and then sweeps the configuration package the way a
designer would: cache size, register-file protection flavour, TMR on/off --
printing the area overhead of each variant (the 'quickly analyze the impact
of the fault-tolerance functions' workflow of section 5.2).

Run:  python examples/area_explorer.py
"""

from repro import LeonConfig, ProtectionScheme
from repro.area.model import AreaModel, TimingModel, table1
from repro.core.config import CacheConfig, FtConfig


def print_table1() -> None:
    breakdown = table1()
    print("TABLE 1. LEON synthesis results on Atmel ATC25 (model)\n")
    print(f"{'Module':<28} {'Area (mm2)':>11} {'incl. FT':>9} {'Increase':>9}")
    for module in breakdown.modules + [breakdown.total]:
        print(f"{module.name:<28} {module.area_mm2:>11.3f} "
              f"{module.area_ft_mm2:>9.3f} {module.increase_percent:>8.0f}%")
    print(f"\nLogic only: +{breakdown.logic_only().increase_percent:.0f}%  "
          f"(paper ~100%);  total +{breakdown.total.increase_percent:.0f}% "
          f"(paper 39%)")
    timing = TimingModel()
    print(f"Voter timing penalty: {timing.penalty_fraction * 100:.0f}% "
          f"-> {timing.ft_frequency(100):.1f} MHz from a 100 MHz standard build")


def sweep() -> None:
    print("\nConfiguration sweep (total area overhead vs standard build):\n")
    standard = LeonConfig.standard()
    variants = {
        "full FT (TMR + BCH + dual parity)": LeonConfig.fault_tolerant(),
        "FT with duplicated-parity regfile": LeonConfig.fault_tolerant().with_changes(
            ft=FtConfig(tmr_flipflops=True,
                        regfile_protection=ProtectionScheme.PARITY,
                        regfile_duplicated=True)),
        "FT without TMR (codes only)": LeonConfig.fault_tolerant().with_changes(
            ft=FtConfig(tmr_flipflops=False,
                        regfile_protection=ProtectionScheme.BCH)),
        "single parity caches": LeonConfig.fault_tolerant().with_changes(
            icache=CacheConfig(size_bytes=8192, parity=ProtectionScheme.PARITY),
            dcache=CacheConfig(size_bytes=8192, parity=ProtectionScheme.PARITY)),
        "FT with 2x larger caches": LeonConfig.fault_tolerant().with_changes(
            icache=CacheConfig(size_bytes=16384,
                               parity=ProtectionScheme.DUAL_PARITY),
            dcache=CacheConfig(size_bytes=16384,
                               parity=ProtectionScheme.DUAL_PARITY)),
    }
    for name, config in variants.items():
        std = standard
        if "larger caches" in name:
            std = standard.with_changes(
                icache=CacheConfig(size_bytes=16384),
                dcache=CacheConfig(size_bytes=16384))
        breakdown = AreaModel(std, config).breakdown()
        print(f"  {name:<38} +{breakdown.total.increase_percent:5.1f}%  "
              f"({breakdown.total.area_ft_mm2:.2f} mm2)")
    print("\nBigger caches dilute the (fixed) logic overhead: the FT cost "
          "of a cache-heavy\ndevice converges to the RAM check-bit ratio -- "
          "which is why the paper notes the\npad-limited device had 0% "
          "chip-level overhead.")


if __name__ == "__main__":
    print_table1()
    sweep()
