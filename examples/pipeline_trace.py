#!/usr/bin/env python
"""Print the Figure 2 pipeline diagrams.

Renders the four stage-by-stage diagrams of the paper's Figure 2 --
normal execution, a normal trap, the FT register-file correction with
pipeline restart, and an uncorrectable register error -- and validates
the 4-cycle restart claim against the live executor.

Run:  python examples/pipeline_trace.py
"""

from repro import LeonConfig, LeonSystem, assemble
from repro.iu.pipeline import StepEvent
from repro.iu.pipetrace import PipelineTracer

SRAM = 0x40000000


def main() -> None:
    tracer = PipelineTracer()
    print(tracer.render_all(event_index=1))

    # Cross-check against the executor: inject a correctable error and
    # measure the real restart cost.
    system = LeonSystem(LeonConfig.fault_tolerant())
    program = assemble(
        """
            set 5, %g1
        inject_here:
            add %g1, 1, %g2
        done:
            ba done
            nop
        """,
        base=SRAM,
    )
    system.load_program(program)
    system.run(stop_pc=program.address_of("inject_here"))
    physical = system.regfile.physical_index(system.special.psr.cwp, 1)
    system.regfile.inject(physical, bit=0)

    restart = system.step()
    assert restart.event is StepEvent.RESTART
    redo = system.step()

    print("\nExecutor cross-check:")
    print(f"  restart step: {restart.cycles} cycles "
          f"(1 fetch + {restart.cycles - 1} restart)")
    print(f"  re-executed instruction at the same pc: "
          f"{redo.pc == restart.pc} -> result correct, RFE = {system.errors.rfe}")
    print("\n(paper: 'the time for the complete restart operation takes 4 "
          "clock cycles,\n the same as for taking a normal trap')")


if __name__ == "__main__":
    main()
