#!/usr/bin/env python
"""Master/checker lock-step demo (paper section 4.7).

Two LEON devices execute the same program in lock-step; the checker
compares the master's outputs every step.  The demo shows the three
regimes the paper describes:

1. clean lock-step: no compare errors;
2. an SEU corrected inside the master: the *correction itself* skews the
   pair's timing, so the compare-error line fires even though the master
   produced the right results (the documented limitation that forces a
   resynchronizing reset);
3. an SEU on an unprotected device: the checker catches the divergence --
   the high-coverage detection mode the beam tests relied on.

Run:  python examples/master_checker_demo.py
"""

from repro import LeonConfig, MasterChecker, assemble

SRAM = 0x40000000

PROGRAM = assemble(
    """
        set 0x40100000, %g4
        clr %g1
    loop:
        add %g1, 1, %g1
        st %g1, [%g4]
        cmp %g1, 200
        bne loop
        nop
    end:
        ba end
        nop
    """,
    base=SRAM,
)


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    banner("1. Clean lock-step (FT configuration)")
    pair = MasterChecker(LeonConfig.fault_tolerant())
    pair.load_program(PROGRAM)
    steps, errors = pair.run(400)
    print(f"ran {steps} steps, compare errors: {len(errors)}")

    banner("2. Corrected SEU still skews the pair")
    pair = MasterChecker(LeonConfig.fault_tolerant())
    pair.load_program(PROGRAM)
    pair.run(50)
    physical = pair.master.regfile.physical_index(
        pair.master.special.psr.cwp, 1)
    pair.master.regfile.inject(physical, bit=3)
    steps, errors = pair.run(300, stop_on_compare_error=True)
    print(f"master corrected the error (RFE = {pair.master.errors.rfe}), "
          f"but the 4-cycle restart skewed the timing:")
    if errors:
        error = errors[0]
        print(f"  compare error at step {error.step}: field {error.field!r} "
              f"master={error.master_value} checker={error.checker_value}")
    print("  -> in hardware, a reset is needed to resynchronize the pair")

    banner("3. Unprotected device: checker catches real corruption")
    pair = MasterChecker(LeonConfig.standard())
    pair.load_program(PROGRAM)
    pair.run(50)
    physical = pair.master.regfile.physical_index(
        pair.master.special.psr.cwp, 1)
    pair.master.regfile.inject(physical, bit=3)
    steps, errors = pair.run(400, stop_on_compare_error=True)
    print(f"no on-chip protection: corrupted value propagated to the bus; "
          f"compare errors: {len(errors)}")
    if errors:
        print(f"  first mismatch on field {errors[0].field!r}")


if __name__ == "__main__":
    main()
