#!/usr/bin/env python
"""Quickstart: assemble a SPARC V8 program, run it on LEON-FT, inject an SEU.

This is the five-minute tour:

1. build a fault-tolerant LEON system;
2. assemble a small SPARC V8 program with the bundled assembler;
3. run it and read results back over the AHB bus;
4. flip a bit in the register file mid-run and watch the FT machinery
   correct it transparently (one RFE count, a 4-cycle pipeline restart,
   and the *right answer anyway*).

Run:  python examples/quickstart.py
"""

from repro import LeonConfig, LeonSystem, assemble, disassemble

SRAM = 0x40000000
RESULT = 0x40100000


def main() -> None:
    # 1. A LEON-FT system: TMR flip-flops, BCH register file, parity caches,
    #    EDAC external memory -- the configuration that went under the beam.
    system = LeonSystem(LeonConfig.fault_tolerant())

    # 2. A program: sum the numbers 1..100 into memory.
    program = assemble(
        f"""
            set {RESULT}, %g4
            clr %g1                 ! accumulator
            set 100, %g2            ! loop counter
        loop:
            add %g1, %g2, %g1
        checkpoint:
            subcc %g2, 1, %g2
            bne loop
            nop
            st %g1, [%g4]
        done:
            ba done
            nop
        """,
        base=SRAM,
    )
    print("Assembled program:")
    for offset, word in enumerate(program.words[:6]):
        address = program.base + 4 * offset
        print(f"  {address:#010x}  {word:08x}  {disassemble(word, address)}")
    print("  ...")

    # 3. Load and run to the first checkpoint.
    system.load_program(program)
    system.run(stop_pc=program.address_of("checkpoint"))

    # 4. A heavy ion strikes the register holding the accumulator...
    cwp = system.special.psr.cwp
    physical = system.regfile.physical_index(cwp, 1)  # %g1
    system.regfile.inject(physical, bit=17)
    print("\nSEU injected into %g1 (bit 17) mid-loop.")

    # ...and execution continues to the end.
    system.run(stop_pc=program.address_of("done"))
    total = system.read_word(RESULT)

    print(f"\nResult in memory:        {total}  (expected {sum(range(1, 101))})")
    print(f"Register-file errors corrected (RFE): {system.errors.rfe}")
    print(f"Pipeline restarts:       {system.perf.pipeline_restarts}"
          f"  (each costs 4 cycles, like a trap)")
    print(f"Instructions / cycles:   {system.perf.instructions}"
          f" / {system.perf.cycles}  (IPC {system.perf.ipc:.2f})")

    assert total == sum(range(1, 101)), "the FT machinery should have fixed it"
    print("\nThe corrupted operand was corrected before use -- software "
          "never noticed.")


if __name__ == "__main__":
    main()
