#!/usr/bin/env python
"""Interrupt-driven UART echo: the on-board-software shape of figure 1.

A SPARC program sets up the interrupt controller and UART 1, powers the
processor down, and echoes every received byte (uppercased) from inside
the RX interrupt handler -- the idle-loop-plus-ISR structure of real
on-board software, exercising trap entry/RETT, the APB peripherals and
power-down wakeup together.

Run:  python examples/uart_echo.py
"""

from repro import LeonConfig, LeonSystem, assemble

SRAM = 0x40000000
UART_DATA = 0x80000070
UART_CTRL = 0x80000078
IRQ_MASK = 0x80000090
POWER_DOWN = 0x80000018

_TABLE = "\n".join(
    ["trap_table:"]
    + [f"    mov {tt}, %l3\n    ba handler\n    nop\n    nop"
       for tt in range(256)]
)

PROGRAM = _TABLE + f"""
handler:
    ! RX interrupt: read the byte, uppercase a..z, transmit it back.
    set {UART_DATA}, %l4
    ld [%l4], %l5
    cmp %l5, 97             ! 'a'
    bl not_lower
    nop
    cmp %l5, 122            ! 'z'
    bg not_lower
    nop
    sub %l5, 32, %l5
not_lower:
    st %l5, [%l4]
    jmp [%l1]
    rett [%l2]

_start:
    wr %g0, %wim
    set trap_table, %g1
    wr %g1, %tbr
    wr %g0, 0xE0, %psr
    nop
    nop
    nop
    set {UART_CTRL}, %g1
    mov 7, %g2              ! rx enable + tx enable + rx irq
    st %g2, [%g1]
    set {IRQ_MASK}, %g1
    set 0x8, %g2            ! unmask level 3 (uart1)
    st %g2, [%g1]
idle:
    set {POWER_DOWN}, %g1
    st %g0, [%g1]           ! sleep until the next byte arrives
    ba idle
    nop
"""


def main() -> None:
    system = LeonSystem(LeonConfig.fault_tolerant())
    program = assemble(PROGRAM, base=SRAM)
    system.load_program(program)
    entry = program.address_of("_start")
    system.special.pc, system.special.npc = entry, entry + 4

    system.run(200)  # boot to the idle loop
    print("processor initialized, sleeping in power-down\n")

    message = b"Hello, leon-ft!"
    for byte in message:
        system.uart1.receive(bytes([byte]))
        system.run(2_000, max_idle_steps=3_000)
        system.apb.tick(2_000)  # let the TX shifter drain

    echoed = system.uart_output().decode()
    print(f"sent:   {message.decode()!r}")
    print(f"echoed: {echoed!r}")
    print(f"\ninterrupts taken: {system.perf.traps}, "
          f"instructions executed: {system.perf.instructions} "
          f"(the rest of the time: power-down)")
    assert echoed == message.decode().upper()


if __name__ == "__main__":
    main()
