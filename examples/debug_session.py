#!/usr/bin/env python
"""Chase an SEU with the debug support unit.

Demonstrates the DSU workflow (the §9 "on-chip debug unit"): set a
breakpoint, inject a fault at exactly the interesting moment, single-step
through the FT machinery's reaction, and read the instruction trace --
the way one would debug an anomaly report from a beam campaign.

Run:  python examples/debug_session.py
"""

from repro import LeonConfig, LeonSystem, assemble
from repro.debug import DebugSupportUnit

SRAM = 0x40000000


def main() -> None:
    system = LeonSystem(LeonConfig.fault_tolerant())
    program = assemble(
        f"""
            set {SRAM + 0x10000}, %g4
            set 1000, %g1
        work:
            add %g1, 3, %g1
        store_it:
            st %g1, [%g4]
            ld [%g4], %g2
        done:
            ba done
            nop
        """,
        base=SRAM,
    )
    system.load_program(program)
    dsu = DebugSupportUnit(system, trace_depth=64)

    # 1. Break right before the interesting instruction.
    dsu.add_breakpoint(program.address_of("work"), name="work")
    stop = dsu.run()
    print(f"stopped: {stop.reason} at {stop.pc:#010x} "
          f"(breakpoint {stop.breakpoint.name!r})")

    # 2. The beam strikes %g1 while we're parked here.
    physical = system.regfile.physical_index(system.special.psr.cwp, 1)
    system.regfile.inject(physical, bit=9)
    print("injected SEU into %g1 bit 9")

    # 3. Single-step and watch the FT machinery react.
    dsu.remove_breakpoint(program.address_of("work"))
    for _ in range(2):  # the FT restart, then the clean re-execution
        result = dsu.step()
        print(f"  step: {result.event.value:10s} {result.cycles} cycles "
              f"at {result.pc:#010x}")

    # 4. A watchpoint on the output location catches the store.
    dsu.add_watchpoint(SRAM + 0x10000, 4, name="output")
    stop = dsu.run()
    print(f"stopped: {stop.reason} (write to {stop.write_address:#010x})")
    print(f"value stored: {system.read_word(SRAM + 0x10000)} (expected 1003)")

    # 5. The trace shows the whole story, restart event included.
    print("\ninstruction trace (newest last):")
    print(dsu.render_trace(12))
    print(f"\nevent counts: "
          f"{ {event.value: count for event, count in dsu.event_counts.items()} }")
    print(f"RFE corrections: {system.errors.rfe}")


if __name__ == "__main__":
    main()
