#!/usr/bin/env python
"""A miniature Louvain beam campaign (the paper's section 6 procedure).

Puts the LEON-Express model under a simulated heavy-ion beam at three LET
values while the IUTEST self-test runs, then prints the Table 2-style rows:
errors corrected per RAM type, the measured cross-section, and the failure
count (which should be zero -- that is the paper's headline result).

Run:  python examples/seu_campaign.py  [--full]
"""

import argparse

from repro.fault import Campaign, CampaignConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-scale fluence (1e5 ions/cm2; slow)")
    parser.add_argument("--program", default="iutest",
                        choices=["iutest", "paranoia", "cncf"])
    args = parser.parse_args()

    fluence = 1.0e5 if args.full else 2.0e3
    lets = (10.0, 40.0, 110.0)

    print(f"Beam campaign: {args.program.upper()}, flux 400 ions/s/cm2, "
          f"fluence {fluence:.0E} ions/cm2 per run\n")
    header = f"{'LET':>5}  {'ITE':>4} {'IDE':>4} {'DTE':>4} {'DDE':>4} " \
             f"{'RFE':>4} {'Total':>6}  {'X-sect':>9}  {'failures':>8}"
    print(header)
    print("-" * len(header))

    for index, let in enumerate(lets):
        config = CampaignConfig(
            program=args.program,
            let=let,
            flux=400.0,
            fluence=fluence,
            seed=42 + index,
            instructions_per_second=50_000.0,
        )
        result = Campaign(config).run()
        counts = result.counts
        print(f"{let:5.0f}  {counts['ITE']:>4} {counts['IDE']:>4} "
              f"{counts['DTE']:>4} {counts['DDE']:>4} {counts['RFE']:>4} "
              f"{counts['Total']:>6}  {result.cross_section():>9.2E}  "
              f"{result.failures:>8}")

    print("\nEvery detected error was corrected in place: no timing impact "
          "beyond the counted\nrestarts/refetches, and no software impact "
          "at all (checksums stayed clean).")


if __name__ == "__main__":
    main()
