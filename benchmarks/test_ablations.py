"""E8 -- Ablations of the design choices DESIGN.md calls out.

Each ablation flips one FT mechanism and demonstrates the failure mode (or
cost) the paper's design avoids:

  A. one vs two parity bits per cache word under MBU-heavy beam
     (section 4.3: dual parity exists to catch adjacent doubles);
  B. cache sub-blocking on/off under speculative refill of a poisoned
     memory word (section 4.6);
  C. TMR flip-flops on/off under direct flip-flop strikes (section 4.5);
  D. register-file protection flavours: BCH vs duplicated-parity vs
     detect-only parity under single and double-bit errors (section 4.4);
  E. the FT double-store write-buffer delay (section 4.4's only
     performance cost).
"""

import pytest

from conftest import JOBS, format_table, write_artifact
from repro import LeonConfig, LeonSystem, ProtectionScheme, assemble
from repro.core.config import CacheConfig, FtConfig
from repro.fault.campaign import CampaignConfig
from repro.fault.executor import CampaignExecutor
from repro.programs import ProgramHarness, build_iutest

SRAM = 0x40000000
ROWS = []


def _row(ablation, variant, outcome):
    ROWS.append({"ablation": ablation, "variant": variant, "outcome": outcome})


# -- A: parity width under MBU ------------------------------------------------


def _parity_config(scheme, seed=31):
    base = LeonConfig.leon_express()
    leon = base.with_changes(
        icache=CacheConfig(size_bytes=base.icache.size_bytes, parity=scheme),
        dcache=CacheConfig(size_bytes=base.dcache.size_bytes, parity=scheme),
    )
    return CampaignConfig(program="iutest", let=110.0, flux=400.0,
                          fluence=6.0e3, seed=seed,
                          instructions_per_second=50_000.0, leon=leon)


@pytest.fixture(scope="module")
def parity_ablation():
    return tuple(CampaignExecutor(JOBS).run_many(
        [_parity_config(ProtectionScheme.PARITY),
         _parity_config(ProtectionScheme.DUAL_PARITY)]))


def test_ablation_parity_bits_vs_mbu(benchmark, parity_ablation):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    single, dual = parity_ablation
    _row("A: cache parity", "1 bit", f"{single.failures} failures, "
         f"{single.counts['Total']} corrected")
    _row("A: cache parity", "2 bits (odd/even)", f"{dual.failures} failures, "
         f"{dual.counts['Total']} corrected")
    # At LET 110 the beam produces adjacent-cell doubles; one parity bit
    # misses them (even error count), two parity bits catch every one.
    assert dual.failures == 0
    assert single.failures > 0


# -- B: sub-blocking -----------------------------------------------------------


def _speculative_poison_run(subblocking):
    base = LeonConfig.fault_tolerant()
    leon = base.with_changes(
        dcache=CacheConfig(size_bytes=base.dcache.size_bytes,
                           parity=base.dcache.parity,
                           subblocking=subblocking))
    system = LeonSystem(leon)
    line = 0x40200000
    for offset in range(0, 16, 4):
        system.write_word(line + offset, offset)
    system.memctrl.sram_memory.inject(line + 12 - SRAM, 1)
    system.memctrl.sram_memory.inject(line + 12 - SRAM, 5)
    program = assemble(f"""
        set {line}, %g1
        ld [%g1], %g2           ! speculative refill touches the bad word
    done:
        ba done
        nop
    """, base=SRAM)
    system.load_program(program)
    result = system.run(100, stop_pc=program.address_of("done"))
    return result.halted.value


def test_ablation_subblocking(benchmark):
    with_sb = benchmark.pedantic(lambda: _speculative_poison_run(True),
                                 rounds=1, iterations=1)
    without_sb = _speculative_poison_run(False)
    _row("B: sub-blocking", "on", f"speculative bad word harmless ({with_sb})")
    _row("B: sub-blocking", "off", f"spurious error trap ({without_sb})")
    assert with_sb == "running"
    assert without_sb == "error-mode"


# -- C: TMR flip-flops -----------------------------------------------------------


def _ff_barrage(tmr, strikes=40, seed=17):
    import random

    base = LeonConfig.leon_express()
    leon = base.with_changes(ft=FtConfig(
        tmr_flipflops=tmr, regfile_protection=ProtectionScheme.BCH))
    system = LeonSystem(leon)
    program, _ = build_iutest(leon, iterations=1_000_000,
                              scrub_words=256, icode_words=128)
    harness = ProgramHarness(system, program)
    rng = random.Random(seed)
    from repro.fault.injector import FaultInjector

    injector = FaultInjector(system)
    ff_bits = injector.targets["flipflops"].bits
    for _strike in range(strikes):
        run = system.run(1500, stop_when=lambda r: system.special.pc
                         == program.symbols["_trap_spin"])
        if run.stop_reason in ("halted", "predicate"):
            break
        injector.inject("flipflops", rng.randrange(ff_bits))
    result = harness.read_results(system.run(30_000))
    return result


def test_ablation_tmr_flipflops(benchmark):
    protected = benchmark.pedantic(lambda: _ff_barrage(tmr=True), rounds=1, iterations=1)
    unprotected = _ff_barrage(tmr=False)
    _row("C: TMR flip-flops", "on",
         f"failed={protected.failed} after 40 strikes")
    _row("C: TMR flip-flops", "off",
         f"failed={unprotected.failed} (trap tt={unprotected.trap_tt:#x})"
         if unprotected.trapped else f"failed={unprotected.failed}")
    assert not protected.failed  # every strike voted away
    assert unprotected.failed  # state corruption kills the run


# -- D: register-file protection flavours -------------------------------------------


def _regfile_variant(protection, duplicated, bits):
    base = LeonConfig.fault_tolerant()
    leon = base.with_changes(ft=FtConfig(
        tmr_flipflops=True, regfile_protection=protection,
        regfile_duplicated=duplicated))
    system = LeonSystem(leon)
    program = assemble(f"""
        set 777, %g1
    inject_here:
        add %g1, 1, %g2
        set 0x40100000, %g4
        st %g2, [%g4]
    done:
        ba done
        nop
    """, base=SRAM)
    system.load_program(program)
    system.run(stop_pc=program.address_of("inject_here"))
    physical = system.regfile.physical_index(system.special.psr.cwp, 1)
    for bit in bits:
        system.regfile.inject(physical, bit=bit)
    result = system.run(100, stop_pc=program.address_of("done"))
    if result.halted.value == "error-mode":
        return "error trap"
    if system.read_word(0x40100000) == 778:
        corrected = "corrected" if system.errors.rfe else "clean"
        return corrected
    return "SILENT CORRUPTION"


def test_ablation_regfile_protection(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cases = {
        ("BCH", (3,)): _regfile_variant(ProtectionScheme.BCH, False, (3,)),
        ("BCH", (3, 9)): _regfile_variant(ProtectionScheme.BCH, False, (3, 9)),
        ("parity (3-port)", (3,)): _regfile_variant(ProtectionScheme.PARITY,
                                                    False, (3,)),
        ("parity duplicated", (3,)): _regfile_variant(ProtectionScheme.PARITY,
                                                      True, (3,)),
        ("none", (3,)): _regfile_variant(ProtectionScheme.NONE, False, (3,)),
    }
    for (variant, bits), outcome in cases.items():
        _row("D: regfile", f"{variant}, {len(bits)}-bit error", outcome)
    assert cases[("BCH", (3,))] == "corrected"
    assert cases[("BCH", (3, 9))] == "error trap"  # SEC-DED limit
    assert cases[("parity (3-port)", (3,))] == "error trap"  # detect-only
    assert cases[("parity duplicated", (3,))] == "corrected"  # copy repairs
    assert cases[("none", (3,))] == "SILENT CORRUPTION"


# -- E: double-store delay ------------------------------------------------------------


def test_ablation_double_store_delay(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cycles = {}
    for name, config in (("standard", LeonConfig.standard()),
                         ("FT", LeonConfig.fault_tolerant())):
        system = LeonSystem(config)
        program = assemble(f"""
            set 0x40100000, %g4
            set 1, %g2
            set 2, %g3
            std %g2, [%g4+8]
            std %g2, [%g4+16]
            std %g2, [%g4+24]
        done:
            ba done
            nop
        """, base=SRAM)
        system.load_program(program)
        system.run(stop_pc=program.address_of("done"))
        cycles[name] = system.perf.cycles
    _row("E: double-store", "standard", f"{cycles['standard']} cycles")
    _row("E: double-store", "FT (+1/STD)", f"{cycles['FT']} cycles")
    assert cycles["FT"] == cycles["standard"] + 3  # one cycle per STD


def test_zz_write_ablation_artifact(benchmark):
    """Collect every ablation row into one artifact (runs last by name)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    text = "E8 ablations: FT design choices\n\n"
    text += format_table(ROWS, ["ablation", "variant", "outcome"])
    write_artifact("ablations.txt", text)
    assert len(ROWS) >= 10
