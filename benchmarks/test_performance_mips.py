"""E9 -- Section 2 performance target: "100 MIPS (peak) at 100 MHz".

Measures peak and sustained IPC of the model and combines it with the
Table 1 timing penalty: the FT build reaches the same IPC at ~92.6 MHz,
i.e. the FT functions cost throughput only through the 8% voter penalty
(plus one cycle per double-store).
"""

import pytest

from conftest import format_table, write_artifact
from repro import LeonConfig, LeonSystem, assemble
from repro.area.model import TimingModel

SRAM = 0x40000000


def _peak_ipc(config):
    """Straight-line ALU code, cache-hot: the 'peak' of the claim."""
    system = LeonSystem(config)
    body = "\n".join([f"    xor %g1, {i % 512}, %g1" for i in range(400)])
    program = assemble(f"""
    start:
{body}
    done:
        ba done
        nop
    """, base=SRAM)
    system.load_program(program)
    # Warm the instruction cache with one pass.
    system.run(stop_pc=program.address_of("done"))
    warm_cycles = system.perf.cycles
    warm_instr = system.perf.instructions
    system.special.pc = program.address_of("start")
    system.special.npc = program.address_of("start") + 4
    system.run(stop_pc=program.address_of("done"))
    cycles = system.perf.cycles - warm_cycles
    instructions = system.perf.instructions - warm_instr
    return instructions / cycles


def _sustained_ipc(config):
    """A mixed integer kernel (loads, stores, branches, mul)."""
    system = LeonSystem(config)
    program = assemble(f"""
        set 0x40100000, %g4
        set 200, %g1
        clr %g2
    loop:
        ld [%g4], %g3
        add %g3, %g1, %g3
        st %g3, [%g4]
        umul %g2, %g1, %g5
        subcc %g1, 1, %g1
        bne loop
        add %g2, 1, %g2
    done:
        ba done
        nop
    """, base=SRAM)
    system.load_program(program)
    system.run(stop_pc=program.address_of("done"))
    return system.perf.ipc


def test_performance_mips_target(benchmark):
    standard = LeonConfig.standard()
    ft = LeonConfig.fault_tolerant()

    peak_std = benchmark.pedantic(lambda: _peak_ipc(standard),
                                  rounds=1, iterations=1)
    peak_ft = _peak_ipc(ft)
    sustained_std = _sustained_ipc(standard)
    sustained_ft = _sustained_ipc(ft)
    timing = TimingModel()

    rows = [
        {"config": "standard", "peak IPC": f"{peak_std:.3f}",
         "sustained IPC": f"{sustained_std:.3f}",
         "clock": "100.0 MHz",
         "peak MIPS": f"{peak_std * 100:.0f}"},
        {"config": "fault-tolerant", "peak IPC": f"{peak_ft:.3f}",
         "sustained IPC": f"{sustained_ft:.3f}",
         "clock": f"{timing.ft_frequency(100.0):.1f} MHz",
         "peak MIPS": f"{peak_ft * timing.ft_frequency(100.0):.0f}"},
    ]
    text = "Section 2 target: 100 MIPS (peak) at 100 MHz, < 1 W\n\n"
    text += format_table(rows, ["config", "peak IPC", "sustained IPC",
                                "clock", "peak MIPS"])
    text += ("\n\n(the FT build loses throughput only through the ~8% voter"
             "\n clock penalty and one cycle per double-store)")
    write_artifact("performance_mips.txt", text)

    # Peak: ~1 instruction/cycle on cache-hot straight-line code.
    assert peak_std == pytest.approx(1.0, abs=0.02)
    # FT has identical cache-hot IPC (checks are parallel, no stalls).
    assert peak_ft == pytest.approx(peak_std, abs=0.001)
    # Sustained IPC for a load/store/branch mix lands in LEON's 0.5..0.9.
    assert 0.5 < sustained_std <= 0.9
    # FT sustained IPC within 2% (double-store delay only).
    assert sustained_ft == pytest.approx(sustained_std, rel=0.02)
