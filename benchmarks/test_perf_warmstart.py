"""Perf -- warm-start campaigns: snapshot fork vs recomputed prefix.

A campaign whose runs share a long fault-free warm-up (``beam_delay_s``)
pays the prefix once under ``--warm-start``: the parent executes it, then
every run restores the snapshot and simulates only its beam window.  This
bench measures a representative shape -- the prefix several times longer
than the beam window -- and records ``BENCH_warmstart.json`` (repo root)
for CI regression tracking.

Two assertions:

  * correctness is unconditional: warm results must be byte-identical to
    cold results, run for run;
  * throughput: warm-start (including the one-time prefix execution) must
    be at least 2x faster than cold over the seed batch.
"""

import json
import time
from pathlib import Path

import pytest

from conftest import write_artifact
from repro.fault.campaign import CampaignConfig, prepare_warm_start
from repro.fault.executor import CampaignExecutor, expand_runs

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_warmstart.json"

#: A representative warm-start shape: the fault-free warm-up is ~5x the
#: beam window (long setup loops, short windows are the use case).
CONFIG = CampaignConfig(
    program="iutest",
    let=60.0,
    flux=400.0,
    fluence=300.0,  # 0.75 beam-s window = 15k instructions
    seed=700,
    instructions_per_second=20_000.0,
    beam_delay_s=4.0,  # 80k-instruction shared prefix
    beam_tail_s=0.1,
)

RUNS = 8


@pytest.fixture(scope="module")
def measurements():
    configs = expand_runs(CONFIG, RUNS)
    executor = CampaignExecutor(1)

    started = time.perf_counter()
    cold = executor.run_many(configs)
    cold_wall = time.perf_counter() - started

    started = time.perf_counter()
    warm_start = prepare_warm_start(CONFIG)
    prepare_wall = time.perf_counter() - started
    started = time.perf_counter()
    warm = executor.run_many(configs, warm=warm_start)
    warm_wall = time.perf_counter() - started

    return cold, cold_wall, warm, prepare_wall, warm_wall


def test_warmstart_speedup(benchmark, measurements):
    cold, cold_wall, warm, prepare_wall, warm_wall = measurements
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    identical = [w.comparable() for w in warm] == \
        [c.comparable() for c in cold]
    warm_total = prepare_wall + warm_wall
    speedup = cold_wall / warm_total if warm_total > 0 else 0.0
    effaced = sum(1 for result in warm if result.effaced)
    benchmark.extra_info["warmstart_speedup"] = speedup

    record = {
        "runs": RUNS,
        "prefix_instructions": CONFIG.phase_instructions()[0],
        "window_instructions": CONFIG.phase_instructions()[1],
        "cold_wall_s": round(cold_wall, 3),
        "prepare_wall_s": round(prepare_wall, 3),
        "warm_wall_s": round(warm_wall, 3),
        "speedup": round(speedup, 3),
        "effaced_runs": effaced,
        "results_identical": identical,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    prefix, window, _tail = CONFIG.phase_instructions()
    text = (
        "Warm-start campaign throughput\n\n"
        f"shape:            {prefix:,}-instr prefix, {window:,}-instr window, "
        f"{RUNS} seeds\n"
        f"cold (recompute): {cold_wall:.2f} s\n"
        f"warm (snapshot):  {warm_total:.2f} s "
        f"({prepare_wall:.2f} s prepare + {warm_wall:.2f} s runs)\n"
        f"speedup:          {speedup:.2f}x   effaced early-outs: {effaced}\n"
        f"identical:        {identical}\n"
        f"[record: {BENCH_PATH.name}]"
    )
    write_artifact("perf_warmstart.txt", text)

    assert identical
    assert speedup >= 2.0
