"""E7 -- Section 7: LEON-FT vs IBM S/390 G5 vs Intel Itanium.

Regenerates the alternative-implementations comparison: area overhead,
timing penalty, recovery latency, error coverage by upset class, and a
Monte-Carlo evaluation of each scheme under a LEON-like upset mix.
"""

import pytest

from conftest import format_table, write_artifact
from repro.alternatives.schemes import (
    UpsetClass,
    all_schemes,
    evaluate_scheme,
)


def _evaluate():
    schemes = all_schemes()
    evaluations = [evaluate_scheme(scheme, upsets=20_000, seed=7)
                   for scheme in schemes]
    return schemes, evaluations


def test_section7_alternative_implementations(benchmark):
    schemes, evaluations = benchmark.pedantic(_evaluate, rounds=1, iterations=1)

    rows = []
    for scheme, evaluation in zip(schemes, evaluations):
        rows.append({
            "scheme": scheme.name,
            "logic area": f"+{scheme.logic_area_overhead * 100:.0f}%",
            "cycle penalty": f"{scheme.timing_penalty * 100:.0f}%",
            "worst recovery": f"{scheme.worst_recovery_cycles} cyc",
            "coverage": f"{evaluation.coverage * 100:.1f}%",
            "mean recovery": f"{evaluation.mean_recovery_cycles:.0f} cyc",
            "real-time": "yes" if scheme.realtime_suitable else "no",
        })
    text = "Section 7: alternative FT implementations\n\n"
    text += format_table(rows, ["scheme", "logic area", "cycle penalty",
                                "worst recovery", "coverage",
                                "mean recovery", "real-time"])
    matrix_rows = []
    for upset_class in UpsetClass:
        row = {"upset class": upset_class.value}
        for scheme in schemes:
            outcome = scheme.handle(upset_class)
            row[scheme.name] = ("corrected" if outcome.corrected
                                else "detected" if outcome.detected
                                else "UNPROTECTED")
        matrix_rows.append(row)
    text += "\n\nPer-class outcomes:\n"
    text += format_table(matrix_rows,
                         ["upset class"] + [scheme.name for scheme in schemes])
    text += (
        "\n\n(paper: IBM area overhead 'similar to LEON, 100%'; IBM detects"
        " all error types but\n restart 'takes several thousand clock"
        " cycles' and timers/bus interfaces cannot use it;\n Itanium"
        " protects caches/TLBs only, 'state machine registers are not"
        " protected')"
    )
    write_artifact("section7_alternatives.txt", text)

    leon, ibm, itanium = schemes
    # Area overhead: LEON ~ IBM ~ 100%, Itanium small.
    assert leon.logic_area_overhead == pytest.approx(ibm.logic_area_overhead)
    assert itanium.logic_area_overhead < 0.5
    # Recovery: LEON 4 cycles vs IBM thousands.
    assert leon.handle(UpsetClass.REGISTER_FILE).recovery_cycles == 4
    assert ibm.worst_recovery_cycles >= 1000
    # Coverage ordering under the mix.
    by_name = {evaluation.scheme: evaluation for evaluation in evaluations}
    assert by_name["LEON-FT"].coverage > by_name["IBM S/390 G5"].coverage
    assert by_name["IBM S/390 G5"].coverage > by_name["Intel Itanium"].coverage
    # Real-time verdicts.
    assert leon.realtime_suitable
    assert not ibm.realtime_suitable and not itanium.realtime_suitable
