"""Perf -- static pre-classification vs the PR-6 early-exit baseline.

Near the SEU threshold, most strikes that matter land in state the
program will never read: the static analyzer proves 117 of random:7's
136 register-file words (and the whole FP file) dead, and the campaign
grades such runs without executing them.  The early-exit baseline cannot
help there -- a latent upset in a dead word keeps the architectural
digest off the golden trajectory forever, so the baseline runs the full
observation tail for exactly the runs static grading classifies for
free.

Paper-scale fluence (1e5 ions/cm2), near-threshold LET pair, on a
small-cache express device where the claimable arrays (regfile + FP
file) dominate the fault space.  Records ``BENCH_static.json`` (repo
root) for CI regression tracking.

Two assertions:

  * correctness is unconditional: statically-graded results must be
    byte-identical to the analyzer-disabled baseline, run for run, at
    ``jobs=1`` and ``jobs=4``;
  * throughput: static grading must be at least 1.5x faster than the
    early-exit grading baseline (PR 6) over the same campaign.
"""

import json
import time
from dataclasses import replace
from pathlib import Path

import pytest

from conftest import write_artifact
from repro.core.config import CacheConfig, LeonConfig
from repro.fault.campaign import CampaignConfig, prepare_warm_start
from repro.fault.executor import CampaignExecutor, expand_runs

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_static.json"

#: Near-threshold LETs on a device whose claimable arrays dominate: a
#: typical run draws one or two strikes, mostly into provably-dead
#: register-file words.  The early-exit baseline must execute those runs
#: to the end (the latent upset never leaves the digest); static grading
#: claims them without a restore.
CONFIG = CampaignConfig(
    program="random:7",
    let=4.5,
    flux=400.0,
    fluence=1.0e5,  # the paper's fluence: 250 beam-s window
    seed=1102,
    instructions_per_second=100.0,
    beam_delay_s=40.0,  # 4k-instruction fault-free prefix
    beam_tail_s=6_000.0,  # 600k-instruction observation tail
    flush_period_instructions=4_000,
    leon=LeonConfig.leon_express(
        icache=CacheConfig(size_bytes=64),
        dcache=CacheConfig(size_bytes=64),
    ),
)

LETS = (4.4, 4.6)
REPLICAS = 8
CHECKPOINTS = 64


def _configs():
    configs = []
    for let in LETS:
        configs.extend(expand_runs(replace(CONFIG, let=let), REPLICAS))
    return configs


@pytest.fixture(scope="module")
def measurements():
    configs = _configs()

    started = time.perf_counter()
    warm = prepare_warm_start(CONFIG, checkpoints=CHECKPOINTS)
    prepare_wall = time.perf_counter() - started

    # The PR-6 baseline: early-exit grading with the analyzer disabled.
    # Also the identity oracle for the static path.
    baseline_configs = [replace(config, static_grading=False)
                        for config in configs]
    started = time.perf_counter()
    baseline = CampaignExecutor(1).run_many(baseline_configs, warm=warm)
    baseline_wall = time.perf_counter() - started

    started = time.perf_counter()
    fast1 = CampaignExecutor(1).run_many(configs, warm=warm)
    fast1_wall = time.perf_counter() - started

    started = time.perf_counter()
    fast4 = CampaignExecutor(4, chunksize=1).run_many(configs, warm=warm)
    fast4_wall = time.perf_counter() - started

    return (warm, prepare_wall, baseline, baseline_wall,
            fast1, fast1_wall, fast4, fast4_wall)


def test_static_speedup(benchmark, measurements):
    (warm, prepare_wall, baseline, baseline_wall,
     fast1, fast1_wall, fast4, fast4_wall) = measurements
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    expected = [result.comparable() for result in baseline]
    identical_jobs1 = [r.comparable() for r in fast1] == expected
    identical_jobs4 = [r.comparable() for r in fast4] == expected
    speedup = baseline_wall / fast1_wall if fast1_wall > 0 else 0.0
    statics = [r for r in fast1 if r.exit_reason == "static_masked"]
    struck = sum(1 for r in statics if r.upsets > 0)
    skipped = sum(r.instructions for r in statics)
    benchmark.extra_info["static_speedup"] = speedup

    prefix, window, tail = CONFIG.phase_instructions()
    record = {
        "runs": len(fast1),
        "lets": list(LETS),
        "fluence": CONFIG.fluence,
        "prefix_instructions": prefix,
        "window_instructions": window,
        "tail_instructions": tail,
        "ace_fraction": round(warm.ace.ace_fraction(), 4),
        "claimable_words": warm.ace.claimable_words,
        "regfile_words": warm.ace.regfile_words,
        "prepare_wall_s": round(prepare_wall, 3),
        "baseline_wall_s": round(baseline_wall, 3),
        "fast_jobs1_wall_s": round(fast1_wall, 3),
        "fast_jobs4_wall_s": round(fast4_wall, 3),
        "speedup": round(speedup, 3),
        "static_masked_runs": len(statics),
        "static_masked_struck_runs": struck,
        "skipped_instructions": skipped,
        "results_identical": identical_jobs1 and identical_jobs4,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    text = (
        "Static pre-classification throughput\n\n"
        f"shape:            {prefix:,}-instr prefix, {window:,}-instr "
        f"window, {tail:,}-instr tail, {len(fast1)} runs\n"
        f"analysis:         ACE fraction {record['ace_fraction']} "
        f"({record['claimable_words']}/{record['regfile_words']} words "
        f"claimed dead)\n"
        f"baseline (PR 6):  {baseline_wall:.2f} s\n"
        f"static grading:   {fast1_wall:.2f} s (jobs=1), "
        f"{fast4_wall:.2f} s (jobs=4)\n"
        f"speedup:          {speedup:.2f}x   static-masked: "
        f"{len(statics)}/{len(fast1)} ({struck} struck)   "
        f"skipped: {skipped:,} instr\n"
        f"identical:        jobs=1 {identical_jobs1}, "
        f"jobs=4 {identical_jobs4}\n"
        f"[record: {BENCH_PATH.name}]"
    )
    write_artifact("perf_static.txt", text)

    assert identical_jobs1, "static grading diverged from the baseline " \
        "at jobs=1"
    assert identical_jobs4, "static grading diverged from the baseline " \
        "at jobs=4"
    assert statics, "no run was statically graded"
    assert struck > 0, "only strike-free runs were statically graded"
    assert speedup >= 1.5
