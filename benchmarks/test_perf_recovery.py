"""Perf -- recovery latency: the staged ladder under a hostile beam.

Three pinned runs on the unprotected (standard) device at LET 110 with a
dense beam: seed 16 halts in error mode mid-window, seeds 1 and 3 park at
the trap handler persistently enough to climb the ladder.  With
``recovery="ladder"`` every run completes end to end; this bench records
the per-level recovery counts, downtime and MTTR to ``BENCH_recovery.json``
(repo root) for CI regression tracking.

Assertions:

  * every run completes (no terminal halt, nothing unrecovered);
  * a pipeline restart costs exactly :data:`RESTART_CYCLES` = 4 cycles --
    the paper's section 4.4 number;
  * results are byte-identical at --jobs 1 and --jobs 2.
"""

import json
import time
from pathlib import Path

import pytest

from conftest import write_artifact
from repro.core.config import LeonConfig
from repro.fault.campaign import CampaignConfig
from repro.fault.executor import CampaignExecutor
from repro.recovery import RESTART_CYCLES

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_recovery.json"

SEEDS = (16, 1, 3)

CONFIGS = [
    CampaignConfig(
        program="iutest",
        let=110.0,
        flux=5_000.0,
        fluence=10_000.0,
        seed=seed,
        instructions_per_second=30_000.0,
        leon=LeonConfig.standard(),
        recovery="ladder",
    )
    for seed in SEEDS
]


@pytest.fixture(scope="module")
def measurements():
    started = time.perf_counter()
    serial = CampaignExecutor(1).run_many(CONFIGS)
    serial_wall = time.perf_counter() - started
    parallel = CampaignExecutor(2, chunksize=1).run_many(CONFIGS)
    return serial, parallel, serial_wall


def test_recovery_latency(benchmark, measurements):
    serial, parallel, serial_wall = measurements
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    identical = [p.comparable() for p in parallel] == \
        [s.comparable() for s in serial]

    recoveries = {}
    downtime = {}
    for result in serial:
        for level, count in result.recoveries.items():
            recoveries[level] = recoveries.get(level, 0) + count
        for level, cycles in result.recovery_downtime.items():
            downtime[level] = downtime.get(level, 0) + cycles
    events = sum(recoveries.values())
    total_down = sum(downtime.values())
    mttr = total_down / events if events else 0.0
    restart_cost = (downtime.get("pipeline-restart", 0)
                    / max(recoveries.get("pipeline-restart", 0), 1))
    benchmark.extra_info["recovery_mttr_cycles"] = mttr

    record = {
        "seeds": list(SEEDS),
        "policy": "ladder",
        "recoveries": recoveries,
        "downtime_cycles": downtime,
        "recovery_events": events,
        "total_downtime_cycles": total_down,
        "mttr_cycles": round(mttr, 1),
        "pipeline_restart_cycles": restart_cost,
        "recovered_halts": sum(r.halts for r in serial),
        "unrecovered_runs": sum(int(r.unrecovered) for r in serial),
        "jobs_identical": identical,
        "serial_wall_s": round(serial_wall, 3),
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    level_lines = "\n".join(
        f"  {level:<17} x{recoveries[level]:<4} {downtime[level]:>9} cycles"
        for level in ("pipeline-restart", "cache-flush", "warm-reset",
                      "cold-reboot") if level in recoveries)
    text = (
        "Recovery ladder under beam (standard device, LET 110)\n\n"
        f"{level_lines}\n"
        f"  MTTR              {mttr:.0f} cycles\n"
        f"  recovered halts   {record['recovered_halts']}\n"
        f"  jobs-identical:   {identical}\n"
        f"[record: {BENCH_PATH.name}]"
    )
    write_artifact("perf_recovery.txt", text)

    assert identical
    assert all(not r.halted and not r.unrecovered for r in serial)
    assert sum(r.halts for r in serial) >= 1
    assert recoveries.get("pipeline-restart", 0) >= 1
    assert restart_cost == RESTART_CYCLES
    assert mttr > 0
