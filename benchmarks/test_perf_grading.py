"""Perf -- fast fault grading: early-exit classification vs full execution.

The paper's beam runs use a fluence of 1e5 ions/cm2, which at realistic
flux means most of a run is *observation*: a long strike-free stretch in
which the device either has reconverged to the golden trajectory or has
diverged for good.  Golden-timeline grading terminates each run at the
first checkpoint whose architectural digest matches the golden run's and
reports the golden end-of-run readouts, so the tail is never re-executed.

This bench measures that at paper-scale fluence: a near-threshold LET
pair (a handful of strikes per run, all early) with an observation tail
~15x the beam window.  Records ``BENCH_grading.json`` (repo root) for CI
regression tracking.

Two assertions:

  * correctness is unconditional: graded results must be byte-identical
    to the full-execution oracle, run for run, at ``jobs=1`` and
    ``jobs=4``;
  * throughput: early-exit grading must be at least 5x faster than the
    warm-start baseline (full execution from the same warm start).
"""

import json
import time
from dataclasses import replace
from pathlib import Path

import pytest

from conftest import write_artifact
from repro.fault.campaign import CampaignConfig, prepare_warm_start
from repro.fault.executor import CampaignExecutor, expand_runs

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_grading.json"

#: Paper-scale fluence near the SEU threshold: few strikes, all inside a
#: beam window dwarfed by the observation tail -- the shape early-exit
#: grading is built for.  The periodic cache flush (section 4.8) is what
#: lets struck runs reconverge instead of carrying latent cache errors.
CONFIG = CampaignConfig(
    program="iutest",
    let=6.0,
    flux=400.0,
    fluence=1.0e5,  # the paper's fluence: 250 beam-s window
    seed=1101,
    instructions_per_second=100.0,
    beam_delay_s=40.0,  # 4k-instruction fault-free prefix
    beam_tail_s=6_000.0,  # 600k-instruction observation tail
    flush_period_instructions=4_000,
)

LETS = (5.0, 6.0)
REPLICAS = 3
CHECKPOINTS = 64


def _configs():
    configs = []
    for let in LETS:
        configs.extend(expand_runs(replace(CONFIG, let=let), REPLICAS))
    return configs


@pytest.fixture(scope="module")
def measurements():
    configs = _configs()

    started = time.perf_counter()
    warm = prepare_warm_start(CONFIG, checkpoints=CHECKPOINTS)
    prepare_wall = time.perf_counter() - started

    # The warm-start baseline: full execution of every run from the same
    # shared snapshot, no grading, no batching.  Also the identity oracle.
    oracle_configs = [replace(config, early_exit=False)
                      for config in configs]
    started = time.perf_counter()
    oracle = CampaignExecutor(1).run_many(oracle_configs, warm=warm,
                                          batch=False)
    oracle_wall = time.perf_counter() - started

    started = time.perf_counter()
    fast1 = CampaignExecutor(1).run_many(configs, warm=warm)
    fast1_wall = time.perf_counter() - started

    started = time.perf_counter()
    fast4 = CampaignExecutor(4, chunksize=1).run_many(configs, warm=warm)
    fast4_wall = time.perf_counter() - started

    return (warm, prepare_wall, oracle, oracle_wall,
            fast1, fast1_wall, fast4, fast4_wall)


def test_grading_speedup(benchmark, measurements):
    (warm, prepare_wall, oracle, oracle_wall,
     fast1, fast1_wall, fast4, fast4_wall) = measurements
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    expected = [result.comparable() for result in oracle]
    identical_jobs1 = [r.comparable() for r in fast1] == expected
    identical_jobs4 = [r.comparable() for r in fast4] == expected
    speedup = oracle_wall / fast1_wall if fast1_wall > 0 else 0.0
    reconverged = sum(1 for r in fast1 if r.exit_reason == "reconverged")
    skipped = sum(r.instructions - r.graded_at_instruction
                  for r in fast1 if r.graded_at_instruction is not None)
    benchmark.extra_info["grading_speedup"] = speedup

    prefix, window, tail = CONFIG.phase_instructions()
    record = {
        "runs": len(fast1),
        "lets": list(LETS),
        "fluence": CONFIG.fluence,
        "prefix_instructions": prefix,
        "window_instructions": window,
        "tail_instructions": tail,
        "timeline_checkpoints": len(warm.timeline.checkpoints),
        "timeline_anchors": len(warm.timeline.anchors()),
        "prepare_wall_s": round(prepare_wall, 3),
        "full_wall_s": round(oracle_wall, 3),
        "fast_jobs1_wall_s": round(fast1_wall, 3),
        "fast_jobs4_wall_s": round(fast4_wall, 3),
        "speedup": round(speedup, 3),
        "reconverged_runs": reconverged,
        "skipped_instructions": skipped,
        "results_identical": identical_jobs1 and identical_jobs4,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    text = (
        "Fast fault grading throughput\n\n"
        f"shape:            {prefix:,}-instr prefix, {window:,}-instr "
        f"window, {tail:,}-instr tail, {len(fast1)} runs\n"
        f"timeline:         {record['timeline_checkpoints']} checkpoints "
        f"({record['timeline_anchors']} anchors), "
        f"prepared in {prepare_wall:.2f} s\n"
        f"full execution:   {oracle_wall:.2f} s\n"
        f"early-exit:       {fast1_wall:.2f} s (jobs=1), "
        f"{fast4_wall:.2f} s (jobs=4)\n"
        f"speedup:          {speedup:.2f}x   reconverged: "
        f"{reconverged}/{len(fast1)}   skipped: {skipped:,} instr\n"
        f"identical:        jobs=1 {identical_jobs1}, "
        f"jobs=4 {identical_jobs4}\n"
        f"[record: {BENCH_PATH.name}]"
    )
    write_artifact("perf_grading.txt", text)

    assert identical_jobs1, "early-exit diverged from the oracle at jobs=1"
    assert identical_jobs4, "early-exit diverged from the oracle at jobs=4"
    assert reconverged > 0
    assert speedup >= 5.0
