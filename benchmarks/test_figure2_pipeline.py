"""E2 -- Figure 2: pipeline operation during traps and errors.

Regenerates the four stage diagrams (normal execution, normal trap,
register-file error correction with pipeline restart, uncorrectable error
trap) and cross-validates the diagram timing against the *executor*: both
must charge exactly 4 cycles for a restart, "the same as for taking a
normal trap".
"""

from conftest import write_artifact
from repro import LeonConfig, LeonSystem, assemble
from repro.iu.pipeline import StepEvent
from repro.iu.pipetrace import PipelineTracer
from repro.iu.timing import CYCLES_TRAP

SRAM = 0x40000000


def _render():
    tracer = PipelineTracer()
    return tracer.render_all(event_index=1), tracer.figure2(event_index=1)


def _measure_restart_cycles():
    """Executor-side ground truth for the diagram timing."""
    system = LeonSystem(LeonConfig.fault_tolerant())
    program = assemble("""
        set 17, %g1
    inject_here:
        add %g1, 1, %g2
    done:
        ba done
        nop
    """, base=SRAM)
    system.load_program(program)
    system.run(stop_pc=program.address_of("inject_here"))
    # Baseline: the same instruction without an error.
    baseline_system = LeonSystem(LeonConfig.fault_tolerant())
    baseline_system.load_program(program)
    baseline_system.run(stop_pc=program.address_of("inject_here"))
    baseline = baseline_system.step().cycles

    physical = system.regfile.physical_index(system.special.psr.cwp, 1)
    system.regfile.inject(physical, bit=2)
    restart = system.step()
    assert restart.event is StepEvent.RESTART
    return restart.cycles - baseline  # net cycles lost to the restart


def test_figure2_pipeline_diagrams(benchmark):
    text, diagrams = benchmark.pedantic(_render, rounds=5, iterations=1)

    measured_penalty = _measure_restart_cycles()
    text += (
        f"\n\nRestart penalty, diagram model:   {CYCLES_TRAP} cycles"
        f"\nRestart penalty, executor:        {measured_penalty} cycles"
        f"\n(paper: 'the complete restart operation takes 4 clock cycles,"
        f" the same as for taking a normal trap')"
    )
    write_artifact("figure2_pipeline.txt", text)

    normal, trap, restart, uncorrectable = diagrams
    # A: all five instructions complete.
    assert all(normal.completion_cycle(f"INST{i}") is not None
               for i in range(1, 6))
    # B: the trapped instruction never completes; the handler does.
    assert trap.completion_cycle("INST2") is None
    assert trap.completion_cycle("TA1") is not None
    # C: the failing instruction is re-fetched and completes.
    assert restart.stage_row("FE").count("INST2") == 2
    assert restart.completion_cycle("INST2") is not None
    # D: error trap instead of re-execution.
    assert "TRAP" in uncorrectable.stage_row("WR")
    # Timing equivalence, diagram == executor == 4.
    assert measured_penalty == CYCLES_TRAP == 4
