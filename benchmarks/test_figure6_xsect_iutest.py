"""E4 -- Figure 6: cross-section per bit vs LET, IUTEST.

Sweeps the beam LET from 6 to 110 MeV, measures the per-bit cross-section
of every RAM type from the error-monitor counts, fits the standard Weibull
SEU curve, and renders the figure as an ASCII log plot.

Shape anchors: onset below 6 MeV, monotone rise, saturation towards the
calibrated per-bit sigma; the per-bit curves of the different RAM types lie
within an order of magnitude of each other (same cell technology), with
magnitude ordered by how thoroughly IUTEST patrols each RAM.
"""

import pytest

from conftest import FLUENCE, IPS, JOBS, write_artifact
from repro.fault.crosssection import (
    DEFAULT_LETS,
    fit_weibull,
    measure_curve,
    render_curve,
)

PROGRAM = "iutest"
SEED = 600


def _measure():
    return measure_curve(
        PROGRAM,
        lets=DEFAULT_LETS,
        flux=400.0,
        fluence=FLUENCE,
        seed=SEED,
        instructions_per_second=IPS,
        jobs=JOBS,
    )


@pytest.fixture(scope="module")
def curve():
    return _measure()


def test_figure6_cross_section_vs_let(benchmark, curve):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    lets, sigmas = curve.series("Total")
    fit = fit_weibull(lets, sigmas)
    text = render_curve(curve)
    text += (
        f"\n\nWeibull fit (Total, per bit): sat={fit.sat:.2e} cm2,"
        f" onset={fit.onset:.1f}, width={fit.width:.1f}, shape={fit.shape:.2f}"
        f"\n(paper: device threshold below 6 MeV; ~10% of the RAM cell area"
        f" sensitive at saturation)"
    )
    write_artifact("figure6_xsect_iutest.txt", text)

    # Onset: events by 10 MeV, none below the 4 MeV threshold.
    by_let = dict(zip(lets, sigmas))
    assert by_let[110.0] > 0
    assert by_let[110.0] > by_let[10.0] >= 0
    # Monotone-ish rise: top of the curve well above the bottom.
    positive = [sigma for sigma in sigmas if sigma > 0]
    assert max(positive) > 3 * min(positive)
    # Saturation magnitude: per-bit sigma within a factor 4 of the
    # calibrated cell sensitivity (5.5e-8 cm2 scaled by detection fraction).
    assert 5e-9 < by_let[110.0] < 2e-7
    # The data arrays (best patrolled) dominate the measured counts.
    ide_counts = sum(point.count for point in curve.points["IDE"])
    rfe_counts = sum(point.count for point in curve.points["RFE"])
    assert ide_counts > rfe_counts
