"""Shared infrastructure for the paper-reproduction benchmarks.

Every bench regenerates one table or figure of the paper (see DESIGN.md's
experiment index), asserts the qualitative result, and writes the rendered
artifact to ``benchmarks/out/<name>.txt`` so the reproduction can be
inspected after the run.

Scale: by default the beam fluences are reduced ~50x from the paper's 1e5
ions/cm2 so the whole suite runs in minutes (cross-sections are
fluence-invariant).  Set ``REPRO_FULL=1`` for paper-scale runs.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"

#: Paper-scale switch.
FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")

#: Beam fluence per campaign run (paper: 1e5 ions/cm2).
FLUENCE = 1.0e5 if FULL else 2.0e3
#: Virtual device speed (instructions per beam second).
IPS = 50_000.0
#: Worker processes for campaign fan-out (results are jobs-invariant).
JOBS = int(os.environ.get("REPRO_JOBS", "1") or 1)


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def write_artifact(name: str, text: str) -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / name
    path.write_text(text)
    print(f"\n{text}\n[artifact: {path}]")
    return path


def format_table(rows, columns) -> str:
    """Plain-text table renderer for the artifacts."""
    widths = {
        column: max(len(str(column)),
                    *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(
            str(row.get(column, "")).ljust(widths[column]) for column in columns
        ))
    return "\n".join(lines)
