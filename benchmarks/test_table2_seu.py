"""E3 -- Table 2: LEON-Express SEU errors per beam run.

Reruns the first-round campaign: 13 runs (IUTEST at 7 LET points, PARANOIA
at 4, CNCF at 2) at 400 ions/s/cm2, counting the corrected errors per RAM
type through the on-chip error monitors, exactly as the test software
reported them to the host.

Paper anchors reproduced in shape:
  * no undetected errors and no failures in the whole round;
  * error counts (and cross-section) rise with LET;
  * IUTEST shows the highest cross-section (up to ~1e-2 cm2 at LET 110),
    PARANOIA and CNCF less -- activity-dependent sensitivity;
  * data-cache/instruction-cache data errors dominate tag and register
    file errors (bit-population weighted).

Counts scale with fluence (default 2e3/cm2 vs the paper's 1e5; set
REPRO_FULL=1 for paper scale); cross-sections are fluence-invariant.
"""

import pytest

from conftest import FLUENCE, IPS, JOBS, format_table, write_artifact
from repro.fault.campaign import CampaignConfig
from repro.fault.executor import CampaignExecutor

#: The 13 first-round runs (program, LET).  The OCR of the paper's table
#: lost the exact LET values; the prose fixes the range to 6..110 MeV.
RUNS = (
    [("iutest", let) for let in (6.0, 14.0, 20.0, 32.0, 50.0, 75.0, 110.0)]
    + [("paranoia", let) for let in (14.0, 40.0, 75.0, 110.0)]
    + [("cncf", let) for let in (40.0, 110.0)]
)


def _run_campaigns():
    configs = [
        CampaignConfig(
            program=program,
            let=let,
            flux=400.0,
            fluence=FLUENCE,
            seed=100 + index,
            instructions_per_second=IPS,
        )
        for index, (program, let) in enumerate(RUNS)
    ]
    return CampaignExecutor(JOBS).run_many(configs)


@pytest.fixture(scope="module")
def results():
    return _run_campaigns()


def test_table2_seu_errors(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["runs"] = len(results)

    rows = []
    for result in results:
        row = result.row()
        row["X-sect"] = f"{result.cross_section():.2E}"
        row["fail"] = result.failures
        rows.append(row)
    text = (
        f"Table 2: LEON-Express SEU errors, runs of {FLUENCE:.0E} ions/cm2 "
        f"(paper: 1.0E+05), flux 400 ions/s/cm2\n\n"
    )
    text += format_table(rows, ["TEST", "LET", "ITE", "IDE", "DTE", "DDE",
                                "RFE", "Total", "X-sect", "fail"])
    total_errors = sum(result.counts["Total"] for result in results)
    text += (
        f"\n\nTotal corrected errors over the round: {total_errors}"
        f"\nUndetected errors / failures:          "
        f"{sum(result.failures for result in results)}"
        f"\n(paper: 'a total of 4,500 errors were detected and corrected',"
        f"\n 'no undetected errors or other anomalies occurred')"
    )
    write_artifact("table2_seu.txt", text)

    # -- anchors ------------------------------------------------------------
    # 1. Zero failures anywhere in the round.
    assert all(result.failures == 0 for result in results)
    # 2. Errors were detected and corrected.
    assert total_errors > 0
    # 3. Cross-section rises with LET within the IUTEST series.
    iutest = [result for result in results if result.config.program == "iutest"]
    assert iutest[0].counts["Total"] < iutest[-1].counts["Total"]
    # 4. IUTEST at LET 110 is the maximum cross-section of the round.
    peak = max(results, key=lambda result: result.cross_section())
    assert peak.config.program == "iutest"
    assert peak.config.let == 110.0
    # 5. Magnitude: sigma_max within a factor ~3 of the paper's ~1e-2 cm2.
    assert 3e-3 < peak.cross_section() < 3e-2
    # 6. Data arrays dominate tag arrays.
    sums = {key: sum(result.counts[key] for result in results)
            for key in ("ITE", "IDE", "DTE", "DDE", "RFE")}
    assert sums["IDE"] + sums["DDE"] > sums["ITE"] + sums["DTE"]
