"""Perf -- host throughput: single-run simulator speed and campaign fan-out.

Measurements recorded to ``BENCH_throughput.json`` (repo root) so CI can
detect regressions:

  * single-run throughput (simulated instructions per host second) on the
    IUTEST patrol loop, both with the trace JIT (the campaign
    configuration) and interpreted (``jit=False``) -- the program boots
    through :class:`ProgramHarness` so it executes the real workload, not
    the trap-table spin an unadjusted entry PC lands in;
  * a host-speed calibration number (a fixed pure-Python loop) so the ips
    floor can be enforced across differently-provisioned machines;
  * the 8-LET Figure-6 sweep at ``jobs`` 1/2/4 through the
    ``CampaignExecutor`` -- asserting per-counter totals are identical
    (determinism) and, with >= 2 cores, that the fan-out delivers a real
    wall-clock speedup (the CI scaling gate).

On hosts below 2 cores the recorded speedups are null with
``parallel_scaling_measurable: false`` -- a sub-1.0 "speedup" measured on
one core is process overhead, not a scaling regression.

The floor test fails when either throughput number drops below 0.8x the
committed record after host normalization (ips divided by the calibration
number), so interpreter or JIT regressions can never land silently.
"""

import json
import os
import platform
import sys
import time
from pathlib import Path

import pytest

from conftest import write_artifact
from repro.core.config import LeonConfig
from repro.core.system import LeonSystem
from repro.fault.crosssection import DEFAULT_LETS, measure_curve
from repro.programs import build_iutest
from repro.programs.builder import ProgramHarness
from repro.telemetry import NullSink, Telemetry

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

#: Sweep settings: small fluence so the whole benchmark stays ~a minute.
SWEEP = dict(lets=DEFAULT_LETS, flux=400.0, fluence=500.0, seed=600,
             instructions_per_second=30_000.0)

#: Single-run measurement length.
WARMUP_INSTRUCTIONS = 20_000
MEASURE_INSTRUCTIONS = 200_000

#: Host-normalized floor: current ips/host_speed must stay above this
#: fraction of the committed record's ratio.
FLOOR_FRACTION = 0.8

#: Scaling gates (applied when the host has enough cores to measure).
MIN_SPEEDUP_JOBS4_2CORES = 1.5
MIN_SPEEDUP_JOBS4_4CORES = 2.0


def _host_speed() -> float:
    """Host calibration: iterations/s of a fixed pure-Python integer loop.

    The simulator is pure-Python integer work, so this tracks the same
    machine properties (clock, cache, interpreter build) that move the
    ips numbers; dividing by it makes the floor portable across hosts.
    """
    best = 0.0
    for _ in range(3):
        started = time.perf_counter()
        acc = 0
        for i in range(200_000):
            acc = (acc + i * 17) & 0xFFFFFFFF
        best = max(best, 200_000 / (time.perf_counter() - started))
    return best


def _boot_iutest(telemetry=None, *, jit=None) -> LeonSystem:
    """A system executing the real IUTEST patrol loop.

    The harness points the PC at ``_start`` (crt0), as campaigns do.  A
    bare ``load_program`` would leave it on the trap table's entry 0, and
    the measurement would time the two-instruction ``_trap_spin`` loop
    instead of the workload -- the bug behind the pre-PR-9 BENCH numbers.
    """
    config = LeonConfig.leon_express()
    system = LeonSystem(config, telemetry=telemetry, jit=jit)
    program, _ = build_iutest(config, iterations=1_000_000)
    ProgramHarness(system, program)
    return system


def _single_run_ips(telemetry=None, *, jit=None) -> float:
    system = _boot_iutest(telemetry, jit=jit)
    system.run(WARMUP_INSTRUCTIONS)
    result = system.run(MEASURE_INSTRUCTIONS)
    assert result.instructions == MEASURE_INSTRUCTIONS
    assert result.stop_reason == "budget"
    return result.instructions_per_second


def _sweep(jobs: int):
    started = time.perf_counter()
    curve = measure_curve("iutest", jobs=jobs, **SWEEP)
    return curve, time.perf_counter() - started


def _totals(curve) -> dict:
    return {kind: [point.count for point in curve.points[kind]]
            for kind in curve.kinds()}


@pytest.fixture(scope="module")
def measurements():
    committed = json.loads(BENCH_PATH.read_text()) \
        if BENCH_PATH.exists() else {}
    host_speed = _host_speed()
    ips_jit = max(_single_run_ips() for _ in range(3))
    ips_interp = max(_single_run_ips(jit=False) for _ in range(2))
    sweeps = {jobs: _sweep(jobs) for jobs in (1, 2, 4)}
    return committed, host_speed, ips_jit, ips_interp, sweeps


def test_throughput(benchmark, measurements):
    committed, host_speed, ips_jit, ips_interp, sweeps = measurements
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["single_run_ips"] = ips_jit

    cores = os.cpu_count() or 1
    measurable = cores >= 2
    serial_curve, serial_wall = sweeps[1]
    walls = {jobs: wall for jobs, (_curve, wall) in sweeps.items()}
    speedups = {jobs: round(serial_wall / wall, 3) if wall > 0 else 0.0
                for jobs, wall in walls.items() if jobs > 1}
    totals_identical = all(_totals(curve) == _totals(serial_curve)
                           for curve, _wall in sweeps.values())
    record = {
        "single_run_ips": round(ips_jit, 1),
        "single_run_ips_interpreted": round(ips_interp, 1),
        "jit_speedup": round(ips_jit / ips_interp, 2) if ips_interp else None,
        "host_speed": round(host_speed, 1),
        "host_platform": platform.platform(),
        "python": sys.version.split()[0],
        "cpu_count": cores,
        "sweep_lets": len(SWEEP["lets"]),
        "sweep_serial_wall_s": round(serial_wall, 3),
        "sweep_jobs2_wall_s": round(walls[2], 3),
        "sweep_jobs4_wall_s": round(walls[4], 3),
        "sweep_speedup_jobs2": speedups[2] if measurable else None,
        "sweep_speedup_jobs4": speedups[4] if measurable else None,
        "parallel_scaling_measurable": measurable,
        "totals_identical": totals_identical,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    scaling = (f"(jobs=2 {speedups[2]:.2f}x, jobs=4 {speedups[4]:.2f}x "
               f"on {cores} core(s))" if measurable
               else "(single core: scaling not measurable)")
    text = (
        "Host throughput\n\n"
        f"single-run, trace JIT:    {ips_jit:,.0f} instr/s\n"
        f"single-run, interpreted:  {ips_interp:,.0f} instr/s "
        f"({ips_jit / ips_interp:.1f}x)\n"
        f"host calibration:         {host_speed:,.0f} loop/s\n"
        f"8-LET sweep, serial:      {serial_wall:.1f} s\n"
        f"8-LET sweep, jobs=4:      {walls[4]:.1f} s {scaling}\n"
        f"[record: {BENCH_PATH.name}]"
    )
    write_artifact("perf_throughput.txt", text)

    # Determinism is unconditional: the fan-out may not be faster on a
    # starved machine, but it must never change a single count.
    assert totals_identical
    assert ips_jit > 0 and ips_interp > 0
    # Wall-clock gains need real cores to show up (the CI scaling gate).
    if cores >= 4:
        assert speedups[4] >= MIN_SPEEDUP_JOBS4_4CORES
    elif cores >= 2:
        assert speedups[4] >= MIN_SPEEDUP_JOBS4_2CORES


def test_ips_floor(measurements):
    """Throughput regressions can never land silently: both recorded ips
    numbers must stay above ``FLOOR_FRACTION`` of the committed record
    after host normalization.  Records from before the calibration field
    (or from a different measurement protocol, detected the same way)
    establish a new baseline instead of gating."""
    committed, host_speed, ips_jit, ips_interp, _sweeps = measurements
    committed_speed = committed.get("host_speed")
    if not committed_speed:
        pytest.skip("committed record has no host calibration; "
                    "this run establishes the baseline")
    for field, current in (("single_run_ips", ips_jit),
                           ("single_run_ips_interpreted", ips_interp)):
        reference = committed.get(field)
        if not reference:
            continue
        committed_ratio = reference / committed_speed
        current_ratio = current / host_speed
        assert current_ratio >= FLOOR_FRACTION * committed_ratio, (
            f"{field} regressed: {current:,.0f} instr/s at host speed "
            f"{host_speed:,.0f} is below {FLOOR_FRACTION:.0%} of the "
            f"committed {reference:,.0f} at host speed "
            f"{committed_speed:,.0f}")


def test_telemetry_overhead_within_budget():
    """The hot-path contract: telemetry emits only on error paths, so a
    fault-free run costs the same with the layer enabled (null sink) as
    with the default disabled bus.  Best-of-3 interleaved trials keep
    host noise out of the ratio; the budget is 3%.  Measured interpreted:
    the per-step dispatch is where the guards sit."""
    base = traced = 0.0
    for _ in range(3):
        base = max(base, _single_run_ips(jit=False))
        traced = max(traced, _single_run_ips(Telemetry(NullSink()),
                                             jit=False))
    overhead = (base - traced) / base
    assert overhead <= 0.03, (
        f"telemetry overhead {overhead:.1%} exceeds the 3% budget "
        f"({base:,.0f} vs {traced:,.0f} instr/s)")
