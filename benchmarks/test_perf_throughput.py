"""Perf -- host throughput: single-run interpreter speed and campaign fan-out.

Two measurements, recorded to ``BENCH_throughput.json`` (repo root) so CI can
detect regressions:

  * single-run interpreter throughput (simulated instructions per host
    second) on the IUTEST loop -- exercises the hot fetch/decode/execute
    path with the cache and parity fast paths;
  * the 8-LET Figure-6 sweep, serial vs ``jobs=4`` through the
    ``CampaignExecutor`` -- asserting the per-counter totals are identical
    (determinism) and, on machines with enough cores, that the fan-out
    delivers a real wall-clock speedup.

The speedup assertion is gated on ``os.cpu_count() >= 4``: a single-core
container still runs everything and still checks determinism, it just
cannot demonstrate parallel wall-clock gains.  Below 2 cores the recorded
``sweep_speedup_jobs4`` is null (with ``parallel_scaling_measurable``
false) -- a sub-1.0 "speedup" measured on one core is process overhead,
not a scaling regression.
"""

import json
import os
import time
from pathlib import Path

import pytest

from conftest import write_artifact
from repro.core.config import LeonConfig
from repro.core.system import LeonSystem
from repro.fault.crosssection import DEFAULT_LETS, measure_curve
from repro.programs import build_iutest
from repro.telemetry import NullSink, Telemetry

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

#: Sweep settings: small fluence so the whole benchmark stays ~a minute.
SWEEP = dict(lets=DEFAULT_LETS, flux=400.0, fluence=500.0, seed=600,
             instructions_per_second=30_000.0)

#: Single-run measurement length.
WARMUP_INSTRUCTIONS = 20_000
MEASURE_INSTRUCTIONS = 200_000


def _single_run_ips(telemetry=None) -> float:
    system = LeonSystem(LeonConfig.leon_express(), telemetry=telemetry)
    program, _ = build_iutest(iterations=1_000_000)
    system.load_program(program)
    system.run(WARMUP_INSTRUCTIONS)
    result = system.run(MEASURE_INSTRUCTIONS)
    assert result.instructions == MEASURE_INSTRUCTIONS
    return result.instructions_per_second


def _sweep(jobs: int):
    started = time.perf_counter()
    curve = measure_curve("iutest", jobs=jobs, **SWEEP)
    return curve, time.perf_counter() - started


def _totals(curve) -> dict:
    return {kind: [point.count for point in curve.points[kind]]
            for kind in curve.kinds()}


@pytest.fixture(scope="module")
def measurements():
    ips = _single_run_ips()
    serial_curve, serial_wall = _sweep(1)
    parallel_curve, parallel_wall = _sweep(4)
    return ips, (serial_curve, serial_wall), (parallel_curve, parallel_wall)


def test_throughput(benchmark, measurements):
    ips, (serial_curve, serial_wall), (parallel_curve, parallel_wall) = \
        measurements
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["single_run_ips"] = ips

    cores = os.cpu_count() or 1
    # On a single-core host the jobs=4 sweep measures process overhead,
    # not parallel scaling -- recording its "speedup" would look like a
    # regression.  The record carries null and a flag instead.
    measurable = cores >= 2
    speedup = serial_wall / parallel_wall if parallel_wall > 0 else 0.0
    record = {
        "single_run_ips": round(ips, 1),
        "sweep_lets": len(SWEEP["lets"]),
        "sweep_serial_wall_s": round(serial_wall, 3),
        "sweep_jobs4_wall_s": round(parallel_wall, 3),
        "sweep_speedup_jobs4": round(speedup, 3) if measurable else None,
        "parallel_scaling_measurable": measurable,
        "cpu_count": cores,
        "totals_identical": _totals(serial_curve) == _totals(parallel_curve),
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    scaling = (f"(speedup {speedup:.2f}x on {cores} core(s))" if measurable
               else f"(single core: scaling not measurable)")
    text = (
        "Host throughput\n\n"
        f"single-run interpreter:   {ips:,.0f} instr/s\n"
        f"8-LET sweep, serial:      {serial_wall:.1f} s\n"
        f"8-LET sweep, jobs=4:      {parallel_wall:.1f} s {scaling}\n"
        f"[record: {BENCH_PATH.name}]"
    )
    write_artifact("perf_throughput.txt", text)

    # Determinism is unconditional: the fan-out may not be faster on a
    # starved machine, but it must never change a single count.
    assert record["totals_identical"]
    assert ips > 0
    # Wall-clock gains need real cores to show up.
    if cores >= 4:
        assert speedup >= 2.0


def test_telemetry_overhead_within_budget():
    """The hot-path contract: telemetry emits only on error paths, so a
    fault-free run costs the same with the layer enabled (null sink) as
    with the default disabled bus.  Best-of-3 interleaved trials keep
    host noise out of the ratio; the budget is 3%."""
    base = traced = 0.0
    for _ in range(3):
        base = max(base, _single_run_ips())
        traced = max(traced, _single_run_ips(Telemetry(NullSink())))
    overhead = (base - traced) / base
    assert overhead <= 0.03, (
        f"telemetry overhead {overhead:.1%} exceeds the 3% budget "
        f"({base:,.0f} vs {traced:,.0f} instr/s)")
