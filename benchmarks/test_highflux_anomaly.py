"""E6 -- Section 6 high-flux anomaly: multiple-error build-up.

"Additional tests were made at an ion flux between 2,000-5,000 ions/s/cm2
... The CNCF and PARANOIA test programs executed without undetected errors,
but the IUTEST showed on average 5 error traps or software failures per
10E7 particles.  Ion fluxes below 2,000/s/cm2 did not give any failures,
and it is believed that the undetected errors were due to multiple-error
build-up in the caches."

Mechanism reproduced: two independent upsets landing in the *same parity
group* of one cache word between two patrol passes escape the dual-parity
code and corrupt data -- caught only by the program's checksum (a software
failure) or, for register-file doubles, by a BCH error trap.

The probability of a pair scales with flux x residency time, so the sweep
holds the virtual device speed fixed and raises the flux; fluences are
chosen per point so each run covers the same number of patrol iterations.
Absolute failure rates are acceleration-scaled (see EXPERIMENTS.md); the
reproduction targets are the *flux threshold* shape and the
IUTEST-only sensitivity.
"""

import pytest

from conftest import format_table, write_artifact
from repro.fault.campaign import Campaign, CampaignConfig

IPS = 25_000.0
LET = 110.0

#: (flux, fluence, seeds): higher flux points get more fluence/seeds since
#: they are cheap (short beam time) and carry the signal.
SWEEP = [
    (400.0, 5.0e3, (1, 2)),
    (2000.0, 2.0e4, (1, 2)),
    (5000.0, 5.0e4, (1, 2, 3, 4, 5)),
]

PROGRAMS = ("iutest", "paranoia")


def _run_point(program, flux, fluence, seeds, *, flush_period=0, label=None):
    failed_runs = 0
    corrected = 0
    particles = 0
    for seed in seeds:
        config = CampaignConfig(
            program=program, let=LET, flux=flux, fluence=fluence,
            seed=seed, instructions_per_second=IPS,
            max_instructions=5_000_000,
            flush_period_instructions=flush_period,
        )
        result = Campaign(config).run()
        if result.failures:
            failed_runs += 1
        corrected += result.counts["Total"]
        particles += config.beam_parameters().particles
    return {
        "program": label or program,
        "flux": int(flux),
        "runs": len(seeds),
        "failed runs": failed_runs,
        "corrected": corrected,
        "particles": particles,
    }


@pytest.fixture(scope="module")
def sweep_rows():
    rows = []
    for program in PROGRAMS:
        for flux, fluence, seeds in SWEEP:
            if program != "iutest" and flux != 5000.0:
                continue  # the anomaly check for PAR only needs the peak
            rows.append(_run_point(program, flux, fluence, seeds))
    # The section 4.8 counter-measure: periodic cache flushes discard
    # latent errors before they can pair up, removing the anomaly.
    rows.append(_run_point("iutest", 5000.0, 5.0e4, (1, 2, 3, 4, 5),
                           flush_period=10_000, label="iutest+flush"))
    return rows


def test_highflux_multiple_error_buildup(benchmark, sweep_rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    text = ("Section 6 high-flux anomaly: failures vs ion flux "
            f"(LET {LET:.0f}, virtual device {IPS:.0f} instr/s)\n\n")
    text += format_table(sweep_rows, ["program", "flux", "runs",
                                      "failed runs", "corrected", "particles"])
    text += (
        "\n\n(paper: IUTEST ~5 failures per 1e7 particles at >= 2000"
        " ions/s/cm2;\n zero failures below 2000; PARANOIA and CNCF never"
        " failed)"
    )
    write_artifact("highflux_anomaly.txt", text)

    by_key = {(row["program"], row["flux"]): row for row in sweep_rows}
    # Below the threshold: no failures.
    assert by_key[("iutest", 400)]["failed runs"] == 0
    # At the high end: IUTEST shows multiple-error build-up failures.
    assert by_key[("iutest", 5000)]["failed runs"] >= 1
    # Corrections kept flowing at every flux (the FT machinery never died).
    assert all(row["corrected"] > 0 for row in sweep_rows)
    # PARANOIA survives even the peak flux (no data-cache patrol to corrupt).
    assert by_key[("paranoia", 5000)]["failed runs"] == 0
    # The section 4.8 counter-measure removes the anomaly.
    assert by_key[("iutest+flush", 5000)]["failed runs"] \
        <= by_key[("iutest", 5000)]["failed runs"]
