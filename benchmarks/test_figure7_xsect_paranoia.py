"""E5 -- Figure 7: cross-section per bit vs LET, PARANOIA.

Same sweep as Figure 6 but running PARANOIA: the measured cross-section is
activity-dependent, so PARANOIA (FPU-centric, no data-cache patrol) sits
clearly below IUTEST at every LET -- the paper's figures 6 vs 7 contrast.
"""

import pytest

from conftest import FLUENCE, IPS, JOBS, write_artifact
from repro.fault.crosssection import fit_weibull, measure_curve, render_curve

LETS = (6.0, 15.0, 40.0, 75.0, 110.0)
SEED = 700


def _measure(program, seed):
    return measure_curve(
        program,
        lets=LETS,
        flux=400.0,
        fluence=FLUENCE,
        seed=seed,
        instructions_per_second=IPS,
        jobs=JOBS,
    )


@pytest.fixture(scope="module")
def curves():
    return _measure("paranoia", SEED), _measure("iutest", SEED + 50)


def test_figure7_cross_section_vs_let(benchmark, curves):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    paranoia, iutest = curves

    lets, sigmas = paranoia.series("Total")
    fit = fit_weibull(lets, sigmas)
    text = render_curve(paranoia)
    text += (
        f"\n\nWeibull fit (Total, per bit): sat={fit.sat:.2e} cm2"
        f"\nIUTEST-vs-PARANOIA measured sigma at LET 110: "
        f"{iutest.series('Total')[1][-1]:.2e} vs {sigmas[-1]:.2e} cm2/bit"
    )
    write_artifact("figure7_xsect_paranoia.txt", text)

    by_let = dict(zip(lets, sigmas))
    # Shape: rises with LET.
    assert by_let[110.0] > 0
    assert by_let[110.0] >= by_let[15.0]
    # PARANOIA's measured sigma is well below IUTEST's at saturation --
    # program activity determines the measured (not physical) sensitivity.
    iutest_saturated = iutest.series("Total")[1][-1]
    assert by_let[110.0] < iutest_saturated
