"""E1 -- Table 1: LEON synthesis results, standard vs fault-tolerant.

Regenerates the per-module area comparison (Atmel ATC25 model) and the
timing-penalty statement of section 5.2.  Paper anchors: logic-only
overhead ~100%, total overhead ~39%, register file +7/32, cache RAM +2/32,
voter penalty ~8% of cycle time.
"""

import pytest

from conftest import format_table, write_artifact
from repro.area.model import TimingModel, table1


def _build_table():
    breakdown = table1()
    timing = TimingModel()
    return breakdown, timing


def test_table1_area_breakdown(benchmark):
    breakdown, timing = benchmark.pedantic(_build_table, rounds=3, iterations=1)

    rows = breakdown.as_rows()
    text = "TABLE 1. LEON synthesis results on Atmel ATC25 (model)\n\n"
    text += format_table(rows, ["Module", "Area (mm2)", "Area incl. FT", "Increase"])
    text += (
        f"\n\nLogic only (no RAM blocks): +{breakdown.logic_only().increase_percent:.0f}%"
        f"   (paper: ~100%)"
        f"\nTotal:                      +{breakdown.total.increase_percent:.0f}%"
        f"   (paper: 39%)"
        f"\nTMR voter timing penalty:   {timing.penalty_fraction * 100:.0f}% of cycle"
        f" ({timing.voter_gate_delays} gate delays)   (paper: ~8%)"
        f"\nFT achievable clock from 100 MHz standard: "
        f"{timing.ft_frequency(100.0):.1f} MHz"
    )
    write_artifact("table1_area.txt", text)

    # Paper anchors.
    assert breakdown.logic_only().increase_percent == pytest.approx(100, abs=10)
    assert breakdown.total.increase_percent == pytest.approx(39, abs=3)
    assert breakdown.row("Register file (136x32)").increase_percent == \
        pytest.approx(21.9, abs=1)
    assert breakdown.row("Cache mem. (16 Kbyte)").increase_percent == \
        pytest.approx(6.25, abs=1)
    assert timing.penalty_fraction == pytest.approx(0.08, abs=0.005)
