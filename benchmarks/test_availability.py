"""E10 (extension) -- mission availability across FT schemes.

The paper's design goals (section 2) name availability explicitly; this
bench closes the quantitative loop: orbital upset rates (ref [5] folding)
through each section 7 scheme's coverage and recovery latency, against the
unprotected baseline that motivated on-chip FT in the first place
(section 4.1, the ERC32 lesson).
"""

import math

import pytest

from conftest import format_table, write_artifact
from repro.alternatives.availability import compare_schemes


def test_availability_comparison(benchmark):
    estimates = benchmark.pedantic(lambda: compare_schemes("GEO"),
                                   rounds=1, iterations=1)

    rows = []
    for name, estimate in estimates.items():
        mtbf = estimate.mean_days_between_failures
        rows.append({
            "scheme": name,
            "upsets/day": f"{estimate.upsets_per_day:.3f}",
            "covered": f"{estimate.covered_fraction * 100:.1f}%",
            "failures/day": f"{estimate.failures_per_day:.4f}",
            "MTBF (days)": "inf" if math.isinf(mtbf) else f"{mtbf:.1f}",
            "availability": f"{estimate.availability * 100:.5f}%",
        })
    text = "Mission availability, GEO environment (extension of §2/§7)\n\n"
    text += format_table(rows, ["scheme", "upsets/day", "covered",
                                "failures/day", "MTBF (days)", "availability"])
    text += ("\n\n(every scheme folds the same ~0.3 upsets/day GEO rate;"
             "\n what differs is coverage and recovery latency)")
    write_artifact("availability.txt", text)

    leon = estimates["LEON-FT"]
    unprotected = estimates["unprotected"]
    assert leon.availability > 0.9999
    assert unprotected.mean_days_between_failures < 30
    assert leon.availability >= estimates["IBM S/390 G5"].availability
    assert estimates["IBM S/390 G5"].availability > \
        estimates["Intel Itanium"].availability > unprotected.availability
