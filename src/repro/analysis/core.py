"""The lint framework: findings, rules, suppressions, driver.

A *rule* inspects one module at a time against the project-wide
:class:`~repro.analysis.model.ProjectModel` and yields :class:`Finding`
objects.  The driver applies *suppression comments* afterwards, so every
finding -- silenced or not -- appears in the JSON report; only active
(non-suppressed) findings gate the exit status.

Suppression syntax (one comment per offending line)::

    x = telemetry.note("ev")      # lint: ok=tel-guard -- replayed from log
    self._slaves = []             # state: wiring -- bus topology, not state
    self.trace_budget = 0         # state: diag -- observation only

``# lint: ok=<rule>[,<rule>...]`` silences the named rules on that line
(``--`` introduces an optional recorded reason).  ``# state: <category>``
(categories: ``wiring``, ``config``, ``diag``) is the state-coverage
annotation: it both documents *why* the attribute is exempt from
capture/restore registration and silences the rule.  The categories feed
the runtime audit, which treats ``diag``/``wiring``/``config`` attributes
as known-by-declaration when diffing live ``__dict__`` state.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: State-annotation categories accepted by ``# state: <category>``.
STATE_CATEGORIES = ("wiring", "config", "diag")


@dataclass
class Finding:
    """One rule violation (or silenced violation) at a source location."""

    rule: str
    code: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    reason: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }


@dataclass
class Suppression:
    """A parsed ``# lint: ok=...`` or ``# state: ...`` comment."""

    line: int
    rules: Tuple[str, ...]  # () for state annotations = state-coverage only
    category: str = ""      # state annotation category, "" for plain ok=
    reason: str = ""


def _split_reason(text: str) -> Tuple[str, str]:
    if "--" in text:
        head, _, reason = text.partition("--")
        return head.strip(), reason.strip()
    return text.strip(), ""


def parse_suppressions(source: str) -> List[Suppression]:
    """Extract every suppression/annotation comment from *source*."""
    found: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except tokenize.TokenError:  # pragma: no cover - broken source
        return found
    for line, text in comments:
        body = text.lstrip("#").strip()
        if body.startswith("lint:"):
            spec, reason = _split_reason(body[len("lint:"):])
            if spec.startswith("ok=") or spec.startswith("ok ="):
                names = spec.split("=", 1)[1]
                rules = tuple(name.strip() for name in names.split(",")
                              if name.strip())
                if rules:
                    found.append(Suppression(line, rules, reason=reason))
        elif body.startswith("state:"):
            spec, reason = _split_reason(body[len("state:"):])
            category = spec.strip()
            if category in STATE_CATEGORIES:
                found.append(Suppression(line, (), category=category,
                                         reason=reason))
    return found


class SourceModule:
    """One parsed source file plus its suppression comments."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.suppressions = parse_suppressions(source)
        self._by_line: Dict[int, List[Suppression]] = {}
        for item in self.suppressions:
            self._by_line.setdefault(item.line, []).append(item)

    @classmethod
    def load(cls, path: Path) -> "SourceModule":
        return cls(str(path), path.read_text())

    @property
    def package_path(self) -> str:
        """Path relative to the ``repro`` package root, if inside it.

        ``.../src/repro/cache/base.py`` -> ``cache/base.py``; paths outside
        a ``repro`` directory are returned unchanged, so fixture files can
        opt into package-scoped rules by using virtual ``repro/...`` paths.
        """
        parts = Path(self.path).parts
        for index in range(len(parts) - 1, -1, -1):
            if parts[index] == "repro":
                return "/".join(parts[index + 1:])
        return self.path

    def subpackage(self) -> str:
        """First path component under ``repro`` ('' for top-level modules)."""
        rel = self.package_path
        return rel.split("/", 1)[0] if "/" in rel else ""

    def find_suppression(self, rule: str, line: int,
                         end_line: Optional[int] = None
                         ) -> Optional[Suppression]:
        """A suppression matching *rule* anywhere on ``line..end_line``."""
        for at in range(line, (end_line or line) + 1):
            for item in self._by_line.get(at, ()):
                if rule in item.rules:
                    return item
                if item.category and rule == "state-coverage":
                    return item
        return None

    def state_annotation(self, line: int,
                         end_line: Optional[int] = None
                         ) -> Optional[Suppression]:
        """The ``# state: <category>`` annotation covering the line, if any."""
        for at in range(line, (end_line or line) + 1):
            for item in self._by_line.get(at, ()):
                if item.category:
                    return item
        return None


class Rule:
    """Base class: subclasses register with :func:`register_rule`."""

    name = "?"
    code = "FT000"
    #: One-line description of the invariant the rule protects.
    protects = ""

    def check(self, module: SourceModule, model) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: SourceModule, node: ast.AST,
                message: str) -> Finding:
        return Finding(rule=self.name, code=self.code, path=module.path,
                       line=getattr(node, "lineno", 0), message=message)


_REGISTRY: List[Rule] = []


def register_rule(cls):
    """Class decorator adding a rule to the global registry."""
    _REGISTRY.append(cls())
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule (importing the rule modules on first use)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return list(_REGISTRY)


@dataclass
class Analyzer:
    """Runs every registered rule over a set of modules."""

    modules: List[SourceModule] = field(default_factory=list)
    rules: Optional[Sequence[Rule]] = None
    #: The class/attribute model of the last run() (for the runtime audit).
    model: Optional[object] = None

    def run(self) -> List[Finding]:
        from repro.analysis.model import ProjectModel

        model = ProjectModel.build(self.modules)
        self.model = model
        findings: List[Finding] = []
        for rule in (self.rules if self.rules is not None else all_rules()):
            for module in self.modules:
                for finding in rule.check(module, model):
                    node_end = finding.line
                    hit = module.find_suppression(rule.name, finding.line,
                                                  node_end)
                    if hit is not None:
                        finding.suppressed = True
                        finding.reason = hit.reason or hit.category
                    findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.code))
        return findings


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def analyze_paths(paths: Sequence[Path],
                  rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint every ``*.py`` file under *paths*."""
    modules = [SourceModule.load(path) for path in iter_python_files(paths)]
    return Analyzer(modules, rules).run()


def analyze_source(source: str, path: str = "repro/fixture.py",
                   rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint one in-memory module (the test-fixture entry point)."""
    return Analyzer([SourceModule(path, source)], rules).run()
