"""Static analysis of assembled SPARC V8 programs: CFG, liveness, ACE map.

The beam campaigns discover architectural masking by brute force: every
strike is executed to the end of the run (or to a golden-timeline
reconvergence boundary, PR 6) before it can be graded ``masked``.  Most
register-file strikes are boring in a way that is *provable before the
run*: they land in a physical register word the program never reads again,
so the faulted trajectory is instruction-for-instruction identical to the
golden one.  This module proves that.

It recovers the control-flow graph from the disassembler (basic blocks,
delay slots and annul bits, dominators, natural loops), runs backward
register liveness and forward reaching-definitions per instruction, and
distils the result into a small picklable :class:`AceMap` that the fault
layer consults per strike:

* ``latent``  -- the struck physical word is never read *or written* by any
  reachable instruction: the flip stays resident, every readout and counter
  is golden, and the end-of-run classification is exactly what
  ``FaultInjector.is_latent`` would report (the word stays suspect).
* ``ambiguous`` -- the word is written but never read ("write-only"): all
  readouts and counters are golden, but whether the flip is still resident
  at run end depends on strike-vs-write ordering, so the campaign only
  skips such runs when lifecycle tracing is off.
* ``None``    -- the word is (or may be) read: no claim, execute the run.

Soundness rests on three pillars, checked dynamically by the campaign
before it ships an :class:`AceMap` to workers (see DESIGN.md "Static
program analysis"):

1. **Golden trap freedom.**  The claims only describe execution along
   *architectural* control flow (branches, calls, jumpl).  Traps and
   interrupts enter the trap table through a path the CFG does not model.
   ``prepare_warm_start`` therefore only attaches the map when the golden
   run completed with ``perf.traps == 0``; a dead strike cannot *create*
   a trap (the faulted trajectory equals the golden one), so trap freedom
   of the golden run extends to every statically-masked run.
2. **Over-approximate reachability.**  The explored state graph starts
   from the live (pc, npc, cwp) of the warm-start snapshot and includes
   every statically reachable successor; the set of words *touched* is a
   superset of the words the real run touches, so "never touched" is an
   under-approximation -- claims only shrink.
3. **Graceful degradation.**  Any construct that defeats window tracking
   (unresolvable indirect jumps, DCTI couples, ``wr %psr``/``wr %wim``/
   ``rett`` in reachable code, a non-``call`` writer of %o7/%i7, live
   ``wim != 0``) abandons *window* claims entirely and falls back to an
   image-wide global-register analysis: only %g registers that no
   instruction anywhere in the image touches are claimed (plus physical
   word 0, architecturally never stored: %g0 reads return zero and writes
   are discarded without touching the RAM).

What is *not* proven (and therefore never claimed): anything about cache
RAMs, pipeline flip-flops, or external memory -- those strikes always
execute.  See :meth:`AceMap.classify`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.sparc.asm import AssemblerError, Program
from repro.sparc.decode import decode
from repro.sparc.isa import Cond, Op, Op2, Op3, Op3Mem

#: Exploration budget: product of pc x pending x cwp x call-stack states.
#: Far above anything the paper programs or randgen produce (a few
#: thousand); hitting it means pathological code, and we degrade.
MAX_STATES = 200_000
#: Virtual call-stack depth bound (recursion guard).
MAX_CALL_DEPTH = 64

#: Arithmetic op3 values that defeat static window/claim tracking when
#: reachable: they rewrite CWP/WIM (or return from a trap we said cannot
#: happen on the analyzed paths).
_BARRIER_OP3 = {Op3.WRPSR, Op3.WRWIM, Op3.RETT}

#: Memory op3 values touching the FP register file.
_FP_MEM_OP3 = {Op3Mem.LDF, Op3Mem.LDFSR, Op3Mem.LDDF,
               Op3Mem.STF, Op3Mem.STFSR, Op3Mem.STDFQ, Op3Mem.STDF}


def _physical_index(cwp: int, reg: int, nwindows: int) -> int:
    """Mirror of ``RegisterFile.physical_index`` (globals then the window
    ring); reg 0 has no physical backing store and must not be mapped."""
    if reg < 8:
        return reg
    return 8 + ((cwp * 16) + (reg - 8)) % (nwindows * 16)


@dataclass(frozen=True)
class EntryContext:
    """The live machine state the analysis starts from.

    Captured from a running :class:`~repro.core.system.LeonSystem` at the
    warm-start snapshot point; the claims are only valid for executions
    that resume from exactly this state.
    """

    pc: int
    npc: int
    cwp: int
    wim: int
    nwindows: int
    regfile_words: int
    has_fpu: bool
    #: Live %i7 / %o7 values of the entry window, used to resolve a
    #: ``ret``/``retl`` whose matching ``call`` happened before the
    #: snapshot (the virtual call stack is empty at entry).
    i7: int = 0
    o7: int = 0


def entry_context(system) -> EntryContext:
    """Read an :class:`EntryContext` off a live system (cheap)."""
    special = system.special
    cwp = special.psr.cwp
    config = system.config
    return EntryContext(
        pc=special.pc,
        npc=special.npc,
        cwp=cwp,
        wim=special.wim,
        nwindows=config.nwindows,
        regfile_words=config.regfile_words,
        has_fpu=system.fpu is not None,
        i7=system.regfile.read_raw(cwp, 31)[0],
        o7=system.regfile.read_raw(cwp, 15)[0],
    )


@dataclass(frozen=True)
class AceMap:
    """The distilled, picklable claim set the fault layer consults.

    ``never_words`` / ``writeonly_words`` are *physical* register-file word
    indices (copy-agnostic: the injector's ``locate`` folds duplicated-RAM
    copies onto the same physical word, and both copies of an untouched
    word stay untouched).  Claims assume the golden run was trap-free;
    :func:`repro.fault.campaign.prepare_warm_start` enforces that before
    shipping the map.
    """

    entry_pc: int
    nwindows: int
    regfile_words: int
    #: Physical words neither read nor written by any reachable instruction.
    never_words: FrozenSet[int]
    #: Physical words written but never read.
    writeonly_words: FrozenSet[int]
    #: True when no reachable instruction touches the FP register file.
    fpregs_dead: bool
    #: False when the analysis degraded to image-wide global-only claims.
    window_claims: bool
    #: Why window claims were abandoned ("" when they were not).
    degraded_reason: str
    #: Natural-loop header pcs (back-edge targets), for JIT priming.
    loop_heads: Tuple[int, ...]
    #: Summary statistics for reports (JSON-safe).
    stats: Dict[str, int] = field(default_factory=dict, compare=False)

    def classify(self, target: str, word: Optional[int]) -> Optional[str]:
        """Classify a strike at (target, physical word).

        Returns ``"latent"`` when the strike is provably dead and resident,
        ``"ambiguous"`` when readouts are provably golden but end-of-run
        residency is not determined, ``None`` when no claim is made.  Only
        register-file strikes (and whole-file-dead FP strikes) are ever
        claimed; caches, flip-flops and external memory always return
        ``None`` -- the analysis proves nothing about them.
        """
        if target == "regfile" and word is not None:
            if word in self.never_words:
                return "latent"
            if word in self.writeonly_words:
                return "ambiguous"
            return None
        if target == "fpregs" and self.fpregs_dead:
            return "latent"
        return None

    @property
    def claimable_words(self) -> int:
        return len(self.never_words) + len(self.writeonly_words)

    def ace_fraction(self) -> float:
        """Fraction of register-file words that are ACE (a strike there can
        affect the run): 1 - claimable/total."""
        if not self.regfile_words:
            return 1.0
        return 1.0 - self.claimable_words / self.regfile_words

    def as_dict(self) -> Dict[str, object]:
        return {
            "entry_pc": self.entry_pc,
            "nwindows": self.nwindows,
            "regfile_words": self.regfile_words,
            "never_words": sorted(self.never_words),
            "writeonly_words": sorted(self.writeonly_words),
            "fpregs_dead": self.fpregs_dead,
            "window_claims": self.window_claims,
            "degraded_reason": self.degraded_reason,
            "loop_heads": list(self.loop_heads),
            "ace_fraction": self.ace_fraction(),
            "stats": dict(self.stats),
        }


@dataclass
class BasicBlock:
    """A maximal straight-line run of the pc-level CFG."""

    start: int
    end: int  # inclusive address of the last instruction
    successors: Tuple[int, ...] = ()

    @property
    def size(self) -> int:
        return (self.end - self.start) // 4 + 1


@dataclass
class Loop:
    """One natural loop (back edge whose target dominates its source)."""

    head: int
    back_edges: Tuple[int, ...]
    body: FrozenSet[int]


@dataclass
class SiteLiveness:
    """Per-instruction dataflow facts at one explored state."""

    pc: int
    cwp: int
    uses: FrozenSet[int]   # physical words read by this instruction
    defs: FrozenSet[int]   # physical words written by this instruction
    live_in: FrozenSet[int]  # physical words live immediately before it


@dataclass
class ProgramAnalysis:
    """Full analysis result (report-sized; only ``ace`` ships to workers)."""

    program_name: str
    entry: EntryContext
    ace: AceMap
    blocks: List[BasicBlock]
    loops: List[Loop]
    #: pc -> (uses, defs) at *architectural* register granularity, for the
    #: randgen differential cross-check and the CLI report.
    arch_defuse: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]]
    #: Explored per-state liveness (empty when window claims degraded).
    sites: List[SiteLiveness]
    #: Reaching definitions: number of (def site -> use site) pairs and the
    #: def sites no use can reach (dead stores).
    defuse_pairs: int = 0
    dead_def_sites: int = 0
    #: Memory words (addresses) provably written-never-read among stores
    #: whose effective address resolved statically; report only.
    writeonly_memory_words: Tuple[int, ...] = ()
    memory_resolved: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "program": self.program_name,
            "entry": {
                "pc": self.entry.pc, "npc": self.entry.npc,
                "cwp": self.entry.cwp, "wim": self.entry.wim,
                "nwindows": self.entry.nwindows,
            },
            "cfg": {
                "blocks": len(self.blocks),
                "edges": sum(len(block.successors) for block in self.blocks),
                "instructions": sum(block.size for block in self.blocks),
                "loops": [
                    {"head": loop.head, "body_blocks": len(loop.body)}
                    for loop in self.loops
                ],
            },
            "liveness": {
                "sites": len(self.sites),
                "defuse_pairs": self.defuse_pairs,
                "dead_def_sites": self.dead_def_sites,
            },
            "memory": {
                "resolved": self.memory_resolved,
                "writeonly_words": len(self.writeonly_memory_words),
            },
            "ace": self.ace.as_dict(),
        }


class _Degrade(Exception):
    """Internal: abandon window claims, noting why."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


#: One explored machine state: about to execute the instruction at ``pc``
#: in window ``cwp``; after it, control goes to ``pending`` if set (we are
#: in a delay slot) else ``pc + 4``; ``stack`` is the virtual call stack of
#: return addresses.
_State = Tuple[int, Optional[int], int, Tuple[int, ...]]


def _check_return_register_writers(program: Program) -> None:
    """Degrade when anything but ``call`` defines %o7/%i7 anywhere in the
    image: the virtual call stack then no longer models return targets."""
    for offset, word in enumerate(program.words):
        instr = decode(word)
        if not instr.valid or instr.op == Op.CALL:
            continue
        if 15 in instr.defs or 31 in instr.defs:
            raise _Degrade(
                f"instruction at {program.base + offset * 4:#x} writes a "
                "return-address register")


def _explore(program: Program, entry: EntryContext):
    """Walk the state graph from the entry context.

    Returns ``(order, succs, uses, defs, arch_defuse, fp_touched)`` where
    ``order`` lists states in discovery order, ``succs`` maps each state to
    its successor states, and ``uses``/``defs`` map each state to frozensets
    of physical register words.  Raises :class:`_Degrade` when a construct
    defeats window tracking.
    """
    if entry.wim != 0:
        raise _Degrade("live wim != 0 (window traps possible)")
    _check_return_register_writers(program)

    nwindows = entry.nwindows

    def fetch(pc: int):
        try:
            return decode(program.word_at(pc))
        except AssemblerError:
            raise _Degrade(f"control flow leaves the image at {pc:#x}")

    entry_pending = entry.npc if entry.npc != entry.pc + 4 else None
    start: _State = (entry.pc, entry_pending, entry.cwp % nwindows, ())

    order: List[_State] = []
    succs: Dict[_State, List[_State]] = {}
    uses: Dict[_State, FrozenSet[int]] = {}
    defs: Dict[_State, FrozenSet[int]] = {}
    arch_defuse: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
    fp_touched = False

    worklist: List[_State] = [start]
    seen: Set[_State] = {start}
    while worklist:
        state = worklist.pop()
        if len(order) >= MAX_STATES:
            raise _Degrade("state budget exhausted")
        order.append(state)
        pc, pending, cwp, stack = state
        instr = fetch(pc)

        next_pc = pending if pending is not None else pc + 4
        out: List[_State] = []
        def_cwp = cwp

        if not instr.valid or instr.mnemonic in ("unimp", "cpop"):
            # Would trap if executed; the golden-trap-freedom witness says
            # these never execute on the analyzed trajectories.  Terminal.
            out = []
        elif instr.mnemonic == "ticc":
            # A taken trap cannot happen (witness); a never/conditional
            # ticc falls through.  ``ta`` is terminal.
            out = [] if instr.cond == Cond.A else [(next_pc, None, cwp, stack)]
        elif instr.is_branch:
            if pending is not None:
                raise _Degrade(f"DCTI couple at {pc:#x}")
            target = (pc + instr.disp) & 0xFFFFFFFF
            if instr.cond == Cond.A:
                if instr.annul:  # ba,a: delay slot never executes
                    out = [(target, None, cwp, stack)]
                else:
                    out = [(pc + 4, target, cwp, stack)]
            elif instr.cond == Cond.N:
                if instr.annul:  # bn,a: delay slot annulled, fall through
                    out = [(pc + 8, None, cwp, stack)]
                else:
                    out = [(pc + 4, None, cwp, stack)]
            else:
                taken: _State = (pc + 4, target, cwp, stack)
                if instr.annul:  # untaken conditional annuls the delay slot
                    untaken: _State = (pc + 8, None, cwp, stack)
                else:
                    untaken = (pc + 4, None, cwp, stack)
                out = [taken, untaken]
        elif instr.op == Op.CALL:
            if pending is not None:
                raise _Degrade(f"DCTI couple at {pc:#x}")
            if len(stack) >= MAX_CALL_DEPTH:
                raise _Degrade(f"call depth limit at {pc:#x}")
            target = (pc + instr.disp) & 0xFFFFFFFF
            out = [(pc + 4, target, cwp, stack + (pc + 8,))]
        elif instr.op == Op.ARITH and instr.op3 == Op3.JMPL:
            if pending is not None:
                raise _Degrade(f"DCTI couple at {pc:#x}")
            if instr.rd != 0 or instr.imm != 8 or instr.rs1 not in (15, 31):
                raise _Degrade(f"unresolvable indirect jump at {pc:#x}")
            if stack:
                target, stack = stack[-1], stack[:-1]
            else:
                # Returning past the snapshot frame: resolve through the
                # live return-address value captured at entry.  Only valid
                # in the entry window (depth changes are matched by the
                # virtual stack for frames the exploration itself entered).
                if cwp != entry.cwp % nwindows:
                    raise _Degrade(f"return without call frame at {pc:#x}")
                value = entry.i7 if instr.rs1 == 31 else entry.o7
                target = (value + 8) & 0xFFFFFFFF
            out = [(pc + 4, target, cwp, stack)]
        elif instr.op == Op.ARITH and instr.op3 in _BARRIER_OP3:
            raise _Degrade(f"{instr.mnemonic} reachable at {pc:#x}")
        elif instr.op == Op.ARITH and instr.op3 == Op3.SAVE:
            def_cwp = (cwp - 1) % nwindows
            out = [(next_pc, None, def_cwp, stack)]
        elif instr.op == Op.ARITH and instr.op3 == Op3.RESTORE:
            def_cwp = (cwp + 1) % nwindows
            out = [(next_pc, None, def_cwp, stack)]
        else:
            out = [(next_pc, None, cwp, stack)]

        if instr.is_fpop or (instr.op == Op.MEM and instr.op3 in _FP_MEM_OP3) \
                or (instr.op == Op.FORMAT2 and instr.op2 == Op2.FBFCC):
            fp_touched = True

        uses[state] = frozenset(
            _physical_index(cwp, reg, nwindows)
            for reg in instr.sources if reg)
        defs[state] = frozenset(
            _physical_index(def_cwp, reg, nwindows)
            for reg in instr.defs if reg)
        arch = arch_defuse.setdefault(pc, ((), ()))
        arch_defuse[pc] = (
            tuple(sorted(set(arch[0]) | {reg for reg in instr.sources if reg})),
            tuple(sorted(set(arch[1]) | set(instr.defs))),
        )
        succs[state] = out
        for nxt in out:
            if nxt not in seen:
                seen.add(nxt)
                worklist.append(nxt)
    return order, succs, uses, defs, arch_defuse, fp_touched


def _liveness(order, succs, uses, defs) -> Dict[_State, int]:
    """Backward may-liveness over the state graph, physical words as
    bit positions in Python-int bitsets.  Returns live-in per state."""
    use_bits = {state: _bits(words) for state, words in uses.items()}
    def_bits = {state: _bits(words) for state, words in defs.items()}
    live_in: Dict[_State, int] = {state: 0 for state in order}
    changed = True
    # Reverse discovery order approximates reverse topological order well
    # enough; iterate to fixpoint.
    sweep = list(reversed(order))
    while changed:
        changed = False
        for state in sweep:
            live_out = 0
            for nxt in succs[state]:
                live_out |= live_in[nxt]
            new = use_bits[state] | (live_out & ~def_bits[state])
            if new != live_in[state]:
                live_in[state] = new
                changed = True
    return live_in


def _reaching_definitions(order, succs, uses, defs):
    """Forward reaching definitions over the state graph.

    Definition sites are numbered per (state, word); returns the number of
    realized def->use pairs and the count of def sites that reach no use
    (dead stores).
    """
    site_ids: Dict[Tuple[_State, int], int] = {}
    for state in order:
        for word in sorted(defs[state]):
            site_ids[(state, word)] = len(site_ids)
    if not site_ids:
        return 0, 0
    gen = {}
    kill_words = {}
    for state in order:
        gen[state] = _bits(site_ids[(state, word)] for word in defs[state])
        kill_words[state] = defs[state]
    by_word: Dict[int, int] = {}
    for (state, word), ident in site_ids.items():
        by_word[word] = by_word.get(word, 0) | (1 << ident)

    reach_in: Dict[_State, int] = {state: 0 for state in order}
    preds: Dict[_State, List[_State]] = {state: [] for state in order}
    for state in order:
        for nxt in succs[state]:
            preds[nxt].append(state)
    changed = True
    while changed:
        changed = False
        for state in order:
            incoming = 0
            for pred in preds[state]:
                out = reach_in[pred]
                for word in kill_words[pred]:
                    out &= ~by_word[word]
                out |= gen[pred]
                incoming |= out
            if incoming != reach_in[state]:
                reach_in[state] = incoming
                changed = True

    used_sites = 0
    pairs = 0
    for state in order:
        if not uses[state]:
            continue
        mask = 0
        for word in uses[state]:
            mask |= by_word.get(word, 0)
        reaching = reach_in[state] & mask
        used_sites |= reaching
        pairs += reaching.bit_count()
    dead = len(site_ids) - used_sites.bit_count()
    return pairs, dead


def _bits(values: Iterable[int]) -> int:
    mask = 0
    for value in values:
        mask |= 1 << value
    return mask


def _pc_graph(order, succs) -> Dict[int, Set[int]]:
    graph: Dict[int, Set[int]] = {}
    for state in order:
        graph.setdefault(state[0], set())
        for nxt in succs[state]:
            graph[state[0]].add(nxt[0])
    return graph


def _basic_blocks(graph: Dict[int, Set[int]], entry_pc: int) -> List[BasicBlock]:
    preds: Dict[int, Set[int]] = {pc: set() for pc in graph}
    for pc, outs in graph.items():
        for nxt in outs:
            preds.setdefault(nxt, set()).add(pc)
    leaders = {entry_pc}
    for pc, outs in graph.items():
        if len(outs) > 1:
            leaders.update(outs)
        for nxt in outs:
            if len(preds.get(nxt, ())) > 1 or nxt != pc + 4:
                leaders.add(nxt)
    blocks: List[BasicBlock] = []
    for leader in sorted(leaders):
        if leader not in graph:
            continue
        pc = leader
        while True:
            outs = graph.get(pc, set())
            if len(outs) != 1:
                break
            (nxt,) = outs
            if nxt != pc + 4 or nxt in leaders:
                break
            pc = nxt
        blocks.append(BasicBlock(leader, pc,
                                 tuple(sorted(graph.get(pc, ())))))
    # Successor pcs -> successor block leaders.
    leader_of: Dict[int, int] = {}
    for block in blocks:
        for pc in range(block.start, block.end + 4, 4):
            leader_of[pc] = block.start
    for block in blocks:
        block.successors = tuple(sorted(
            {leader_of[nxt] for nxt in block.successors if nxt in leader_of}))
    return blocks


def _dominators(blocks: List[BasicBlock], entry_pc: int) -> Dict[int, Set[int]]:
    leader_of_entry = None
    for block in blocks:
        if block.start <= entry_pc <= block.end:
            leader_of_entry = block.start
            break
    if leader_of_entry is None and blocks:
        leader_of_entry = blocks[0].start
    nodes = [block.start for block in blocks]
    preds: Dict[int, Set[int]] = {node: set() for node in nodes}
    for block in blocks:
        for nxt in block.successors:
            preds.setdefault(nxt, set()).add(block.start)
    dom: Dict[int, Set[int]] = {node: set(nodes) for node in nodes}
    if leader_of_entry is not None:
        dom[leader_of_entry] = {leader_of_entry}
    changed = True
    while changed:
        changed = False
        for node in nodes:
            if node == leader_of_entry:
                continue
            incoming = None
            for pred in preds[node]:
                incoming = set(dom[pred]) if incoming is None \
                    else incoming & dom[pred]
            new = {node} | (incoming or set())
            if new != dom[node]:
                dom[node] = new
                changed = True
    return dom


def _natural_loops(blocks: List[BasicBlock],
                   dom: Dict[int, Set[int]]) -> List[Loop]:
    preds: Dict[int, Set[int]] = {}
    for block in blocks:
        for nxt in block.successors:
            preds.setdefault(nxt, set()).add(block.start)
    loops: Dict[int, Tuple[Set[int], Set[int]]] = {}
    for block in blocks:
        for nxt in block.successors:
            if nxt in dom.get(block.start, ()):  # back edge: target dominates
                body, tails = loops.setdefault(nxt, (set(), set()))
                tails.add(block.start)
                # Collect the loop body: nodes reaching the tail without
                # passing through the head.
                stack = [block.start]
                body.add(nxt)
                while stack:
                    node = stack.pop()
                    if node in body:
                        continue
                    body.add(node)
                    stack.extend(preds.get(node, ()))
    return [Loop(head, tuple(sorted(tails)), frozenset(body))
            for head, (body, tails) in sorted(loops.items())]


def _image_global_analysis(program: Program, entry: EntryContext,
                           reason: str) -> AceMap:
    """Degraded mode: claim only %g words untouched anywhere in the image
    (sound for any control flow whatsoever, windowed or trapping)."""
    read: Set[int] = set()
    written: Set[int] = set()
    fp_touched = False
    valid_instructions = 0
    for word in program.words:
        instr = decode(word)
        if not instr.valid:
            continue
        valid_instructions += 1
        read.update(reg for reg in instr.sources if 0 < reg < 8)
        written.update(reg for reg in instr.defs if 0 < reg < 8)
        if instr.is_fpop or (instr.op == Op.MEM and instr.op3 in _FP_MEM_OP3) \
                or (instr.op == Op.FORMAT2 and instr.op2 == Op2.FBFCC):
            fp_touched = True
    globals_ = set(range(1, 8))
    never = {0} | (globals_ - read - written)
    writeonly = (globals_ & written) - read
    return AceMap(
        entry_pc=entry.pc,
        nwindows=entry.nwindows,
        regfile_words=entry.regfile_words,
        never_words=frozenset(never),
        writeonly_words=frozenset(writeonly),
        fpregs_dead=entry.has_fpu and not fp_touched,
        window_claims=False,
        degraded_reason=reason,
        loop_heads=(),
        stats={"reachable_states": 0, "image_instructions": valid_instructions},
    )


def _analyze_memory(program: Program,
                    blocks: List[BasicBlock]) -> Tuple[Tuple[int, ...], bool]:
    """Best-effort memory-word write-only detection (report only).

    Resolves effective addresses of reachable loads/stores through the
    ``sethi``/``or`` (``set``) constant idiom tracked linearly within each
    basic block (single-entry straight line, so the tracking is sound; the
    constant map resets at every block leader).  Any reachable load or
    store whose address does not resolve makes all memory claims vacuous
    (``resolved=False``).
    """
    pcs: List[int] = []
    consts: Dict[Tuple[int, int], int] = {}  # (pc, reg) -> known constant
    for block in blocks:
        known: Dict[int, int] = {}
        for pc in range(block.start, block.end + 4, 4):
            pcs.append(pc)
            instr = decode(program.word_at(pc))
            if instr.op == Op.FORMAT2 and instr.op2 == Op2.SETHI and instr.rd:
                known[instr.rd] = instr.imm22
            elif (instr.op == Op.ARITH and instr.op3 == Op3.OR
                  and instr.imm is not None and instr.rs1 == instr.rd
                  and instr.rd in known):
                known[instr.rd] = (known[instr.rd] | (instr.imm & 0x3FF)) \
                    & 0xFFFFFFFF
            else:
                for reg in instr.defs:
                    known.pop(reg, None)
            for reg, value in known.items():
                consts[(pc, reg)] = value

    reads: Set[int] = set()
    writes: Set[int] = set()
    resolved = True
    for pc in pcs:
        instr = decode(program.word_at(pc))
        if instr.op != Op.MEM or instr.op3 in _FP_MEM_OP3:
            if instr.op == Op.MEM:
                resolved = False
            continue
        base = consts.get((pc, instr.rs1))
        offset = instr.imm if instr.imm is not None else None
        if base is None or offset is None:
            resolved = False
            continue
        address = (base + offset) & 0xFFFFFFFC
        if instr.op3 in {Op3Mem.ST, Op3Mem.STB, Op3Mem.STH, Op3Mem.STD}:
            writes.add(address)
            if instr.op3 == Op3Mem.STD:
                writes.add(address + 4)
        else:
            reads.add(address)
            if instr.op3 == Op3Mem.LDD:
                reads.add(address + 4)
    if not resolved:
        return (), False
    return tuple(sorted(writes - reads)), True


def analyze_program(program: Program, entry: EntryContext,
                    *, name: Optional[str] = None) -> ProgramAnalysis:
    """Run the full static analysis from ``entry`` over ``program``.

    Never raises for analyzable-but-hostile code: constructs that defeat
    window tracking degrade the :class:`AceMap` to image-wide global-only
    claims (``window_claims=False``) instead.
    """
    program_name = name or program.name
    try:
        order, succs, uses, defs, arch_defuse, fp_touched = \
            _explore(program, entry)
    except _Degrade as degrade:
        ace = _image_global_analysis(program, entry, degrade.reason)
        return ProgramAnalysis(
            program_name=program_name, entry=entry, ace=ace,
            blocks=[], loops=[], arch_defuse={}, sites=[])

    live_in = _liveness(order, succs, uses, defs)
    pairs, dead_defs = _reaching_definitions(order, succs, uses, defs)

    graph = _pc_graph(order, succs)
    blocks = _basic_blocks(graph, entry.pc)
    dom = _dominators(blocks, entry.pc)
    loops = _natural_loops(blocks, dom)

    touched_read: Set[int] = set()
    touched_write: Set[int] = set()
    for state in order:
        touched_read.update(uses[state])
        touched_write.update(defs[state])

    all_words = set(range(entry.regfile_words))
    never = (all_words - touched_read - touched_write) | {0}
    writeonly = touched_write - touched_read

    sites = [
        SiteLiveness(
            pc=state[0], cwp=state[2], uses=uses[state], defs=defs[state],
            live_in=frozenset(_iter_bits(live_in[state])),
        )
        for state in order
    ]

    memory_writeonly, memory_resolved = _analyze_memory(program, blocks)

    ace = AceMap(
        entry_pc=entry.pc,
        nwindows=entry.nwindows,
        regfile_words=entry.regfile_words,
        never_words=frozenset(never),
        writeonly_words=frozenset(writeonly),
        fpregs_dead=entry.has_fpu and not fp_touched,
        window_claims=True,
        degraded_reason="",
        loop_heads=tuple(loop.head for loop in loops),
        stats={
            "reachable_states": len(order),
            "reachable_pcs": len(graph),
            "touched_read": len(touched_read),
            "touched_write": len(touched_write),
        },
    )
    return ProgramAnalysis(
        program_name=program_name, entry=entry, ace=ace,
        blocks=blocks, loops=loops, arch_defuse=arch_defuse, sites=sites,
        defuse_pairs=pairs, dead_def_sites=dead_defs,
        writeonly_memory_words=memory_writeonly,
        memory_resolved=memory_resolved,
    )


def _iter_bits(mask: int):
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def analyze_system(system, program: Program,
                   *, name: Optional[str] = None) -> ProgramAnalysis:
    """Analyze ``program`` from the live state of ``system``."""
    return analyze_program(program, entry_context(system), name=name)


def render_report(analysis: ProgramAnalysis) -> str:
    """Human-readable CLI report (``repro analyze``)."""
    ace = analysis.ace
    lines = [
        f"Static analysis: {analysis.program_name}",
        f"  entry pc {analysis.entry.pc:#010x}  cwp {analysis.entry.cwp}"
        f"  wim {analysis.entry.wim:#x}  windows {analysis.entry.nwindows}",
        f"  CFG: {len(analysis.blocks)} blocks, "
        f"{sum(len(b.successors) for b in analysis.blocks)} edges, "
        f"{sum(b.size for b in analysis.blocks)} instructions, "
        f"{len(analysis.loops)} natural loops",
    ]
    for loop in analysis.loops[:12]:
        lines.append(f"    loop head {loop.head:#010x}  "
                     f"body {len(loop.body)} blocks  "
                     f"back edges {len(loop.back_edges)}")
    lines.append(
        f"  liveness: {len(analysis.sites)} explored states, "
        f"{analysis.defuse_pairs} def-use pairs, "
        f"{analysis.dead_def_sites} dead def sites")
    mode = "window-accurate" if ace.window_claims else \
        f"degraded to globals ({ace.degraded_reason})"
    lines.append(f"  ACE map ({mode}):")
    lines.append(
        f"    register file: {ace.regfile_words} physical words, "
        f"{len(ace.never_words)} never-touched, "
        f"{len(ace.writeonly_words)} write-only, "
        f"ACE fraction {ace.ace_fraction():.3f}")
    lines.append(f"    fpregs provably dead: {ace.fpregs_dead}")
    if analysis.memory_resolved:
        lines.append(f"    memory: all reachable accesses resolved, "
                     f"{len(analysis.writeonly_memory_words)} "
                     f"write-only words")
    else:
        lines.append("    memory: unresolved accesses, no claims")
    lines.append("  not proven (always executed): cache RAMs, pipeline "
                 "flip-flops, external memory, trapping or interrupted runs")
    return "\n".join(lines)
