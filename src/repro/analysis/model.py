"""The AST-derived project model shared by the rules and the audit.

For every class in the analyzed tree we record which attributes its
``__init__`` assigns, how each value was produced (the *kind*), and which
attributes its ``capture``/``restore``/``snapshot`` methods reference.
The state-coverage rule compares the two; the runtime audit compares the
model against a live system's ``__dict__``.

Value kinds
-----------
``wiring``
    The value derives only from constructor parameters, module-level
    names, or other already-derived values: collaborator references,
    configuration scalars, callbacks.  Wiring carries no mutable device
    state of its own, so it needs no capture registration.
``delegated``
    A method call on a collaborator (``bank.register(...)``,
    ``bus.add_master(...)``): the state lives in the collaborator, which
    captures it itself.
``stateful``
    Everything else -- literals, containers, constructor calls.  Stateful
    attributes must be referenced by capture/restore (directly or through
    a base class, or via the ``vars(self)`` wildcard) or carry a
    ``# state: <category>`` annotation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Methods treated as capture-side / restore-side registration points.
CAPTURE_METHODS = ("capture", "snapshot")
RESTORE_METHODS = ("restore",)

#: Builtin constructors whose result is a mutable container (stateful even
#: when their arguments are pure wiring).
_MUTABLE_BUILTINS = {"set", "dict", "list", "bytearray"}

#: Builtin calls returning immutable values (wiring when args are wiring).
_IMMUTABLE_BUILTINS = {
    "int", "float", "str", "bool", "bytes", "tuple", "frozenset", "len",
    "min", "max", "abs", "round", "repr", "id", "getattr", "isinstance",
}


@dataclass
class AttrInfo:
    """One ``self.X = ...`` assignment in ``__init__``."""

    name: str
    line: int
    end_line: int
    kind: str  # wiring | delegated | stateful
    annotation: str = ""       # state annotation category, if present
    annotation_reason: str = ""


@dataclass
class ClassRecord:
    """Everything the rules need to know about one class."""

    name: str
    module_path: str
    package_path: str
    line: int
    bases: Tuple[str, ...] = ()
    is_dataclass: bool = False
    methods: Set[str] = field(default_factory=set)
    init_attrs: Dict[str, AttrInfo] = field(default_factory=dict)
    #: Attributes referenced inside capture/snapshot/restore bodies.
    capture_refs: Set[str] = field(default_factory=set)
    #: capture/restore uses ``vars(self)`` -- every attribute is covered.
    capture_wildcard: bool = False
    #: Attributes assigned anywhere in the class (any method + class body).
    all_attrs: Set[str] = field(default_factory=set)
    #: Attributes known to hold a set/frozenset.
    set_attrs: Set[str] = field(default_factory=set)
    has_inject_flat: bool = False

    @property
    def has_capture(self) -> bool:
        return any(name in self.methods for name in CAPTURE_METHODS)

    @property
    def has_restore(self) -> bool:
        return any(name in self.methods for name in RESTORE_METHODS)


class ProjectModel:
    """Class records for every analyzed module, with base resolution."""

    def __init__(self) -> None:
        self.classes: Dict[str, List[ClassRecord]] = {}
        #: Module-level tuple/list constants: qualname -> string elements
        #: (used by the counter-preservation rule to resolve skip lists).
        self.string_tuples: Dict[str, Tuple[str, ...]] = {}

    @classmethod
    def build(cls, modules: Sequence) -> "ProjectModel":
        model = cls()
        for module in modules:
            model._scan_module(module)
        return model

    # -- queries ----------------------------------------------------------

    def lookup(self, name: str) -> Optional[ClassRecord]:
        records = self.classes.get(name)
        return records[0] if records else None

    def mro_records(self, record: ClassRecord,
                    _seen: Optional[Set[str]] = None) -> List[ClassRecord]:
        """*record* plus every resolvable base class record."""
        seen = _seen if _seen is not None else set()
        if record.name in seen:
            return []
        seen.add(record.name)
        chain = [record]
        for base in record.bases:
            resolved = self.lookup(base)
            if resolved is not None:
                chain.extend(self.mro_records(resolved, seen))
        return chain

    def is_covered(self, record: ClassRecord, attr: str) -> bool:
        """Is *attr* referenced by capture/restore anywhere in the MRO?"""
        for owner in self.mro_records(record):
            if owner.capture_wildcard or attr in owner.capture_refs:
                return True
        return False

    def has_capture_anywhere(self, record: ClassRecord) -> bool:
        return any(owner.has_capture for owner in self.mro_records(record))

    def has_restore_anywhere(self, record: ClassRecord) -> bool:
        return any(owner.has_restore for owner in self.mro_records(record))

    def known_attrs(self, record: ClassRecord) -> Set[str]:
        """Every attribute the static model knows for the class."""
        known: Set[str] = set()
        for owner in self.mro_records(record):
            known |= owner.all_attrs
        return known

    # -- module scan ------------------------------------------------------

    def _scan_module(self, module) -> None:
        module_names = _module_level_names(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                record = _scan_class(node, module, module_names)
                self.classes.setdefault(record.name, []).append(record)
            elif isinstance(node, ast.Assign) and _is_module_stmt(
                    module.tree, node):
                strings = _string_elements(node.value)
                if strings is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.string_tuples[target.id] = strings


def _is_module_stmt(tree: ast.Module, node: ast.stmt) -> bool:
    return node in tree.body


def _string_elements(value: ast.expr) -> Optional[Tuple[str, ...]]:
    if isinstance(value, (ast.Tuple, ast.List)):
        elements = []
        for element in value.elts:
            if not (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                return None
            elements.append(element.value)
        return tuple(elements)
    return None


def _module_level_names(tree: ast.Module) -> Set[str]:
    """Names importable/defined at module scope (constants, imports...)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target,
                                                            ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def _decorator_name(node: ast.expr) -> str:
    if isinstance(node, ast.Call):
        return _decorator_name(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _is_set_annotation(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    base = annotation
    if isinstance(base, ast.Subscript):
        base = base.value
    if isinstance(base, ast.Attribute):
        return base.attr in ("Set", "MutableSet", "FrozenSet")
    if isinstance(base, ast.Name):
        return base.id in ("set", "frozenset", "Set", "MutableSet",
                           "FrozenSet")
    return False


def is_set_expr(value: Optional[ast.expr]) -> bool:
    """Does this expression evidently produce a set/frozenset?"""
    if value is None:
        return False
    if isinstance(value, ast.Set) or isinstance(value, ast.SetComp):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in ("set", "frozenset")
    if isinstance(value, ast.BinOp) and isinstance(
            value.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return is_set_expr(value.left) or is_set_expr(value.right)
    return False


def _scan_class(node: ast.ClassDef, module,
                module_names: Set[str]) -> ClassRecord:
    record = ClassRecord(
        name=node.name,
        module_path=module.path,
        package_path=module.package_path,
        line=node.lineno,
        bases=tuple(_decorator_name(base) for base in node.bases),
        is_dataclass=any(_decorator_name(dec) == "dataclass"
                         for dec in node.decorator_list),
    )
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            record.methods.add(item.name)
            if item.name in ("inject_flat",):
                record.has_inject_flat = True
            _scan_method_attrs(item, record)
            if item.name in CAPTURE_METHODS + RESTORE_METHODS:
                _scan_capture_refs(item, record)
            if item.name == "__init__":
                _scan_init(item, record, module, module_names)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    record.all_attrs.add(target.id)
        elif isinstance(item, ast.AnnAssign) and isinstance(item.target,
                                                            ast.Name):
            record.all_attrs.add(item.target.id)
            if _is_set_annotation(item.annotation):
                record.set_attrs.add(item.target.id)
    return record


def _self_attr(node: ast.expr) -> Optional[str]:
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _scan_method_attrs(func: ast.FunctionDef, record: ClassRecord) -> None:
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Tuple):
                names = [_self_attr(el) for el in target.elts]
            else:
                names = [_self_attr(target)]
            for name in names:
                if name is not None:
                    record.all_attrs.add(name)


def _scan_capture_refs(func: ast.FunctionDef, record: ClassRecord) -> None:
    for node in ast.walk(func):
        name = _self_attr(node)
        if name is not None:
            record.capture_refs.add(name)
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "vars" and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == "self"):
            record.capture_wildcard = True


def _scan_init(func: ast.FunctionDef, record: ClassRecord, module,
               module_names: Set[str]) -> None:
    params = {arg.arg for arg in (func.args.posonlyargs + func.args.args
                                  + func.args.kwonlyargs)}
    params.discard("self")
    if func.args.vararg is not None:
        params.add(func.args.vararg.arg)
    if func.args.kwarg is not None:
        params.add(func.args.kwarg.arg)
    classifier = _ValueClassifier(params, module_names)
    for node in ast.walk(func):
        value: Optional[ast.expr] = None
        targets: List[ast.expr] = []
        annotation: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value, annotation = [node.target], node.value, \
                node.annotation
        else:
            continue
        # Track local helper variables for derived-value classification.
        for target in targets:
            if isinstance(target, ast.Name) and value is not None:
                classifier.locals[target.id] = classifier.classify(value)
        for target in targets:
            flat = target.elts if isinstance(target, ast.Tuple) else [target]
            for element in flat:
                attr = _self_attr(element)
                if attr is None:
                    continue
                kind = (classifier.classify(value)
                        if value is not None else "wiring")
                if _is_set_annotation(annotation) or is_set_expr(value):
                    record.set_attrs.add(attr)
                info = record.init_attrs.get(attr)
                end = getattr(node, "end_lineno", node.lineno)
                note = module.state_annotation(node.lineno, end)
                if info is None:
                    info = AttrInfo(attr, node.lineno, end, kind)
                    record.init_attrs[attr] = info
                else:
                    # Re-assigned (e.g. in both branches of an if): keep
                    # the most demanding classification and earliest line.
                    order = ("wiring", "delegated", "stateful")
                    if order.index(kind) > order.index(info.kind):
                        info.kind = kind
                        info.line, info.end_line = node.lineno, end
                if note is not None and not info.annotation:
                    info.annotation = note.category
                    info.annotation_reason = note.reason


class _ValueClassifier:
    """Classifies an ``__init__`` value expression (see module docstring)."""

    def __init__(self, params: Set[str], module_names: Set[str]) -> None:
        self.params = params
        self.module_names = module_names
        self.locals: Dict[str, str] = {}

    def classify(self, node: ast.expr, top: bool = True) -> str:
        if isinstance(node, ast.Constant):
            # A *bare* literal is an initial state value; a literal used
            # as an operand inside a derived expression (config.bits - 1)
            # is neutral.  None is a placeholder either way.
            return "stateful" if top and node.value is not None else "wiring"
        if isinstance(node, ast.Name):
            if node.id in self.params or node.id in self.module_names:
                return "wiring"
            if node.id in self.locals:
                return self.locals[node.id]
            return "stateful"
        if isinstance(node, ast.Attribute):
            # Chains rooted at a parameter, module name or self are
            # derived configuration / collaborator references.
            root = node
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            if isinstance(root, ast.Name) and (
                    root.id == "self" or root.id in self.params
                    or root.id in self.module_names
                    or root.id in self.locals):
                return "wiring"
            return "stateful"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in _MUTABLE_BUILTINS:
                    return "stateful"
                if func.id in _IMMUTABLE_BUILTINS:
                    return self._combine(node.args)
                return "stateful"  # constructor of some class
            if isinstance(func, ast.Attribute):
                # Method call on a collaborator: state delegated there.
                return "delegated"
            return "stateful"
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return "stateful"
        if isinstance(node, ast.Tuple):
            return self._combine(node.elts)
        if isinstance(node, ast.BoolOp):
            return self._combine(node.values)
        if isinstance(node, ast.BinOp):
            return self._combine([node.left, node.right])
        if isinstance(node, ast.UnaryOp):
            return self.classify(node.operand)
        if isinstance(node, ast.Compare):
            return "wiring"
        if isinstance(node, ast.IfExp):
            return self._combine([node.body, node.orelse])
        if isinstance(node, ast.Subscript):
            return self.classify(node.value)
        if isinstance(node, ast.JoinedStr):
            return "wiring"
        if isinstance(node, ast.Lambda):
            return "wiring"
        if isinstance(node, ast.GeneratorExp):
            return "wiring"
        if isinstance(node, ast.Starred):
            return self.classify(node.value)
        return "stateful"

    def _combine(self, parts) -> str:
        worst = "wiring"
        order = ("wiring", "delegated", "stateful")
        for part in parts:
            kind = self.classify(part, top=False)
            if order.index(kind) > order.index(worst):
                worst = kind
        return worst
