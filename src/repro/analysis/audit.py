"""Runtime cross-check behind ``repro lint --audit``.

Static analysis sees the source; it cannot see attributes conjured by
``setattr``, storage added after the scanner was written, or a snapshot
that silently stopped round-tripping.  The audit instantiates a real
:class:`~repro.core.system.LeonSystem`, runs the pinned test program a
few thousand instructions, and checks the invariants *live*:

``state-drift``
    Every attribute found on a snapshotable component instance must be
    known to the static model (assigned somewhere the scanner saw).  An
    unknown live attribute means state the FT101 rule can never audit.

``snapshot-roundtrip``
    ``snapshot() -> to_bytes() -> from_bytes() -> restore()`` into a
    fresh system reproduces the state bit-for-bit, serialization is
    byte-stable, and the restored copy's *future* (architectural digest
    after further execution) matches the original's.

``injector-coverage``
    Every atomic storage object reachable from the system (anything
    exposing ``inject_flat``/``total_bits``) is wired to a
    :class:`~repro.fault.injector.FaultInjector` target -- the runtime
    counterpart of FT102: no bit cell group escapes the fault space.

``reset-skip``
    ``RESET_SKIP`` names both cumulative counter components, and a
    ``restore(..., skip=RESET_SKIP)`` really leaves the live error
    counters untouched (the FT401/FT402 contract, executed).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.model import ProjectModel

#: Instructions the audit system executes before the first snapshot.
WARMUP_INSTRUCTIONS = 3_000
#: Instructions used to compare original vs restored futures.
FUTURE_INSTRUCTIONS = 1_500


def _built():
    """A warmed-up system running the pinned ``iutest`` program."""
    from repro.fault.campaign import Campaign, CampaignConfig

    campaign = Campaign(CampaignConfig(program="iutest"))
    system, spin, _base, _program = campaign._build_program()
    return system, spin


def _walk_objects(root: Any, *, max_depth: int = 6) -> Iterator[Any]:
    """Every repro-package object reachable from *root* attributes."""
    from collections import deque

    # Breadth-first with dedup at enqueue time, so every object is
    # traversed at its *minimal* depth (a deep alias of a shallow
    # component must not burn the depth budget first).
    seen: Set[int] = {id(root)}
    queue: deque = deque([(root, 0)])
    while queue:
        obj, depth = queue.popleft()
        module = getattr(type(obj), "__module__", "")
        if not module.startswith("repro."):
            continue
        yield obj
        if depth >= max_depth or not hasattr(obj, "__dict__"):
            continue

        def enqueue(item: Any) -> None:
            if id(item) not in seen:
                seen.add(id(item))
                queue.append((item, depth + 1))

        for value in vars(obj).values():
            enqueue(value)
            if isinstance(value, (list, tuple)):
                for item in value:
                    enqueue(item)
            elif isinstance(value, dict):
                for item in value.values():
                    enqueue(item)


def check_state_drift(model: ProjectModel) -> List[str]:
    system, _spin = _built()
    failures: List[str] = []
    reported: Set[Tuple[str, str]] = set()
    for obj in _walk_objects(system):
        record = model.lookup(type(obj).__name__)
        if record is None or not hasattr(obj, "__dict__"):
            continue
        audited = (record.name == "LeonSystem"
                   or (record.has_capture and record.init_attrs))
        if not audited:
            continue
        known = model.known_attrs(record)
        for attr in vars(obj):
            if attr.startswith("__") or attr in known:
                continue
            key = (record.name, attr)
            if key in reported:
                continue
            reported.add(key)
            failures.append(
                f"{record.name}.{attr} exists on the live instance but "
                f"was never seen by the static scanner "
                f"({record.module_path}): state the lint cannot audit")
    return failures


def check_snapshot_roundtrip(model: ProjectModel) -> List[str]:
    from repro.state.snapshot import Snapshot

    failures: List[str] = []
    system, spin = _built()
    system.run(WARMUP_INSTRUCTIONS, stop_pc=spin)
    snap = system.snapshot()
    blob = snap.to_bytes()
    decoded = Snapshot.from_bytes(blob)
    if decoded != snap:
        failures.append("Snapshot.from_bytes(to_bytes()) is not an "
                        "exact round-trip")
    if decoded.to_bytes() != blob:
        failures.append("snapshot serialization is not byte-stable "
                        "(to_bytes differs after a decode cycle)")

    clone, clone_spin = _built()
    clone.restore(decoded)
    if clone.snapshot() != snap:
        failures.append("restoring a snapshot into a fresh system does "
                        "not reproduce the captured state")
    if clone.state_digest() != system.state_digest():
        failures.append("restored system's architectural digest differs "
                        "from the original's")

    system.run(FUTURE_INSTRUCTIONS, stop_pc=spin)
    clone.run(FUTURE_INSTRUCTIONS, stop_pc=clone_spin)
    if clone.state_digest() != system.state_digest():
        failures.append(
            f"restored system diverges from the original within "
            f"{FUTURE_INSTRUCTIONS} instructions: snapshot state is "
            f"incomplete (some execution-relevant state escaped capture)")
    return failures


def _target_anchors(inject: Callable) -> Iterator[Any]:
    """Objects a target's ``inject_flat`` callable is anchored to."""
    bound = getattr(inject, "__self__", None)
    if bound is not None:
        yield bound
    closure = getattr(inject, "__closure__", None) or ()
    for cell in closure:
        try:
            yield cell.cell_contents
        except ValueError:  # pragma: no cover - empty cell
            continue


def check_injector_coverage(model: ProjectModel) -> List[str]:
    from repro.fault.injector import FaultInjector

    failures: List[str] = []
    system, _spin = _built()
    storage = {
        id(obj): obj for obj in _walk_objects(system)
        if callable(getattr(obj, "inject_flat", None))
        and isinstance(getattr(obj, "total_bits", None), int)
    }
    injector = FaultInjector(system, include_external_memory=True)
    covered: Set[int] = set()
    for name, target in injector.targets.items():
        if target.bits <= 0:
            failures.append(f"injector target {name!r} has no bits")
        for anchor in _target_anchors(target.inject_flat):
            covered.add(id(anchor))
    def is_aggregate(obj: Any) -> bool:
        """An injectable façade whose bits all live in covered parts
        (the caches expose tag+data as one flat space)."""
        parts = [value for value in vars(obj).values()
                 if id(value) in storage]
        return bool(parts) and all(id(part) in covered for part in parts)

    missing = [obj for oid, obj in storage.items()
               if oid not in covered and not is_aggregate(obj)]
    for obj in missing:
        failures.append(
            f"storage object {type(obj).__name__} "
            f"(name={getattr(obj, 'name', '?')!r}, "
            f"{obj.total_bits} bits) is reachable from the system but "
            f"wired to no injector target: bits outside the fault space")
    return failures


def check_reset_skip(model: ProjectModel) -> List[str]:
    from repro.recovery.controller import RESET_SKIP

    failures: List[str] = []
    required = {"errors", "perf"}
    if not required <= set(RESET_SKIP):
        failures.append(
            f"RESET_SKIP={RESET_SKIP!r} no longer names both cumulative "
            f"counter components {sorted(required)}")
        return failures

    system, spin = _built()
    system.run(WARMUP_INSTRUCTIONS, stop_pc=spin)
    checkpoint = system.snapshot()
    system.errors.ite += 7  # a post-checkpoint detection
    before = system.errors.as_dict()
    system.restore(checkpoint, skip=RESET_SKIP)
    after = system.errors.as_dict()
    if after != before:
        failures.append(
            f"restore(skip=RESET_SKIP) rewound the error counters "
            f"({before} -> {after}): recovery would erase campaign "
            f"observations")
    return failures


def check_fault_models(model: ProjectModel) -> List[str]:
    """Live counterpart of FT103: each model's fault space is honest.

    For every registered fault model, enumerate its fault space against
    a real system and require (a) a non-empty space of positive-width
    cells, (b) every enumerated cell to be a declared ``TARGETS`` entry,
    and (c) -- for ``EXHAUSTIVE`` models -- every declared target that
    exists on the device to appear in the enumeration.  Attack models
    narrow their space to the configured site, so (c) is skipped there.
    """
    from repro.fault.campaign import CampaignConfig
    from repro.fault.injector import FaultInjector
    from repro.fault.models import MODELS, build_model

    failures: List[str] = []
    system, _spin = _built()
    injector = FaultInjector(system, include_external_memory=True)
    ffnames = set(system.ffbank.names())
    config = CampaignConfig(
        # Attack models need a site to enumerate around; any in-SRAM
        # address works (the audit never applies a fault).
        fault_params={"pc": int(system.memctrl.sram.base), "window": 4})
    for kind in sorted(MODELS):
        instance = build_model(kind, config)
        space = instance.fault_space(injector)
        declared = set(instance.TARGETS)
        if not space:
            failures.append(f"fault model {kind!r} enumerates an empty "
                            f"fault space")
            continue
        for cell, bits in sorted(space.items()):
            if bits <= 0:
                failures.append(f"fault model {kind!r} cell {cell!r} "
                                f"has no bits")
            if cell not in declared:
                failures.append(
                    f"fault model {kind!r} enumerates cell {cell!r} "
                    f"outside its declared TARGETS: undeclared strike "
                    f"surface")
        if not instance.EXHAUSTIVE:
            continue
        present = {name for name in instance.TARGETS
                   if name in injector.targets or name in ffnames
                   or name in space}
        for name in sorted(present - set(space)):
            failures.append(
                f"fault model {kind!r} declares target {name!r} but its "
                f"fault space never enumerates it: cells outside the "
                f"audited space")
    return failures


#: Audit checks in report order: (name, what a failure means).
CHECKS: Tuple[Tuple[str, Callable[[ProjectModel], List[str]]], ...] = (
    ("state-drift", check_state_drift),
    ("snapshot-roundtrip", check_snapshot_roundtrip),
    ("injector-coverage", check_injector_coverage),
    ("reset-skip", check_reset_skip),
    ("fault-model-coverage", check_fault_models),
)


def run_audit(model: Optional[ProjectModel] = None) -> Dict[str, Any]:
    """Run every live check; returns a JSON-ready result payload."""
    if model is None:
        from pathlib import Path

        import repro
        from repro.analysis.core import SourceModule, iter_python_files

        modules = [SourceModule.load(path) for path in
                   iter_python_files([Path(repro.__file__).parent])]
        model = ProjectModel.build(modules)
    checks = []
    ok = True
    for name, check in CHECKS:
        try:
            failures = check(model)
        except Exception as exc:  # noqa: BLE001 - audit must report, not die
            failures = [f"check crashed: {type(exc).__name__}: {exc}"]
        checks.append({"name": name, "ok": not failures,
                       "failures": failures})
        ok = ok and not failures
    return {"ok": ok, "checks": checks}


def render_audit_text(result: Dict[str, Any]) -> str:
    lines = []
    for check in result["checks"]:
        status = "ok" if check["ok"] else "FAIL"
        lines.append(f"audit {check['name']}: {status}")
        for failure in check["failures"]:
            lines.append(f"  - {failure}")
    return "\n".join(lines)
