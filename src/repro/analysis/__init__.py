"""FT-invariant static analysis: the ``repro lint`` subsystem.

The simulator's headline guarantees -- bit-exact snapshot/restore,
byte-identical results across ``--jobs`` and warm-start, bounded telemetry
overhead, counters surviving :data:`repro.recovery.RESET_SKIP` -- are
behavioural contracts that a single forgotten attribute or unguarded emit
silently breaks.  This package proves them over the source tree:

* :mod:`repro.analysis.core` -- the lint framework: findings, the rule
  registry, suppression comments and the analysis driver;
* :mod:`repro.analysis.model` -- the AST-derived project model (component
  classes, their ``__init__`` state, capture/restore coverage) shared by
  the rules and the runtime audit;
* :mod:`repro.analysis.rules` -- the four rule families (state-coverage,
  determinism, telemetry-guard, counter-preservation);
* :mod:`repro.analysis.report` -- text and JSON reporters;
* :mod:`repro.analysis.audit` -- the runtime cross-check behind
  ``repro lint --audit``: instantiates a live :class:`LeonSystem`, diffs
  its ``__dict__`` state against the static registry, round-trips a
  snapshot and walks the fault-space so the static claims cannot drift
  from reality.
"""

from repro.analysis.core import (
    Analyzer,
    Finding,
    SourceModule,
    all_rules,
    analyze_paths,
    analyze_source,
)
from repro.analysis.report import render_json, render_text

__all__ = [
    "Analyzer",
    "Finding",
    "SourceModule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "render_json",
    "render_text",
]
