"""Counter-preservation rules: the RESET_SKIP contract.

The error-monitor and performance counters are *cumulative campaign
observations*: a recovery reset restores architectural state but the
counters keep counting (``RESET_SKIP = ("errors", "perf")``), or a
resumed campaign under-reports every error that preceded the reset.

``ctr-reset`` (FT401)
    Inside a reset path (any function whose name mentions reset / reboot
    / recover, or any function in ``repro/recovery/``), zeroing the
    counters -- ``errors.reset()``, ``perf.reset()``, or assigning 0 to
    a counter field -- violates the contract.  (``errmon``'s
    ``clear_monitor`` is the *software-visible* clear and is not a reset
    path.)

``ctr-skip`` (FT402)
    Snapshot restores in a reset path must pass ``skip=RESET_SKIP`` (or
    a literal containing both ``"errors"`` and ``"perf"``): a full
    restore would rewind the counters to their checkpoint values.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Tuple

from repro.analysis.core import Finding, Rule, SourceModule, register_rule
from repro.analysis.model import ProjectModel

#: Counter-holder attribute names whose .reset() is a contract violation.
COUNTER_NAMES = {"errors", "perf"}

#: Component names a reset-path restore must leave untouched.
REQUIRED_SKIPS = ("errors", "perf")

_RESET_PATH = re.compile(r"reset|reboot|recover", re.IGNORECASE)


def _chain_parts(node: ast.expr) -> Tuple[str, ...]:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


def _reset_path_functions(module: SourceModule):
    in_recovery = module.subpackage() == "recovery"
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if in_recovery or _RESET_PATH.search(node.name):
                yield node


@register_rule
class CounterResetRule(Rule):
    name = "ctr-reset"
    code = "FT401"
    protects = ("counters survive recovery: reset paths never zero "
                "errors/perf")

    def check(self, module: SourceModule,
              model: ProjectModel) -> Iterator[Finding]:
        for func in _reset_path_functions(module):
            # The counter classes' own reset()/field zeroing is the
            # definition of the operation, not a use in a reset path.
            for node in ast.walk(func):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "reset"):
                    parts = _chain_parts(node.func.value)
                    if COUNTER_NAMES & set(parts):
                        yield self.finding(
                            module, node,
                            f"{'.'.join(parts)}.reset() inside reset path "
                            f"{func.name!r}: error/perf counters are "
                            f"cumulative and must survive recovery "
                            f"(RESET_SKIP contract)")
                elif isinstance(node, ast.Assign):
                    if not (isinstance(node.value, ast.Constant)
                            and node.value.value == 0):
                        continue
                    for target in node.targets:
                        parts = _chain_parts(target)
                        if len(parts) >= 2 and COUNTER_NAMES & set(
                                parts[:-1]):
                            yield self.finding(
                                module, node,
                                f"zeroing {'.'.join(parts)} inside reset "
                                f"path {func.name!r} violates the "
                                f"RESET_SKIP contract")


@register_rule
class RestoreSkipRule(Rule):
    name = "ctr-skip"
    code = "FT402"
    protects = ("counters survive recovery: reset-path restores pass "
                "skip=RESET_SKIP")

    def check(self, module: SourceModule,
              model: ProjectModel) -> Iterator[Finding]:
        for func in _reset_path_functions(module):
            for node in ast.walk(func):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "restore"):
                    continue
                problem = self._skip_problem(node, model)
                if problem:
                    yield self.finding(
                        module, node,
                        f"snapshot restore in reset path {func.name!r} "
                        f"{problem}")

    @staticmethod
    def _skip_problem(node: ast.Call,
                      model: ProjectModel) -> Optional[str]:
        skip = None
        for keyword in node.keywords:
            if keyword.arg == "skip":
                skip = keyword.value
        if skip is None:
            return ("passes no skip= list: use skip=RESET_SKIP so the "
                    "cumulative counters survive")
        if isinstance(skip, ast.Name):
            resolved = model.string_tuples.get(skip.id)
            if resolved is None:
                if skip.id == "RESET_SKIP":
                    return None
                return (f"passes skip={skip.id} which the analyzer cannot "
                        f"resolve; use RESET_SKIP or a literal tuple "
                        f"containing 'errors' and 'perf'")
            missing = [name for name in REQUIRED_SKIPS
                       if name not in resolved]
            if missing:
                return (f"passes skip={skip.id}={resolved!r} which omits "
                        f"{missing}: counters would rewind")
            return None
        if isinstance(skip, (ast.Tuple, ast.List)):
            names = {element.value for element in skip.elts
                     if isinstance(element, ast.Constant)}
            missing = [name for name in REQUIRED_SKIPS
                       if name not in names]
            if missing:
                return (f"passes a skip list that omits {missing}: "
                        f"counters would rewind on recovery")
            return None
        return ("passes a skip= expression the analyzer cannot verify; "
                "use RESET_SKIP or a literal tuple")
