"""Fault-model rules: every registered model declares its fault space.

``fault-model-coverage`` (FT103)
    Every concrete ``FaultModel`` subclass must declare ``kind``, its
    ``TARGETS`` cell tuple, and a ``fault_space`` enumeration (its own or
    a mixin's) -- mirroring FT102 for the model layer: a model whose
    fault space and declared targets drift apart silently injects into
    cells nobody audits.  The companion runtime audit
    (:func:`repro.analysis.audit.check_fault_models`) instantiates each
    model against a live system and verifies the enumeration covers the
    declared targets.

    ``_``-prefixed classes are mixins/bases, not registered models, and
    the root ``FaultModel`` base itself is exempt -- its empty defaults
    are what the rule exists to catch in subclasses.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.core import Finding, Rule, SourceModule, register_rule
from repro.analysis.model import ClassRecord, ProjectModel

#: The abstract base every model derives from (directly or via mixins).
_ROOT = "FaultModel"


def _is_model_class(record: ClassRecord) -> bool:
    return _ROOT in record.bases and not record.name.startswith("_")


def _chain_without_root(model: ProjectModel,
                        record: ClassRecord) -> List[ClassRecord]:
    """The class plus its resolvable bases, excluding the root base.

    The root's ``kind = ""`` / ``TARGETS = ()`` / ``fault_space`` stub
    must not satisfy the rule -- a subclass has to override them (itself
    or through a mixin like ``_StuckAt``).
    """
    return [owner for owner in model.mro_records(record)
            if owner.name != _ROOT]


@register_rule
class FaultModelCoverageRule(Rule):
    name = "fault-model-coverage"
    code = "FT103"
    protects = ("fault-model honesty: every registered model declares "
                "kind, target cells and a fault-space enumeration")

    def check(self, module: SourceModule,
              model: ProjectModel) -> Iterator[Finding]:
        for records in model.classes.values():
            for record in records:
                if record.module_path != module.path:
                    continue
                if not _is_model_class(record):
                    continue
                chain = _chain_without_root(model, record)
                attrs = set().union(*(owner.all_attrs for owner in chain))
                methods = set().union(*(owner.methods for owner in chain))
                missing = []
                if "kind" not in attrs:
                    missing.append("a 'kind' name")
                if "TARGETS" not in attrs:
                    missing.append("a TARGETS cell tuple")
                if "fault_space" not in methods:
                    missing.append("a fault_space() enumeration")
                if missing:
                    node = ast.Name(id=record.name)
                    node.lineno = record.line
                    yield self.finding(
                        module, node,
                        f"fault model {record.name} lacks "
                        f"{' and '.join(missing)}: models must declare "
                        f"the cells they strike so the runtime audit can "
                        f"prove the fault space covers them")
