"""Determinism rules: the jobs-invariance and resume contracts.

Campaign results are promised byte-identical across ``--jobs N``,
warm-start, and ``--resume`` -- which only holds if nothing in a
result-producing path consults ambient nondeterminism.

``det-random`` (FT201)
    Bans the module-level :mod:`random` API (``random.random()``,
    ``random.choice`` ...) and unseeded ``random.Random()``: all
    randomness must flow from seeded ``random.Random(seed)`` instances
    derived from the campaign seed.

``det-time`` (FT202)
    Bans wall-clock reads that can leak into results: ``time.time()``,
    ``datetime.now()``/``utcnow()``/``today()``.  ``time.perf_counter()``
    and ``time.monotonic()`` stay legal -- they feed the diagnostic
    ``wall_seconds`` fields that are excluded from result identity.

``det-id-order`` (FT203)
    Bans ``id(...)`` used as an ordering key (``sorted(key=...)``,
    ``.sort(key=...)``, ``min``/``max`` keys): CPython ids vary run to
    run, so id-keyed order is nondeterministic across processes.

``det-set-iter`` (FT204)
    Bans iterating a set/frozenset without ``sorted(...)``: set iteration
    order depends on insertion history and hash seeding of the process
    that built it, which breaks jobs-invariance the moment the loop body
    has any observable effect.

``det-digest-diag`` (FT205)
    Flags state digests that include diag/counter state.  Golden-timeline
    grading compares *architectural* digests: observation-only counters
    remember that a strike happened long after the architectural state
    has reconverged, so a digest computed over raw ``capture()`` payloads
    (without :func:`repro.state.snapshot.strip_diag`) or via
    ``digest(architectural=False)`` would never match the golden run's
    and silently disable every early exit.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.analysis.core import Finding, Rule, SourceModule, register_rule
from repro.analysis.model import ProjectModel, is_set_expr

#: random-module functions that draw from the shared global RNG.
_GLOBAL_RNG = {
    "random", "randrange", "randint", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "gammavariate", "lognormvariate", "paretovariate",
    "triangular", "vonmisesvariate", "weibullvariate", "getrandbits",
    "randbytes", "seed",
}

_WALL_CLOCK_TIME = {"time", "time_ns", "localtime", "ctime", "gmtime"}
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}


def _call_chain(node: ast.expr) -> str:
    """Dotted name of a call target: ``datetime.datetime.now`` etc."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


@register_rule
class GlobalRandomRule(Rule):
    name = "det-random"
    code = "FT201"
    protects = "jobs-invariance: randomness flows from the campaign seed"

    def check(self, module: SourceModule,
              model: ProjectModel) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _call_chain(node.func)
            root, _, leaf = chain.rpartition(".")
            if root == "random" and leaf in _GLOBAL_RNG:
                yield self.finding(
                    module, node,
                    f"random.{leaf}() draws from the process-global RNG; "
                    f"use a seeded random.Random(seed) instance")
            elif chain == "random.Random" and not (node.args
                                                   or node.keywords):
                yield self.finding(
                    module, node,
                    "random.Random() without a seed is nondeterministic; "
                    "derive the seed from the campaign configuration")


@register_rule
class WallClockRule(Rule):
    name = "det-time"
    code = "FT202"
    protects = "resume/replay: results never depend on the wall clock"

    def check(self, module: SourceModule,
              model: ProjectModel) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _call_chain(node.func)
            root, _, leaf = chain.rpartition(".")
            if root == "time" and leaf in _WALL_CLOCK_TIME:
                yield self.finding(
                    module, node,
                    f"time.{leaf}() reads the wall clock in a "
                    f"result-producing path; use time.perf_counter() for "
                    f"diagnostic timing only")
            elif leaf in _WALL_CLOCK_DATETIME and root.split(".")[-1] in (
                    "datetime", "date"):
                yield self.finding(
                    module, node,
                    f"{chain}() reads the wall clock; results must not "
                    f"depend on when the run happened")


@register_rule
class IdOrderRule(Rule):
    name = "det-id-order"
    code = "FT203"
    protects = "jobs-invariance: no id()-keyed ordering"

    def check(self, module: SourceModule,
              model: ProjectModel) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            is_sorter = (isinstance(node.func, ast.Name)
                         and node.func.id in ("sorted", "min", "max")) or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "sort")
            if not is_sorter:
                continue
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                for sub in ast.walk(keyword.value):
                    if (isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Name)
                            and sub.func.id == "id"):
                        yield self.finding(
                            module, node,
                            "ordering keyed on id(): CPython object ids "
                            "differ between worker processes, so this "
                            "order is not jobs-invariant")
                        break


class _SetScope:
    """Names known to hold sets inside one function."""

    def __init__(self) -> None:
        self.names: Dict[str, bool] = {}


@register_rule
class SetIterationRule(Rule):
    name = "det-set-iter"
    code = "FT204"
    protects = "jobs-invariance: unordered collections iterate sorted"

    def check(self, module: SourceModule,
              model: ProjectModel) -> Iterator[Finding]:
        class_sets = {
            record.name: record.set_attrs
            for records in model.classes.values()
            for record in records
            if record.module_path == module.path
        }
        for func, owner in _functions_with_owner(module.tree):
            set_attrs = set()
            for name, attrs in class_sets.items():
                if owner == name:
                    record = model.lookup(name)
                    if record is not None:
                        for mro in model.mro_records(record):
                            set_attrs |= mro.set_attrs
            yield from self._check_function(module, func, set_attrs)

    def _check_function(self, module: SourceModule, func,
                        set_attrs) -> Iterator[Finding]:
        local_sets = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                is_set = is_set_expr(value) or (
                    isinstance(node, ast.AnnAssign)
                    and _annotated_set(node.annotation))
                for target in targets:
                    if isinstance(target, ast.Name):
                        if is_set:
                            local_sets.add(target.id)
                        else:
                            local_sets.discard(target.id)
        iters = []
        for node in ast.walk(func):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append((node, node.iter))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    iters.append((node, generator.iter))
        for node, iterable in iters:
            if self._is_unordered(iterable, local_sets, set_attrs):
                yield self.finding(
                    module, node,
                    "iteration over a set: wrap the iterable in "
                    "sorted(...) so the order is deterministic")

    @staticmethod
    def _is_unordered(iterable: ast.expr, local_sets, set_attrs) -> bool:
        if is_set_expr(iterable):
            return True
        if isinstance(iterable, ast.Name):
            return iterable.id in local_sets
        if isinstance(iterable, ast.Attribute):
            if (isinstance(iterable.value, ast.Name)
                    and iterable.value.id == "self"):
                return iterable.attr in set_attrs
        return False


#: hashlib constructors a digest computation would call.
_HASH_CONSTRUCTORS = {
    "sha256", "sha224", "sha384", "sha512", "sha1", "md5",
    "blake2b", "blake2s", "sha3_224", "sha3_256", "sha3_384", "sha3_512",
    "new",
}


@register_rule
class DigestDiagRule(Rule):
    name = "det-digest-diag"
    code = "FT205"
    protects = "grading: convergence digests exclude diag/counter state"

    def check(self, module: SourceModule,
              model: ProjectModel) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and _call_chain(node.func).endswith(".digest")
                    and self._architectural_false(node)):
                yield self.finding(
                    module, node,
                    "digest(architectural=False) includes diag/counter "
                    "state; convergence and grading comparisons must use "
                    "the architectural digest")
        for func, _owner in _functions_with_owner(module.tree):
            yield from self._check_hash_function(module, func)

    @staticmethod
    def _architectural_false(node: ast.Call) -> bool:
        for keyword in node.keywords:
            if (keyword.arg == "architectural"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is False):
                return True
        return False

    def _check_hash_function(self, module: SourceModule,
                             func) -> Iterator[Finding]:
        """Flag hashes over snapshot/capture payloads lacking strip_diag.

        The heuristic is function-scoped: a hashlib constructor call in a
        function that also touches snapshot payloads (a ``.capture()``
        call or a ``components`` name) without ``strip_diag`` or an
        ``OBSERVATION_COMPONENTS`` exclusion is hashing diag state.
        """
        hash_calls = []
        touches_payload = False
        strips = False
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                chain = _call_chain(node.func)
                root, _, leaf = chain.rpartition(".")
                if (root.split(".")[-1] == "hashlib"
                        and leaf in _HASH_CONSTRUCTORS):
                    hash_calls.append(node)
                if leaf == "capture" or chain == "strip_diag" \
                        or leaf == "strip_diag":
                    if leaf == "capture":
                        touches_payload = True
                    else:
                        strips = True
            elif isinstance(node, ast.Name):
                if node.id == "components":
                    touches_payload = True
                elif node.id == "OBSERVATION_COMPONENTS":
                    strips = True
            elif isinstance(node, ast.Attribute):
                if node.attr == "components":
                    touches_payload = True
        if not (touches_payload and not strips):
            return
        for call in hash_calls:
            yield self.finding(
                module, call,
                "hash over snapshot/capture payloads without strip_diag: "
                "diag/counter state leaks into the digest and reconverged "
                "runs never match the golden timeline")


def _annotated_set(annotation: Optional[ast.expr]) -> bool:
    base = annotation
    if isinstance(base, ast.Subscript):
        base = base.value
    if isinstance(base, ast.Name):
        return base.id in ("set", "frozenset", "Set")
    if isinstance(base, ast.Attribute):
        return base.attr in ("Set", "FrozenSet", "MutableSet")
    return False


def _functions_with_owner(tree: ast.Module):
    """Yield (function, enclosing-class-name-or-None) pairs."""

    def visit(node, owner):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, owner
                yield from visit(child, owner)
            else:
                yield from visit(child, owner)

    yield from visit(tree, None)
