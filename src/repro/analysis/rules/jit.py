"""JIT rules: compiled bursts commit every fault-tolerance observable.

``jit-observables`` (FT601)
    The trace JIT accumulates per-step performance counters in closure
    locals and folds them into :class:`~repro.core.statistics.PerfCounters`
    at burst exit; a counter the epilogue forgets silently skews every
    fault-grading readout that normalizes by instructions or cycles.  The
    codegen declares the contract in ``BLOCK_OBSERVABLES`` and emits each
    commit as a ``PERF.<name> +=`` source fragment; this rule checks the
    two stay in lockstep -- every declared observable must have a commit
    fragment in the codegen source, so dropping one (or renaming a
    counter) fails the audit instead of shipping skewed campaigns.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.core import Finding, Rule, SourceModule, register_rule
from repro.analysis.model import ProjectModel

#: The module that declares the observables contract and generates the
#: commit code.
_CODEGEN_MODULE = "jit/blocks.py"


def _observable_names(tree: ast.Module) -> Optional[List[str]]:
    """The string elements of the module-level ``BLOCK_OBSERVABLES``."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "BLOCK_OBSERVABLES" not in targets:
            continue
        if not isinstance(node.value, ast.Tuple):
            return None
        names = []
        for element in node.value.elts:
            if not (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                return None
            names.append(element.value)
        return names
    return None


@register_rule
class JitObservablesRule(Rule):
    name = "jit-observables"
    code = "FT601"
    protects = "compiled-block exits commit every FT observable"

    def check(self, module: SourceModule,
              model: ProjectModel) -> Iterator[Finding]:
        if module.package_path != _CODEGEN_MODULE:
            return
        names = _observable_names(module.tree)
        if names is None:
            yield self.finding(
                module, module.tree,
                "BLOCK_OBSERVABLES must be a module-level tuple of string "
                "literals so the observables contract is auditable")
            return
        fragments = [node.value for node in ast.walk(module.tree)
                     if isinstance(node, ast.Constant)
                     and isinstance(node.value, str)]
        for name in names:
            commit = f"PERF.{name} +="
            if not any(commit in fragment for fragment in fragments):
                yield self.finding(
                    module, module.tree,
                    f"observable {name!r} is declared in BLOCK_OBSERVABLES "
                    f"but the codegen never emits '{commit}'; a compiled "
                    f"burst would retire work without counting it")
