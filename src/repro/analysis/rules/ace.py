"""ACE-map rules: static dead-site claims only apply to transient faults.

``ace-transient-gate`` (FT701)
    The static analyzer's ACE map (:mod:`repro.analysis.program`) claims
    register-file words *dead*: a transient strike there is architecturally
    invisible.  That claim is only sound for one-shot corruption -- a
    persistent fault (stuck-at, re-asserted SEFI) keeps forcing the cell
    for the rest of the run, so "dead at strike time" proves nothing about
    the run's future.  Fault-layer code that consults the map (reads an
    ``.ace`` attribute or calls ``classify`` on it) must therefore gate on
    the fault model's ``transient`` flag: either the consuming function
    references ``transient`` directly, or its enclosing class declares
    ``transient`` in the class body (fault models declare their contract
    there).  Producers of the map (the warm-start builder) suppress the
    rule with a recorded reason.  Scoped to ``repro/fault/`` -- reporting
    code (CLI, dashboard) renders the map but makes no grading decision.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import Finding, Rule, SourceModule, register_rule
from repro.analysis.model import ProjectModel


def _mentions_transient(node: ast.AST) -> bool:
    """Does *node* reference ``transient`` (name or attribute) anywhere?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "transient":
            return True
        if isinstance(sub, ast.Name) and sub.id == "transient":
            return True
    return False


def _declares_transient(cls: ast.ClassDef) -> bool:
    """Does the class body assign ``transient`` (the model contract)?"""
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "transient"
                   for t in stmt.targets):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if (isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "transient"):
                return True
    return False


def _ace_consumption(func: ast.AST) -> Optional[ast.AST]:
    """The first ACE-map consumption inside *func*, if any.

    Consumption = reading an ``.ace`` attribute, or calling
    ``<receiver>.classify(...)`` where the receiver names the map.
    """
    for sub in ast.walk(func):
        if isinstance(sub, ast.Attribute) and sub.attr == "ace":
            return sub
        if (isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "classify"
                and "ace" in ast.unparse(sub.func.value).lower()):
            return sub
    return None


@register_rule
class AceTransientGateRule(Rule):
    name = "ace-transient-gate"
    code = "FT701"
    protects = "static dead-site claims are only applied to transient faults"

    def check(self, module: SourceModule,
              model: ProjectModel) -> Iterator[Finding]:
        if module.subpackage() != "fault":
            return
        functions = []  # (function node, enclosing class or None)
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.append((node, None))
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        functions.append((item, node))
        for func, cls in functions:
            use = _ace_consumption(func)
            if use is None:
                continue
            if _mentions_transient(func):
                continue
            if cls is not None and _declares_transient(cls):
                continue
            where = f"{cls.name}.{func.name}" if cls is not None \
                else func.name
            yield Finding(
                rule=self.name, code=self.code, path=module.path,
                line=getattr(use, "lineno", func.lineno),
                message=f"{where} consumes the ACE map without gating on "
                        f"the fault model's 'transient' flag; a persistent "
                        f"fault re-asserts into its 'dead' word, so static "
                        f"claims must never be applied to it (reference "
                        f"model.transient, or declare 'transient' in the "
                        f"class body)")
