"""Telemetry-guard rule: the <=3% tracing-overhead invariant.

``tel-guard`` (FT301)
    Every :class:`~repro.telemetry.bus.Telemetry` emission outside
    ``repro/telemetry/`` must sit behind an if-enabled guard.  The
    overhead budget holds because a disabled bus costs exactly one
    attribute read (``telemetry.enabled``) at each instrumented site;
    an unguarded ``note``/``detect``/... call pays dict construction and
    sink dispatch even when tracing is off, eroding the budget one site
    at a time.

Recognised guard shapes::

    if telemetry.enabled: telemetry.note(...)      # direct
    if self.telemetry.enabled: ...                 # attribute chain
    traced = telemetry.enabled                     # alias...
    if traced: telemetry.note(...)                 # ...tested later
    if not telemetry.enabled:                      # early exit: the rest
        return                                     # of the body is guarded
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.core import Finding, Rule, SourceModule, register_rule
from repro.analysis.model import ProjectModel

#: Telemetry methods that emit events (the expensive, guarded surface).
EMIT_METHODS = {"emit", "note", "strike", "detect", "resolve", "tmr_scrub",
                "close_open"}


def _is_telemetry_expr(node: ast.expr, aliases: Set[str]) -> bool:
    """Does this expression denote a telemetry bus?"""
    if isinstance(node, ast.Name):
        return node.id == "telemetry" or node.id in aliases
    if isinstance(node, ast.Attribute):
        return node.attr == "telemetry"
    return False


def _mentions_enabled(node: ast.expr, flag_aliases: Set[str]) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
            return True
        if isinstance(sub, ast.Name) and sub.id in flag_aliases:
            return True
    return False


def _collect_aliases(func: ast.FunctionDef):
    """(bus aliases, enabled-flag aliases) assigned inside *func*."""
    bus_aliases: Set[str] = set()
    flag_aliases: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            if isinstance(value, ast.Attribute):
                if value.attr == "telemetry":
                    bus_aliases.add(target.id)
                elif value.attr == "enabled":
                    flag_aliases.add(target.id)
            elif isinstance(value, ast.Name) and value.id == "telemetry":
                bus_aliases.add(target.id)
    return bus_aliases, flag_aliases


def _terminates(body: List[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))


@register_rule
class TelemetryGuardRule(Rule):
    name = "tel-guard"
    code = "FT301"
    protects = ("<=3% telemetry overhead: every emit outside "
                "repro/telemetry/ sits behind an if-enabled guard")

    def check(self, module: SourceModule,
              model: ProjectModel) -> Iterator[Finding]:
        if module.subpackage() == "telemetry":
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(self, module: SourceModule,
                        func: ast.FunctionDef) -> Iterator[Finding]:
        bus_aliases, flag_aliases = _collect_aliases(func)
        yield from self._visit_block(module, func.body, False,
                                     bus_aliases, flag_aliases)

    def _visit_block(self, module, body, guarded, bus_aliases,
                     flag_aliases) -> Iterator[Finding]:
        for statement in body:
            if isinstance(statement, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                # Nested function: its own scope, its own guards.
                yield from self._check_function(module, statement)
                continue
            if isinstance(statement, ast.If):
                test = statement.test
                positive = _mentions_enabled(test, flag_aliases) and not (
                    isinstance(test, ast.UnaryOp)
                    and isinstance(test.op, ast.Not))
                negative = (isinstance(test, ast.UnaryOp)
                            and isinstance(test.op, ast.Not)
                            and _mentions_enabled(test.operand,
                                                  flag_aliases))
                yield from self._visit_block(
                    module, statement.body, guarded or positive,
                    bus_aliases, flag_aliases)
                yield from self._visit_block(
                    module, statement.orelse, guarded or negative,
                    bus_aliases, flag_aliases)
                if negative and _terminates(statement.body):
                    # 'if not telemetry.enabled: return' -- everything
                    # after this statement runs enabled-only.
                    guarded = True
                continue
            for child_body in _nested_bodies(statement):
                yield from self._visit_block(module, child_body, guarded,
                                             bus_aliases, flag_aliases)
            if not guarded:
                yield from self._flag_emits(module, statement, bus_aliases)

    def _flag_emits(self, module, statement,
                    bus_aliases) -> Iterator[Finding]:
        for node in _own_expressions(statement):
            for sub in ast.walk(node):
                if not (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in EMIT_METHODS):
                    continue
                if _is_telemetry_expr(sub.func.value, bus_aliases):
                    yield self.finding(
                        module, sub,
                        f"telemetry.{sub.func.attr}(...) outside an "
                        f"'if telemetry.enabled:' guard: unguarded emits "
                        f"erode the <=3% tracing-overhead budget")


def _nested_bodies(statement: ast.stmt):
    """Statement lists nested inside compound statements (not If)."""
    for name in ("body", "orelse", "finalbody"):
        block = getattr(statement, name, None)
        if isinstance(block, list) and block \
                and isinstance(block[0], ast.stmt):
            yield block
    for handler in getattr(statement, "handlers", ()):
        yield handler.body


def _own_expressions(statement: ast.stmt):
    """Expressions belonging to the statement itself, not nested blocks."""
    for field_name, value in ast.iter_fields(statement):
        if field_name in ("body", "orelse", "finalbody", "handlers"):
            continue
        if isinstance(value, ast.expr):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    yield item
