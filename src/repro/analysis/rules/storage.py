"""Storage rules: every campaign read flows through ``repro.store``.

``storage-read`` (FT501)
    Flags direct ``ResultStore`` JSONL *reads* (``.load()`` /
    ``.split_pending()``) outside the sanctioned storage modules.  The
    CLI, the service, and the report renderers all consume campaign
    results through the :mod:`repro.store` query layer, which is what
    keeps JSONL-backed and SQLite-backed campaigns byte-identical; a
    module that re-opens the JSONL log directly silently forks that
    contract.  Writes (``ResultStore.append``) stay legal everywhere --
    the log is the crash-safe capture format.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.core import Finding, Rule, SourceModule, register_rule
from repro.analysis.model import ProjectModel

#: ResultStore methods that read the JSONL log.
_READ_METHODS = ("load", "split_pending")

#: Modules allowed to touch the JSONL format directly: the store itself
#: and the query layer built on top of it.
_SANCTIONED = ("fault/results.py",)
_SANCTIONED_PACKAGES = ("store",)


def _is_result_store_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "ResultStore"
    if isinstance(func, ast.Attribute):
        return func.attr == "ResultStore"
    return False


@register_rule
class ResultStoreReadRule(Rule):
    name = "storage-read"
    code = "FT501"
    protects = "one query layer: campaign reads go through repro.store"

    def check(self, module: SourceModule,
              model: ProjectModel) -> Iterator[Finding]:
        if module.package_path in _SANCTIONED:
            return
        if module.subpackage() in _SANCTIONED_PACKAGES:
            return
        stores = self._store_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in _READ_METHODS):
                continue
            receiver = func.value
            direct = _is_result_store_call(receiver)
            named = (isinstance(receiver, ast.Name)
                     and receiver.id in stores)
            attr = (isinstance(receiver, ast.Attribute)
                    and receiver.attr in stores)
            if direct or named or attr:
                yield self.finding(
                    module, node,
                    f"ResultStore.{func.attr}() reads the JSONL log "
                    f"directly; route reads through repro.store "
                    f"(load_results / split_pending) so every consumer "
                    f"shares one query layer")

    @staticmethod
    def _store_names(tree: ast.Module) -> Set[str]:
        """Names bound to a ``ResultStore(...)`` anywhere in the module."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                if _is_result_store_call(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
                        elif isinstance(target, ast.Attribute):
                            names.add(target.attr)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (_is_result_store_call(item.context_expr)
                            and isinstance(item.optional_vars, ast.Name)):
                        names.add(item.optional_vars.id)
        return names
