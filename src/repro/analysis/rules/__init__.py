"""Rule registration: importing this package registers every rule."""

from repro.analysis.rules import (
    ace,
    counters,
    determinism,
    faults,
    jit,
    state,
    storage,
    telemetry,
)

__all__ = ["ace", "counters", "determinism", "faults", "jit", "state",
           "storage", "telemetry"]
