"""Rule registration: importing this package registers every rule."""

from repro.analysis.rules import (
    counters,
    determinism,
    faults,
    jit,
    state,
    storage,
    telemetry,
)

__all__ = ["counters", "determinism", "faults", "jit", "state", "storage",
           "telemetry"]
