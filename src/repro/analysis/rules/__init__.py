"""Rule registration: importing this package registers every rule."""

from repro.analysis.rules import counters, determinism, state, telemetry

__all__ = ["counters", "determinism", "state", "telemetry"]
