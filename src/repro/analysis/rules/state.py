"""State-coverage rules: the snapshot/restore and fault-space invariants.

``state-coverage`` (FT101)
    Every stateful attribute a component class assigns in ``__init__``
    must be referenced by the class's (or a base's) ``capture``/
    ``restore``/``snapshot`` methods, or carry a ``# state: <category>``
    annotation (``wiring``/``config``/``diag``).  Protects the bit-exact
    snapshot/restore guarantee: an unregistered attribute silently makes
    warm-start runs diverge from cold ones.

``state-bitcells`` (FT102)
    Every bit-storage cell group (a class exposing ``inject_flat``) must
    also define ``capture`` and ``restore``: storage that the fault
    injector can strike but a snapshot cannot carry breaks warm-start
    fault campaigns.  The companion runtime audit walks a live system to
    verify each such cell group is actually reachable from the injector's
    target map.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, SourceModule, register_rule
from repro.analysis.model import ProjectModel

#: Subpackages whose classes are component classes (device state holders).
COMPONENT_PACKAGES = ("core", "cache", "ft", "mem", "peripherals", "iu",
                      "fpu", "amba")


def _in_component_scope(module: SourceModule) -> bool:
    return module.subpackage() in COMPONENT_PACKAGES


@register_rule
class StateCoverageRule(Rule):
    name = "state-coverage"
    code = "FT101"
    protects = ("bit-exact snapshot/restore: every mutable __init__ "
                "attribute is captured or explicitly annotated")

    def check(self, module: SourceModule,
              model: ProjectModel) -> Iterator[Finding]:
        for records in model.classes.values():
            for record in records:
                if record.module_path != module.path:
                    continue
                in_scope = (_in_component_scope(module)
                            or model.has_capture_anywhere(record)
                            or model.has_restore_anywhere(record))
                if not in_scope or record.is_dataclass:
                    continue
                has_capture = model.has_capture_anywhere(record)
                for attr, info in record.init_attrs.items():
                    if info.kind != "stateful":
                        continue
                    if info.annotation:
                        continue
                    if model.is_covered(record, attr):
                        continue
                    if has_capture:
                        message = (
                            f"{record.name}.{attr} is assigned state in "
                            f"__init__ but never referenced by capture/"
                            f"restore; register it or annotate the "
                            f"assignment with '# state: wiring|config|diag'")
                    else:
                        message = (
                            f"component class {record.name} assigns "
                            f"stateful attribute {attr!r} but defines no "
                            f"capture/restore; add them or annotate the "
                            f"assignment with '# state: wiring|config|diag'")
                    yield Finding(rule=self.name, code=self.code,
                                  path=module.path, line=info.line,
                                  message=message)


@register_rule
class BitCellRule(Rule):
    name = "state-bitcells"
    code = "FT102"
    protects = ("fault-space coverage: every injectable cell group "
                "snapshots (and the audit proves the injector reaches it)")

    def check(self, module: SourceModule,
              model: ProjectModel) -> Iterator[Finding]:
        for records in model.classes.values():
            for record in records:
                if record.module_path != module.path:
                    continue
                if not record.has_inject_flat:
                    continue
                missing = []
                if not model.has_capture_anywhere(record):
                    missing.append("capture")
                if not model.has_restore_anywhere(record):
                    missing.append("restore")
                if missing:
                    node = ast.Name(id=record.name)
                    node.lineno = record.line
                    yield self.finding(
                        module, node,
                        f"bit-storage class {record.name} exposes "
                        f"inject_flat but lacks {' and '.join(missing)}: "
                        f"injectable state must snapshot bit-exactly")
