"""Text and JSON reporters for lint findings and audit results."""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.core import Finding, all_rules

REPORT_VERSION = 1


def summarize(findings: Sequence[Finding]) -> Dict[str, int]:
    active = sum(1 for finding in findings if not finding.suppressed)
    return {
        "total": len(findings),
        "active": active,
        "suppressed": len(findings) - active,
    }


def render_text(findings: Sequence[Finding], *,
                show_suppressed: bool = False) -> str:
    lines: List[str] = []
    for finding in findings:
        if finding.suppressed and not show_suppressed:
            continue
        mark = " (suppressed)" if finding.suppressed else ""
        reason = f" [{finding.reason}]" if finding.reason else ""
        lines.append(f"{finding.location()}: {finding.code} "
                     f"{finding.rule}{mark}: {finding.message}{reason}")
    counts = summarize(findings)
    lines.append(f"{counts['active']} finding(s), "
                 f"{counts['suppressed']} suppressed, "
                 f"{counts['total']} total")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], *,
                files: int = 0,
                audit: Optional[dict] = None) -> str:
    """Machine-readable report.  Like the text reporter, only *active*
    findings are listed; suppressed ones still show in the counts."""
    payload = {
        "version": REPORT_VERSION,
        "files": files,
        "rules": [
            {"name": rule.name, "code": rule.code,
             "protects": rule.protects}
            for rule in all_rules()
        ],
        "counts": summarize(findings),
        "findings": [finding.as_dict() for finding in findings
                     if not finding.suppressed],
    }
    if audit is not None:
        payload["audit"] = audit
    return json.dumps(payload, indent=2, sort_keys=True)
