"""Pluggable fault models: SEU/MBU, stuck-at, SEFI, and targeted attacks.

The beam experiments of the paper exercise exactly one fault model --
Poisson-arrival transient bit flips (:mod:`repro.fault.beam`).  The FT
fabric claims coverage over a much richer fault space, and InjectV-style
security work (PAPERS.md) shows *targeted* faults (instruction skip,
opcode corruption) behave nothing like random upsets.  This module makes
the fault model a campaign parameter:

``seu``
    The existing heavy-ion behavior, delegating scheduling and
    application to :class:`~repro.fault.beam.HeavyIonBeam` so the default
    campaign stays byte-identical to the pre-model-layer code (RNG draw
    order, MBU companions, injection log entries).
``stuck-at-0`` / ``stuck-at-1``
    Persistent cell defects.  Arrival sites reuse the beam's Poisson
    schedule (a stuck cell is "where the particle would have struck"),
    but the fault is registered with
    :meth:`~repro.fault.injector.FaultInjector.add_persistent` and
    re-asserted at every execution-chunk boundary until the end of the
    run -- scrubbing or rewriting the cell cannot repair it.  Persistent
    faults invalidate the golden-digest early-exit argument
    (``transient = False``), so grading degrades to full execution.
``sefi``
    Single-event functional interrupt: control-register corruption.  The
    fault lands in a TMR'd control flip-flop *through the voter*
    (:meth:`~repro.ft.tmr.TmrRegister.load` latches all three lanes), so
    the TMR fabric cannot out-vote it -- only a software rewrite heals
    the register.  One pseudo-cell, ``errmon-clear``, models a SEFI in
    the error-monitor readout path (the monitor's counts are wiped).
``instruction-skip`` / ``opcode``
    Targeted attacks at a chosen PC (or PC window).  A skip replaces the
    instruction word with a coherent NOP -- check bits regenerated, so
    the FT fabric *cannot* see it and the interesting readout is
    silent-vs-masked.  Opcode corruption flips a stored bit with stale
    check bits, which EDAC flags on fetch when enabled -- the
    detected-vs-silent axis.

Every model declares its target cells (``TARGETS``) and enumerates its
fault space; lint rule FT103 and the ``fault-model-coverage`` runtime
audit check hold the two consistent.

:func:`classify_outcome` gives the security readout: each completed run
is **detected** (the FT fabric flagged the fault), **silently executed**
(architectural results corrupted with no detection), or **masked**.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.errors import ConfigurationError
from repro.fault.beam import HeavyIonBeam, Strike
from repro.fault.injector import FaultInjector

#: SPARC NOP encoding (``sethi 0, %g0``).
NOP_WORD = 0x01000000

#: Per-bit SEFI cross-section, cm^2/bit.  Control flip-flops upset far
#: less often than the cache/regfile arrays (they are few, and latching
#: through the voter needs a coincident multi-lane hit); a flat Weibull
#: plateau keeps the schedule a pure function of ``(seed, flux, fluence)``.
SEFI_BIT_CROSS_SECTION_CM2 = 4e-7

#: Pseudo-cell: a SEFI in the error-monitor readout path (counts wiped).
ERRMON_CLEAR = "errmon-clear"


@dataclass(frozen=True)
class PlannedFault:
    """One scheduled fault: when, where, and under which model.

    ``kind`` is ``None`` for default-model (seu) faults so the recorded
    strike-event format -- and therefore every existing trace -- stays
    byte-identical; non-default models stamp their kind into the event.
    """

    time_s: float
    target: str
    flat_bit: int
    mbu: bool = False
    kind: Optional[str] = None
    info: Dict[str, Any] = field(default_factory=dict)


class FaultModel:
    """One way for state to go wrong.

    Subclasses declare ``kind`` (the registry key), ``transient``
    (whether the golden-digest early exit stays sound -- only one-shot
    corruptions qualify), and ``TARGETS`` (every cell group the model
    may fault, checked by FT103 and the runtime audit), and implement
    :meth:`fault_space`, :meth:`schedule`, and :meth:`apply`.
    """

    kind: str = ""
    #: One-shot corruption?  Persistent faults (re-asserted during the
    #: run) must set this False so grading never takes the golden-digest
    #: early exit -- the timeline argument only holds for transients.
    transient: bool = True
    #: Cell groups this model may fault (FT103 / audit contract).
    TARGETS: Tuple[str, ...] = ()
    #: Whether every declared target present on the device must appear in
    #: the fault space (cell-array models); targeted attacks narrow their
    #: space to the configured site and set this False.
    EXHAUSTIVE: bool = True

    def __init__(self, config) -> None:
        self.config = config

    def fault_space(self, injector: FaultInjector) -> Dict[str, int]:
        """Faultable bits per target under this model."""
        raise NotImplementedError

    def schedule(self, injector: FaultInjector) -> List[PlannedFault]:
        """The run's fault arrivals, a pure function of the config."""
        raise NotImplementedError

    def apply(self, fault: PlannedFault, injector: FaultInjector) -> None:
        """Inject *fault* into the system behind *injector*."""
        raise NotImplementedError

    def locate(self, fault: PlannedFault,
               injector: FaultInjector) -> Optional[int]:
        """Word index of *fault* for trace correlation (None if unmapped)."""
        if fault.target in injector.targets:
            return injector.locate(fault.target, fault.flat_bit)
        return None


#: Registry of fault models by ``kind``.
MODELS: Dict[str, Type[FaultModel]] = {}


def register_model(cls: Type[FaultModel]) -> Type[FaultModel]:
    """Class decorator adding a :class:`FaultModel` to the registry."""
    if not cls.kind:
        raise ConfigurationError(f"fault model {cls.__name__} has no kind")
    if cls.kind in MODELS:
        raise ConfigurationError(f"duplicate fault model {cls.kind!r}")
    MODELS[cls.kind] = cls
    return cls


def model_names() -> Tuple[str, ...]:
    """Registered fault-model kinds, sorted (CLI choices, docs)."""
    return tuple(sorted(MODELS))


def build_model(kind: str, config) -> FaultModel:
    """Instantiate the registered model *kind* bound to *config*."""
    try:
        cls = MODELS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown fault model {kind!r} (choose from {', '.join(model_names())})"
        ) from None
    return cls(config)


# -- the default model: heavy-ion SEU/MBU -----------------------------------

#: All injector cell groups (ext-* only exist on injectors built with
#: ``include_external_memory``; fpregs only when the device has an FPU).
_CELL_ARRAYS = (
    "icache-tag", "icache-data", "dcache-tag", "dcache-data",
    "regfile", "fpregs", "flipflops", "ext-prom", "ext-sram", "ext-io",
)


@register_model
class SingleEventUpset(FaultModel):
    """Transient bit flips: the paper's heavy-ion beam, unchanged.

    Scheduling and application delegate to
    :class:`~repro.fault.beam.HeavyIonBeam`, so RNG draw order, MBU
    companion strikes, and the injection log are byte-identical to the
    pre-model-layer campaign.
    """

    kind = "seu"
    transient = True
    TARGETS = _CELL_ARRAYS

    def __init__(self, config) -> None:
        super().__init__(config)
        self._beam: Optional[HeavyIonBeam] = None

    def _beam_for(self, injector: FaultInjector) -> HeavyIonBeam:
        if self._beam is None or self._beam.injector is not injector:
            self._beam = HeavyIonBeam(injector)
        return self._beam

    def fault_space(self, injector: FaultInjector) -> Dict[str, int]:
        return {name: target.bits for name, target in injector.targets.items()}

    def schedule(self, injector: FaultInjector) -> List[PlannedFault]:
        beam = self._beam_for(injector)
        return [
            PlannedFault(time_s=strike.time_s, target=strike.target,
                         flat_bit=strike.flat_bit, mbu=strike.mbu)
            for strike in beam.schedule(self.config.beam_parameters())
        ]

    def apply(self, fault: PlannedFault, injector: FaultInjector) -> None:
        self._beam_for(injector).apply(Strike(
            time_s=fault.time_s, target=fault.target,
            flat_bit=fault.flat_bit, mbu=fault.mbu))


# -- persistent stuck-at cells ----------------------------------------------

def _beam_sites(config, injector: FaultInjector,
                kind: str) -> List[PlannedFault]:
    """Beam-scheduled arrival sites re-labelled for a non-seu model.

    Reuses the heavy-ion Poisson/Weibull machinery (same seed, same draw
    order) so stuck-at campaigns sweep the same cell population the beam
    would have hit.  MBU companions do not apply -- a stuck cell is a
    single defect -- so the drawn flag is dropped.
    """
    beam = HeavyIonBeam(injector)
    return [
        PlannedFault(time_s=strike.time_s, target=strike.target,
                     flat_bit=strike.flat_bit, mbu=False, kind=kind)
        for strike in beam.schedule(config.beam_parameters())
    ]


class _StuckAt:
    """Shared behavior of the two stuck-at polarities."""

    transient = False  # re-asserted faults invalidate the golden timeline
    value = 0

    def fault_space(self, injector: FaultInjector) -> Dict[str, int]:
        return {name: target.bits for name, target in injector.targets.items()}

    def schedule(self, injector: FaultInjector) -> List[PlannedFault]:
        return _beam_sites(self.config, injector, self.kind)

    def apply(self, fault: PlannedFault, injector: FaultInjector) -> None:
        injector.add_persistent(fault.target, fault.flat_bit, self.value)


@register_model
class StuckAtZero(_StuckAt, FaultModel):
    """Persistent stuck-at-0 cell faults at beam-scheduled sites."""

    kind = "stuck-at-0"
    value = 0
    TARGETS = _CELL_ARRAYS


@register_model
class StuckAtOne(_StuckAt, FaultModel):
    """Persistent stuck-at-1 cell faults at beam-scheduled sites."""

    kind = "stuck-at-1"
    value = 1
    TARGETS = _CELL_ARRAYS


# -- SEFI: control-register corruption --------------------------------------

#: Control flip-flops a functional interrupt can latch into.  Only the
#: cells present on the configured device are enumerated at run time.
SEFI_CELLS = (
    "sysregs.ccr",
    "iu.wim", "iu.tbr",
    "irqctrl.mask", "irqctrl.pending",
    "watchdog.counter", "prescaler.reload",
    "ioport.direction", "ioport.irqcfg",
    "dma.status",
)


@register_model
class FunctionalInterrupt(FaultModel):
    """SEFI: corruption latched into control state through the TMR voter.

    The upset is modeled as a coincident multi-lane hit: the corrupted
    value is *loaded* into the TMR register, so all three lanes agree on
    the wrong value and scrubbing cannot repair it -- only software
    rewriting the register does.  The ``errmon-clear`` pseudo-cell wipes
    the error monitor instead (a SEFI in the diagnostic path), which is
    exactly the failure the monitor itself cannot report.
    """

    kind = "sefi"
    transient = True  # one-shot latch corruption; digests stay sound
    TARGETS = SEFI_CELLS + (ERRMON_CLEAR,)

    def _cells(self, injector: FaultInjector) -> List[Tuple[str, int]]:
        bank = injector.system.ffbank
        present = set(bank.names())
        cells = [(name, bank.get(name).width)
                 for name in SEFI_CELLS if name in present]
        cells.append((ERRMON_CLEAR, 1))
        return cells

    def fault_space(self, injector: FaultInjector) -> Dict[str, int]:
        return dict(self._cells(injector))

    def schedule(self, injector: FaultInjector) -> List[PlannedFault]:
        params = self.config.beam_parameters()
        cells = self._cells(injector)
        total_bits = sum(width for _name, width in cells)
        rate = params.flux * SEFI_BIT_CROSS_SECTION_CM2 * total_bits
        duration = params.duration_s
        rng = random.Random(params.seed)
        faults: List[PlannedFault] = []
        elapsed = 0.0
        while rate > 0.0:
            elapsed += rng.expovariate(rate)
            if elapsed >= duration:
                break
            flat = rng.randrange(total_bits)
            for name, width in cells:
                if flat < width:
                    faults.append(PlannedFault(
                        time_s=elapsed, target=name, flat_bit=flat,
                        kind=self.kind))
                    break
                flat -= width
        return faults

    def apply(self, fault: PlannedFault, injector: FaultInjector) -> None:
        system = injector.system
        if fault.target == ERRMON_CLEAR:
            system.errors.clear_monitor()
            return
        reg = system.ffbank.get(fault.target)
        reg.load(reg.value ^ (1 << fault.flat_bit))

    def locate(self, fault: PlannedFault,
               injector: FaultInjector) -> Optional[int]:
        return None  # control cells are registers, not word arrays


# -- targeted attacks: instruction skip and opcode corruption ---------------

def _attack_site(config, injector: FaultInjector) -> Tuple[int, int]:
    """``(absolute address, local sram offset)`` of the attacked word.

    ``fault_params['pc']`` anchors the attack; a ``window`` of N words
    picks one word in ``[pc, pc + 4N)`` with the run's seed, so a sweep
    over seeds covers the window.  Campaign programs load into SRAM, and
    the attack space is declared accordingly -- a PC outside the SRAM
    bank is a configuration error.
    """
    params = dict(config.fault_params)
    pc = params.get("pc")
    if pc is None:
        raise ConfigurationError(
            "attack models need fault_params['pc'] (the target instruction)")
    pc = int(pc)
    window = max(int(params.get("window", 1) or 1), 1)
    if window > 1:
        rng = random.Random(config.seed)
        pc += 4 * rng.randrange(window)
    sram = injector.system.memctrl.sram
    if not sram.covers(pc):
        raise ConfigurationError(
            f"attack pc {pc:#x} is outside the SRAM bank (programs load "
            f"at {sram.base:#x})")
    return pc, pc - sram.base


class _Attack:
    """Shared scheduling of the two PC-targeted attack models."""

    EXHAUSTIVE = False  # the space narrows to the configured site

    def fault_space(self, injector: FaultInjector) -> Dict[str, int]:
        window = max(int(self.config.fault_params.get("window", 1) or 1), 1)
        return {"ext-sram": window * 32}

    def _plan(self, injector: FaultInjector, *, bit: int,
              info: Dict[str, Any]) -> List[PlannedFault]:
        address, local = _attack_site(self.config, injector)
        memory = injector.system.memctrl.sram_memory
        per_word = 39 if memory.edac else 32
        time_s = float(self.config.fault_params.get("time_s", 0.0))
        flat_bit = (local // 4) * per_word + bit
        payload = {"address": address, **info}
        return [PlannedFault(time_s=time_s, target="ext-sram",
                             flat_bit=flat_bit, kind=self.kind, info=payload)]

    def locate(self, fault: PlannedFault,
               injector: FaultInjector) -> Optional[int]:
        address = fault.info.get("address")
        if address is None:
            return None
        return (address - injector.system.memctrl.sram.base) // 4


@register_model
class InstructionSkip(_Attack, FaultModel):
    """Replace the attacked instruction with a coherent NOP.

    The write regenerates check bits, so parity/EDAC *cannot* flag it:
    the run lands on the silent-vs-masked axis by construction --
    exactly the blind spot a security readout must surface.
    """

    kind = "instruction-skip"
    transient = True
    TARGETS = ("ext-sram",)

    def schedule(self, injector: FaultInjector) -> List[PlannedFault]:
        return self._plan(injector, bit=0, info={"skip": True})

    def apply(self, fault: PlannedFault, injector: FaultInjector) -> None:
        system = injector.system
        address = fault.info["address"]
        system.write_word(address, NOP_WORD)
        system.icache.flush()  # force a refetch of the patched word


@register_model
class OpcodeCorruption(_Attack, FaultModel):
    """Flip one stored bit of the attacked instruction word.

    The flip leaves check bits stale, so EDAC-protected memory detects
    (and corrects) the corruption on fetch -- the detected axis.  On an
    unprotected device the corrupted opcode executes.
    """

    kind = "opcode"
    transient = True
    TARGETS = ("ext-sram",)

    def schedule(self, injector: FaultInjector) -> List[PlannedFault]:
        bit = self.config.fault_params.get("bit")
        if bit is None:
            bit = random.Random(self.config.seed).randrange(32)
        bit = int(bit)
        if not 0 <= bit < 32:
            raise ConfigurationError(f"opcode bit {bit} outside the data word")
        return self._plan(injector, bit=bit, info={"bit": bit})

    def apply(self, fault: PlannedFault, injector: FaultInjector) -> None:
        system = injector.system
        address = fault.info["address"]
        local = address - system.memctrl.sram.base
        system.memctrl.sram_memory.inject(local, fault.info["bit"])
        system.icache.flush()  # refetch sees the corrupted (stale-check) word


# -- security readout --------------------------------------------------------

#: Classification labels, in display order.
OUTCOMES = ("detected", "silent", "masked")


def classify_outcome(result) -> str:
    """Detected / silently-executed / masked readout of one finished run.

    ``detected``
        The FT fabric flagged the fault: any error counter incremented,
        an error trap fired, the watchdog saw a halt, or recovery ran.
    ``silent``
        No detection, but the program's own self-checks failed
        (``sw_errors``) -- architectural results were corrupted and the
        fabric never noticed.  The security-critical bucket.
    ``masked``
        No detection and correct results: the fault had no effect.
    """
    counts = getattr(result, "counts", None) or {}
    fabric = any(counts.get(name, 0) for name in counts)
    if (fabric or result.error_traps or result.halts or result.halted
            or getattr(result, "recoveries", 0)
            or getattr(result, "unrecovered", 0)):
        return "detected"
    if result.sw_errors:
        return "silent"
    return "masked"


def security_fold(results) -> Dict[str, Dict[str, int]]:
    """Per-fault-model detected/silent/masked counts over *results*."""
    fold: Dict[str, Dict[str, int]] = {}
    for result in results:
        model = getattr(result.config, "fault_model", "seu")
        bucket = fold.setdefault(
            model, {outcome: 0 for outcome in OUTCOMES})
        bucket[classify_outcome(result)] += 1
    return fold


# Registered last: the importance-sampling model lives in its own module
# (it pulls in the static-analysis layer) but must be in MODELS whenever
# the registry is imported.
from repro.fault import sampling as _sampling  # noqa: E402,F401
