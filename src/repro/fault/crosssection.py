"""Cross-section analysis: the Figure 6 / Figure 7 machinery.

The paper plots the *measured* cross-section per bit against effective LET
for each RAM type (ITE / IDE / DTE / DDE / RFE), for the IUTEST (fig. 6) and
PARANOIA (fig. 7) programs.  This module sweeps the beam's LET, runs one
campaign per point, normalizes counts per bit and per fluence, and fits the
standard Weibull SEU curve to the result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import LeonConfig
from repro.core.system import LeonSystem
from repro.fault.campaign import CampaignConfig, prepare_warm_start
from repro.fault.executor import CampaignExecutor
from repro.fault.injector import FaultInjector

#: Which error counter corresponds to which RAM target.
COUNTER_TARGETS = {
    "ITE": "icache-tag",
    "IDE": "icache-data",
    "DTE": "dcache-tag",
    "DDE": "dcache-data",
    "RFE": "regfile",
}

#: LET points used by the sweep (MeV.cm2/mg), spanning the paper's 6..110.
DEFAULT_LETS = (6.0, 10.0, 15.0, 25.0, 40.0, 60.0, 80.0, 110.0)


@dataclass
class CrossSectionPoint:
    """One (LET, sigma) measurement for one RAM type.

    ``count`` is always the *raw* observed event count.  Importance-sampled
    points (``measure_curve(..., importance=True)``) carry ``weight < 1``
    -- the Horvitz-Thompson factor already folded into ``sigma_per_bit`` --
    and a normal-approximation 95 % confidence interval; plain points keep
    the defaults (weight 1, zero-width interval markers).
    """

    let: float
    sigma_per_bit: float
    count: int
    #: Horvitz-Thompson reweighting factor (sigma_live / sigma_device)
    #: applied to the counts; 1.0 for plain (non-importance) sweeps.
    weight: float = 1.0
    #: 95 % CI bounds on ``sigma_per_bit`` (0.0/0.0 in plain sweeps).
    ci_low: float = 0.0
    ci_high: float = 0.0


@dataclass
class CrossSectionCurve:
    """Measured sigma-vs-LET for every RAM type plus the device total."""

    program: str
    points: Dict[str, List[CrossSectionPoint]] = field(default_factory=dict)

    def series(self, kind: str) -> Tuple[List[float], List[float]]:
        lets = [point.let for point in self.points[kind]]
        sigmas = [point.sigma_per_bit for point in self.points[kind]]
        return lets, sigmas

    def kinds(self) -> List[str]:
        return list(self.points)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the service's curve endpoints)."""
        return {
            "program": self.program,
            "points": {
                kind: [{"let": p.let, "sigma_per_bit": p.sigma_per_bit,
                        "count": p.count, "weight": p.weight,
                        "ci_low": p.ci_low, "ci_high": p.ci_high}
                       for p in points]
                for kind, points in self.points.items()
            },
        }


def target_bits(leon: Optional[LeonConfig] = None) -> Dict[str, int]:
    """Bit population per RAM type (for per-bit normalization)."""
    system = LeonSystem(leon or LeonConfig.leon_express())
    injector = FaultInjector(system)
    return {
        kind: injector.targets[target].bits
        for kind, target in COUNTER_TARGETS.items()
    }


def measure_curve(
    program: str,
    *,
    lets: Sequence[float] = DEFAULT_LETS,
    flux: float = 400.0,
    fluence: float = 2.0e3,
    seed: int = 1,
    instructions_per_second: float = 50_000.0,
    leon: Optional[LeonConfig] = None,
    program_kwargs: Optional[dict] = None,
    jobs: int = 1,
    executor: Optional[CampaignExecutor] = None,
    warm_start: bool = False,
    beam_delay_s: float = 0.0,
    beam_tail_s: float = 0.0,
    early_exit: bool = True,
    importance: bool = False,
) -> CrossSectionCurve:
    """Run one campaign per LET point and build the per-bit sigma curves.

    The seed of point ``i`` is ``seed + i`` (a published mapping -- recorded
    curves depend on it).  With ``jobs > 1`` (or an explicit ``executor``)
    the LET points run in parallel worker processes; because every point's
    config embeds its own seed the curve is bit-for-bit identical to the
    serial one.  With ``warm_start=True`` the fault-free prefix
    (``beam_delay_s``) is executed once and every LET point restores from
    the shared snapshot -- the curve is unchanged (the warm-start key does
    not involve LET or seed).  ``early_exit=False`` disables golden-timeline
    grading and strike batching (the slow full-execution oracle; the curve
    is identical either way).

    ``importance=True`` runs the sweep under the ``seu-live`` model
    (:mod:`repro.fault.sampling`): strikes land only on statically-live
    sites, counts are reweighted by the per-LET Horvitz-Thompson factor
    ``rho = sigma_live / sigma_device``, and every point carries a 95 %
    confidence interval.  The estimates are unbiased in the single-strike
    regime but come from a *different* strike population, so importance
    curves are statistically -- not bit-for-bit -- comparable to plain
    ones.
    """
    bits = target_bits(leon)
    curve = CrossSectionCurve(program, {kind: [] for kind in COUNTER_TARGETS})
    curve.points["Total"] = []
    total_bits = sum(bits.values())
    configs = [
        CampaignConfig(
            program=program,
            let=let,
            flux=flux,
            fluence=fluence,
            seed=seed + index,
            instructions_per_second=instructions_per_second,
            leon=leon,
            program_kwargs=program_kwargs or {},
            beam_delay_s=beam_delay_s,
            beam_tail_s=beam_tail_s,
            early_exit=early_exit,
            fault_model="seu-live" if importance else "seu",
        )
        for index, let in enumerate(lets)
    ]
    if executor is None:
        executor = CampaignExecutor(jobs)
    warm = prepare_warm_start(configs[0]) if warm_start and configs else None
    rhos = None
    if importance:
        from repro.fault.sampling import live_fraction
        rhos = [live_fraction(config) for config in configs]
    for index, (let, result) in enumerate(
            zip(lets, executor.run_many(configs, warm=warm,
                                        batch=early_exit))):
        rho = rhos[index] if rhos is not None else 1.0
        for kind in COUNTER_TARGETS:
            count = result.counts[kind]
            scale = rho / fluence / bits[kind]
            curve.points[kind].append(_point(let, count, scale, rho,
                                             importance))
        total = result.counts["Total"]
        curve.points["Total"].append(_point(let, total,
                                            rho / fluence / total_bits,
                                            rho, importance))
    return curve


def _point(let: float, count: int, scale: float, rho: float,
           importance: bool) -> CrossSectionPoint:
    """One curve point; importance points carry their weight and 95 % CI.

    The CI is the normal approximation to the Poisson count,
    ``count +- 1.96 * sqrt(count)``, scaled like the estimate; a
    zero-count point reports the rule-of-three upper bound (3 events).
    """
    sigma = count * scale
    if not importance:
        return CrossSectionPoint(let, sigma, count)
    half = 1.96 * math.sqrt(count)
    ci_low = max(count - half, 0.0) * scale
    ci_high = (count + half if count else 3.0) * scale
    return CrossSectionPoint(let, sigma, count, weight=rho,
                             ci_low=ci_low, ci_high=ci_high)


#: The sweep entry point the CLI and benchmarks use; ``measure_curve`` is
#: the historical name.
sweep = measure_curve


@dataclass(frozen=True)
class WeibullFit:
    """Fitted Weibull parameters for one measured curve."""

    sat: float
    onset: float
    width: float
    shape: float
    residual: float

    def at(self, let: float) -> float:
        if let <= self.onset:
            return 0.0
        return self.sat * (1.0 - math.exp(-(((let - self.onset) / self.width) ** self.shape)))


def fit_weibull(lets: Sequence[float], sigmas: Sequence[float],
                *, onset: float = 4.0) -> WeibullFit:
    """Least-squares Weibull fit with a fixed onset (scipy if available).

    Falls back to a coarse grid search when scipy is missing or the fit
    fails (few non-zero points).
    """
    pairs = [(let, sigma) for let, sigma in zip(lets, sigmas) if sigma > 0]
    if len(pairs) < 3:
        sat = max(sigmas) if sigmas else 0.0
        return WeibullFit(sat, onset, 40.0, 1.4, float("inf"))
    xs = [pair[0] for pair in pairs]
    ys = [pair[1] for pair in pairs]

    def residual(sat: float, width: float, shape: float) -> float:
        total = 0.0
        for x, y in zip(xs, ys):
            model = sat * (1.0 - math.exp(-(((x - onset) / width) ** shape)))
            total += (model - y) ** 2
        return total

    try:
        from scipy.optimize import curve_fit

        def model(x, sat, width, shape):
            import numpy as np

            scaled = ((np.asarray(x) - onset) / width).clip(min=0)
            return sat * (1.0 - np.exp(-(scaled ** shape)))

        start = (max(ys), 40.0, 1.4)
        params, _cov = curve_fit(model, xs, ys, p0=start, maxfev=20_000)
        sat, width, shape = (float(value) for value in params)
        return WeibullFit(sat, onset, width, shape, residual(sat, width, shape))
    except Exception:
        best = None
        for sat_scale in (0.8, 1.0, 1.2, 1.5):
            for width in (20.0, 30.0, 40.0, 60.0):
                for shape in (1.0, 1.2, 1.4, 1.8):
                    sat = max(ys) * sat_scale
                    err = residual(sat, width, shape)
                    if best is None or err < best.residual:
                        best = WeibullFit(sat, onset, width, shape, err)
        return best


def render_curve(curve: CrossSectionCurve, *, width: int = 60) -> str:
    """ASCII rendering of sigma/bit vs LET, one line block per RAM type."""
    lines = [f"Cross-section vs LET, {curve.program.upper()} "
             f"(per-bit, cm2; log scale)"]
    for kind in curve.kinds():
        lets, sigmas = curve.series(kind)
        positive = [sigma for sigma in sigmas if sigma > 0]
        if not positive:
            lines.append(f"  {kind:>5}: (no events)")
            continue
        low = math.log10(min(positive)) - 0.2
        high = math.log10(max(positive)) + 0.2
        span = max(high - low, 1e-6)
        lines.append(f"  {kind:>5}:")
        for let, sigma in zip(lets, sigmas):
            if sigma > 0:
                bar = int((math.log10(sigma) - low) / span * width)
                lines.append(f"    LET {let:6.1f}  {'#' * max(bar, 1)}  {sigma:.2e}")
            else:
                lines.append(f"    LET {let:6.1f}  .  0")
    return "\n".join(lines)
