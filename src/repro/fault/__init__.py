"""Heavy-ion fault injection (paper section 6).

The LEON-Express device was irradiated at the Louvain Cyclotron with ions of
6-110 MeV effective LET at fluxes of 400-5 000 ions/s/cm2.  This package is
the simulator's cyclotron: a per-bit Weibull cross-section model, Poisson
particle arrivals, a geometric multiple-bit-upset model for adjacent cells,
and a campaign runner that reproduces the paper's measurement procedure
(run a self-checking program, count the hardware error-monitor counters,
verify the checksum, classify failures).
"""

from repro.fault.beam import BeamParameters, HeavyIonBeam, WeibullCrossSection
from repro.fault.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    WarmStart,
    prepare_warm_start,
    warm_start_key,
)
from repro.fault.grading import (
    GoldenCheckpoint,
    GoldenRun,
    GoldenTimeline,
    checkpoint_schedule,
    first_strike_instructions,
)
from repro.fault.crosssection import (
    CrossSectionCurve,
    WeibullFit,
    fit_weibull,
    measure_curve,
    render_curve,
    sweep,
)
from repro.fault.executor import (
    CampaignExecutionError,
    CampaignExecutor,
    StrikeBatch,
    derive_seed,
    expand_runs,
    plan_batches,
    run_campaign,
)
from repro.fault.injector import FaultInjector, SeuTarget
from repro.fault.results import ResultStore, config_key

__all__ = [
    "BeamParameters",
    "Campaign",
    "CampaignConfig",
    "CampaignExecutionError",
    "CampaignExecutor",
    "CampaignResult",
    "CrossSectionCurve",
    "FaultInjector",
    "GoldenCheckpoint",
    "GoldenRun",
    "GoldenTimeline",
    "HeavyIonBeam",
    "ResultStore",
    "SeuTarget",
    "StrikeBatch",
    "WarmStart",
    "WeibullCrossSection",
    "WeibullFit",
    "checkpoint_schedule",
    "config_key",
    "derive_seed",
    "expand_runs",
    "first_strike_instructions",
    "fit_weibull",
    "measure_curve",
    "plan_batches",
    "prepare_warm_start",
    "render_curve",
    "run_campaign",
    "sweep",
    "warm_start_key",
]
