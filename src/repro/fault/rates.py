"""On-orbit SEU rate prediction (the Koga/Petersen method, paper ref [5]).

The campaigns measure the device's cross-section curve sigma(LET); mission
engineering needs the *upset rate* in a given orbit, which is the integral
of sigma(LET) against the orbit's differential LET flux spectrum:

    rate = integral  sigma(LET) * d(flux)/d(LET)  dLET

This module provides synthetic (CREME96-shaped) integral LET spectra for
representative environments, the folding integral, and a mission-level
summary: upsets/day per storage type, expected corrected-error rate for
LEON-FT, and the corresponding failure rate of an unprotected device --
the quantified version of the paper's motivation for on-chip FT.

The spectra are modelled as piecewise power laws in the integral form
F(>LET) [particles / cm2 / day]; this is a standard approximation of the
galactic-cosmic-ray iron knee and is documented as a substitution in
DESIGN.md (no proprietary CREME data is shipped).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.config import LeonConfig
from repro.core.system import LeonSystem
from repro.errors import ConfigurationError
from repro.fault.beam import HeavyIonBeam
from repro.fault.injector import FaultInjector


@dataclass(frozen=True)
class LetSpectrum:
    """An integral LET spectrum: F(>LET) in particles/cm2/day.

    ``knee`` is the LET where the spectrum steepens (the iron knee,
    ~27 MeV.cm2/mg for GCR); ``flux_at_1`` anchors the absolute level.
    """

    name: str
    flux_at_1: float  # integral flux above LET = 1, particles/cm2/day
    index_low: float  # power-law index below the knee
    index_high: float  # power-law index above the knee
    knee: float = 27.0
    cutoff: float = 110.0  # no particles above this effective LET

    def integral_flux(self, let: float) -> float:
        """F(>LET), particles / cm2 / day."""
        if let <= 0:
            raise ConfigurationError("LET must be positive")
        if let >= self.cutoff:
            return 0.0
        if let <= self.knee:
            return self.flux_at_1 * let ** (-self.index_low)
        at_knee = self.flux_at_1 * self.knee ** (-self.index_low)
        return at_knee * (let / self.knee) ** (-self.index_high)


#: Representative synthetic environments (solar-minimum GCR behind 100 mil
#: Al; levels calibrated so this device's predicted rates land in the
#: published range for SEU-soft 0.35 um parts: a few tenths of an upset
#: per device-day in GEO, an order of magnitude less in equatorial LEO).
ENVIRONMENTS: Dict[str, LetSpectrum] = {
    # Geostationary: full GCR exposure.
    "GEO": LetSpectrum("GEO", flux_at_1=2.0e4, index_low=2.2, index_high=5.5),
    # Polar LEO: partial geomagnetic shielding.
    "LEO-polar": LetSpectrum("LEO-polar", flux_at_1=6.0e3,
                             index_low=2.3, index_high=5.6),
    # Equatorial LEO (ISS-like): strong shielding.
    "LEO-equatorial": LetSpectrum("LEO-equatorial", flux_at_1=7.0e2,
                                  index_low=2.5, index_high=6.0),
}


def fold_rate(sigma: Callable[[float], float], spectrum: LetSpectrum,
              *, let_min: float = 1.0, let_max: float = 110.0,
              steps: int = 400) -> float:
    """Fold a cross-section curve with a spectrum: upsets per day.

    Integrates sigma(LET) * (-dF/dLET) dLET with log-spaced trapezoids;
    the differential flux is taken numerically from the integral spectrum.
    """
    if steps < 2:
        raise ConfigurationError("need at least 2 integration steps")
    log_min, log_max = math.log(let_min), math.log(let_max)
    total = 0.0
    previous_let = math.exp(log_min)
    previous_flux = spectrum.integral_flux(previous_let)
    for step in range(1, steps + 1):
        let = math.exp(log_min + (log_max - log_min) * step / steps)
        flux = spectrum.integral_flux(let)
        fluence_bin = previous_flux - flux  # particles/cm2/day in this bin
        midpoint = math.sqrt(previous_let * let)
        total += sigma(midpoint) * max(fluence_bin, 0.0)
        previous_let, previous_flux = let, flux
    return total


@dataclass
class MissionRates:
    """Per-day upset bookkeeping for one device in one environment."""

    environment: str
    upsets_per_day: float
    by_target: Dict[str, float]

    def corrected_per_day(self, detection_fraction: float = 0.9) -> float:
        """Expected *counted* corrections (LEON-FT: detected on access)."""
        return self.upsets_per_day * detection_fraction

    @property
    def seconds_between_upsets(self) -> float:
        if self.upsets_per_day == 0:
            return math.inf
        return 86_400.0 / self.upsets_per_day


class RatePredictor:
    """Folds the device's physical sigma(LET) curves with an environment."""

    def __init__(self, leon: Optional[LeonConfig] = None) -> None:
        system = LeonSystem(leon or LeonConfig.leon_express())
        self.injector = FaultInjector(system)
        self.beam = HeavyIonBeam(self.injector)

    def predict(self, environment: str) -> MissionRates:
        try:
            spectrum = ENVIRONMENTS[environment]
        except KeyError:
            known = ", ".join(sorted(ENVIRONMENTS))
            raise ConfigurationError(
                f"unknown environment {environment!r} (known: {known})"
            ) from None
        by_target: Dict[str, float] = {}
        for name in self.injector.targets:
            rate = fold_rate(
                lambda let, name=name: self.beam.target_cross_section(name, let),
                spectrum,
            )
            by_target[name] = rate
        return MissionRates(environment, sum(by_target.values()), by_target)

    def predict_all(self) -> List[MissionRates]:
        return [self.predict(name) for name in ENVIRONMENTS]

    def unprotected_failure_interval_days(self, environment: str) -> float:
        """Mean days to failure of a device with *no* FT: any RAM upset in
        live state corrupts execution (the ERC32 lesson of section 4.1,
        'error-detection is not enough to maintain correct operation')."""
        rates = self.predict(environment)
        if rates.upsets_per_day == 0:
            return math.inf
        return 1.0 / rates.upsets_per_day
