"""Fast fault grading: golden digest timelines and strike batching.

Lopez-Ongil et al. ("Techniques for Fast Transient Fault Grading Based on
Autonomous Emulation", PAPERS.md) observe that almost every injected fault
is boring: the faulted run either reconverges to the golden (strike-free)
run shortly after its last upset is corrected or overwritten, or diverges
for good.  Executing every run to program end therefore spends nearly all
campaign wall-clock on tails whose outcome is already decided.

This module holds the data model of the grading layer:

* :class:`GoldenTimeline` -- periodic architectural-digest checkpoints of
  the golden run, computed once per campaign configuration by
  :func:`repro.fault.campaign.prepare_warm_start` and shipped to every
  run inside the :class:`~repro.fault.campaign.WarmStart`.  A faulted run
  that reaches a checkpoint boundary with a matching digest has provably
  reconverged: its remaining execution -- every instruction, counter
  freeze, and result-area write -- is the golden run's, so it terminates
  there and reports the golden end-of-run readouts, byte-identical to
  full execution.
* golden *snapshots* at in-window boundaries, the restore targets of
  batched strike scheduling
  (:func:`repro.fault.executor.plan_batches`): runs whose first upset
  lands after boundary B restore the golden state at B instead of
  re-executing the strike-free stretch from the warm-start snapshot.
* :class:`DivergenceFix` / :func:`divergence_exit` -- the permanent-
  divergence early exit.  A faulted run whose architectural digest (and
  cache-flush phase) is *identical at two consecutive boundaries* is in
  a fixed point: execution from the earlier boundary is periodic with
  period equal to the boundary spacing, so the run's end state is
  computed exactly by advancing ``(end - boundary) % period``
  instructions and adding ``(end - boundary) // period`` times the
  per-period cycle/counter deltas (``exit_reason="diverged"``).  Latent
  runs -- strikes parked in state the program never reads again -- stop
  costing their whole tail.

Digests are architectural (:meth:`repro.state.snapshot.Snapshot.digest`):
diag/counter state is excluded, because the error monitor remembers that
a strike happened long after the architectural state has reconverged --
and grading must classify exactly those runs early.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Checkpoints per golden timeline (the schedule may emit fewer when the
#: window is too short for the spacing floor).
DEFAULT_CHECKPOINTS = 16

#: Floor on checkpoint spacing, in instructions.  An architectural digest
#: costs roughly a thousand simulated instructions of host time, so denser
#: boundaries would cost diverged runs more than the skipped tail saves.
MIN_CHECKPOINT_INTERVAL = 2_000


@dataclass(frozen=True)
class GoldenRun:
    """End-state of the strike-free run, for effaced classification.

    ``window_digest`` is the architectural digest at the beam-window close;
    the readouts are what the host would log at the end of the full run.
    """

    window_digest: str
    sw_errors: int
    error_traps: int
    iterations: int
    halted: bool
    executed: int
    #: Device cycles the strike-free tail costs from the window close --
    #: a pure function of the (matching) architectural state, so effaced
    #: runs can report exact end-of-run cycle counts without executing it.
    tail_cycles: int = 0
    #: Golden end-of-run error-monitor counters
    #: (:meth:`~repro.core.system.LeonSystem` ``errors.as_dict()``).  A
    #: statically-masked run reports these verbatim: a provably-dead strike
    #: never reaches an operand check, so the monitor counts exactly what
    #: the strike-free run counts.  None in pre-static warm starts.
    counts: Optional[Dict[str, int]] = None


@dataclass(frozen=True)
class GoldenCheckpoint:
    """One golden boundary: where it is, what the state hashes to, and
    what reaching it cost the golden run."""

    #: Absolute executed-instruction count of the boundary.
    instruction: int
    #: Architectural digest of the golden state at the boundary.
    digest: str
    #: Golden device cycles consumed up to the boundary.
    cycles: int
    #: Periodic-flush phase at the boundary (``state["since_flush"]``).
    since_flush: int
    #: Golden state bytes, kept only for in-window boundaries -- the
    #: restore targets of batched strike scheduling.  Tail boundaries are
    #: compare-only (no run ever starts there) and carry None.
    snapshot: Optional[bytes] = None


@dataclass(frozen=True)
class GoldenTimeline:
    """The golden run, reduced to periodic digests plus its end readouts."""

    #: Instruction count at which the beam window closes.
    window_close: int
    #: Instruction count at which the golden run ended (window close plus
    #: tail, or earlier if the golden run parked in the tail).
    end: int
    #: Golden device cycles at ``end``.
    end_cycles: int
    #: Digest boundaries, ascending; always includes the window close.
    checkpoints: Tuple[GoldenCheckpoint, ...]
    #: Golden end-of-run readouts, reported verbatim by reconverged runs.
    final: GoldenRun

    def anchors(self) -> Tuple[GoldenCheckpoint, ...]:
        """The checkpoints carrying restore snapshots (batch anchors)."""
        return tuple(cp for cp in self.checkpoints if cp.snapshot is not None)

    def tail_cycles_from(self, checkpoint: GoldenCheckpoint) -> int:
        """Device cycles the golden run spends from *checkpoint* to end."""
        return self.end_cycles - checkpoint.cycles


@dataclass(frozen=True)
class DivergenceFix:
    """A permanently-diverged run caught at a fixed point.

    Two consecutive golden boundaries where the *faulted* digest (and
    periodic-flush phase) repeated while mismatching the golden digest:
    the machine is deterministic, so its execution from the second
    boundary on is periodic with period ``period`` -- it will never
    reconverge, and every future state is one the detector has already
    seen.  The remaining tail can therefore be extrapolated instead of
    executed (:func:`divergence_exit`), byte-identical to the full
    oracle.
    """

    #: Executed-instruction count of the second (confirming) boundary.
    boundary: int
    #: Instructions per fixed-point period (the boundary gap).
    period: int
    #: Device cycles one period costs.
    cycles_per_period: int
    #: Error-counter increments one period accrues (corrections repeat
    #: with the state, so the monitor keeps counting while parked).
    counts_per_period: Dict[str, int] = field(default_factory=dict)


def divergence_exit(fix: DivergenceFix, end: int) -> Tuple[int, int]:
    """``(periods_skipped, advance)`` landing a fixed-point run on *end*.

    State at ``boundary + advance`` equals state at *end* because full
    periods are architectural no-ops; the skipped periods' cycle and
    counter costs are added back arithmetically
    (``periods_skipped * fix.cycles_per_period`` / ``counts_per_period``).
    """
    remaining = end - fix.boundary
    if remaining <= 0 or fix.period <= 0:
        return 0, max(remaining, 0)
    periods, advance = divmod(remaining, fix.period)
    return periods, advance


def checkpoint_schedule(prefix: int, window: int, tail: int, *,
                        count: int = DEFAULT_CHECKPOINTS,
                        min_interval: int = MIN_CHECKPOINT_INTERVAL,
                        ) -> Tuple[int, ...]:
    """Absolute instruction boundaries of a golden timeline, ascending.

    A pure function of the campaign phase shape -- and therefore identical
    across ``--jobs``, warm/cold start, and resume: evenly spaced
    boundaries over ``(prefix, end]``, at most *count* of them and never
    closer than *min_interval*, always including the window close and the
    run end.
    """
    window_close = prefix + window
    end = window_close + tail
    span = end - prefix
    if span <= 0:
        return ()
    interval = max(span // max(count, 1), min_interval, 1)
    bounds = set(range(prefix + interval, end + 1, interval))
    bounds.add(window_close)
    bounds.add(end)
    ordered = sorted(bounds)
    return tuple(b for b in ordered if prefix < b <= end)


def first_strike_instructions(configs: Sequence) -> List[Optional[int]]:
    """First-upset instruction per config (None when the run is strike-free).

    Uses the campaign's exact arrival arithmetic, so the returned value is
    the target of the run's first advance.  Strike schedules are a pure
    function of the beam parameters; one throwaway system supplies the
    target geometry (the configs of a batch share a warm start, hence a
    device configuration).
    """
    from repro.core.config import LeonConfig
    from repro.core.system import LeonSystem
    from repro.fault.beam import HeavyIonBeam
    from repro.fault.injector import FaultInjector

    if not configs:
        return []
    leon = configs[0].leon or LeonConfig.leon_express()
    beam = HeavyIonBeam(FaultInjector(LeonSystem(leon)))
    firsts: List[Optional[int]] = []
    for config in configs:
        prefix, window, _tail = config.phase_instructions()
        beam.begin(config.beam_parameters())
        strike = beam.next_strike()
        if strike is None:
            firsts.append(None)
        else:
            firsts.append(prefix + min(
                int(strike.time_s * config.instructions_per_second), window))
    return firsts
