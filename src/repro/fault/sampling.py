"""Importance-sampled transient upsets: the ``seu-live`` fault model.

A cross-section campaign at near-threshold LET wastes most of its strikes:
the static analyzer (:mod:`repro.analysis.program`) proves a large
fraction of the register file dead for the paper programs, and a strike
in a dead word contributes exactly zero to every error counter.  The
``seu-live`` model redirects that wasted beam: it keeps the *physical*
Poisson arrival process of the ``seu`` beam (rate ``flux * sigma_device``)
but lands every strike on a **live** site, drawn with the same per-bit
sigma weighting restricted to the live population.

Every live site is thereby oversampled by a uniform factor ``1 / rho``
with ``rho = sigma_live / sigma_device``, so the Horvitz-Thompson
reweighting of the measured counts::

    sigma_hat = rho * count / fluence / bits

is an unbiased estimator of the full-beam cross-section in the
single-strike regime (each error event traces to one strike, so event
counts scale linearly with per-site strike intensity).  Runs whose
outcome is shaped by *interactions* between multiple strikes -- the
multiple-error build-up experiment E6 -- are not linear in the strike
intensity and must use the plain ``seu`` model.

The live set carries the same soundness argument as static grading: it is
the ACE map :func:`repro.fault.campaign.prepare_warm_start` computes,
golden-trap-free witness included, cached per warm-start key so a whole
LET sweep (and every seed) pays for one golden run.  When the map is
unavailable (the golden run trapped or failed) the model degrades to the
full site population -- ``rho == 1`` and the draws still differ from
``seu`` only in their RNG stream.

Lint rule FT701 applies: the model consumes the ACE map and is transient
by construction (``transient = True`` in the class body) -- a persistent
fault re-asserts into its "dead" word for the rest of the run, so
live-site restriction would bias persistent campaigns.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.fault.beam import HeavyIonBeam
from repro.fault.injector import FaultInjector
from repro.fault.models import (
    _CELL_ARRAYS,
    FaultModel,
    PlannedFault,
    register_model,
)

#: ACE maps per warm-start key: one golden run serves every LET point and
#: seed of a sweep (and every worker process caches its own copy).
_ACE_CACHE: Dict[tuple, object] = {}


def clear_ace_cache() -> None:
    """Drop cached ACE maps (tests that mutate program builders)."""
    _ACE_CACHE.clear()


@register_model
class LiveSiteUpset(FaultModel):
    """Transient bit flips restricted to statically-live sites.

    Identical physics to ``seu`` -- Poisson arrivals at the device rate,
    sigma-weighted site choice, LET-dependent MBU companions in the dense
    cache blocks -- except the site population excludes register-file
    words the ACE map proves dead (and the whole FP file when it is
    unreferenced).  Counts measured under this model estimate the
    full-beam cross-section after multiplying by :meth:`rho`.
    """

    kind = "seu-live"
    #: One-shot corruption, like ``seu``; also the FT701 contract -- the
    #: ACE map consulted below is only sound for transient faults.
    transient = True
    TARGETS = _CELL_ARRAYS
    #: The space deliberately narrows to statically-live sites -- a dead
    #: FP file drops out entirely -- so the every-declared-target audit
    #: does not apply (counts are reweighted by ``rho`` instead).
    EXHAUSTIVE = False

    def _ace(self):
        """The config's ACE map (None when no sound map is available).

        Computed exactly as the campaign's warm start computes it -- full
        golden run, trap-free witness -- so live-site claims here are the
        same claims static grading acts on.  Cached per warm-start key.
        """
        from repro.fault.campaign import prepare_warm_start, warm_start_key

        key = warm_start_key(self.config)
        if key not in _ACE_CACHE:
            _ACE_CACHE[key] = prepare_warm_start(self.config).ace
        return _ACE_CACHE[key]

    def _live_geometry(self, injector: FaultInjector,
                       ) -> Tuple[Dict[str, int], Optional[List[int]]]:
        """(live bits per target, live regfile physical words).

        The live regfile word list is None when the ACE map is
        unavailable (every word counts as live).
        """
        ace = self._ace()
        live_bits: Dict[str, int] = {}
        live_words: Optional[List[int]] = None
        for name, target in injector.targets.items():
            if ace is None:
                live_bits[name] = target.bits
            elif name == "regfile":
                regfile = injector.system.regfile
                live_words = [
                    word for word in range(regfile.words)
                    if ace.classify(name, word) is None
                ]
                copies = target.bits // (regfile.words * regfile.bits_per_word)
                live_bits[name] = (len(live_words) * regfile.bits_per_word
                                   * copies)
            elif name == "fpregs" and ace.fpregs_dead:
                live_bits[name] = 0
            else:
                live_bits[name] = target.bits
        return live_bits, live_words

    def rho(self, injector: FaultInjector) -> float:
        """``sigma_live / sigma_device`` at the config's LET.

        The Horvitz-Thompson weight: counts measured under this model,
        multiplied by ``rho``, estimate the full-beam counts.
        """
        beam = HeavyIonBeam(injector)
        let = self.config.let
        live_bits, _words = self._live_geometry(injector)
        device = live = 0.0
        for name, target in injector.targets.items():
            sigma_bit = beam.bit_cross_section(name).at(let)
            device += target.bits * sigma_bit
            live += live_bits[name] * sigma_bit
        return live / device if device > 0.0 else 1.0

    def fault_space(self, injector: FaultInjector) -> Dict[str, int]:
        live_bits, _words = self._live_geometry(injector)
        return {name: bits for name, bits in live_bits.items() if bits}

    def schedule(self, injector: FaultInjector) -> List[PlannedFault]:
        config = self.config
        params = config.beam_parameters()
        beam = HeavyIonBeam(injector)
        live_bits, live_words = self._live_geometry(injector)
        names = list(injector.targets)
        # Arrivals keep the *physical* device rate; only the landing site
        # distribution is restricted.
        rate = params.flux * beam.device_cross_section(params.let)
        weights = [
            live_bits[name] * beam.bit_cross_section(name).at(params.let)
            for name in names
        ]
        if rate <= 0.0 or not any(weights):
            return []
        mbu_p = beam.mbu_fraction(params.let)
        duration = params.duration_s
        rng = random.Random(params.seed)
        faults: List[PlannedFault] = []
        elapsed = 0.0
        while True:
            elapsed += rng.expovariate(rate)
            if elapsed >= duration:
                break
            name = rng.choices(names, weights=weights, k=1)[0]
            flat_bit = self._draw_flat(rng, injector, name, live_words)
            mbu = (name in HeavyIonBeam.MBU_ELIGIBLE
                   and rng.random() < mbu_p)
            faults.append(PlannedFault(time_s=elapsed, target=name,
                                       flat_bit=flat_bit, mbu=mbu,
                                       kind=self.kind))
        return faults

    def _draw_flat(self, rng: random.Random, injector: FaultInjector,
                   name: str, live_words: Optional[List[int]]) -> int:
        """Uniform flat bit over the target's live population."""
        target = injector.targets[name]
        if name != "regfile" or live_words is None:
            return rng.randrange(target.bits)
        regfile = injector.system.regfile
        bits_per_word = regfile.bits_per_word
        per_copy = regfile.words * bits_per_word
        copies = target.bits // per_copy
        draw = rng.randrange(len(live_words) * bits_per_word * copies)
        copy, rest = divmod(draw, len(live_words) * bits_per_word)
        index, bit = divmod(rest, bits_per_word)
        return copy * per_copy + live_words[index] * bits_per_word + bit

    def apply(self, fault: PlannedFault, injector: FaultInjector) -> None:
        # Same landing mechanics as the beam: the strike plus, when drawn,
        # its adjacent-cell MBU companion (cache rows are fully live, so
        # the companion never leaks onto a claimed-dead site).
        injector.inject(fault.target, fault.flat_bit)
        if fault.mbu and injector.targets[fault.target].bits_per_word:
            injector.inject_adjacent(fault.target, fault.flat_bit)


def live_fraction(config) -> float:
    """``rho`` for one campaign config (throwaway same-geometry system)."""
    from repro.core.config import LeonConfig
    from repro.core.system import LeonSystem

    leon = config.leon or LeonConfig.leon_express()
    injector = FaultInjector(LeonSystem(leon))
    return LiveSiteUpset(config).rho(injector)
