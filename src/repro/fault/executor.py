"""Parallel campaign execution: fan independent runs across worker processes.

A beam campaign is embarrassingly parallel -- every run (one seed at one LET
for one program) owns its whole simulated device and never talks to another
run.  ``CampaignExecutor`` exploits that: it ships :class:`CampaignConfig`
records to a :class:`~concurrent.futures.ProcessPoolExecutor` in chunks and
reassembles the results in submission order.

Determinism
-----------
Every config embeds its own seed, so a run's outcome is a pure function of
its config -- it cannot depend on which worker executed it, on scheduling
order, or on how many jobs ran.  ``run_many`` therefore returns results
bit-for-bit identical to a serial loop over the same configs, and ``jobs=1``
*is* that serial loop (no process pool is created at all).

Batched strike scheduling
-------------------------
Warm campaigns carrying a golden timeline are additionally grouped by
:func:`plan_batches`: a run executes the golden trajectory until its first
upset, so every run whose first strike lands after golden checkpoint B can
restore B's snapshot instead of replaying the strike-free stretch from the
warm-start snapshot.  The groups only relocate where each run's
deterministic replay begins -- results, their order, and the ``on_results``
stream are byte-identical to the unbatched execution.

Fault tolerance (of the host, not the device)
---------------------------------------------
A chunk whose worker crashes, raises, or exceeds ``timeout_s`` is retried
serially in the parent process -- the retry is deterministic because the
config is.  Runs that still fail after ``retries`` extra attempts are
reported together in a :class:`CampaignExecutionError`.
"""

from __future__ import annotations

import inspect
import itertools
import math
import multiprocessing
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fault.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    WarmStart,
)
from repro.fault.grading import GoldenCheckpoint, first_strike_instructions

_MASK64 = (1 << 64) - 1


def derive_seed(base: int, index: int) -> int:
    """Derive the seed for replica ``index`` of a campaign seeded ``base``.

    A splitmix64 mix of (base, index): well-spread, collision-free in
    practice, and -- critically -- *stable*.  Recorded experiment results
    depend on this mapping; never change the constants.
    """
    z = (base ^ (index * 0x9E3779B97F4A7C15)) & _MASK64
    z = (z + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def expand_runs(config: CampaignConfig, runs: int) -> List[CampaignConfig]:
    """``runs`` statistically-independent replicas of one campaign.

    Replica 0 keeps the original seed (so ``runs=1`` is exactly the legacy
    single run); replicas 1.. get :func:`derive_seed` seeds.
    """
    if runs <= 1:
        return [config]
    return [config] + [replace(config, seed=derive_seed(config.seed, index))
                       for index in range(1, runs)]


def run_campaign(config: CampaignConfig,
                 warm: Optional[WarmStart] = None,
                 start: Optional[GoldenCheckpoint] = None) -> CampaignResult:
    """The default runner: build and run one campaign (picklable)."""
    return Campaign(config).run(warm=warm, start=start)


def run_campaign_traced(config: CampaignConfig,
                        warm: Optional[WarmStart] = None,
                        start: Optional[GoldenCheckpoint] = None,
                        ) -> CampaignResult:
    """Traced runner: like :func:`run_campaign`, but with telemetry on.

    The run's events buffer in a :class:`~repro.telemetry.MemorySink` and
    ride back to the parent on ``result.trace`` (events are plain dicts,
    so the result stays picklable); the parent's trace sink tags them
    with the run index and persists them in config order, making trace
    files jobs-invariant.  The measurement fields are byte-identical to
    an untraced run -- telemetry only observes.
    """
    from repro.telemetry import MemorySink, Telemetry

    sink = MemorySink()
    result = Campaign(config, telemetry=Telemetry(sink)).run(warm=warm,
                                                             start=start)
    result.trace = sink.events
    return result


#: Warm starts shared with worker processes by inheritance.  The parent
#: registers the :class:`WarmStart` under a token before creating the
#: pool; ``fork`` children inherit the registry as-is (the snapshot bytes
#: are never pickled, and the OS shares the pages copy-on-write), while
#: ``spawn`` children get it installed once per *worker* via the pool
#: initializer -- one pickle per worker instead of one per submitted
#: chunk.
_SHARED_WARM: Dict[int, WarmStart] = {}
_WARM_TOKENS = itertools.count(1)


def _install_shared_warm(token: int, warm: WarmStart) -> None:
    """Pool initializer (``spawn`` fallback): register the shared warm
    start in this worker's copy of the registry."""
    _SHARED_WARM[token] = warm


def _resolve_warm(ref) -> Optional[WarmStart]:
    """A warm reference is None, a WarmStart, or a shared-registry token."""
    if ref is None or isinstance(ref, WarmStart):
        return ref
    return _SHARED_WARM[ref]


def _resolve_start(ref, warm: Optional[WarmStart]
                   ) -> Optional[GoldenCheckpoint]:
    """A start reference is None, a checkpoint, or ``("anchor", index)``
    into the shared warm start's golden timeline (so batched starts ride
    the shared object instead of re-pickling their snapshots)."""
    if isinstance(ref, tuple) and len(ref) == 2 and ref[0] == "anchor":
        return warm.timeline.anchors()[ref[1]]
    return ref


def _call_runner(runner: Callable[..., CampaignResult],
                 config: CampaignConfig,
                 warm: Optional[WarmStart],
                 start: Optional[GoldenCheckpoint] = None) -> CampaignResult:
    """Invoke a runner, passing ``warm``/``start`` only when in play.

    Keeps single-argument custom runners (tests, alternative measurement
    loops) working unchanged for cold campaigns, and two-argument warm
    runners working for unbatched ones.
    """
    if start is not None:
        return runner(config, warm, start)
    if warm is None:
        return runner(config)
    return runner(config, warm)


def _run_chunk(runner: Callable[..., CampaignResult],
               configs: Sequence[CampaignConfig],
               warm=None,
               start=None,
               ) -> List[CampaignResult]:
    """Worker entry point: run one chunk of configs back to back.

    ``warm``/``start`` accept the reference forms of :func:`_resolve_warm`
    and :func:`_resolve_start`, so a shared warm start crosses the process
    boundary once (fork inheritance or the spawn initializer), not once
    per chunk.
    """
    warm = _resolve_warm(warm)
    start = _resolve_start(start, warm)
    return [_call_runner(runner, config, warm, start) for config in configs]


@dataclass(frozen=True)
class StrikeBatch:
    """One shared-checkpoint group of a batched campaign.

    ``start`` is the golden checkpoint every member restores from (None:
    run from the warm snapshot as usual); ``indices`` are the members'
    positions in the submitted config list, ascending.
    """

    start: Optional[GoldenCheckpoint]
    indices: Tuple[int, ...]


def plan_batches(configs: Sequence[CampaignConfig],
                 warm: Optional[WarmStart],
                 ) -> Optional[List[StrikeBatch]]:
    """Group runs by the latest golden checkpoint before their first upset.

    Every run's execution up to its first strike is the golden run's, so
    a group sharing an anchor checkpoint restores the golden state there
    instead of replaying the strike-free stretch per run -- the batched
    analogue of the warm-start prefix sharing.  Strike-free runs anchor
    at the last in-window checkpoint (grading classifies them on the
    spot).  Returns None when there is nothing to batch: no timeline, no
    anchors, or no run whose first upset lies past the first anchor.
    """
    if warm is None or warm.timeline is None:
        return None
    # Anchored starts assume the pre-strike stretch is the golden run's
    # and the schedule is the beam's: both only hold for the default
    # transient model (attacks fire at the window open; persistent models
    # re-assert), so model campaigns run unbatched -- same results,
    # jobs-invariant, just without the shared-checkpoint shortcut.
    if any(config.fault_model != "seu" for config in configs):
        return None
    anchors = warm.timeline.anchors()
    if not anchors:
        return None
    groups: Dict[int, List[int]] = {}
    for index, first in enumerate(first_strike_instructions(configs)):
        at = -1
        for position, anchor in enumerate(anchors):
            if first is not None and anchor.instruction > first:
                break
            at = position
        groups.setdefault(at, []).append(index)
    if set(groups) == {-1}:
        return None
    return [StrikeBatch(anchors[at] if at >= 0 else None, tuple(members))
            for at, members in sorted(groups.items())]


def _format_error(exc: BaseException) -> str:
    """The full traceback text of a failure, not just ``type: message`` --
    a campaign that dies overnight should leave enough to debug."""
    return "".join(traceback.format_exception(
        type(exc), exc, exc.__traceback__)).rstrip()


@dataclass(frozen=True)
class ExecutorFailure:
    """One run that failed even after its serial retries.

    ``error`` holds the full traceback text of the last attempt (workers
    ship tracebacks back to the parent through the pool's exception
    plumbing, so parallel failures carry them too)."""

    config: CampaignConfig
    error: str

    @property
    def error_summary(self) -> str:
        """The last (``Type: message``) line of the traceback."""
        lines = [line for line in self.error.splitlines() if line.strip()]
        return lines[-1].strip() if lines else self.error


class CampaignExecutionError(RuntimeError):
    """Raised when runs remain failed after all retries.

    Successful results are not lost: :attr:`results` holds one entry per
    submitted config in config order -- the completed
    :class:`~repro.fault.campaign.CampaignResult` or None for the runs
    listed in :attr:`failures`.
    """

    def __init__(self, failures: Sequence[ExecutorFailure],
                 results: Optional[Sequence[Optional[CampaignResult]]] = None,
                 ) -> None:
        self.failures = list(failures)
        self.results: List[Optional[CampaignResult]] = \
            list(results) if results is not None else []
        summary = "; ".join(
            f"{f.config.program}@LET{f.config.let:g}/seed{f.config.seed}: "
            f"{f.error_summary}"
            for f in self.failures[:3])
        if len(self.failures) > 3:
            summary += f"; ... ({len(self.failures)} total)"
        super().__init__(f"{len(self.failures)} campaign run(s) failed: {summary}")

    @property
    def completed(self) -> List[CampaignResult]:
        """The successful results only (order preserved)."""
        return [result for result in self.results if result is not None]


class CampaignExecutor:
    """Runs many campaign configs, optionally across worker processes.

    Parameters
    ----------
    jobs:
        Worker process count.  ``jobs <= 1`` runs everything serially in
        this process -- the executor then adds no overhead and no
        multiprocessing machinery at all.
    chunksize:
        Configs per work unit.  Default: enough chunks for ~4 rounds per
        worker, which balances load without drowning in IPC.
    timeout_s:
        Per-chunk wall-clock budget when waiting on a worker.  A chunk
        that exceeds it is abandoned and retried serially in the parent.
        ``None`` waits forever.  (Serial mode has no timeouts: there is
        no second process to watch the clock.)
    retries:
        Extra serial attempts per run after its first failure.
    runner:
        The per-config run function, ``config -> CampaignResult``.  Must
        be picklable (a module-level function) when ``jobs > 1``.
        Injectable for tests and for alternative measurement loops.
        Warm-start campaigns call it as ``runner(config, warm)``; batched
        warm campaigns as ``runner(config, warm, start)`` -- runners
        accepting fewer than three positional arguments are never
        batched.
    mp_context:
        Multiprocessing context; default prefers ``fork`` (cheap worker
        start, no re-import) falling back to the platform default.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        chunksize: Optional[int] = None,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        runner: Callable[[CampaignConfig], CampaignResult] = run_campaign,
        mp_context: Optional[multiprocessing.context.BaseContext] = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.chunksize = chunksize
        self.timeout_s = timeout_s
        self.retries = max(0, int(retries))
        self.runner = runner
        self.mp_context = mp_context

    # -- public API ---------------------------------------------------------------

    def run_many(
        self,
        configs: Sequence[CampaignConfig],
        *,
        warm: Optional[WarmStart] = None,
        batch: bool = True,
        on_results: Optional[Callable[[List[CampaignResult]], None]] = None,
    ) -> List[CampaignResult]:
        """Run every config; results come back in config order.

        ``warm`` is a shared :class:`~repro.fault.campaign.WarmStart` passed
        to every run (the runner receives it as a second argument).  With
        ``batch`` (the default), warm campaigns with a golden timeline are
        grouped by :func:`plan_batches` so runs sharing a strike-window
        start restore one shared golden checkpoint (the runner receives it
        as a third argument); ``batch=False`` is the ``--no-early-exit``
        escape hatch.  Batching never changes results or their order --
        it only relocates where each run's deterministic replay begins.
        ``on_results`` is called with each batch of completed results *in
        config order* as the executor collects them -- the hook crash-safe
        result stores append through.  Raises
        :class:`CampaignExecutionError` if any run is still failing after
        retries.
        """
        configs = list(configs)
        if not configs:
            return []
        batches = None
        if batch and warm is not None and self._runner_accepts_start():
            batches = plan_batches(configs, warm)
        if batches is None:
            batches = [StrikeBatch(None, tuple(range(len(configs))))]
        return self._run_batches(configs, batches, warm=warm,
                                 on_results=on_results)

    # -- dispatch engine ----------------------------------------------------------

    def _runner_accepts_start(self) -> bool:
        """Whether the runner takes a (config, warm, start) third argument.

        Custom one- and two-argument runners keep working: they simply
        never see batched starts.
        """
        try:
            parameters = inspect.signature(self.runner).parameters.values()
        except (TypeError, ValueError):
            return False
        positional = [p for p in parameters
                      if p.kind in (p.POSITIONAL_ONLY,
                                    p.POSITIONAL_OR_KEYWORD)]
        return len(positional) >= 3 or any(
            p.kind == p.VAR_POSITIONAL for p in parameters)

    def _run_batches(
        self,
        configs: List[CampaignConfig],
        batches: List[StrikeBatch],
        *,
        warm: Optional[WarmStart],
        on_results: Optional[Callable[[List[CampaignResult]], None]],
    ) -> List[CampaignResult]:
        """Run the batches' chunks, releasing results in config order.

        Batched chunks complete out of config order (a group is contiguous
        in *its own* indices, not globally), so completed results buffer
        until every earlier config has finished -- the ``on_results``
        stream and the returned list are identical to the unbatched run's.
        """
        results: List[Optional[CampaignResult]] = [None] * len(configs)
        filled = [False] * len(configs)
        failures: List[ExecutorFailure] = []
        cursor = 0

        def release() -> None:
            nonlocal cursor
            ready: List[CampaignResult] = []
            while cursor < len(configs) and filled[cursor]:
                if results[cursor] is not None:
                    ready.append(results[cursor])
                cursor += 1
            if ready and on_results is not None:
                on_results(ready)

        size = self._chunk_size(len(configs))
        chunks: List[Tuple[Tuple[int, ...], List[CampaignConfig],
                           Optional[GoldenCheckpoint]]] = []
        for group in batches:
            for offset in range(0, len(group.indices), size):
                indices = group.indices[offset:offset + size]
                chunks.append((indices, [configs[i] for i in indices],
                               group.start))

        if self.jobs <= 1 or len(configs) == 1:
            for indices, chunk_configs, start in chunks:
                for index, config in zip(indices, chunk_configs):
                    results[index] = self._attempt(
                        config, failures, attempts=1 + self.retries,
                        warm=warm, start=start)
                    filled[index] = True
                    release()
        else:
            workers = min(self.jobs, len(chunks))
            context = self._context()
            # Share the warm start with the pool by inheritance: register
            # it under a token before the workers exist.  Fork children
            # see the registry directly; spawn children get it from the
            # pool initializer, once per worker.
            warm_ref = token = None
            initializer = initargs = None
            anchor_pos: Dict[int, int] = {}
            if warm is not None:
                token = next(_WARM_TOKENS)
                _SHARED_WARM[token] = warm
                warm_ref = token
                if context.get_start_method() != "fork":
                    initializer = _install_shared_warm
                    initargs = (token, warm)
                if warm.timeline is not None:
                    anchor_pos = {id(anchor): position for position, anchor
                                  in enumerate(warm.timeline.anchors())}

            def start_ref(start):
                if start is not None and id(start) in anchor_pos:
                    return ("anchor", anchor_pos[id(start)])
                return start

            try:
                with ProcessPoolExecutor(max_workers=workers,
                                         mp_context=context,
                                         initializer=initializer,
                                         initargs=initargs or ()) as pool:
                    futures = [
                        (indices, chunk_configs, start,
                         pool.submit(_run_chunk, self.runner, chunk_configs,
                                     warm_ref, start_ref(start)))
                        for indices, chunk_configs, start in chunks]
                    for indices, chunk_configs, start, future in futures:
                        try:
                            chunk_results: List[Optional[CampaignResult]] = \
                                list(future.result(self.timeout_s))
                        except Exception as exc:
                            # Worker raised, died, or overran the budget; a
                            # broken pool also lands here for every remaining
                            # chunk.  The configs are self-contained, so
                            # retrying serially in the parent reproduces
                            # exactly what the worker would have computed.
                            future.cancel()
                            if self.retries:
                                chunk_results = [
                                    self._attempt(config, failures,
                                                  attempts=self.retries,
                                                  warm=warm, start=start)
                                    for config in chunk_configs]
                            else:
                                error = _format_error(exc)
                                failures.extend(
                                    ExecutorFailure(config=config, error=error)
                                    for config in chunk_configs)
                                chunk_results = [None] * len(chunk_configs)
                        for index, result in zip(indices, chunk_results):
                            results[index] = result
                            filled[index] = True
                        release()
            finally:
                if token is not None:
                    _SHARED_WARM.pop(token, None)
        if failures:
            raise CampaignExecutionError(failures, results)
        return results  # type: ignore[return-value]  # no failures -> no Nones

    def _attempt(self, config: CampaignConfig,
                 failures: List[ExecutorFailure],
                 *, attempts: int,
                 warm: Optional[WarmStart] = None,
                 start: Optional[GoldenCheckpoint] = None,
                 ) -> Optional[CampaignResult]:
        error = "no attempts made"
        for _ in range(max(1, attempts)):
            try:
                return _call_runner(self.runner, config, warm, start)
            except Exception as exc:
                error = _format_error(exc)
        failures.append(ExecutorFailure(config=config, error=error))
        return None

    def _context(self) -> multiprocessing.context.BaseContext:
        if self.mp_context is not None:
            return self.mp_context
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _chunk_size(self, total: int) -> int:
        if self.chunksize is not None:
            return max(1, self.chunksize)
        return max(1, math.ceil(total / (self.jobs * 4)))
