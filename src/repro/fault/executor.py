"""Parallel campaign execution: fan independent runs across worker processes.

A beam campaign is embarrassingly parallel -- every run (one seed at one LET
for one program) owns its whole simulated device and never talks to another
run.  ``CampaignExecutor`` exploits that: it ships :class:`CampaignConfig`
records to a :class:`~concurrent.futures.ProcessPoolExecutor` in chunks and
reassembles the results in submission order.

Determinism
-----------
Every config embeds its own seed, so a run's outcome is a pure function of
its config -- it cannot depend on which worker executed it, on scheduling
order, or on how many jobs ran.  ``run_many`` therefore returns results
bit-for-bit identical to a serial loop over the same configs, and ``jobs=1``
*is* that serial loop (no process pool is created at all).

Fault tolerance (of the host, not the device)
---------------------------------------------
A chunk whose worker crashes, raises, or exceeds ``timeout_s`` is retried
serially in the parent process -- the retry is deterministic because the
config is.  Runs that still fail after ``retries`` extra attempts are
reported together in a :class:`CampaignExecutionError`.
"""

from __future__ import annotations

import math
import multiprocessing
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence

from repro.fault.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    WarmStart,
)

_MASK64 = (1 << 64) - 1


def derive_seed(base: int, index: int) -> int:
    """Derive the seed for replica ``index`` of a campaign seeded ``base``.

    A splitmix64 mix of (base, index): well-spread, collision-free in
    practice, and -- critically -- *stable*.  Recorded experiment results
    depend on this mapping; never change the constants.
    """
    z = (base ^ (index * 0x9E3779B97F4A7C15)) & _MASK64
    z = (z + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def expand_runs(config: CampaignConfig, runs: int) -> List[CampaignConfig]:
    """``runs`` statistically-independent replicas of one campaign.

    Replica 0 keeps the original seed (so ``runs=1`` is exactly the legacy
    single run); replicas 1.. get :func:`derive_seed` seeds.
    """
    if runs <= 1:
        return [config]
    return [config] + [replace(config, seed=derive_seed(config.seed, index))
                       for index in range(1, runs)]


def run_campaign(config: CampaignConfig,
                 warm: Optional[WarmStart] = None) -> CampaignResult:
    """The default runner: build and run one campaign (picklable)."""
    return Campaign(config).run(warm=warm)


def run_campaign_traced(config: CampaignConfig,
                        warm: Optional[WarmStart] = None) -> CampaignResult:
    """Traced runner: like :func:`run_campaign`, but with telemetry on.

    The run's events buffer in a :class:`~repro.telemetry.MemorySink` and
    ride back to the parent on ``result.trace`` (events are plain dicts,
    so the result stays picklable); the parent's trace sink tags them
    with the run index and persists them in config order, making trace
    files jobs-invariant.  The measurement fields are byte-identical to
    an untraced run -- telemetry only observes.
    """
    from repro.telemetry import MemorySink, Telemetry

    sink = MemorySink()
    result = Campaign(config, telemetry=Telemetry(sink)).run(warm=warm)
    result.trace = sink.events
    return result


def _call_runner(runner: Callable[..., CampaignResult],
                 config: CampaignConfig,
                 warm: Optional[WarmStart]) -> CampaignResult:
    """Invoke a runner, passing ``warm`` only when one is in play.

    Keeps single-argument custom runners (tests, alternative measurement
    loops) working unchanged for cold campaigns.
    """
    if warm is None:
        return runner(config)
    return runner(config, warm)


def _run_chunk(runner: Callable[..., CampaignResult],
               configs: Sequence[CampaignConfig],
               warm: Optional[WarmStart] = None) -> List[CampaignResult]:
    """Worker entry point: run one chunk of configs back to back."""
    return [_call_runner(runner, config, warm) for config in configs]


def _format_error(exc: BaseException) -> str:
    """The full traceback text of a failure, not just ``type: message`` --
    a campaign that dies overnight should leave enough to debug."""
    return "".join(traceback.format_exception(
        type(exc), exc, exc.__traceback__)).rstrip()


@dataclass(frozen=True)
class ExecutorFailure:
    """One run that failed even after its serial retries.

    ``error`` holds the full traceback text of the last attempt (workers
    ship tracebacks back to the parent through the pool's exception
    plumbing, so parallel failures carry them too)."""

    config: CampaignConfig
    error: str

    @property
    def error_summary(self) -> str:
        """The last (``Type: message``) line of the traceback."""
        lines = [line for line in self.error.splitlines() if line.strip()]
        return lines[-1].strip() if lines else self.error


class CampaignExecutionError(RuntimeError):
    """Raised when runs remain failed after all retries.

    Successful results are not lost: :attr:`results` holds one entry per
    submitted config in config order -- the completed
    :class:`~repro.fault.campaign.CampaignResult` or None for the runs
    listed in :attr:`failures`.
    """

    def __init__(self, failures: Sequence[ExecutorFailure],
                 results: Optional[Sequence[Optional[CampaignResult]]] = None,
                 ) -> None:
        self.failures = list(failures)
        self.results: List[Optional[CampaignResult]] = \
            list(results) if results is not None else []
        summary = "; ".join(
            f"{f.config.program}@LET{f.config.let:g}/seed{f.config.seed}: "
            f"{f.error_summary}"
            for f in self.failures[:3])
        if len(self.failures) > 3:
            summary += f"; ... ({len(self.failures)} total)"
        super().__init__(f"{len(self.failures)} campaign run(s) failed: {summary}")

    @property
    def completed(self) -> List[CampaignResult]:
        """The successful results only (order preserved)."""
        return [result for result in self.results if result is not None]


class CampaignExecutor:
    """Runs many campaign configs, optionally across worker processes.

    Parameters
    ----------
    jobs:
        Worker process count.  ``jobs <= 1`` runs everything serially in
        this process -- the executor then adds no overhead and no
        multiprocessing machinery at all.
    chunksize:
        Configs per work unit.  Default: enough chunks for ~4 rounds per
        worker, which balances load without drowning in IPC.
    timeout_s:
        Per-chunk wall-clock budget when waiting on a worker.  A chunk
        that exceeds it is abandoned and retried serially in the parent.
        ``None`` waits forever.  (Serial mode has no timeouts: there is
        no second process to watch the clock.)
    retries:
        Extra serial attempts per run after its first failure.
    runner:
        The per-config run function, ``config -> CampaignResult``.  Must
        be picklable (a module-level function) when ``jobs > 1``.
        Injectable for tests and for alternative measurement loops.
        Warm-start campaigns call it as ``runner(config, warm)`` instead.
    mp_context:
        Multiprocessing context; default prefers ``fork`` (cheap worker
        start, no re-import) falling back to the platform default.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        chunksize: Optional[int] = None,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        runner: Callable[[CampaignConfig], CampaignResult] = run_campaign,
        mp_context: Optional[multiprocessing.context.BaseContext] = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.chunksize = chunksize
        self.timeout_s = timeout_s
        self.retries = max(0, int(retries))
        self.runner = runner
        self.mp_context = mp_context

    # -- public API ---------------------------------------------------------------

    def run_many(
        self,
        configs: Sequence[CampaignConfig],
        *,
        warm: Optional[WarmStart] = None,
        on_results: Optional[Callable[[List[CampaignResult]], None]] = None,
    ) -> List[CampaignResult]:
        """Run every config; results come back in config order.

        ``warm`` is a shared :class:`~repro.fault.campaign.WarmStart` passed
        to every run (the runner receives it as a second argument).
        ``on_results`` is called with each batch of completed results *in
        config order* as the executor collects them -- the hook crash-safe
        result stores append through.  Raises
        :class:`CampaignExecutionError` if any run is still failing after
        retries.
        """
        configs = list(configs)
        if not configs:
            return []
        if self.jobs <= 1 or len(configs) == 1:
            return self._run_serial(configs, warm=warm, on_results=on_results)
        return self._run_parallel(configs, warm=warm, on_results=on_results)

    # -- serial path --------------------------------------------------------------

    def _run_serial(
        self,
        configs: Sequence[CampaignConfig],
        *,
        warm: Optional[WarmStart] = None,
        on_results: Optional[Callable[[List[CampaignResult]], None]] = None,
    ) -> List[CampaignResult]:
        results: List[Optional[CampaignResult]] = []
        failures: List[ExecutorFailure] = []
        for config in configs:
            result = self._attempt(config, failures,
                                   attempts=1 + self.retries, warm=warm)
            results.append(result)
            if on_results is not None and result is not None:
                on_results([result])
        if failures:
            raise CampaignExecutionError(failures, results)
        return results  # type: ignore[return-value]  # no failures -> no Nones

    def _attempt(self, config: CampaignConfig,
                 failures: List[ExecutorFailure],
                 *, attempts: int,
                 warm: Optional[WarmStart] = None) -> Optional[CampaignResult]:
        error = "no attempts made"
        for _ in range(max(1, attempts)):
            try:
                return _call_runner(self.runner, config, warm)
            except Exception as exc:
                error = _format_error(exc)
        failures.append(ExecutorFailure(config=config, error=error))
        return None

    # -- parallel path ------------------------------------------------------------

    def _context(self) -> multiprocessing.context.BaseContext:
        if self.mp_context is not None:
            return self.mp_context
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _chunk_size(self, total: int) -> int:
        if self.chunksize is not None:
            return max(1, self.chunksize)
        return max(1, math.ceil(total / (self.jobs * 4)))

    def _run_parallel(
        self,
        configs: List[CampaignConfig],
        *,
        warm: Optional[WarmStart] = None,
        on_results: Optional[Callable[[List[CampaignResult]], None]] = None,
    ) -> List[CampaignResult]:
        size = self._chunk_size(len(configs))
        chunks = [(start, configs[start:start + size])
                  for start in range(0, len(configs), size)]
        results: List[Optional[CampaignResult]] = [None] * len(configs)
        failures: List[ExecutorFailure] = []
        workers = min(self.jobs, len(chunks))
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=self._context()) as pool:
            futures = [(start, chunk,
                        pool.submit(_run_chunk, self.runner, chunk, warm))
                       for start, chunk in chunks]
            for start, chunk, future in futures:
                try:
                    chunk_results: List[Optional[CampaignResult]] = \
                        list(future.result(self.timeout_s))
                except Exception as exc:
                    # Worker raised, died, or overran the budget; a broken
                    # pool also lands here for every remaining chunk.  The
                    # configs are self-contained, so retrying serially in
                    # the parent reproduces exactly what the worker would
                    # have computed.
                    future.cancel()
                    if self.retries:
                        chunk_results = [
                            self._attempt(config, failures,
                                          attempts=self.retries, warm=warm)
                            for config in chunk]
                    else:
                        error = _format_error(exc)
                        failures.extend(
                            ExecutorFailure(config=config, error=error)
                            for config in chunk)
                        chunk_results = [None] * len(chunk)
                results[start:start + len(chunk)] = chunk_results
                if on_results is not None:
                    completed = [r for r in chunk_results if r is not None]
                    if completed:
                        on_results(completed)
        if failures:
            raise CampaignExecutionError(failures, results)
        return results  # type: ignore[return-value]  # no failures -> no Nones
