"""The SEU campaign runner: the simulator's Louvain test procedure.

Reproduces the measurement loop of section 6: run a self-checking test
program, let the beam strike the device, read the on-chip error-monitor
counters (ITE / IDE / DTE / DDE / RFE), verify the program's checksum, and
classify failures (error traps or software-detected corruption).

Time scaling
------------
Real beam runs inject ~1 upset per hundreds of milliseconds while the
device executes tens of millions of instructions per second.  Simulating
that literally is infeasible, so the campaign maps beam time to simulated
instructions through ``instructions_per_second`` -- the *virtual device
speed*.  Error counts and cross-sections are unbiased under this scaling
(every upset is still detected or missed by exactly the same program
logic); what accelerates is the ratio of upset arrivals to storage
*residency* time, which only matters for the multiple-error build-up
experiment (E6) where the flux axis is scaled accordingly (EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.program import AceMap, analyze_program, entry_context
from repro.core.config import LeonConfig
from repro.core.system import LeonSystem
from repro.errors import ConfigurationError
from repro.fault.beam import BeamParameters
from repro.fault.grading import (
    DEFAULT_CHECKPOINTS,
    DivergenceFix,
    GoldenCheckpoint,
    GoldenRun,
    GoldenTimeline,
    checkpoint_schedule,
    divergence_exit,
)
from repro.fault.injector import FaultInjector
from repro.fault.models import build_model
from repro.iu.pipeline import HaltReason
from repro.programs import (
    ProgramHarness,
    build_cncf,
    build_iutest,
    build_paranoia,
    build_random,
)
from repro.recovery import RecoveryController, RecoveryLevel, resolve_policy
from repro.state.snapshot import Snapshot
from repro.telemetry.bus import NULL_TELEMETRY, Telemetry

_BUILDERS = {
    "iutest": build_iutest,
    "paranoia": build_paranoia,
    "cncf": build_cncf,
}


def resolve_builder(program: str):
    """Builder for a ``--program`` spec: a named program or ``random:<seed>``.

    ``random:<seed>`` builds a seeded self-checking straight-line program
    (:func:`repro.programs.build_random`), so campaigns can sweep workload
    diversity without hand-written tests.  Raises ConfigurationError for
    anything else.
    """
    if program in _BUILDERS:
        return _BUILDERS[program]
    if program.startswith("random:"):
        spec = program.split(":", 1)[1]
        try:
            seed = int(spec, 0)
        except ValueError:
            raise ConfigurationError(
                f"bad random program spec {program!r} "
                "(expected random:<seed>)") from None

        def build(config, **kwargs):
            return build_random(config, seed=seed, **kwargs)
        return build
    raise ConfigurationError(
        f"unknown test program {program!r} "
        f"(choose from {sorted(_BUILDERS)} or random:<seed>)")


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign run: a program under one beam setting."""

    program: str = "iutest"
    let: float = 110.0
    flux: float = 400.0  # ions / s / cm^2
    fluence: float = 1.0e4  # ions / cm^2 (the paper's runs: 1e5)
    seed: int = 1
    #: Virtual device speed: simulated instructions per beam second.
    instructions_per_second: float = 50_000.0
    #: Hard cap on simulated instructions (safety valve).
    max_instructions: int = 20_000_000
    #: Periodic cache flush, in instructions (0 = never).  Section 4.8:
    #: "In small programs, a cache flush could therefore periodically be
    #: performed to force a refresh of all cache contents" -- flushing
    #: discards latent cache errors before they can pair up.
    flush_period_instructions: int = 0
    leon: Optional[LeonConfig] = None
    program_kwargs: Dict = field(default_factory=dict)
    #: Fault-free warm-up before the beam opens, in beam seconds.  The run
    #: executes ``beam_delay_s * instructions_per_second`` instructions with
    #: the shutter closed -- the stretch warm-start campaigns snapshot past.
    beam_delay_s: float = 0.0
    #: Strike-free observation stretch after the beam closes, in beam
    #: seconds.  Gives latent errors time to surface (and effaced runs time
    #: to be worth skipping).
    beam_tail_s: float = 0.0
    #: Recovery policy name (:data:`repro.recovery.POLICIES`): "none"
    #: terminates the run at the first halt/park as before; any other
    #: policy lets the supervision logic recover and the run continue
    #: *through* failures, recording per-level counts and downtime.
    recovery: str = "none"
    #: Golden-timeline early-exit grading (``--no-early-exit`` clears it).
    #: An execution-strategy knob only -- measured results are
    #: byte-identical either way -- so it is excluded from
    #: :func:`warm_start_key`, the result-store key, and
    #: :meth:`CampaignResult.comparable`.
    early_exit: bool = True
    #: Static ACE-map pre-classification (``--no-static`` clears it): a
    #: transient strike landing in a register word the static analyzer
    #: proved dead is graded ``masked`` with the golden readouts *without
    #: executing the run at all* (``exit_reason="static_masked"``).
    #: Requires ``early_exit`` (one oracle switch disables every
    #: shortcut).  Like ``early_exit``, an execution-strategy knob:
    #: byte-identical results, excluded from the warm-start key, the
    #: result-store key, and :meth:`CampaignResult.comparable`.
    static_grading: bool = True
    #: Fault model (:data:`repro.fault.models.MODELS`): ``"seu"`` is the
    #: paper's transient bit-flip beam, byte-identical to the
    #: pre-model-layer campaign; see the module docs for ``stuck-at-0/1``,
    #: ``sefi``, ``instruction-skip`` and ``opcode``.
    fault_model: str = "seu"
    #: Model-specific parameters (attack models: ``pc``, ``window``,
    #: ``bit``, ``time_s``).  Serialized to the result-store key only when
    #: non-empty, so default-model keys are unchanged.
    fault_params: Dict = field(default_factory=dict)

    def beam_parameters(self) -> BeamParameters:
        return BeamParameters(let=self.let, flux=self.flux,
                              fluence=self.fluence, seed=self.seed)

    def phase_instructions(self) -> "tuple[int, int, int]":
        """(prefix, window, tail) instruction counts for this run.

        The window formula is unchanged from the pre-warm-start campaign
        runner, so configs with zero delay/tail reproduce recorded results
        exactly.
        """
        ips = self.instructions_per_second
        prefix = int(self.beam_delay_s * ips)
        window = min(int(self.beam_parameters().duration_s * ips),
                     self.max_instructions)
        tail = int(self.beam_tail_s * ips)
        return prefix, window, tail


@dataclass
class CampaignResult:
    """What the host computer logged for one run."""

    config: CampaignConfig
    counts: Dict[str, int]  # ITE IDE DTE DDE RFE Total
    upsets: int  # physical strikes applied
    upsets_by_target: Dict[str, int]
    sw_errors: int  # checksum mismatches the program caught
    error_traps: int  # unexpected traps (incl. register/memory error traps)
    halted: bool  # processor reached error mode
    iterations: int  # completed program self-check iterations
    instructions: int
    #: Host wall-clock time of the run, seconds (0.0 in pre-existing logs).
    wall_seconds: float = 0.0
    #: True when a warm-start run was classified early: its architectural
    #: state at the window close matched the golden run, so the tail was
    #: skipped and the golden readouts used.  Execution annotation only --
    #: every *measured* field is identical to the full run's; cold runs
    #: always report False because they have no golden digest to compare.
    effaced: bool = False
    #: Device cycles the run consumed, including recovery downtime
    #: (0 in pre-existing logs).
    cycles: int = 0
    #: Recovery actions applied, by ladder level (empty without a policy).
    recoveries: Dict[str, int] = field(default_factory=dict)
    #: Downtime charged by each ladder level, device cycles.
    recovery_downtime: Dict[str, int] = field(default_factory=dict)
    #: Error-mode halts the run recovered from (an *unrecovered* final
    #: halt reports through ``halted`` as before).
    halts: int = 0
    #: True when a recovery policy was active but gave up (attempt budget
    #: exhausted or no applicable rung) and the run ended failed.
    unrecovered: bool = False
    #: How classification concluded: ``"full"`` (the complete measurement
    #: loop executed) or ``"reconverged"`` (the architectural digest hit a
    #: golden-timeline checkpoint and the golden readouts were reported).
    #: ``""`` in pre-grading logs.  Execution annotation, like ``effaced``.
    exit_reason: str = ""
    #: Instruction count at which grading concluded an early exit
    #: (None for full runs and pre-grading logs).
    graded_at_instruction: Optional[int] = None
    #: Telemetry events of the run (traced executor runs only; never
    #: serialized to the ResultStore -- traces have their own sink).
    trace: Optional[list] = None

    @property
    def instructions_per_second(self) -> float:
        """Host throughput of the run (simulated instructions / wall second)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.instructions / self.wall_seconds

    @property
    def failures(self) -> int:
        """Paper terminology: "error traps or software failures".

        Recovered halts count exactly like the terminal halt of a
        no-recovery run, so failure totals stay comparable across
        policies."""
        return (self.sw_errors + self.error_traps + self.halts
                + (1 if self.halted else 0))

    @property
    def recovery_events(self) -> int:
        """Total recovery actions applied."""
        return sum(self.recoveries.values())

    @property
    def downtime_cycles(self) -> int:
        """Total downtime charged by recoveries, device cycles."""
        return sum(self.recovery_downtime.values())

    @property
    def mttr_cycles(self) -> float:
        """Mean time to repair: downtime per recovery action, cycles."""
        events = self.recovery_events
        return self.downtime_cycles / events if events else 0.0

    @property
    def availability(self) -> float:
        """In-beam availability: fraction of device time doing useful work."""
        if self.cycles <= 0:
            return 1.0
        return 1.0 - self.downtime_cycles / self.cycles

    @property
    def undetected_errors(self) -> int:
        """Errors that escaped the FT machinery and corrupted results."""
        return self.sw_errors

    def cross_section(self, kind: str = "Total") -> float:
        """Measured cross-section, cm^2: corrected errors per unit fluence."""
        return self.counts[kind] / self.config.fluence

    def cross_sections(self) -> Dict[str, float]:
        return {kind: count / self.config.fluence
                for kind, count in self.counts.items()}

    def row(self) -> Dict[str, object]:
        """One Table 2 row."""
        out: Dict[str, object] = {
            "TEST": self.config.program.upper()[:4],
            "LET": self.config.let,
        }
        out.update(self.counts)
        out["X-sect"] = self.cross_section("Total")
        return out

    def comparable(self) -> Dict[str, object]:
        """The deterministic measurement fields, for byte-identity checks.

        Excludes ``wall_seconds`` (host timing), ``effaced``,
        ``exit_reason`` and ``graded_at_instruction`` (execution
        annotations that depend on whether a golden timeline was
        available, not on what was measured), ``trace`` (observation,
        with host wall times inside), and the config's ``early_exit``
        strategy switch.
        """
        out = dataclasses.asdict(self)
        out.pop("wall_seconds", None)
        out.pop("effaced", None)
        out.pop("exit_reason", None)
        out.pop("graded_at_instruction", None)
        out.pop("trace", None)
        out["config"].pop("early_exit", None)
        out["config"].pop("static_grading", None)
        return out


def warm_start_key(config: CampaignConfig) -> tuple:
    """Everything a warm-start snapshot depends on.

    The beam-window *timeline* and the fault-free prefix are functions of
    these fields; LET and seed are deliberately absent -- they only shape
    the strike schedule, so one warm start serves a whole LET sweep and
    every derived-seed replica.
    """
    return (
        config.program,
        tuple(sorted(config.program_kwargs.items())),
        config.instructions_per_second,
        config.max_instructions,
        config.flush_period_instructions,
        config.flux,
        config.fluence,
        config.beam_delay_s,
        config.beam_tail_s,
        config.leon,
    )


@dataclass(frozen=True)
class WarmStart:
    """A shared campaign prefix: snapshot bytes plus golden-run data.

    Produced once by :func:`prepare_warm_start` in the parent process and
    shipped (pickled) to every worker; workers restore the snapshot instead
    of re-executing the prefix.
    """

    key: tuple
    snapshot: bytes
    executed: int
    since_flush: int
    failed: bool
    spin_pc: int
    result_base: int
    golden: Optional[GoldenRun]
    #: Golden digest timeline for early-exit grading and strike batching
    #: (None when the golden run failed before the window closed).
    timeline: Optional[GoldenTimeline] = None
    #: Static ACE map of the program from the snapshot state
    #: (:mod:`repro.analysis.program`), for strike pre-classification.
    #: Only attached when the golden run completed trap-free -- the
    #: soundness witness the static claims require -- and None for
    #: pre-static warm starts.
    ace: Optional[AceMap] = None


class Campaign:
    """Builds the device + beam and executes one (or more) runs."""

    def __init__(self, config: CampaignConfig, *,
                 telemetry: Optional[Telemetry] = None) -> None:
        self._builder = resolve_builder(config.program)
        self.config = config
        self.leon_config = config.leon or LeonConfig.leon_express()
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        # Validates the policy and fault-model names early (both raise
        # ConfigurationError on unknown names).
        self.recovery_policy = resolve_policy(config.recovery)
        build_model(config.fault_model, config)
        #: Persistent-fault re-assert hook, installed per run for
        #: non-transient models and invoked at every execution-chunk
        #: boundary of :meth:`_run_until`.
        self._reassert = None

    def build_system(self) -> LeonSystem:
        return LeonSystem(self.leon_config, telemetry=self.telemetry)

    def _build_program(self):
        """Fresh system with the test program loaded; returns
        (system, spin pc, result-area base, program image)."""
        config = self.config
        system = self.build_system()
        builder = self._builder
        # Effectively-endless by default; a finite override makes the
        # program park at ``_exit`` when done (still alive, still hit by
        # the beam -- the divergence detector's natural prey).
        kwargs = {"iterations": 1_000_000, **config.program_kwargs}
        program, _expected = builder(self.leon_config, **kwargs)
        harness = ProgramHarness(system, program)
        return (system, program.symbols["_trap_spin"],
                harness.layout.result, program)

    def _run_until(self, system: LeonSystem, spin: int, state: Dict,
                   target_instructions: int) -> None:
        """Advance execution, honouring the periodic cache flush.

        A failed run parks the program at ``_trap_spin``, so the stop
        condition is a plain PC compare -- ``stop_pc`` keeps the system
        on its tight :meth:`LeonSystem.run_fast` loop instead of paying
        a Python predicate call per step.
        """
        period = self.config.flush_period_instructions
        while state["executed"] < target_instructions and not state["failed"]:
            chunk = target_instructions - state["executed"]
            if period:
                chunk = min(chunk, period - state["since_flush"])
            run = system.run(chunk, stop_pc=spin)
            state["executed"] += run.instructions
            state["since_flush"] += run.instructions
            if run.stop_reason in ("halted", "stop-pc", "predicate"):
                state["failed"] = True
                return
            if period and state["since_flush"] >= period:
                system.icache.flush()
                system.dcache.flush()
                state["since_flush"] = 0
            if self._reassert is not None:
                # Stuck-at cells re-asserted at every chunk boundary: a
                # rewrite (scrub, store, flush) holds the golden value
                # only until here.  Chunk boundaries are a deterministic
                # function of the phase shape and flush period, so the
                # re-assert schedule is identical across jobs/warm/cold.
                self._reassert()

    def _make_recovery(self, system: LeonSystem, result_base: int,
                       warm: Optional[WarmStart],
                       harvested: Dict[str, int]) -> Optional[RecoveryController]:
        """Build the run's :class:`RecoveryController` (None without a policy).

        Called with the system at the beam-window entry (prefix executed):
        that state is the warm-reset checkpoint.  The cold-reboot image is
        the load-time state of a freshly built program system -- identical
        for cold and warm runs, so recovery trajectories are too.
        """
        policy = self.recovery_policy
        if policy is None:
            return None
        checkpoint = boot = None
        if RecoveryLevel.WARM_RESET in policy.ladder:
            if warm is not None:
                checkpoint = Snapshot.from_bytes(warm.snapshot)
            else:
                checkpoint = system.snapshot()
        if RecoveryLevel.COLD_REBOOT in policy.ladder:
            boot, _spin, _rb, _program = self._build_program()
            boot = boot.snapshot()

        def harvest(sys_: LeonSystem) -> None:
            # Before a reset discards execution state, bank the program's
            # software-visible tallies accumulated since the last reset.
            read = sys_.read_word
            harvested["sw_errors"] += \
                read(result_base + 0x14) - harvested["base_sw_errors"]
            harvested["iterations"] += \
                read(result_base + 0x10) - harvested["base_iterations"]
            harvested["error_traps"] += int(read(result_base + 0x08) == 1)

        return RecoveryController(system, policy, checkpoint=checkpoint,
                                  boot_snapshot=boot, on_state_loss=harvest)

    def _advance(self, system: LeonSystem, spin: int, state: Dict,
                 target_instructions: int,
                 recovery: Optional[RecoveryController],
                 harvested: Dict[str, int], result_base: int) -> bool:
        """Advance to ``target_instructions``, recovering through failures.

        Returns False when the run is dead: no policy configured, or the
        policy gave up -- the caller ends the run with the failure standing.
        """
        while True:
            self._run_until(system, spin, state, target_instructions)
            if not state["failed"]:
                return True
            if recovery is None:
                return False
            halted = system.iu.halted is not HaltReason.RUNNING
            kind = "halt" if halted else "error-trap"
            event = recovery.recover(kind, executed=state["executed"])
            if event is None:
                return False
            state["failed"] = False
            if event.state_loss:
                # The restored image's result-area values are the new
                # baseline the next harvest subtracts.
                read = system.read_word
                harvested["base_sw_errors"] = read(result_base + 0x14)
                harvested["base_iterations"] = read(result_base + 0x10)
                state["since_flush"] = 0

    def run(self, warm: Optional[WarmStart] = None, *,
            start: Optional[GoldenCheckpoint] = None) -> CampaignResult:
        started = time.perf_counter()
        config = self.config
        self._reassert = None  # installed below once the injector exists
        telemetry = self.telemetry
        traced = telemetry.enabled
        prefix, window, tail = config.phase_instructions()
        window_close = prefix + window
        total_instructions = window_close + tail

        if traced:
            telemetry.note("run-start", program=config.program,
                           let=config.let, flux=config.flux,
                           fluence=config.fluence, seed=config.seed,
                           recovery=config.recovery,
                           warm=warm is not None)

        if start is not None and (warm is None or start.snapshot is None):
            raise ConfigurationError(
                "a start checkpoint requires a warm start and a golden "
                "snapshot at the checkpoint")

        model = build_model(config.fault_model, config)

        if warm is not None:
            if warm.key != warm_start_key(config):
                raise ConfigurationError(
                    "warm start was prepared for an incompatible campaign "
                    "configuration")
            # Static pre-classification: when every scheduled strike lands
            # in a register word the ACE map proved dead, the faulted
            # trajectory *is* the golden trajectory and the run's readouts
            # are the golden readouts -- report them without restoring or
            # executing anything.  Gated on ``model.transient``: a
            # persistent stuck-at/SEFI fault keeps re-asserting, so a
            # "dead at strike time" word is not dead for the rest of the
            # run and must never be statically pre-classified (lint rule
            # FT701 enforces this gate on every ACE-map consumer).
            if (config.early_exit and config.static_grading
                    and model.transient and warm.ace is not None
                    and warm.timeline is not None and not warm.failed
                    and self.recovery_policy is None):
                result = self._static_grade(warm, model, started)
                if result is not None:
                    return result
            system = self.build_system()
            if start is not None:
                # Batched strike scheduling: resume from the golden state
                # at the checkpoint instead of replaying the strike-free
                # stretch from the warm snapshot.  Legal only while no
                # strike has landed yet -- the executor's batch planner
                # guarantees start.instruction <= the first upset.
                system.restore(Snapshot.from_bytes(start.snapshot))
                state = {"executed": start.instruction,
                         "since_flush": start.since_flush,
                         "failed": warm.failed}
            else:
                system.restore(Snapshot.from_bytes(warm.snapshot))
                state = {"executed": warm.executed,
                         "since_flush": warm.since_flush,
                         "failed": warm.failed}
            spin, result_base = warm.spin_pc, warm.result_base
            golden = warm.golden
            if (warm.ace is not None and warm.ace.loop_heads
                    and system.jit is not None):
                # Statically-recovered loop headers are the JIT's candidate
                # superblock entries: prime them so the first visit
                # compiles (restore() just invalidated the block cache).
                system.jit.prime(warm.ace.loop_heads)
            if traced:
                telemetry.note("span", phase="setup",
                               wall_s=time.perf_counter() - started,
                               instr=state["executed"])
                self._note_ace(warm)
        else:
            system, spin, result_base, _program = self._build_program()
            state = {"executed": 0, "since_flush": 0, "failed": False}
            golden = None
            if traced:
                telemetry.note("span", phase="setup",
                               wall_s=time.perf_counter() - started,
                               instr=0)
            prefix_started = time.perf_counter()
            self._run_until(system, spin, state, prefix)
            if traced:
                telemetry.note("span", phase="golden-prefix",
                               wall_s=time.perf_counter() - prefix_started,
                               instr=state["executed"])

        # The golden-digest argument ("state match => identical future")
        # only holds for one-shot corruption: a persistent fault keeps
        # re-asserting past any matching boundary, so grading degrades to
        # full execution for non-transient models.
        timeline = warm.timeline \
            if (warm is not None and config.early_exit
                and model.transient) else None

        harvested = {"sw_errors": 0, "error_traps": 0, "iterations": 0,
                     "base_sw_errors": 0, "base_iterations": 0}
        recovery = self._make_recovery(system, result_base, warm, harvested)

        injector = FaultInjector(system)
        strikes = model.schedule(injector)
        self._reassert = None if model.transient \
            else injector.reassert_persistent

        beam_started = time.perf_counter()
        upsets_by_target: Dict[str, int] = {}
        alive = True
        for strike in strikes:
            strike_at = prefix + min(
                int(strike.time_s * config.instructions_per_second), window)
            if strike_at < state["executed"]:
                raise ConfigurationError(
                    "start checkpoint lies past the run's first upset")
            alive = self._advance(system, spin, state, strike_at,
                                  recovery, harvested, result_base)
            if not alive:
                break
            if traced:
                telemetry.strike(
                    strike.target, strike.flat_bit,
                    word=model.locate(strike, injector),
                    time_s=strike.time_s, let=config.let, mbu=strike.mbu,
                    instr=state["executed"], kind=strike.kind)
            model.apply(strike, injector)
            upsets_by_target[strike.target] = \
                upsets_by_target.get(strike.target, 0) + 1
            if strike.mbu:
                upsets_by_target[strike.target + "+mbu"] = \
                    upsets_by_target.get(strike.target + "+mbu", 0) + 1

        upsets = sum(
            count for name, count in upsets_by_target.items()
            if not name.endswith("+mbu")
        )
        def final_counts() -> Dict[str, int]:
            # EDAC corrections on external memory are monitor-visible but
            # sit outside the Table-2 counters.  Model campaigns fold them
            # in (key "EDAC") so the security readout counts an
            # EDAC-caught attack as *detected*; default-seu counts stay
            # byte-identical to every stored row.
            counts = dict(system.errors.as_dict())
            if config.fault_model != "seu" and system.errors.edac_corrected:
                counts["EDAC"] = system.errors.edac_corrected
            return counts

        def counts_and_more() -> Dict:
            # Evaluated at return time so recoveries during the window
            # close and tail advances are included.
            return dict(
                config=config,
                upsets=upsets,
                upsets_by_target=upsets_by_target,
                recoveries=recovery.counts_by_level if recovery else {},
                recovery_downtime=recovery.downtime_by_level if recovery
                else {},
                halts=sum(1 for e in recovery.events
                          if e.kind in ("halt", "watchdog"))
                if recovery else 0,
                unrecovered=recovery.gave_up if recovery else False,
            )

        # Early-exit grading: once every scheduled strike has been applied
        # the run is strike-free, so an architectural-digest match at any
        # golden checkpoint boundary proves the remaining execution --
        # every instruction, counter freeze, and result-area write -- is
        # exactly the golden run's, and the run can stop there reporting
        # the golden end-of-run readouts.  Counter deltas cannot occur
        # past a match: digest equality implies the suspect sets are
        # empty, and only suspect storage triggers corrections.  Runs
        # that recovered are never graded early: their readouts include
        # harvested tallies the golden run does not carry.
        graded: Optional[GoldenCheckpoint] = None
        diverged: Optional[DivergenceFix] = None
        if (alive and timeline is not None and timeline.checkpoints
                and (recovery is None or not recovery.events)):
            graded, diverged = self._grade(system, spin, state, timeline,
                                           recovery, harvested, result_base)
            alive = not state["failed"]
        elif alive:
            alive = self._advance(system, spin, state, window_close,
                                  recovery, harvested, result_base)
        if traced:
            telemetry.note("span", phase="beam",
                           wall_s=time.perf_counter() - beam_started,
                           instr=state["executed"])

        if graded is not None and timeline is not None:
            final = timeline.final
            result = CampaignResult(
                counts=final_counts(),
                sw_errors=final.sw_errors,
                error_traps=final.error_traps,
                halted=final.halted,
                iterations=final.iterations,
                instructions=final.executed,
                wall_seconds=time.perf_counter() - started,
                effaced=True,
                exit_reason="reconverged",
                graded_at_instruction=graded.instruction,
                cycles=system.perf.cycles + timeline.tail_cycles_from(graded),
                **counts_and_more(),
            )
            if traced:
                telemetry.note("early-exit", reason="reconverged",
                               at=graded.instruction,
                               skipped=final.executed - graded.instruction)
                self._finish_trace(injector, result, instr=final.executed)
            return result

        # Permanent-divergence exit: the faulted digest repeated across
        # two consecutive mismatching boundaries, so the run is parked in
        # a fixed point and will never reconverge.  Full periods are
        # architectural no-ops; executing the sub-period remainder lands
        # on the exact end-of-run state, and the skipped periods' cycle
        # and counter costs are added back arithmetically -- the readouts
        # are byte-identical to draining the tail.
        if (diverged is not None and alive
                and (recovery is None or not recovery.events)):
            periods, advance = divergence_exit(diverged, total_instructions)
            alive = self._advance(system, spin, state,
                                  diverged.boundary + advance,
                                  recovery, harvested, result_base)
            if alive and (recovery is None or not recovery.events):
                read = system.read_word
                sw_errors = harvested["sw_errors"] + \
                    read(result_base + 0x14) - harvested["base_sw_errors"]
                trapped = read(result_base + 0x08) == 1
                iterations = harvested["iterations"] + \
                    read(result_base + 0x10) - harvested["base_iterations"]
                counts = final_counts()
                for name, delta in diverged.counts_per_period.items():
                    if delta:
                        counts[name] = counts.get(name, 0) + periods * delta
                result = CampaignResult(
                    counts=counts,
                    sw_errors=sw_errors,
                    error_traps=harvested["error_traps"] + int(trapped),
                    halted=system.iu.halted is not HaltReason.RUNNING,
                    iterations=iterations,
                    instructions=total_instructions,
                    wall_seconds=time.perf_counter() - started,
                    exit_reason="diverged",
                    graded_at_instruction=diverged.boundary,
                    cycles=system.perf.cycles
                    + periods * diverged.cycles_per_period,
                    **counts_and_more(),
                )
                if traced:
                    telemetry.note("early-exit", reason="diverged",
                                   at=diverged.boundary,
                                   skipped=total_instructions
                                   - state["executed"])
                    self._finish_trace(injector, result,
                                       instr=total_instructions)
                return result

        # Legacy window-close effaced check, for warm starts prepared
        # without a timeline (the golden run parked mid-tail) or with
        # early exit disabled but a golden readout available.  Gated on
        # the model like the timeline: a persistent fault re-asserts past
        # the matching digest, so the golden tail readouts do not apply.
        if (config.early_exit and timeline is None and model.transient
                and golden is not None and alive and not state["failed"]
                and (recovery is None or not recovery.events)
                and state["executed"] == window_close
                and system.state_digest() == golden.window_digest):
            result = CampaignResult(
                counts=final_counts(),
                sw_errors=golden.sw_errors,
                error_traps=golden.error_traps,
                halted=golden.halted,
                iterations=golden.iterations,
                instructions=golden.executed,
                wall_seconds=time.perf_counter() - started,
                effaced=True,
                exit_reason="reconverged",
                graded_at_instruction=window_close,
                cycles=system.perf.cycles + golden.tail_cycles,
                **counts_and_more(),
            )
            if traced:
                telemetry.note("early-exit", reason="reconverged",
                               at=window_close,
                               skipped=golden.executed - window_close)
                self._finish_trace(injector, result, instr=golden.executed)
            return result

        drain_started = time.perf_counter()
        if alive:
            self._advance(system, spin, state, total_instructions,
                          recovery, harvested, result_base)
        executed = state["executed"]
        if traced:
            telemetry.note("span", phase="drain",
                           wall_s=time.perf_counter() - drain_started,
                           instr=executed)

        # Read out the result area the way the host computer would; the
        # harvested tallies carry what earlier reset recoveries banked.
        read = system.read_word
        sw_errors = harvested["sw_errors"] + \
            read(result_base + 0x14) - harvested["base_sw_errors"]
        trapped = read(result_base + 0x08) == 1
        iterations = harvested["iterations"] + \
            read(result_base + 0x10) - harvested["base_iterations"]

        result = CampaignResult(
            counts=final_counts(),
            sw_errors=sw_errors,
            error_traps=harvested["error_traps"] + int(trapped),
            halted=system.iu.halted is not HaltReason.RUNNING,
            iterations=iterations,
            instructions=executed,
            wall_seconds=time.perf_counter() - started,
            exit_reason="full",
            cycles=system.perf.cycles,
            **counts_and_more(),
        )
        if traced:
            self._finish_trace(injector, result, instr=executed)
        return result

    def _note_ace(self, warm: WarmStart) -> None:
        """Record the warm start's ACE-map summary in the trace.

        Emitted on every traced warm run that carries a map -- whether or
        not static grading consumed it -- so static and oracle traces
        describe the analysis identically and ``repro stats`` can report
        the program's ACE fraction.  A summary of the *analysis*, not a
        grading decision, so FT701's transient gate does not apply.
        """
        telemetry = self.telemetry
        ace = warm.ace  # lint: ok=ace-transient-gate -- reporting only; no grading decision
        if ace is None:
            return
        if not telemetry.enabled:
            return
        telemetry.note(
            "ace", fraction=round(ace.ace_fraction(), 6),
            claimable_words=ace.claimable_words,
            regfile_words=ace.regfile_words,
            fpregs_dead=ace.fpregs_dead,
            window_claims=ace.window_claims)

    def _static_grade(self, warm: WarmStart, model,
                      started: float) -> Optional[CampaignResult]:
        """Grade the run statically, without executing it, if possible.

        Called before the snapshot restore with a *transient* model (the
        caller gates on ``model.transient``; persistent faults re-assert
        and are never pre-classified).  Schedules the run's strikes on a
        throwaway same-geometry system -- schedules are a pure function of
        the beam parameters and the device geometry, so they are identical
        to the ones the executed run would draw -- and consults the ACE
        map for every strike site.  Returns None (execute normally) unless
        *every* strike is provably dead; with lifecycle tracing enabled,
        write-only ("ambiguous") sites also fall back to execution so the
        traced close states stay byte-identical to the oracle's.

        A successful static grade reports the golden readouts verbatim:
        the faulted trajectory equals the golden one instruction for
        instruction -- same instructions, cycles, counters, result-area
        writes -- and every struck word stays resident (suspect), which is
        exactly the ``latent`` close state the full run would log.
        """
        if not model.transient:
            # Defense in depth: the caller gates on this already, but the
            # static claims are unsound for re-asserting faults -- never
            # pre-classify them (lint rule FT701).
            return None
        config = self.config
        ace = warm.ace
        timeline = warm.timeline
        golden = timeline.final
        if golden.counts is None:  # pre-static warm start
            return None
        traced = self.telemetry.enabled
        probe = self.build_system()
        injector = FaultInjector(probe)
        strikes = model.schedule(injector)
        located = []
        for strike in strikes:
            word = model.locate(strike, injector)
            claim = ace.classify(strike.target, word)
            if claim is None or (traced and claim != "latent"):
                return None
            located.append(strike)

        prefix, window, _tail = config.phase_instructions()
        upsets_by_target: Dict[str, int] = {}
        for strike in located:
            upsets_by_target[strike.target] = \
                upsets_by_target.get(strike.target, 0) + 1
            if strike.mbu:
                upsets_by_target[strike.target + "+mbu"] = \
                    upsets_by_target.get(strike.target + "+mbu", 0) + 1
        result = CampaignResult(
            config=config,
            counts=dict(golden.counts),
            upsets=sum(count for name, count in upsets_by_target.items()
                       if not name.endswith("+mbu")),
            upsets_by_target=upsets_by_target,
            sw_errors=golden.sw_errors,
            error_traps=golden.error_traps,
            halted=golden.halted,
            iterations=golden.iterations,
            instructions=golden.executed,
            wall_seconds=time.perf_counter() - started,
            effaced=True,
            cycles=timeline.end_cycles,
            exit_reason="static_masked",
            graded_at_instruction=warm.executed,
        )
        if traced:
            telemetry = self.telemetry
            telemetry.note("span", phase="setup",
                           wall_s=time.perf_counter() - started,
                           instr=warm.executed)
            self._note_ace(warm)
            for strike in located:
                strike_at = prefix + min(
                    int(strike.time_s * config.instructions_per_second),
                    window)
                telemetry.strike(
                    strike.target, strike.flat_bit,
                    word=model.locate(strike, injector),
                    time_s=strike.time_s, let=config.let, mbu=strike.mbu,
                    instr=strike_at, kind=strike.kind)
            telemetry.note("early-exit", reason="static-masked",
                           at=warm.executed,
                           skipped=golden.executed - warm.executed)
            telemetry.close_open(lambda target, word: "latent",
                                 instr=golden.executed)
            telemetry.note("run-end", counts=dict(result.counts),
                           upsets=result.upsets, sw_errors=result.sw_errors,
                           error_traps=result.error_traps,
                           halted=result.halted,
                           iterations=result.iterations,
                           instructions=result.instructions,
                           effaced=result.effaced,
                           wall_s=round(result.wall_seconds, 6))
        return result

    def _grade(self, system: LeonSystem, spin: int, state: Dict,
               timeline: GoldenTimeline,
               recovery: Optional[RecoveryController],
               harvested: Dict[str, int],
               result_base: int
               ) -> "tuple[Optional[GoldenCheckpoint], " \
                    "Optional[DivergenceFix]]":
        """Walk the golden checkpoint boundaries grading the run.

        Called once every scheduled strike has been applied.  Returns
        ``(checkpoint, None)`` for the first boundary whose architectural
        digest the faulted run matches (reconverged), ``(None, fix)``
        when two consecutive mismatching boundaries repeat the *faulted*
        digest and flush phase (permanently diverged into a fixed point
        -- e.g. parked in the end-of-program spin with a latent upset
        resident), and ``(None, None)`` when the run diverges through
        the last boundary aperiodically, fails, or recovers mid-walk
        (recovered runs carry harvested tallies the golden readouts do
        not).
        """
        flush_period = self.config.flush_period_instructions
        previous = None  # (digest, flush phase, instruction, cycles, counts)
        for checkpoint in timeline.checkpoints:
            if checkpoint.instruction < state["executed"]:
                continue
            if not self._advance(system, spin, state, checkpoint.instruction,
                                 recovery, harvested, result_base):
                return None, None
            if recovery is not None and recovery.events:
                return None, None
            digest = system.state_digest()
            if digest == checkpoint.digest:
                return checkpoint, None
            # The flush phase is the one behavioural input outside the
            # digest: a repeat only proves periodicity if it repeats too
            # (without periodic flushing there is no phase to match).
            phase = state["since_flush"] % flush_period if flush_period else 0
            cycles = system.perf.cycles
            counts = dict(system.errors.as_dict())
            if (previous is not None and previous[0] == digest
                    and previous[1] == phase):
                period = checkpoint.instruction - previous[2]
                if period > 0:
                    return None, DivergenceFix(
                        boundary=checkpoint.instruction,
                        period=period,
                        cycles_per_period=cycles - previous[3],
                        counts_per_period={
                            name: counts[name] - previous[4].get(name, 0)
                            for name in counts
                        },
                    )
            previous = (digest, phase, checkpoint.instruction, cycles, counts)
        return None, None

    def _finish_trace(self, injector: FaultInjector,
                      result: CampaignResult, *, instr: int) -> None:
        """Close every still-open upset and emit the run-end readouts.

        The close events give each undetected strike its terminal state
        (latent if the corruption is still resident, masked if it was
        overwritten unobserved) -- together with the resolve events this
        guarantees every strike's lifecycle terminates.
        """
        telemetry = self.telemetry
        if not telemetry.enabled:
            return
        telemetry.close_open(
            lambda target, word:
            # Model-specific sites outside the SEU registry (SEFI control
            # cells, attack words) stay resident until software or a reset
            # repairs them -- close as latent.
            "latent" if (target not in injector.targets
                         or injector.is_latent(target, word)) else "masked",
            instr=instr)
        telemetry.note("run-end", counts=dict(result.counts),
                       upsets=result.upsets, sw_errors=result.sw_errors,
                       error_traps=result.error_traps,
                       halted=result.halted, iterations=result.iterations,
                       instructions=result.instructions,
                       effaced=result.effaced,
                       wall_s=round(result.wall_seconds, 6))


def prepare_warm_start(config: CampaignConfig, *,
                       checkpoints: int = DEFAULT_CHECKPOINTS) -> WarmStart:
    """Execute the golden prefix once and package it for sharing.

    Runs the fault-free prefix (``beam_delay_s``), snapshots the device,
    then continues the *golden* (strike-free) run through the beam window
    and tail, recording an architectural digest at every
    :func:`~repro.fault.grading.checkpoint_schedule` boundary -- plus a
    restore snapshot at the in-window boundaries, the anchors of batched
    strike scheduling -- and the final host readouts.  The result is
    picklable and serves every run whose config shares
    :func:`warm_start_key` -- a whole LET sweep, every seed.
    """
    campaign = Campaign(config)
    prefix, window, tail = config.phase_instructions()
    window_close = prefix + window

    system, spin, result_base, program = campaign._build_program()
    state = {"executed": 0, "since_flush": 0, "failed": False}
    campaign._run_until(system, spin, state, prefix)
    snapshot = system.snapshot().to_bytes()
    # The analyzer's entry state is the snapshot state: every warm run
    # restores these bytes, so the static CFG walk starts exactly where
    # execution will.
    entry = entry_context(system)
    executed, since_flush = state["executed"], state["since_flush"]
    failed = state["failed"]

    golden: Optional[GoldenRun] = None
    timeline: Optional[GoldenTimeline] = None
    marks = []
    window_digest: Optional[str] = None
    window_cycles = 0
    clean = not failed
    for boundary in checkpoint_schedule(prefix, window, tail,
                                        count=checkpoints):
        campaign._run_until(system, spin, state, boundary)
        if state["failed"] or state["executed"] != boundary:
            # Parked mid-stretch.  Before the window close that kills the
            # golden run (no digest to compare against); in the tail the
            # timeline simply ends early -- a run matching any recorded
            # boundary has the identical (parked) future.
            clean = window_digest is not None
            break
        digest = system.state_digest()
        marks.append(GoldenCheckpoint(
            instruction=boundary,
            digest=digest,
            cycles=system.perf.cycles,
            since_flush=state["since_flush"],
            snapshot=(system.snapshot().to_bytes()
                      if boundary <= window_close else None),
        ))
        if boundary == window_close:
            window_digest = digest
            window_cycles = system.perf.cycles
    if clean and window_digest is not None:
        read = system.read_word
        golden = GoldenRun(
            window_digest=window_digest,
            sw_errors=read(result_base + 0x14),
            error_traps=int(read(result_base + 0x08) == 1),
            iterations=read(result_base + 0x10),
            halted=system.iu.halted is not HaltReason.RUNNING,
            executed=state["executed"],
            tail_cycles=system.perf.cycles - window_cycles,
            counts=dict(system.errors.as_dict()),
        )
        timeline = GoldenTimeline(
            window_close=window_close,
            end=state["executed"],
            end_cycles=system.perf.cycles,
            checkpoints=tuple(marks),
            final=golden,
        )

    # Static ACE map, computed once per warm start and shipped to every
    # run.  Attached only when the golden run completed *trap-free*
    # (``perf.traps == 0``): the CFG walk treats trap-raising paths as
    # terminal on the strength of that witness -- the golden run proves
    # the program never takes them, and a strike in a dead register
    # cannot steer control onto one (dead means no instruction ever
    # reads the word).  A parked golden run necessarily trapped, so the
    # witness also implies the timeline is complete.
    ace: Optional[AceMap] = None
    if timeline is not None and system.perf.traps == 0:
        ace = analyze_program(program, entry).ace  # lint: ok=ace-transient-gate -- producer; consumers gate per FT701

    return WarmStart(
        key=warm_start_key(config),
        snapshot=snapshot,
        executed=executed,
        since_flush=since_flush,
        failed=failed,
        spin_pc=spin,
        result_base=result_base,
        golden=golden,
        timeline=timeline,
        ace=ace,
    )
