"""The SEU campaign runner: the simulator's Louvain test procedure.

Reproduces the measurement loop of section 6: run a self-checking test
program, let the beam strike the device, read the on-chip error-monitor
counters (ITE / IDE / DTE / DDE / RFE), verify the program's checksum, and
classify failures (error traps or software-detected corruption).

Time scaling
------------
Real beam runs inject ~1 upset per hundreds of milliseconds while the
device executes tens of millions of instructions per second.  Simulating
that literally is infeasible, so the campaign maps beam time to simulated
instructions through ``instructions_per_second`` -- the *virtual device
speed*.  Error counts and cross-sections are unbiased under this scaling
(every upset is still detected or missed by exactly the same program
logic); what accelerates is the ratio of upset arrivals to storage
*residency* time, which only matters for the multiple-error build-up
experiment (E6) where the flux axis is scaled accordingly (EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import LeonConfig
from repro.core.system import LeonSystem
from repro.errors import ConfigurationError
from repro.fault.beam import BeamParameters, HeavyIonBeam
from repro.fault.injector import FaultInjector
from repro.iu.pipeline import HaltReason
from repro.programs import ProgramHarness, build_cncf, build_iutest, build_paranoia

_BUILDERS = {
    "iutest": build_iutest,
    "paranoia": build_paranoia,
    "cncf": build_cncf,
}


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign run: a program under one beam setting."""

    program: str = "iutest"
    let: float = 110.0
    flux: float = 400.0  # ions / s / cm^2
    fluence: float = 1.0e4  # ions / cm^2 (the paper's runs: 1e5)
    seed: int = 1
    #: Virtual device speed: simulated instructions per beam second.
    instructions_per_second: float = 50_000.0
    #: Hard cap on simulated instructions (safety valve).
    max_instructions: int = 20_000_000
    #: Periodic cache flush, in instructions (0 = never).  Section 4.8:
    #: "In small programs, a cache flush could therefore periodically be
    #: performed to force a refresh of all cache contents" -- flushing
    #: discards latent cache errors before they can pair up.
    flush_period_instructions: int = 0
    leon: Optional[LeonConfig] = None
    program_kwargs: Dict = field(default_factory=dict)

    def beam_parameters(self) -> BeamParameters:
        return BeamParameters(let=self.let, flux=self.flux,
                              fluence=self.fluence, seed=self.seed)


@dataclass
class CampaignResult:
    """What the host computer logged for one run."""

    config: CampaignConfig
    counts: Dict[str, int]  # ITE IDE DTE DDE RFE Total
    upsets: int  # physical strikes applied
    upsets_by_target: Dict[str, int]
    sw_errors: int  # checksum mismatches the program caught
    error_traps: int  # unexpected traps (incl. register/memory error traps)
    halted: bool  # processor reached error mode
    iterations: int  # completed program self-check iterations
    instructions: int
    #: Host wall-clock time of the run, seconds (0.0 in pre-existing logs).
    wall_seconds: float = 0.0

    @property
    def instructions_per_second(self) -> float:
        """Host throughput of the run (simulated instructions / wall second)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.instructions / self.wall_seconds

    @property
    def failures(self) -> int:
        """Paper terminology: "error traps or software failures"."""
        return self.sw_errors + self.error_traps + (1 if self.halted else 0)

    @property
    def undetected_errors(self) -> int:
        """Errors that escaped the FT machinery and corrupted results."""
        return self.sw_errors

    def cross_section(self, kind: str = "Total") -> float:
        """Measured cross-section, cm^2: corrected errors per unit fluence."""
        return self.counts[kind] / self.config.fluence

    def cross_sections(self) -> Dict[str, float]:
        return {kind: count / self.config.fluence
                for kind, count in self.counts.items()}

    def row(self) -> Dict[str, object]:
        """One Table 2 row."""
        out: Dict[str, object] = {
            "TEST": self.config.program.upper()[:4],
            "LET": self.config.let,
        }
        out.update(self.counts)
        out["X-sect"] = self.cross_section("Total")
        return out


class Campaign:
    """Builds the device + beam and executes one (or more) runs."""

    def __init__(self, config: CampaignConfig) -> None:
        if config.program not in _BUILDERS:
            raise ConfigurationError(
                f"unknown test program {config.program!r} "
                f"(choose from {sorted(_BUILDERS)})")
        self.config = config
        self.leon_config = config.leon or LeonConfig.leon_express()

    def build_system(self) -> LeonSystem:
        return LeonSystem(self.leon_config)

    def run(self) -> CampaignResult:
        started = time.perf_counter()
        config = self.config
        system = self.build_system()
        builder = _BUILDERS[config.program]
        program, _expected = builder(self.leon_config, iterations=1_000_000,
                                     **config.program_kwargs)
        harness = ProgramHarness(system, program)
        injector = FaultInjector(system)
        beam = HeavyIonBeam(injector)
        params = config.beam_parameters()
        strikes = beam.schedule(params)

        spin = program.symbols["_trap_spin"]
        total_instructions = min(
            int(params.duration_s * config.instructions_per_second),
            config.max_instructions,
        )

        upsets_by_target: Dict[str, int] = {}
        state = {"executed": 0, "since_flush": 0, "failed": False}

        def run_until(target_instructions: int) -> None:
            """Advance execution, honouring the periodic cache flush.

            A failed run parks the program at ``_trap_spin``, so the stop
            condition is a plain PC compare -- ``stop_pc`` keeps the system
            on its tight :meth:`LeonSystem.run_fast` loop instead of paying
            a Python predicate call per step.
            """
            period = config.flush_period_instructions
            while state["executed"] < target_instructions and not state["failed"]:
                chunk = target_instructions - state["executed"]
                if period:
                    chunk = min(chunk, period - state["since_flush"])
                run = system.run(chunk, stop_pc=spin)
                state["executed"] += run.instructions
                state["since_flush"] += run.instructions
                if run.stop_reason in ("halted", "stop-pc", "predicate"):
                    state["failed"] = True
                    return
                if period and state["since_flush"] >= period:
                    system.icache.flush()
                    system.dcache.flush()
                    state["since_flush"] = 0

        for strike in strikes:
            strike_at = int(strike.time_s * config.instructions_per_second)
            strike_at = min(strike_at, total_instructions)
            run_until(strike_at)
            if state["failed"]:
                break
            beam.apply(strike)
            upsets_by_target[strike.target] = \
                upsets_by_target.get(strike.target, 0) + 1
            if strike.mbu:
                upsets_by_target[strike.target + "+mbu"] = \
                    upsets_by_target.get(strike.target + "+mbu", 0) + 1
        if not state["failed"]:
            run_until(total_instructions)
        executed = state["executed"]

        # Read out the result area the way the host computer would.
        layout = harness.layout
        read = system.read_word
        sw_errors = read(layout.result + 0x14)
        trapped = read(layout.result + 0x08) == 1
        iterations = read(layout.result + 0x10)

        counts = dict(system.errors.as_dict())
        upsets = sum(
            count for name, count in upsets_by_target.items()
            if not name.endswith("+mbu")
        )
        return CampaignResult(
            config=config,
            counts=counts,
            upsets=upsets,
            upsets_by_target=upsets_by_target,
            sw_errors=sw_errors,
            error_traps=int(trapped),
            halted=system.iu.halted is not HaltReason.RUNNING,
            iterations=iterations,
            instructions=executed,
            wall_seconds=time.perf_counter() - started,
        )
