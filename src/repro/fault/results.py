"""Crash-safe campaign result store: append-only JSONL with resume.

DAVOS-style campaign tooling treats the result log as first-class
infrastructure: a long campaign that dies at run 900 of 1000 must not
recompute the first 900.  :class:`ResultStore` appends one JSON line per
completed run as the executor collects it (``campaign --results``), and
``campaign --resume`` reloads the file, skips every config whose key is
already present, and runs only the remainder.

A run is keyed by the fields that determine its outcome (program, beam
setting, seed, timeline) -- :func:`config_key`.  Runs are pure functions of
their config, so a stored result is exactly what re-running would produce.

The device configuration (``CampaignConfig.leon``) is not serialized; the
store covers campaigns on the default device.  A truncated final line --
the signature of a crash mid-append -- is skipped on load.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, TextIO

from repro.errors import ConfigurationError
from repro.fault.campaign import CampaignConfig, CampaignResult

#: CampaignConfig fields serialized into the store (order fixed).
_CONFIG_FIELDS = (
    "program", "let", "flux", "fluence", "seed",
    "instructions_per_second", "max_instructions",
    "flush_period_instructions", "beam_delay_s", "beam_tail_s",
    "recovery",
)


def config_key(config: CampaignConfig) -> str:
    """Stable identity of one run, as a canonical JSON string."""
    if config.leon is not None:
        raise ConfigurationError(
            "the JSONL result store only supports the default device "
            "configuration (CampaignConfig.leon is set)")
    payload = {name: getattr(config, name) for name in _CONFIG_FIELDS}
    payload["program_kwargs"] = dict(sorted(config.program_kwargs.items()))
    # Fault-model fields serialize only when non-default, so every key
    # (and stored row) written before the model layer existed -- and every
    # default-model key after it -- stays byte-identical.
    if config.fault_model != "seu":
        payload["fault_model"] = config.fault_model
    if config.fault_params:
        payload["fault_params"] = dict(sorted(config.fault_params.items()))
    return json.dumps(payload, sort_keys=True)


def config_to_dict(config: CampaignConfig) -> dict:
    """JSON-serializable form of one config (the stored fields only)."""
    out = {
        **{name: getattr(config, name) for name in _CONFIG_FIELDS},
        "program_kwargs": dict(config.program_kwargs),
    }
    if config.fault_model != "seu":
        out["fault_model"] = config.fault_model
    if config.fault_params:
        out["fault_params"] = dict(config.fault_params)
    return out


def config_from_dict(payload: dict) -> CampaignConfig:
    """Rebuild a config from :func:`config_to_dict` output."""
    payload = dict(payload)
    kwargs = payload.pop("program_kwargs", {})
    fault_model = payload.pop("fault_model", "seu")
    fault_params = payload.pop("fault_params", {})
    return CampaignConfig(program_kwargs=kwargs, fault_model=fault_model,
                          fault_params=dict(fault_params), **payload)


def result_to_dict(result: CampaignResult) -> dict:
    """JSON-serializable form of one result (drops the leon sub-config)."""
    return {
        "config": config_to_dict(result.config),
        "counts": dict(result.counts),
        "upsets": result.upsets,
        "upsets_by_target": dict(result.upsets_by_target),
        "sw_errors": result.sw_errors,
        "error_traps": result.error_traps,
        "halted": result.halted,
        "iterations": result.iterations,
        "instructions": result.instructions,
        "wall_seconds": result.wall_seconds,
        "effaced": result.effaced,
        "cycles": result.cycles,
        "recoveries": dict(result.recoveries),
        "recovery_downtime": dict(result.recovery_downtime),
        "halts": result.halts,
        "unrecovered": result.unrecovered,
        "exit_reason": result.exit_reason,
        "graded_at_instruction": result.graded_at_instruction,
    }


def result_from_dict(payload: dict) -> CampaignResult:
    config = config_from_dict(payload["config"])
    return CampaignResult(
        config=config,
        counts=dict(payload["counts"]),
        upsets=payload["upsets"],
        upsets_by_target=dict(payload["upsets_by_target"]),
        sw_errors=payload["sw_errors"],
        error_traps=payload["error_traps"],
        halted=payload["halted"],
        iterations=payload["iterations"],
        instructions=payload["instructions"],
        wall_seconds=payload.get("wall_seconds", 0.0),
        effaced=payload.get("effaced", False),
        cycles=payload.get("cycles", 0),
        recoveries=dict(payload.get("recoveries", {})),
        recovery_downtime=dict(payload.get("recovery_downtime", {})),
        halts=payload.get("halts", 0),
        unrecovered=payload.get("unrecovered", False),
        # Early-exit grading fields: rows written before fast grading
        # existed lack them; they are execution annotations, so the
        # defaults keep old and new rows byte-comparable.
        exit_reason=payload.get("exit_reason", ""),
        graded_at_instruction=payload.get("graded_at_instruction"),
    )


class ResultStore:
    """Append-only JSONL store of campaign results, keyed by config.

    ``append`` flushes and fsyncs per batch so a killed campaign loses at
    most the runs of its in-flight chunk; ``load`` tolerates a truncated
    final line.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[TextIO] = None

    # -- writing ---------------------------------------------------------------

    def append(self, results: Iterable[CampaignResult]) -> None:
        if self._handle is None:
            self._trim_partial_tail()
            self._handle = open(self.path, "a", encoding="utf-8")
        handle = self._handle
        for result in results:
            handle.write(json.dumps(result_to_dict(result),
                                    sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def _trim_partial_tail(self) -> None:
        """Drop a half-written final line before the first append.

        A crash mid-append leaves the file without a trailing newline.
        ``load`` already skips that tail, but appending after it would
        glue the next result onto the partial line -- turning a
        recoverable truncation into an undecodable *mid-file* line that
        ``load`` treats as fatal.  Truncating back to the last complete
        line keeps resume crash-safe; the dropped run re-runs (it was
        never durably stored).
        """
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return  # no file yet: nothing to repair
        if size == 0:
            return
        with open(self.path, "rb+") as handle:
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) == b"\n":
                return
            handle.seek(0)
            data = handle.read()
            keep = data.rfind(b"\n") + 1  # 0 when no newline at all
            handle.truncate(keep)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading ---------------------------------------------------------------

    def load(self) -> Dict[str, CampaignResult]:
        """All stored results keyed by :func:`config_key`.

        Later lines win on duplicate keys (a re-run supersedes).  Undecodable
        lines are skipped only at the file tail (crash truncation); garbage
        in the middle raises.
        """
        results: Dict[str, CampaignResult] = {}
        if not os.path.exists(self.path):
            return results
        with open(self.path, encoding="utf-8") as handle:
            lines = handle.readlines()
        for number, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                result = result_from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                if number == len(lines) - 1:
                    break  # crash-truncated tail: drop it and resume
                raise ConfigurationError(
                    f"{self.path}:{number + 1}: undecodable result line "
                    f"({exc})") from None
            results[config_key(result.config)] = result
        return results

    def split_pending(
        self, configs: Iterable[CampaignConfig]
    ) -> "tuple[Dict[str, CampaignResult], List[CampaignConfig]]":
        """Partition configs into (already-stored results, still-to-run)."""
        stored = self.load()
        done: Dict[str, CampaignResult] = {}
        pending: List[CampaignConfig] = []
        for config in configs:
            key = config_key(config)
            if key in stored:
                done[key] = stored[key]
            else:
                pending.append(config)
        return done, pending
