"""The heavy-ion beam model: Weibull cross-sections and Poisson arrivals.

Calibration (documented in EXPERIMENTS.md) follows the paper's prose:

* the device SEU threshold "was measured to be below 6 MeV" -- the Weibull
  onset is placed at 4 MeV;
* the RAM cell area is ~10 mm2 (0.1 cm2) of the ~40 mm2 die, and about 10 %
  of the RAM cell area is SEU sensitive at saturation, so the summed
  saturation cross-section over all RAM bits is ~0.01 cm2;
* TMR flip-flops upset physically but correct silently ("the cross-section
  for the flip-flops could not be measured since no SEU monitoring
  capability is implemented in the TMR cells") -- they stay in the strike
  population but produce no counter increments;
* dense RAM blocks can take multiple-bit upsets in adjacent cells
  (section 4.3 [10]); the MBU fraction grows with LET.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ConfigurationError, StateError
from repro.fault.injector import FaultInjector
from repro.state.snapshot import capture_rng, restore_rng

#: Die area of the LEON-Express device, cm^2 ("roughly 40 mm2", section 5.3).
DIE_AREA_CM2 = 0.40

#: RAM cell area, cm^2 ("the ram size of 10 mm2", section 6).
RAM_AREA_CM2 = 0.10

#: Fraction of the RAM cell area that is SEU-sensitive at saturation
#: ("10% of the ram cell area is sensitive to SEU hits", section 6).
SENSITIVE_FRACTION = 0.10


@dataclass(frozen=True)
class WeibullCrossSection:
    """sigma(LET) = sat * (1 - exp(-((LET - onset) / width)^shape)).

    The standard four-parameter Weibull used for SEU rate prediction
    [Koga et al., ref 5 of the paper].
    """

    sat: float  # saturation cross-section, cm^2 (per bit)
    onset: float = 4.0  # threshold LET, MeV.cm^2/mg
    width: float = 40.0
    shape: float = 1.4

    def at(self, let: float) -> float:
        if let <= self.onset:
            return 0.0
        return self.sat * (1.0 - math.exp(-(((let - self.onset) / self.width) ** self.shape)))


@dataclass(frozen=True)
class BeamParameters:
    """One beam setting, as dialled at the cyclotron."""

    let: float  # effective LET, MeV.cm^2/mg
    flux: float  # ions / s / cm^2
    fluence: float  # total ions / cm^2 for the run
    seed: int = 1

    @property
    def particles(self) -> int:
        """Ions through the die area (the paper's 'particles injected').

        Rounded to nearest, not truncated: a fluence dialled to deliver
        39999.6 ions must not silently drop one.
        """
        return round(self.fluence * DIE_AREA_CM2)

    @property
    def duration_s(self) -> float:
        if self.flux <= 0.0:
            raise ConfigurationError(
                f"beam flux must be positive to give the run a duration "
                f"(flux={self.flux!r} ions/s/cm^2)")
        return self.fluence / self.flux


@dataclass
class Strike:
    """One scheduled upset: beam time, target, flat bit, MBU flag."""

    time_s: float
    target: str
    flat_bit: int
    mbu: bool


class HeavyIonBeam:
    """Monte-Carlo beam: schedules strikes over a run and applies them.

    The per-bit saturation cross-section is derived from the paper's RAM
    geometry: ``RAM_AREA * SENSITIVE_FRACTION / total RAM bits``, so the
    summed device cross-section saturates near 0.01 cm2 as measured.
    Flip-flops get a smaller per-bit sigma (large cells, higher critical
    charge); the single clock pad is given a vanishing cross-section
    (section 4.5).
    """

    #: Targets dense enough for adjacent-cell multiple-bit upsets
    #: (section 4.3 worries about MBU only "in dense ram blocks"; the
    #: large multi-port register-file cells and TMR flip-flops are not).
    MBU_ELIGIBLE = frozenset({"icache-tag", "icache-data",
                              "dcache-tag", "dcache-data"})

    #: Per-bit sigma scale factors relative to the RAM baseline.
    RELATIVE_SIGMA = {
        "regfile": 1.2,  # multi-port cells are larger
        "fpregs": 1.2,
        "flipflops": 0.5,
        "ext-prom": 0.0,  # external memory is not under the beam
        "ext-sram": 0.0,
        "ext-io": 0.0,
    }

    def __init__(self, injector: FaultInjector, *,
                 mbu_onset_let: float = 20.0,
                 mbu_max_fraction: float = 0.12) -> None:
        self.injector = injector
        self.mbu_onset_let = mbu_onset_let
        self.mbu_max_fraction = mbu_max_fraction
        ram_bits = sum(
            target.bits for name, target in injector.targets.items()
            if self.RELATIVE_SIGMA.get(name, 1.0) > 0
        )
        if ram_bits == 0:
            raise ConfigurationError("no strikable storage in this system")
        self._sigma_bit_sat = RAM_AREA_CM2 * SENSITIVE_FRACTION / ram_bits  # state: config -- die geometry constant derived from target sizes
        # Incremental-scheduling state (None until begin() is called).
        self._params: "BeamParameters | None" = None
        self._rng: "random.Random | None" = None
        self._rate = 0.0  # state: wiring -- scheduling state, rebuilt by begin()
        self._names: List[str] = []  # state: wiring -- scheduling state, rebuilt by begin()
        self._weights: List[float] = []  # state: wiring -- scheduling state, rebuilt by begin()
        self._mbu_p = 0.0  # state: wiring -- scheduling state, rebuilt by begin()
        self._time_s = 0.0

    # -- cross-section queries ------------------------------------------------------

    def bit_cross_section(self, target_name: str) -> WeibullCrossSection:
        scale = self.RELATIVE_SIGMA.get(target_name, 1.0)
        return WeibullCrossSection(sat=self._sigma_bit_sat * scale)

    def target_cross_section(self, target_name: str, let: float) -> float:
        """sigma(LET) summed over all bits of one target, cm^2."""
        target = self.injector.targets[target_name]
        return self.bit_cross_section(target_name).at(let) * target.bits

    def device_cross_section(self, let: float) -> float:
        """Physical (upset) cross-section of the whole die, cm^2.

        The *measured* cross-section of the paper is smaller: it only counts
        upsets that a program detects; the campaign computes that one.
        """
        return sum(
            self.target_cross_section(name, let) for name in self.injector.targets
        )

    def mbu_fraction(self, let: float) -> float:
        """Probability that an upset is a double (adjacent-cell) upset."""
        if let <= self.mbu_onset_let:
            return 0.0
        span = 110.0 - self.mbu_onset_let
        return self.mbu_max_fraction * min(1.0, (let - self.mbu_onset_let) / span)

    # -- strike scheduling --------------------------------------------------------------

    def expected_upsets(self, params: BeamParameters) -> float:
        return params.fluence * self.device_cross_section(params.let)

    def begin(self, params: BeamParameters) -> None:
        """Arm the incremental scheduler: seed the RNG, precompute weights."""
        self._params = params
        self._rng = random.Random(params.seed)
        self._rate = params.flux * self.device_cross_section(params.let)
        self._names = list(self.injector.targets)
        self._weights = [
            self.injector.targets[name].bits * self.bit_cross_section(name).at(params.let)
            for name in self._names
        ]
        self._mbu_p = self.mbu_fraction(params.let)
        self._time_s = 0.0

    def next_strike(self) -> "Strike | None":
        """Draw the next strike, or None when the run's beam time is over.

        The draw order per strike (arrival, target, bit, MBU) is part of the
        recorded-results contract: changing it changes every seeded run.
        """
        if self._rng is None:
            raise ConfigurationError("next_strike() before begin()")
        if self._rate <= 0:
            return None
        rng = self._rng
        self._time_s += rng.expovariate(self._rate)
        if self._time_s >= self._params.duration_s:
            return None
        name = rng.choices(self._names, weights=self._weights, k=1)[0]
        flat_bit = rng.randrange(self.injector.targets[name].bits)
        mbu = name in self.MBU_ELIGIBLE and rng.random() < self._mbu_p
        return Strike(self._time_s, name, flat_bit, mbu)

    def schedule(self, params: BeamParameters) -> List[Strike]:
        """Draw the full strike schedule for one beam run.

        Upset arrivals are Poisson with rate flux * sigma_device(LET); each
        strike picks a target weighted by its sigma-scaled bit count and a
        uniform bit within it.
        """
        self.begin(params)
        strikes: List[Strike] = []
        while True:
            strike = self.next_strike()
            if strike is None:
                return strikes
            strikes.append(strike)

    # -- state capture --------------------------------------------------------------

    def capture(self) -> dict:
        """Scheduler state: beam parameters, elapsed beam time, RNG state."""
        if self._params is None or self._rng is None:
            raise StateError("cannot capture a beam before begin()")
        params = self._params
        return {
            "let": params.let,
            "flux": params.flux,
            "fluence": params.fluence,
            "seed": params.seed,
            "time_s": self._time_s,
            "rng": capture_rng(self._rng),
        }

    def restore(self, state: dict) -> None:
        params = BeamParameters(let=state["let"], flux=state["flux"],
                                fluence=state["fluence"], seed=state["seed"])
        self.begin(params)
        self._time_s = float(state["time_s"])
        restore_rng(self._rng, state["rng"])

    def apply(self, strike: Strike) -> None:
        """Land one strike (and its MBU companion, if any) on the device."""
        self.injector.inject(strike.target, strike.flat_bit)
        if strike.mbu and self.injector.targets[strike.target].bits_per_word:
            self.injector.inject_adjacent(strike.target, strike.flat_bit)

    def iter_run(self, params: BeamParameters) -> Iterator[Strike]:
        """Generator over the run's strikes in time order."""
        for strike in self.schedule(params):
            yield strike
