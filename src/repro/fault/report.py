"""Reporting helpers for campaign results: tables, CSV, JSON.

The paper's host computer logged counter read-outs per run; these helpers
are the modern equivalent for downstream users -- render Table 2-style
text, or export the raw rows for plotting.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Sequence

from repro.fault.campaign import CampaignResult

#: Column order of a Table 2 row.
TABLE2_COLUMNS = ("TEST", "LET", "ITE", "IDE", "DTE", "DDE", "RFE",
                  "Total", "X-sect")


def table2_rows(results: Sequence[CampaignResult]) -> List[Dict[str, object]]:
    """One dict per campaign run, in Table 2 column order."""
    rows = []
    for result in results:
        row = result.row()
        row["X-sect"] = f"{result.cross_section():.2E}"
        rows.append(row)
    return rows


def render_table(rows: Sequence[Dict[str, object]],
                 columns: Sequence[str]) -> str:
    """Fixed-width plain-text table."""
    widths = {
        column: max(len(str(column)),
                    *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(
            str(row.get(column, "")).ljust(widths[column]) for column in columns
        ))
    return "\n".join(lines)


def render_table2(results: Sequence[CampaignResult]) -> str:
    """The full Table 2 text block for a list of runs."""
    return render_table(table2_rows(results), TABLE2_COLUMNS)


def to_csv(results: Sequence[CampaignResult]) -> str:
    """CSV export (string) of the Table 2 rows plus failure bookkeeping."""
    buffer = io.StringIO()
    columns = list(TABLE2_COLUMNS) + ["upsets", "sw_errors", "error_traps",
                                      "halted", "fluence", "flux"]
    writer = csv.DictWriter(buffer, fieldnames=columns)
    writer.writeheader()
    for result in results:
        row = result.row()
        row["X-sect"] = result.cross_section()
        row.update({
            "upsets": result.upsets,
            "sw_errors": result.sw_errors,
            "error_traps": result.error_traps,
            "halted": int(result.halted),
            "fluence": result.config.fluence,
            "flux": result.config.flux,
        })
        writer.writerow(row)
    return buffer.getvalue()


def to_json(results: Sequence[CampaignResult]) -> str:
    """JSON export with the full per-run detail."""
    payload = []
    for result in results:
        payload.append({
            "program": result.config.program,
            "let": result.config.let,
            "flux": result.config.flux,
            "fluence": result.config.fluence,
            "seed": result.config.seed,
            "counts": result.counts,
            "cross_sections": result.cross_sections(),
            "upsets": result.upsets,
            "upsets_by_target": result.upsets_by_target,
            "sw_errors": result.sw_errors,
            "error_traps": result.error_traps,
            "halted": result.halted,
            "iterations": result.iterations,
            "instructions": result.instructions,
            "failures": result.failures,
        })
    return json.dumps(payload, indent=2)
