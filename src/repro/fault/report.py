"""Reporting helpers for campaign results: tables, CSV, JSON.

The paper's host computer logged counter read-outs per run; these helpers
are the modern equivalent for downstream users -- render Table 2-style
text, or export the raw rows for plotting.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Sequence

from repro.fault.campaign import CampaignResult

#: Column order of a Table 2 row.
TABLE2_COLUMNS = ("TEST", "LET", "ITE", "IDE", "DTE", "DDE", "RFE",
                  "Total", "X-sect")


def table2_rows(results: Sequence[CampaignResult]) -> List[Dict[str, object]]:
    """One dict per campaign run, in Table 2 column order."""
    rows = []
    for result in results:
        row = result.row()
        row["X-sect"] = f"{result.cross_section():.2E}"
        rows.append(row)
    return rows


def render_table(rows: Sequence[Dict[str, object]],
                 columns: Sequence[str]) -> str:
    """Fixed-width plain-text table."""
    widths = {
        column: max(len(str(column)),
                    *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(
            str(row.get(column, "")).ljust(widths[column]) for column in columns
        ))
    return "\n".join(lines)


def render_table2(results: Sequence[CampaignResult]) -> str:
    """The full Table 2 text block for a list of runs."""
    return render_table(table2_rows(results), TABLE2_COLUMNS)


def to_csv(results: Sequence[CampaignResult]) -> str:
    """CSV export (string) of the Table 2 rows plus failure bookkeeping."""
    buffer = io.StringIO()
    columns = list(TABLE2_COLUMNS) + ["upsets", "sw_errors", "error_traps",
                                      "halted", "fluence", "flux",
                                      "recoveries", "downtime_cycles"]
    writer = csv.DictWriter(buffer, fieldnames=columns)
    writer.writeheader()
    for result in results:
        row = result.row()
        row["X-sect"] = result.cross_section()
        row.update({
            "upsets": result.upsets,
            "sw_errors": result.sw_errors,
            "error_traps": result.error_traps,
            "halted": int(result.halted),
            "fluence": result.config.fluence,
            "flux": result.config.flux,
            "recoveries": result.recovery_events,
            "downtime_cycles": result.downtime_cycles,
        })
        writer.writerow(row)
    return buffer.getvalue()


def to_json(results: Sequence[CampaignResult]) -> str:
    """JSON export with the full per-run detail."""
    payload = []
    for result in results:
        payload.append({
            "program": result.config.program,
            "let": result.config.let,
            "flux": result.config.flux,
            "fluence": result.config.fluence,
            "seed": result.config.seed,
            "counts": result.counts,
            "cross_sections": result.cross_sections(),
            "upsets": result.upsets,
            "upsets_by_target": result.upsets_by_target,
            "sw_errors": result.sw_errors,
            "error_traps": result.error_traps,
            "halted": result.halted,
            "iterations": result.iterations,
            "instructions": result.instructions,
            "failures": result.failures,
            "cycles": result.cycles,
            "recoveries": result.recoveries,
            "recovery_downtime": result.recovery_downtime,
            "downtime_cycles": result.downtime_cycles,
            "mttr_cycles": result.mttr_cycles,
            "halts": result.halts,
            "unrecovered": result.unrecovered,
            "exit_reason": result.exit_reason,
            "graded_at_instruction": result.graded_at_instruction,
        })
    return json.dumps(payload, indent=2)


def render_recovery_summary(results: Sequence[CampaignResult]) -> str:
    """The recovery block a ``campaign --recovery`` run prints.

    Per-level action counts and downtime, total downtime, MTTR and the
    in-beam availability, aggregated over the runs."""
    recoveries: Dict[str, int] = {}
    downtime: Dict[str, int] = {}
    halts = 0
    unrecovered = 0
    cycles = 0
    for result in results:
        halts += result.halts
        unrecovered += int(result.unrecovered)
        cycles += result.cycles
        for level, count in result.recoveries.items():
            recoveries[level] = recoveries.get(level, 0) + count
        for level, value in result.recovery_downtime.items():
            downtime[level] = downtime.get(level, 0) + value
    events = sum(recoveries.values())
    total_down = sum(downtime.values())
    lines = ["recovery summary"]
    for level in ("pipeline-restart", "cache-flush", "warm-reset",
                  "cold-reboot"):
        if level not in recoveries:
            continue
        lines.append(f"  {level:<17} x{recoveries[level]:<5} "
                     f"{downtime.get(level, 0):>9} cycles")
    lines.append(f"  recovered halts   {halts}")
    lines.append(f"  unrecovered runs  {unrecovered}")
    lines.append(f"  downtime          {total_down} cycles")
    mttr = total_down / events if events else 0.0
    lines.append(f"  MTTR              {mttr:.0f} cycles")
    if cycles > 0:
        lines.append(f"  availability      {1.0 - total_down / cycles:.6f}")
    return "\n".join(lines)
