"""Detection-latency analysis: how long errors stay latent (section 4.8).

"The data in caches and register file is only checked for errors when
accessed, and the probability of undetected multiple errors will increase
if stored data is not regularly used."

This module measures that quantitatively: inject single upsets one at a
time while a test program runs, and record how many instructions pass
before the FT machinery detects each one (or give up after a window --
the *latent* population).  The latency distribution per target is the
direct input to the multiple-error build-up risk: the longer a bit stays
latent, the larger the window for a second upset to pair with it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import LeonConfig
from repro.core.system import LeonSystem
from repro.errors import ConfigurationError
from repro.fault.injector import FaultInjector
from repro.programs import ProgramHarness, build_cncf, build_iutest, build_paranoia

_BUILDERS = {
    "iutest": build_iutest,
    "paranoia": build_paranoia,
    "cncf": build_cncf,
}


@dataclass
class LatencySample:
    """One injected upset and its fate."""

    target: str
    flat_bit: int
    detected: bool
    latency_instructions: int  # instructions until detection (if detected)


@dataclass
class LatencyReport:
    """Detection-latency statistics for one program."""

    program: str
    window_instructions: int
    samples: List[LatencySample] = field(default_factory=list)

    def for_target(self, target: str) -> List[LatencySample]:
        return [sample for sample in self.samples if sample.target == target]

    def detection_fraction(self, target: Optional[str] = None) -> float:
        samples = self.for_target(target) if target else self.samples
        if not samples:
            return 0.0
        return sum(sample.detected for sample in samples) / len(samples)

    def mean_latency(self, target: Optional[str] = None) -> float:
        samples = [sample for sample in
                   (self.for_target(target) if target else self.samples)
                   if sample.detected]
        if not samples:
            return float("inf")
        return sum(sample.latency_instructions for sample in samples) / len(samples)

    def summary_rows(self) -> List[Dict[str, object]]:
        targets = sorted({sample.target for sample in self.samples})
        rows = []
        for target in targets:
            rows.append({
                "target": target,
                "samples": len(self.for_target(target)),
                "detected": f"{self.detection_fraction(target) * 100:.0f}%",
                "mean latency":
                    ("-" if self.mean_latency(target) == float("inf")
                     else f"{self.mean_latency(target):.0f} instr"),
            })
        return rows


def measure_detection_latency(
    program: str = "iutest",
    *,
    strikes: int = 40,
    window_instructions: int = 60_000,
    seed: int = 1,
    leon: Optional[LeonConfig] = None,
    targets: Optional[List[str]] = None,
    program_kwargs: Optional[dict] = None,
    warmup_range: tuple = (30_000, 90_000),
) -> LatencyReport:
    """Measure per-upset detection latency under ``program``.

    Each trial uses a fresh system: one upset is injected at a random
    (area-weighted) location after a random warm-up, then the program runs
    up to ``window_instructions`` while the error counters are watched.
    ``warmup_range`` defaults past the program's initialization epoch so
    strikes land in steady state (a strike into a region the program is
    *still writing* is silently erased -- real, but not the latency being
    measured).
    """
    if program not in _BUILDERS:
        raise ConfigurationError(f"unknown program {program!r}")
    leon = leon or LeonConfig.leon_express()
    rng = random.Random(seed)
    report = LatencyReport(program, window_instructions)
    builder = _BUILDERS[program]

    for _trial in range(strikes):
        system = LeonSystem(leon)
        built, _expected = builder(leon, iterations=1_000_000,
                                   **(program_kwargs or {}))
        harness = ProgramHarness(system, built)
        injector = FaultInjector(system)
        pool = targets or [name for name in injector.targets
                           if name != "flipflops"]
        warmup = rng.randrange(*warmup_range)
        system.run(warmup)

        name = rng.choices(pool,
                           weights=[injector.targets[t].bits for t in pool],
                           k=1)[0]
        flat_bit = rng.randrange(injector.targets[name].bits)
        injector.inject(name, flat_bit)

        before = system.errors.total + system.errors.register_error_traps \
            + system.errors.memory_error_traps
        executed = 0
        detected = False
        chunk = 2_000
        while executed < window_instructions:
            run = system.run(min(chunk, window_instructions - executed))
            executed += run.instructions
            now = system.errors.total + system.errors.register_error_traps \
                + system.errors.memory_error_traps
            if now > before:
                detected = True
                break
            if run.stop_reason == "halted":
                detected = True  # it certainly made itself known
                break
        report.samples.append(LatencySample(name, flat_bit, detected,
                                            executed if detected else -1))
        _ = harness  # keeps the harness alive for the run
    return report
