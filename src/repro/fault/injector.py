"""The SEU target registry and deterministic fault injector.

Every sequential-cell group of the device (the three groups of section 4.2
plus the FPU register file) is an injectable target with a known bit count.
The beam chooses *where* a strike lands weighted by bit count (uniform area
density); tests use the deterministic per-target API directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.system import LeonSystem
from repro.errors import InjectionError


@dataclass(frozen=True)
class SeuTarget:
    """One injectable storage group."""

    name: str
    bits: int
    inject_flat: Callable[[int], object]
    #: Physical RAM geometry: consecutive flat bits within one word are
    #: adjacent cells (for the MBU model); flip-flops have no row geometry.
    bits_per_word: int = 0


class FaultInjector:
    """Enumerates and strikes the SEU-sensitive storage of one system."""

    def __init__(self, system: LeonSystem, *,
                 include_external_memory: bool = False) -> None:
        self.system = system
        self.targets: Dict[str, SeuTarget] = {}  # state: wiring -- target registry, rebuilt by _build_targets()
        self._build_targets(include_external_memory)
        self.injections: List[str] = []

    def _build_targets(self, include_external_memory: bool) -> None:
        system = self.system
        icache, dcache = system.icache, system.dcache
        self._add(SeuTarget(
            "icache-tag", icache.tag_ram.total_bits,
            icache.tag_ram.inject_flat, icache.tag_ram.bits_per_word))
        self._add(SeuTarget(
            "icache-data", icache.data_ram.total_bits,
            icache.data_ram.inject_flat, icache.data_ram.bits_per_word))
        self._add(SeuTarget(
            "dcache-tag", dcache.tag_ram.total_bits,
            dcache.tag_ram.inject_flat, dcache.tag_ram.bits_per_word))
        self._add(SeuTarget(
            "dcache-data", dcache.data_ram.total_bits,
            dcache.data_ram.inject_flat, dcache.data_ram.bits_per_word))
        regfile = system.regfile
        self._add(SeuTarget(
            "regfile", regfile.total_bits, regfile.inject_flat,
            regfile.bits_per_word))
        if system.fpu is not None:
            fpu = system.fpu
            per_word = fpu.bits_per_word  # f-regs share the regfile scheme

            def inject_fpreg(flat_bit: int):
                index, bit = divmod(flat_bit, per_word)
                fpu.inject(index, bit)
                return index, bit

            self._add(SeuTarget("fpregs", 32 * per_word, inject_fpreg, per_word))

        ffbank = system.ffbank

        def inject_ff(flat_bit: int):
            name = ffbank.inject_flat(flat_bit, lane=0)
            system.mark_ffbank_dirty()
            return name

        self._add(SeuTarget("flipflops", ffbank.total_bits, inject_ff, 0))

        if include_external_memory:
            for memory in (system.memctrl.prom_memory, system.memctrl.sram_memory,
                           system.memctrl.io_memory):
                self._add(SeuTarget(
                    f"ext-{memory.name}", memory.total_bits, memory.inject_flat,
                    39 if memory.edac else 32))

    def _add(self, target: SeuTarget) -> None:
        self.targets[target.name] = target

    # -- queries ---------------------------------------------------------------

    @property
    def total_bits(self) -> int:
        return sum(target.bits for target in self.targets.values())

    def target(self, name: str) -> SeuTarget:
        try:
            return self.targets[name]
        except KeyError:
            known = ", ".join(sorted(self.targets))
            raise InjectionError(f"unknown target {name!r} (known: {known})") from None

    def locate(self, name: str, flat_bit: int) -> Optional[int]:
        """Physical word index a flat bit lands in, for telemetry
        correlation: the same index the protection layer reports when it
        detects the error.  ``None`` for targets without word geometry
        (flip-flops)."""
        target = self.target(name)
        if name == "regfile":
            regfile = self.system.regfile
            per_copy = regfile.words * regfile.bits_per_word
            return (flat_bit % per_copy) // regfile.bits_per_word
        if target.bits_per_word:
            return flat_bit // target.bits_per_word
        return None

    def is_latent(self, name: str, word: Optional[int]) -> bool:
        """Is an undetected upset at this site still resident at end of
        run (latent), as opposed to overwritten unobserved (masked)?"""
        system = self.system
        if name == "icache-tag":
            return word in system.icache.tag_ram._suspect
        if name == "icache-data":
            return word in system.icache.data_ram._suspect
        if name == "dcache-tag":
            return word in system.dcache.tag_ram._suspect
        if name == "dcache-data":
            return word in system.dcache.data_ram._suspect
        if name == "regfile":
            return word in system.regfile._suspect
        if name == "fpregs":
            fpu = system.fpu
            if fpu is None or word is None:
                return True
            return fpu.codec.encode(fpu._regs[word]) != fpu._checks[word]
        if name == "flipflops":
            # With TMR a pending scrub still holds the corruption; without
            # TMR the flipped lane is never repaired at all.
            if not system.ffbank.tmr:
                return True
            return system._ffbank_dirty
        # External memories carry no suspect tracking; treat an
        # undetected upset there as resident.
        return True

    # -- state capture ---------------------------------------------------------

    def capture(self) -> dict:
        """The injection log (the injector itself is stateless otherwise)."""
        return {"injections": tuple(self.injections)}

    def restore(self, state: dict) -> None:
        self.injections = list(state["injections"])

    # -- injection ----------------------------------------------------------------

    def inject(self, name: str, flat_bit: int) -> None:
        """Deterministic strike: flip one specific stored bit."""
        target = self.target(name)
        if not 0 <= flat_bit < target.bits:
            raise InjectionError(
                f"flat bit {flat_bit} outside target {name!r} ({target.bits} bits)")
        target.inject_flat(flat_bit)
        self.injections.append(name)

    def inject_random(self, rng: random.Random,
                      weights: Optional[Dict[str, float]] = None) -> str:
        """Area-weighted random strike; returns the struck target name.

        ``weights`` scales each target's effective area (the beam passes
        sigma(LET) ratios here); unlisted targets get weight 1.
        """
        names = list(self.targets)
        areas = [
            self.targets[name].bits * (weights.get(name, 1.0) if weights else 1.0)
            for name in names
        ]
        name = rng.choices(names, weights=areas, k=1)[0]
        target = self.targets[name]
        self.inject(name, rng.randrange(target.bits))
        return name

    def inject_adjacent(self, name: str, flat_bit: int) -> int:
        """MBU companion strike: flip the cell adjacent to ``flat_bit``.

        Adjacent means the next bit in the same physical RAM row; at a row
        boundary the previous bit is used instead.  Flip-flop targets have
        no row geometry; the companion is the next flip-flop bit.
        """
        target = self.target(name)
        row = target.bits_per_word or target.bits
        neighbour = flat_bit + 1
        if neighbour % row == 0 or neighbour >= target.bits:
            neighbour = flat_bit - 1
        if neighbour < 0:
            raise InjectionError("target too small for an adjacent strike")
        target.inject_flat(neighbour)
        self.injections.append(f"{name}+mbu")
        return neighbour
