"""The SEU target registry and deterministic fault injector.

Every sequential-cell group of the device (the three groups of section 4.2
plus the FPU register file) is an injectable target with a known bit count.
The beam chooses *where* a strike lands weighted by bit count (uniform area
density); tests use the deterministic per-target API directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.system import LeonSystem
from repro.errors import InjectionError


@dataclass(frozen=True)
class SeuTarget:
    """One injectable storage group."""

    name: str
    bits: int
    inject_flat: Callable[[int], object]
    #: Physical RAM geometry: consecutive flat bits within one word are
    #: adjacent cells (for the MBU model); flip-flops have no row geometry.
    bits_per_word: int = 0
    #: Read the current value of one stored bit (persistent-fault support);
    #: None for targets that cannot host stuck-at cells.
    peek_flat: Optional[Callable[[int], int]] = None


@dataclass(frozen=True)
class PersistentFault:
    """One stuck-at cell: a flat bit pinned to ``value`` until reset."""

    name: str
    flat_bit: int
    value: int


def _cache_peek(ram) -> Callable[[int], int]:
    """Peek closure over a cache RAM (32-bit data plane + check plane)."""
    def peek(flat_bit: int) -> int:
        index, bit = divmod(flat_bit, ram.bits_per_word)
        data, check = ram.read_raw(index)
        if bit < 32:
            return (data >> bit) & 1
        return (check >> (bit - 32)) & 1
    return peek


def _regfile_peek(regfile) -> Callable[[int], int]:
    """Peek closure mirroring ``RegisterFile.inject_flat`` addressing."""
    def peek(flat_bit: int) -> int:
        per_copy = regfile.words * regfile.bits_per_word
        copy, rest = divmod(flat_bit, per_copy)
        physical, bit = divmod(rest, regfile.bits_per_word)
        if bit < 32:
            return (regfile._data[copy][physical] >> bit) & 1
        return (regfile._check[copy][physical] >> (bit - 32)) & 1
    return peek


def _memory_peek(memory) -> Callable[[int], int]:
    """Peek closure mirroring ``ExternalMemory.inject_flat`` addressing."""
    per_word = 39 if memory.edac else 32

    def peek(flat_bit: int) -> int:
        index, bit = divmod(flat_bit, per_word)
        data, check = memory.read_raw(index * 4)
        if bit < 32:
            return (data >> bit) & 1
        return (check >> (bit - 32)) & 1
    return peek


class FaultInjector:
    """Enumerates and strikes the SEU-sensitive storage of one system."""

    def __init__(self, system: LeonSystem, *,
                 include_external_memory: bool = False) -> None:
        self.system = system
        self.targets: Dict[str, SeuTarget] = {}  # state: wiring -- target registry, rebuilt by _build_targets()
        self._build_targets(include_external_memory)
        self.injections: List[str] = []
        #: Registered stuck-at cells, re-asserted by the campaign at every
        #: execution-chunk boundary (:meth:`reassert_persistent`).
        self._persistent: List[PersistentFault] = []

    def _build_targets(self, include_external_memory: bool) -> None:
        system = self.system
        icache, dcache = system.icache, system.dcache
        for name, ram in (("icache-tag", icache.tag_ram),
                          ("icache-data", icache.data_ram),
                          ("dcache-tag", dcache.tag_ram),
                          ("dcache-data", dcache.data_ram)):
            self._add(SeuTarget(
                name, ram.total_bits, ram.inject_flat, ram.bits_per_word,
                peek_flat=_cache_peek(ram)))
        regfile = system.regfile
        self._add(SeuTarget(
            "regfile", regfile.total_bits, regfile.inject_flat,
            regfile.bits_per_word, peek_flat=_regfile_peek(regfile)))
        if system.fpu is not None:
            fpu = system.fpu
            per_word = fpu.bits_per_word  # f-regs share the regfile scheme

            def inject_fpreg(flat_bit: int):
                index, bit = divmod(flat_bit, per_word)
                fpu.inject(index, bit)
                return index, bit

            def peek_fpreg(flat_bit: int) -> int:
                index, bit = divmod(flat_bit, per_word)
                if bit < 32:
                    return (fpu._regs[index] >> bit) & 1
                return (fpu._checks[index] >> (bit - 32)) & 1

            self._add(SeuTarget("fpregs", 32 * per_word, inject_fpreg, per_word,
                                peek_flat=peek_fpreg))

        ffbank = system.ffbank

        def inject_ff(flat_bit: int):
            name = ffbank.inject_flat(flat_bit, lane=0)
            system.mark_ffbank_dirty()
            return name

        def peek_ff(flat_bit: int) -> int:
            # Lane 0 -- the lane inject_flat flips.  With TMR the voter
            # out-votes a single stuck lane, which is the correct physics.
            reg, bit = ffbank.locate_bit(flat_bit)
            return (reg.lane_value(0) >> bit) & 1

        self._add(SeuTarget("flipflops", ffbank.total_bits, inject_ff, 0,
                            peek_flat=peek_ff))

        if include_external_memory:
            for memory in (system.memctrl.prom_memory, system.memctrl.sram_memory,
                           system.memctrl.io_memory):
                self._add(SeuTarget(
                    f"ext-{memory.name}", memory.total_bits, memory.inject_flat,
                    39 if memory.edac else 32,
                    peek_flat=_memory_peek(memory)))

    def _add(self, target: SeuTarget) -> None:
        self.targets[target.name] = target

    # -- queries ---------------------------------------------------------------

    @property
    def total_bits(self) -> int:
        return sum(target.bits for target in self.targets.values())

    def target(self, name: str) -> SeuTarget:
        try:
            return self.targets[name]
        except KeyError:
            known = ", ".join(sorted(self.targets))
            raise InjectionError(f"unknown target {name!r} (known: {known})") from None

    def locate(self, name: str, flat_bit: int) -> Optional[int]:
        """Physical word index a flat bit lands in, for telemetry
        correlation: the same index the protection layer reports when it
        detects the error.  ``None`` for targets without word geometry
        (flip-flops)."""
        target = self.target(name)
        if name == "regfile":
            regfile = self.system.regfile
            per_copy = regfile.words * regfile.bits_per_word
            return (flat_bit % per_copy) // regfile.bits_per_word
        if target.bits_per_word:
            return flat_bit // target.bits_per_word
        return None

    def is_latent(self, name: str, word: Optional[int]) -> bool:
        """Is an undetected upset at this site still resident at end of
        run (latent), as opposed to overwritten unobserved (masked)?"""
        system = self.system
        # A stuck-at cell is latent by definition until repaired: rewriting
        # the golden value does not remove the defect, so a persistent
        # fault at this site must never downgrade to "masked" even after
        # the suspect marking was cleared by a rewrite.
        for entry in self._persistent:
            if entry.name != name:
                continue
            if word is None or self.locate(name, entry.flat_bit) == word:
                return True
        if name == "icache-tag":
            return word in system.icache.tag_ram._suspect
        if name == "icache-data":
            return word in system.icache.data_ram._suspect
        if name == "dcache-tag":
            return word in system.dcache.tag_ram._suspect
        if name == "dcache-data":
            return word in system.dcache.data_ram._suspect
        if name == "regfile":
            return word in system.regfile._suspect
        if name == "fpregs":
            fpu = system.fpu
            if fpu is None or word is None:
                return True
            return fpu.codec.encode(fpu._regs[word]) != fpu._checks[word]
        if name == "flipflops":
            # With TMR a pending scrub still holds the corruption; without
            # TMR the flipped lane is never repaired at all.
            if not system.ffbank.tmr:
                return True
            return system._ffbank_dirty
        # External memories carry no suspect tracking; treat an
        # undetected upset there as resident.
        return True

    # -- state capture ---------------------------------------------------------

    def capture(self) -> dict:
        """The injection log plus any registered persistent faults."""
        return {"injections": tuple(self.injections),
                "persistent": tuple(self._persistent)}

    def restore(self, state: dict) -> None:
        self.injections = list(state["injections"])
        self._persistent = list(state.get("persistent", ()))

    # -- injection ----------------------------------------------------------------

    def inject(self, name: str, flat_bit: int) -> None:
        """Deterministic strike: flip one specific stored bit."""
        target = self.target(name)
        if not 0 <= flat_bit < target.bits:
            raise InjectionError(
                f"flat bit {flat_bit} outside target {name!r} ({target.bits} bits)")
        target.inject_flat(flat_bit)
        self.injections.append(name)

    # -- persistent (stuck-at) faults --------------------------------------------

    @property
    def persistent_faults(self) -> tuple:
        """Registered stuck-at cells, in registration order."""
        return tuple(self._persistent)

    def add_persistent(self, name: str, flat_bit: int, value: int) -> PersistentFault:
        """Pin one stored bit to *value* until the injector is reset.

        The cell is forced immediately and re-forced by every
        :meth:`reassert_persistent` call; the campaign invokes that at
        each execution-chunk boundary, so a rewrite (scrub, software
        store, recovery restore) holds the golden value only until the
        next boundary -- the model-layer approximation of a cell that is
        stuck on every access.
        """
        target = self.target(name)
        if not 0 <= flat_bit < target.bits:
            raise InjectionError(
                f"flat bit {flat_bit} outside target {name!r} ({target.bits} bits)")
        if target.peek_flat is None:
            raise InjectionError(
                f"target {name!r} does not support persistent faults")
        entry = PersistentFault(name, flat_bit, 1 if value else 0)
        self._persistent.append(entry)
        self.injections.append(f"{name}@stuck-{entry.value}")
        self._force(entry)
        return entry

    def _force(self, entry: PersistentFault) -> bool:
        target = self.targets[entry.name]
        if target.peek_flat(entry.flat_bit) != entry.value:
            # Flip through the target's own inject path so suspect/dirty
            # marking happens exactly as for a beam strike.
            target.inject_flat(entry.flat_bit)
            return True
        return False

    def reassert_persistent(self) -> int:
        """Re-force every stuck cell; returns how many had been rewritten."""
        forced = 0
        for entry in self._persistent:
            if self._force(entry):
                forced += 1
        return forced

    def inject_random(self, rng: random.Random,
                      weights: Optional[Dict[str, float]] = None) -> str:
        """Area-weighted random strike; returns the struck target name.

        ``weights`` scales each target's effective area (the beam passes
        sigma(LET) ratios here); unlisted targets get weight 1.
        """
        names = list(self.targets)
        areas = [
            self.targets[name].bits * (weights.get(name, 1.0) if weights else 1.0)
            for name in names
        ]
        name = rng.choices(names, weights=areas, k=1)[0]
        target = self.targets[name]
        self.inject(name, rng.randrange(target.bits))
        return name

    def inject_adjacent(self, name: str, flat_bit: int) -> int:
        """MBU companion strike: flip the cell adjacent to ``flat_bit``.

        Adjacent means the next bit in the same physical RAM row; at a row
        boundary the previous bit is used instead.  Flip-flop targets have
        no row geometry; the companion is the next flip-flop bit.
        """
        target = self.target(name)
        row = target.bits_per_word or target.bits
        neighbour = flat_bit + 1
        if neighbour % row == 0 or neighbour >= target.bits:
            neighbour = flat_bit - 1
        if neighbour < 0:
            raise InjectionError("target too small for an adjacent strike")
        target.inject_flat(neighbour)
        self.injections.append(f"{name}+mbu")
        return neighbour
