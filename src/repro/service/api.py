"""The campaign service's HTTP API and server (stdlib only).

``repro serve`` binds a :class:`CampaignServer` -- a threading HTTP
server over one :class:`~repro.store.db.CampaignDatabase` and one
:class:`~repro.service.jobs.JobQueue` -- and every endpoint answers from
the same :mod:`repro.store` query layer the CLI renders from, so the
numbers over HTTP are byte-identical to the terminal's.

JSON endpoints::

    POST /api/jobs                          submit a campaign, get a job id
    GET  /api/jobs                          every job with queue state
    GET  /api/jobs/<id>                     one job's progress row
    POST /api/jobs/<id>/cancel              cancel queued/running job
    GET  /api/status                        service heartbeat + queue depth
    GET  /api/campaigns                     stored campaigns with run counts
    GET  /api/campaigns/<c>/results         full result payloads, run order
    GET  /api/campaigns/<c>/table2          Table-2 fold (rows + totals)
    GET  /api/campaigns/<c>/curve           per-bit cross-section curve
    GET  /api/campaigns/<c>/availability    measured availability readout
    GET  /api/campaigns/<c>/lifecycles      per-upset lifecycle rows
    GET  /api/campaigns/<c>/stats           folded trace statistics
    GET  /api/diff?a=<c>&b=<c>              run-for-run campaign diff

``<c>`` is a campaign name or numeric id.  ``GET /`` serves the polling
dashboard.  Submission payload::

    {"program": "iutest", "let": 110.0, "lets": [...], "flux": 400.0,
     "fluence": 2000.0, "seed": 1, "ips": 50000.0, "runs": 1,
     "flush_period": 0, "beam_delay": 0.0, "beam_tail": 0.0,
     "recovery": "none", "name": "...", "jobs": 1, "warm_start": false,
     "trace": false, "early_exit": true,
     "fault_model": "seu", "fault_params": {}}

``program`` also accepts ``random:<seed>`` (the seeded generator);
``fault_model`` is any registered :mod:`repro.fault.models` name, and
``?fault_model=<kind>`` filters the ``results``/``table2`` campaign
views down to runs of that model.

``lets`` submits one run per LET point with the ``seed + index`` mapping
of :func:`repro.fault.crosssection.measure_curve`; ``runs`` replicates
each point with derived seeds exactly like ``repro campaign --runs``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import ConfigurationError
from repro.fault.campaign import CampaignConfig, resolve_builder
from repro.fault.executor import expand_runs
from repro.fault.models import model_names
from repro.fault.results import result_to_dict
from repro.recovery import POLICIES
from repro.service.dashboard import DASHBOARD_HTML
from repro.service.jobs import JobQueue
from repro.store import (
    CampaignDatabase,
    availability_readout,
    curve_from_results,
    diff_results,
    fold_results,
    lifecycle_rows,
    trace_stats,
)

#: Programs a job submission may request (mirrors the CLI choices).
PROGRAMS = ("iutest", "paranoia", "cncf")


def build_job_request(payload: Dict[str, object]
                      ) -> Tuple[List[CampaignConfig], Optional[str],
                                 Dict[str, object]]:
    """Validate a submission payload into (configs, name, options).

    Raises :class:`ValueError` with a submitter-facing message on bad
    input -- the handler maps that to HTTP 400.
    """
    if not isinstance(payload, dict):
        raise ValueError("payload must be a JSON object")
    program = str(payload.get("program", "iutest"))
    try:
        resolve_builder(program)  # named builder or random:<seed>
    except ConfigurationError as exc:
        raise ValueError(str(exc)) from None
    fault_model = str(payload.get("fault_model", "seu"))
    if fault_model not in model_names():
        raise ValueError(f"unknown fault model {fault_model!r} "
                         f"(expected one of {', '.join(model_names())})")
    fault_params = payload.get("fault_params", {})
    if not isinstance(fault_params, dict):
        raise ValueError("fault_params must be a JSON object")
    recovery = str(payload.get("recovery", "none"))
    if recovery not in POLICIES:
        raise ValueError(f"unknown recovery policy {recovery!r}")
    try:
        lets = [float(let) for let in payload.get(
            "lets", [payload.get("let", 110.0)])]
        flux = float(payload.get("flux", 400.0))
        fluence = float(payload.get("fluence", 2.0e3))
        seed = int(payload.get("seed", 1))
        ips = float(payload.get("ips", 50_000.0))
        runs = int(payload.get("runs", 1))
        flush_period = int(payload.get("flush_period", 0))
        beam_delay = float(payload.get("beam_delay", 0.0))
        beam_tail = float(payload.get("beam_tail", 0.0))
    except (TypeError, ValueError) as exc:
        raise ValueError(f"bad numeric field: {exc}") from None
    if not lets:
        raise ValueError("lets must not be empty")
    if runs < 1 or runs > 10_000:
        raise ValueError("runs must be between 1 and 10000")
    early_exit = bool(payload.get("early_exit", True))
    configs: List[CampaignConfig] = []
    for index, let in enumerate(lets):
        point = CampaignConfig(
            program=program, let=let, flux=flux, fluence=fluence,
            seed=seed + index, instructions_per_second=ips,
            flush_period_instructions=flush_period,
            beam_delay_s=beam_delay, beam_tail_s=beam_tail,
            recovery=recovery, early_exit=early_exit,
            fault_model=fault_model, fault_params=dict(fault_params),
        )
        configs.extend(expand_runs(point, runs))
    name = payload.get("name")
    if name is not None:
        name = str(name)
        if not name:
            raise ValueError("name must not be empty when given")
    options = {
        "jobs": max(1, int(payload.get("jobs", 1))),
        "warm_start": bool(payload.get("warm_start", False)),
        "trace": bool(payload.get("trace", False)),
        "early_exit": early_exit,
    }
    return configs, name, options


class CampaignServer(ThreadingHTTPServer):
    """HTTP server bound to one campaign database and job queue."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], db: CampaignDatabase,
                 queue: JobQueue) -> None:
        super().__init__(address, ServiceHandler)
        self.db = db
        self.queue = queue

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes ``/api/...`` onto the store query layer."""

    server: CampaignServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # quiet by default; smoke/CI output stays readable

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, payload: object, code: int = 200) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        self._send(code, body, "application/json")

    def _error(self, code: int, message: str) -> None:
        self._json({"error": message}, code)

    def _read_body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"bad JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise ValueError("body must be a JSON object")
        return payload

    # -- routing -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        query = parse_qs(url.query)
        try:
            if not parts:
                self._send(200, DASHBOARD_HTML.encode("utf-8"),
                           "text/html; charset=utf-8")
            elif parts[:2] == ["api", "status"]:
                self._json(self._status())
            elif parts[:2] == ["api", "jobs"] and len(parts) == 2:
                self._json({"jobs": self.server.db.jobs()})
            elif parts[:2] == ["api", "jobs"] and len(parts) == 3:
                record = self.server.db.job(int(parts[2]))
                self._json(record)
            elif parts[:2] == ["api", "campaigns"] and len(parts) == 2:
                self._json({"campaigns": self.server.db.campaigns()})
            elif parts[:2] == ["api", "campaigns"] and len(parts) == 4:
                self._campaign_view(parts[2], parts[3], query)
            elif parts[:2] == ["api", "diff"]:
                self._diff(query)
            else:
                self._error(404, f"no such endpoint: {url.path}")
        except (ConfigurationError, ValueError) as exc:
            self._error(404 if isinstance(exc, ConfigurationError) else 400,
                        str(exc))
        except BrokenPipeError:
            pass

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler contract)
        parts = [part for part in urlparse(self.path).path.split("/") if part]
        try:
            if parts[:2] == ["api", "jobs"] and len(parts) == 2:
                configs, name, options = build_job_request(self._read_body())
                job_id = self.server.queue.submit(
                    configs, name=name, options=options)
                self._json(self.server.db.job(job_id), 201)
            elif (parts[:2] == ["api", "jobs"] and len(parts) == 4
                  and parts[3] == "cancel"):
                cancelled = self.server.queue.cancel(int(parts[2]))
                self._json({"job": int(parts[2]), "cancelled": cancelled})
            else:
                self._error(404, f"no such endpoint: {self.path}")
        except (ConfigurationError, ValueError) as exc:
            self._error(404 if isinstance(exc, ConfigurationError) else 400,
                        str(exc))
        except BrokenPipeError:
            pass

    # -- views -------------------------------------------------------------

    def _status(self) -> Dict[str, object]:
        jobs = self.server.db.jobs()
        by_state: Dict[str, int] = {}
        for record in jobs:
            state = str(record["state"])
            by_state[state] = by_state.get(state, 0) + 1
        return {
            "campaigns": len(self.server.db.campaigns()),
            "jobs": len(jobs),
            "by_state": by_state,
        }

    def _campaign_view(self, campaign: str, view: str, query) -> None:
        db = self.server.db
        cid = db.campaign_id(campaign)
        if view in ("results", "table2", "curve", "availability"):
            results = db.results(cid)
            wanted = query.get("fault_model")
            if wanted and view in ("results", "table2"):
                results = [result for result in results
                           if result.config.fault_model == wanted[0]]
            if view == "results":
                self._json({"campaign": cid, "runs": len(results),
                            "results": [result_to_dict(result)
                                        for result in results]})
            elif view == "table2":
                self._json({"campaign": cid, **fold_results(results)})
            elif view == "curve":
                self._json({"campaign": cid,
                            **curve_from_results(results).as_dict()})
            else:
                clock = query.get("clock_hz")
                self._json({"campaign": cid, **availability_readout(
                    results,
                    clock_hz=float(clock[0]) if clock else None)})
        elif view in ("lifecycles", "stats"):
            events = db.events(cid)
            if view == "lifecycles":
                self._json({"campaign": cid,
                            "lifecycles": lifecycle_rows(events)})
            else:
                self._json({"campaign": cid, **trace_stats(events)})
        else:
            self._error(404, f"no such campaign view: {view}")

    def _diff(self, query) -> None:
        try:
            a, b = query["a"][0], query["b"][0]
        except (KeyError, IndexError):
            raise ValueError("diff needs ?a=<campaign>&b=<campaign>") \
                from None
        db = self.server.db
        results_a = db.results(db.campaign_id(a))
        results_b = db.results(db.campaign_id(b))
        self._json({"a": a, "b": b, **diff_results(results_a, results_b)})


def make_server(db_path: str, *, host: str = "127.0.0.1", port: int = 0,
                jobs: int = 1) -> CampaignServer:
    """Build a ready-to-run server (not yet serving) over *db_path*.

    ``port=0`` binds an ephemeral port -- the smoke test and unit tests
    read the chosen one back from :attr:`CampaignServer.server_address`.
    """
    db = CampaignDatabase(db_path)
    queue = JobQueue(db, jobs=jobs).start()
    return CampaignServer((host, port), db, queue)


def serve(db_path: str, *, host: str = "127.0.0.1", port: int = 8321,
          jobs: int = 1, ready: Optional[threading.Event] = None) -> None:
    """Run the campaign service until interrupted (the CLI entry)."""
    server = make_server(db_path, host=host, port=port, jobs=jobs)
    print(f"repro service on {server.url} (db: {db_path})")
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.queue.stop()
        server.server_close()
        server.db.close()
