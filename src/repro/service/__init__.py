"""The campaign service: async job queue + HTTP API over ``repro.store``.

``repro serve`` runs it; submitters POST a campaign spec and poll the
job id they get back while a single scheduler thread drains the queue
onto the process-pool executor, streaming result batches into the
campaign database.  See :mod:`repro.service.api` for the endpoint list
and :mod:`repro.service.jobs` for the queue lifecycle.
"""

from repro.service.api import (
    CampaignServer,
    build_job_request,
    make_server,
    serve,
)
from repro.service.jobs import (
    FINISHED_STATES,
    JobCancelled,
    JobQueue,
)

__all__ = [
    "CampaignServer",
    "FINISHED_STATES",
    "JobCancelled",
    "JobQueue",
    "build_job_request",
    "make_server",
    "serve",
]
