"""The browser dashboard served at ``GET /`` (one self-contained page).

No build step, no external assets: a single HTML string with inline CSS
and a small polling script that refreshes the job queue and campaign
tables every two seconds from the JSON API, renders Table-2 folds and
cross-section curves on click, and submits new campaigns through
``POST /api/jobs``.
"""

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>LEON-FT campaign service</title>
<style>
  body { font-family: "SF Mono", Menlo, Consolas, monospace;
         margin: 1.5rem; background: #10141a; color: #d8dee9; }
  h1 { font-size: 1.2rem; }  h2 { font-size: 1rem; margin-top: 1.6rem; }
  a { color: #88c0d0; }
  table { border-collapse: collapse; margin-top: .5rem; }
  th, td { border: 1px solid #2e3440; padding: .25rem .6rem;
           font-size: .85rem; text-align: left; }
  th { background: #1b2129; }
  tr.clickable { cursor: pointer; }
  tr.clickable:hover { background: #1b2129; }
  .state-done { color: #a3be8c; }      .state-failed { color: #bf616a; }
  .state-running { color: #ebcb8b; }   .state-queued { color: #81a1c1; }
  .state-cancelled { color: #6b7280; }
  pre { background: #0b0e12; border: 1px solid #2e3440;
        padding: .8rem; overflow-x: auto; font-size: .8rem; }
  form { margin-top: .5rem; display: flex; flex-wrap: wrap;
         gap: .5rem; align-items: center; }
  input, select, button { background: #1b2129; color: #d8dee9;
         border: 1px solid #2e3440; padding: .25rem .4rem;
         font-family: inherit; font-size: .85rem; }
  label { font-size: .8rem; }
  button { cursor: pointer; }
  #flash { font-size: .85rem; margin-left: .6rem; }
</style>
</head>
<body>
<h1>LEON-FT campaign service</h1>
<div id="status">loading&hellip;</div>

<h2>Submit a campaign</h2>
<form id="submit-form">
  <label>program <select name="program">
    <option>iutest</option><option>paranoia</option><option>cncf</option>
    <option>random:1</option>
  </select></label>
  <label>fault model <select name="fault_model">
    <option>seu</option><option>stuck-at-0</option>
    <option>stuck-at-1</option><option>sefi</option>
  </select></label>
  <label>LET <input name="let" value="110" size="5"></label>
  <label>flux <input name="flux" value="400" size="6"></label>
  <label>fluence <input name="fluence" value="2000" size="7"></label>
  <label>seed <input name="seed" value="1" size="4"></label>
  <label>runs <input name="runs" value="1" size="4"></label>
  <label>recovery <select name="recovery">
    <option>none</option><option>restart</option>
    <option>ladder</option><option>reboot</option>
  </select></label>
  <label>name <input name="name" placeholder="(auto)" size="10"></label>
  <button type="submit">submit job</button><span id="flash"></span>
</form>

<h2>Jobs</h2>
<table id="jobs"><thead><tr>
  <th>id</th><th>name</th><th>state</th><th>progress</th><th>error</th>
  <th></th></tr></thead><tbody></tbody></table>

<h2>Campaigns <small>(click a row for its Table-2 fold + curve)</small></h2>
<table id="campaigns"><thead><tr>
  <th>id</th><th>name</th><th>runs</th><th>upsets</th><th>errors</th>
</tr></thead><tbody></tbody></table>

<h2 id="detail-title" hidden></h2>
<pre id="detail" hidden></pre>

<script>
"use strict";
const $ = (sel) => document.querySelector(sel);
const esc = (value) => String(value ?? "").replace(/[&<>"]/g,
  (ch) => ({"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}[ch]));

async function getJSON(path) {
  const response = await fetch(path);
  const payload = await response.json();
  if (!response.ok) throw new Error(payload.error || response.statusText);
  return payload;
}

async function refresh() {
  try {
    const status = await getJSON("/api/status");
    $("#status").textContent =
      `${status.campaigns} campaign(s), ${status.jobs} job(s) ` +
      Object.entries(status.by_state)
            .map(([state, count]) => `${state}: ${count}`).join(", ");
    const jobs = (await getJSON("/api/jobs")).jobs;
    $("#jobs tbody").innerHTML = jobs.map((job) => `
      <tr><td>${job.id}</td><td>${esc(job.name)}</td>
      <td class="state-${esc(job.state)}">${esc(job.state)}</td>
      <td>${job.completed}/${job.total}</td><td>${esc(job.error)}</td>
      <td>${["queued", "running"].includes(job.state)
            ? `<button onclick="cancelJob(${job.id})">cancel</button>` : ""}
      </td></tr>`).join("");
    const campaigns = (await getJSON("/api/campaigns")).campaigns;
    $("#campaigns tbody").innerHTML = campaigns.map((c) => `
      <tr class="clickable" onclick="showCampaign(${c.id}, '${esc(c.name)}')">
      <td>${c.id}</td><td>${esc(c.name)}</td><td>${c.runs}</td>
      <td>${c.upsets}</td><td>${c.total_errors}</td></tr>`).join("");
  } catch (error) {
    $("#status").textContent = `refresh failed: ${error.message}`;
  }
}

async function showCampaign(id, name) {
  const fold = await getJSON(`/api/campaigns/${id}/table2`);
  const curve = await getJSON(`/api/campaigns/${id}/curve`);
  let stats = null;
  try { stats = await getJSON(`/api/campaigns/${id}/stats`); }
  catch (error) { /* campaign without a stored trace */ }
  $("#detail-title").textContent = `campaign ${name} (#${id})`;
  $("#detail-title").hidden = false;
  const totals = JSON.stringify(fold.totals, null, 2);
  const points = Object.entries(curve.points).map(([kind, series]) =>
    `${kind.padStart(5)}: ` + series.map((point) =>
      `LET ${point.let} -> ${point.sigma_per_bit.toExponential(2)} ` +
      `(${point.count})`).join("  ")).join("\\n");
  const security = fold.security
    ? "\\n\\nsecurity readout (detected / silent / masked)\\n" +
      Object.entries(fold.security).map(([model, fold_]) =>
        `${model}: detected ${fold_.detected}  silent ${fold_.silent}` +
        `  masked ${fold_.masked}`).join("\\n")
    : "";
  let ace = "";
  if (stats && stats.ace) {
    ace = `\\n\\nstatic analysis: ACE fraction ` +
      `${stats.ace.fraction.toFixed(3)} ` +
      `(${stats.ace.claimable_words}/${stats.ace.regfile_words} ` +
      `register-file words claimed dead)`;
    const masked = (stats.early_exits || {})["static-masked"];
    if (masked) ace += `\\n${masked} run(s) statically graded ` +
      `without execution`;
  }
  $("#detail").textContent =
    (fold.rendered || "(no runs)") + "\\n\\ntotals = " + totals + security +
    "\\n\\ncross-section per bit\\n" + points + ace;
  $("#detail").hidden = false;
}

async function cancelJob(id) {
  await fetch(`/api/jobs/${id}/cancel`, {method: "POST"});
  refresh();
}

$("#submit-form").addEventListener("submit", async (event) => {
  event.preventDefault();
  const data = Object.fromEntries(new FormData(event.target).entries());
  if (!data.name) delete data.name;
  for (const key of ["let", "flux", "fluence", "seed", "runs"])
    data[key] = Number(data[key]);
  try {
    const response = await fetch("/api/jobs", {
      method: "POST",
      headers: {"Content-Type": "application/json"},
      body: JSON.stringify(data),
    });
    const payload = await response.json();
    if (!response.ok) throw new Error(payload.error || response.statusText);
    $("#flash").textContent = `submitted job ${payload.id}`;
  } catch (error) {
    $("#flash").textContent = `submit failed: ${error.message}`;
  }
  refresh();
});

refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
"""
