"""The async campaign job queue behind ``repro serve``.

A submitter hands over a list of :class:`CampaignConfig`s and gets a job
id back immediately; a single scheduler thread drains the queue onto the
existing process-pool :class:`~repro.fault.executor.CampaignExecutor`,
streaming every completed batch into the campaign database as
``on_results`` fires.  Because one scheduler runs jobs strictly in
submission order and every run's randomness lives in its config seed,
concurrent submitters get exactly the results a serial CLI invocation of
the same configs would produce -- the determinism contract extends
across the HTTP boundary.

Lifecycle: ``queued -> running -> done | failed | cancelled``.  Jobs are
persisted before they are scheduled, so a queue restarted over the same
database re-enqueues whatever was queued or mid-flight (completed runs
are skipped via :meth:`CampaignDatabase.split_pending` -- the same
resume primitive the CLI's ``--resume`` uses).
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.fault.campaign import CampaignConfig, prepare_warm_start
from repro.fault.executor import (
    CampaignExecutionError,
    CampaignExecutor,
    run_campaign,
    run_campaign_traced,
)
from repro.fault.results import config_key
from repro.store.db import CampaignDatabase

#: Job states a restarted queue picks back up.
RESUMABLE_STATES = ("queued", "running")

#: Terminal job states (nothing further will happen to the job).
FINISHED_STATES = ("done", "failed", "cancelled")


class JobCancelled(Exception):
    """Raised inside the result stream when a cancel request lands."""


class JobQueue:
    """One scheduler thread draining persisted jobs onto the executor."""

    def __init__(self, db: CampaignDatabase, *, jobs: int = 1,
                 executor: Optional[CampaignExecutor] = None) -> None:
        self.db = db
        self.jobs = max(1, int(jobs))
        self._executor = executor
        self._queue: "queue.SimpleQueue[Optional[int]]" = queue.SimpleQueue()
        self._cancel_requested: set = set()
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._active: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "JobQueue":
        """Re-enqueue unfinished persisted jobs and launch the scheduler."""
        for record in self.db.jobs(states=RESUMABLE_STATES):
            # A job found ``running`` was interrupted mid-flight; its
            # completed runs are already in the database and are skipped
            # when it re-runs.
            self.db.update_job(int(record["id"]), state="queued")
            self._queue.put(int(record["id"]))
        self._thread = threading.Thread(
            target=self._drain, name="repro-job-queue", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout_s: float = 10.0) -> None:
        """Stop after the in-flight job finishes its current batch."""
        self._queue.put(None)
        if self._thread is not None:
            self._thread.join(timeout_s)

    # -- submitter side ----------------------------------------------------

    def submit(self, configs: Sequence[CampaignConfig], *,
               name: Optional[str] = None,
               options: Optional[Dict[str, object]] = None) -> int:
        """Persist and enqueue a job; returns its id immediately."""
        if not configs:
            raise ValueError("a job needs at least one config")
        job_id = self.db.create_job(configs, name=name, options=options)
        self._queue.put(job_id)
        return job_id

    def cancel(self, job_id: int) -> bool:
        """Request cancellation; returns False if the job already finished.

        A queued job is cancelled outright; a running one stops at its
        next completed batch (results streamed so far stay in the
        database, so a resubmission under the same name resumes them).
        """
        record = self.db.job(job_id)
        if record["state"] in FINISHED_STATES:
            return False
        with self._lock:
            self._cancel_requested.add(job_id)
            if self._active != job_id:
                self.db.update_job(job_id, state="cancelled")
        return True

    def wait(self, job_id: int, timeout_s: float = 300.0,
             poll_s: float = 0.05) -> Dict[str, object]:
        """Poll until the job reaches a terminal state; returns its row."""
        deadline = time.monotonic() + timeout_s
        while True:
            record = self.db.job(job_id)
            if record["state"] in FINISHED_STATES:
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after "
                    f"{timeout_s:g}s")
            time.sleep(poll_s)

    # -- scheduler side ----------------------------------------------------

    def _drain(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._lock:
                if job_id in self._cancel_requested:
                    continue  # cancelled while queued; row already updated
                self._active = job_id
            try:
                self._process(job_id)
            except Exception as exc:  # never kill the scheduler thread
                self.db.update_job(job_id, state="failed",
                                   error=f"scheduler: {exc}")
            finally:
                with self._lock:
                    self._active = None
                    self._cancel_requested.discard(job_id)

    def _process(self, job_id: int) -> None:
        record = self.db.job(job_id)
        options = record["options"]
        campaign = int(record["campaign_id"])
        configs = self.db.job_configs(job_id)
        done, pending = self.db.split_pending(campaign, configs)
        completed = len(configs) - len(pending)
        self.db.update_job(job_id, state="running", completed=completed)
        if not pending:
            self.db.update_job(job_id, state="done")
            return

        trace = bool(options.get("trace", False))
        early_exit = bool(options.get("early_exit", True))
        runner = run_campaign_traced if trace else run_campaign
        executor = self._executor or CampaignExecutor(
            int(options.get("jobs", self.jobs)), runner=runner)
        warm = (prepare_warm_start(pending[0])
                if options.get("warm_start") and pending else None)
        # Runs keep their position within the job's config list, so trace
        # run indices -- like the CLI's -- are jobs-invariant.
        position_of = {config_key(config): position
                       for position, config in enumerate(configs)}
        pending_iter = iter(pending)
        progress = [completed]

        def on_results(batch: List) -> None:
            self.db.add_results(campaign, batch)
            if trace:
                for result, config in zip(batch, pending_iter):
                    self.db.add_run_events(
                        campaign, position_of[config_key(config)],
                        result.trace or [])
            progress[0] += len(batch)
            with self._lock:
                if job_id in self._cancel_requested:
                    raise JobCancelled(f"job {job_id} cancelled")
            self.db.update_job(job_id, completed=progress[0])

        try:
            executor.run_many(pending, warm=warm, batch=early_exit,
                              on_results=on_results)
        except JobCancelled:
            self.db.update_job(job_id, state="cancelled")
            return
        except CampaignExecutionError as exc:
            self.db.update_job(job_id, state="failed", error=str(exc))
            return
        _, still_pending = self.db.split_pending(campaign, configs)
        self.db.update_job(job_id, state="done",
                           completed=len(configs) - len(still_pending))
