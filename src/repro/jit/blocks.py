"""Trace-block discovery and Python code generation.

A *block* is a straight-line run of instructions starting at a hot PC,
optionally ended by one delayed control transfer (Bicc / CALL / JMPL)
plus its delay slot.  Both the entry and every exit satisfy the
invariant ``npc == pc + 4`` and ``annul == 0``, so a block whose ender
targets its own first address iterates inside the compiled closure
without returning to the driver.

The generated closure replays the interpreter's fault-free fast path
exactly: per-instruction cycle constants from :mod:`repro.iu.timing`,
the same icc algebra, the same sub-word extraction as
``DataCache.read_fast``, and stores through the *real*
``DataCache.write`` so write-through side effects (cache update, write
buffer count, EDAC encode in SRAM) are shared code, not a copy.
Architectural state lives in Python locals for the duration of a burst
and is written back (registers with freshly encoded check bits, fused
icc into the PSR, pc/npc, perf counters) at every exit, including
deopts, before the interpreter resumes.

Anything the closure cannot replay bit-exactly *deopts*: the exit
records pc/npc of the offending instruction with zero of its effects
applied, so the interpreter re-executes it from fetch.  Deopt sites are
load/store address misalignment (trap path), d-cache probe misses
(refill, parity, uncached timing), stores outside SRAM (protector,
read-only PROM, APB side effects) and misaligned JMPL targets.
Everything else -- interrupts, traps, parity/EDAC suspects, TMR
upsets, peripheral activity -- is excluded by the burst entry guards in
:mod:`repro.jit.engine` and cannot arise mid-burst (memory-mapped
peripherals are only reachable through stores, which deopt first).

``BLOCK_OBSERVABLES`` names the per-step FT observables every exit
must fold back into ``PerfCounters``; the FT601 lint rule checks the
epilogue covers each one.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.amba.ahb import TransferSize
from repro.iu import timing
from repro.sparc.decode import Instr, decode
from repro.sparc.isa import Op, Op2, Op3, Op3Mem, to_u32

#: Perf counters a compiled block accumulates in locals and must commit
#: on *every* exit path (normal and deopt).  Checked by lint rule FT601.
BLOCK_OBSERVABLES = ("cycles", "instructions", "icache_hits",
                     "dcache_hits", "loads", "stores")

#: Longest straight-line run compiled into one block (ender + delay
#: slot included).  Bounds both codegen size and the per-entry word
#: verification cost.
MAX_BLOCK_INSTRUCTIONS = 64

#: A fallthrough-only block (no control-transfer ender) must amortize
#: entry guards over at least this many instructions to be worth it.
MIN_FALLTHROUGH_INSTRUCTIONS = 4

# Straight-line ALU work the closure replays inline.
_ADDSUB = {
    Op3.ADD: ("+", False, False), Op3.ADDCC: ("+", True, False),
    Op3.ADDX: ("+", False, True), Op3.ADDXCC: ("+", True, True),
    Op3.SUB: ("-", False, False), Op3.SUBCC: ("-", True, False),
    Op3.SUBX: ("-", False, True), Op3.SUBXCC: ("-", True, True),
}
# op3 -> (expression template, needs 32-bit mask)
_LOGIC = {
    Op3.AND: ("{a} & {b}", False), Op3.ANDCC: ("{a} & {b}", False),
    Op3.ANDN: ("{a} & ~{b}", True), Op3.ANDNCC: ("{a} & ~{b}", True),
    Op3.OR: ("{a} | {b}", False), Op3.ORCC: ("{a} | {b}", False),
    Op3.ORN: ("{a} | ~{b}", True), Op3.ORNCC: ("{a} | ~{b}", True),
    Op3.XOR: ("{a} ^ {b}", False), Op3.XORCC: ("{a} ^ {b}", False),
    Op3.XNOR: ("~({a} ^ {b})", True), Op3.XNORCC: ("~({a} ^ {b})", True),
}
_LOGIC_CC = {Op3.ANDCC, Op3.ANDNCC, Op3.ORCC, Op3.ORNCC,
             Op3.XORCC, Op3.XNORCC}
_SHIFTS = {Op3.SLL, Op3.SRL, Op3.SRA}
_MULS = {Op3.UMUL, Op3.UMULCC, Op3.SMUL, Op3.SMULCC}
_LOADS = {Op3Mem.LD, Op3Mem.LDUB, Op3Mem.LDUH, Op3Mem.LDSB,
          Op3Mem.LDSH, Op3Mem.LDD}
#: Word-sized stores only: STB/STH read-modify-write the cached word
#: and can surface a data parity error (telemetry + invalidate) that a
#: burst must not replay, so they end the block instead.
_STORES = {Op3Mem.ST, Op3Mem.STD}

_LOAD_CYCLES = {
    Op3Mem.LD: timing.CYCLES_LOAD, Op3Mem.LDUB: timing.CYCLES_LOAD,
    Op3Mem.LDUH: timing.CYCLES_LOAD, Op3Mem.LDSB: timing.CYCLES_LOAD,
    Op3Mem.LDSH: timing.CYCLES_LOAD, Op3Mem.LDD: timing.CYCLES_LDD,
}
_ALIGN_MASK = {Op3Mem.LD: 3, Op3Mem.LDUB: 0, Op3Mem.LDUH: 1,
               Op3Mem.LDSB: 0, Op3Mem.LDSH: 1, Op3Mem.LDD: 7,
               Op3Mem.ST: 3, Op3Mem.STD: 7}


class CompiledBlock:
    """One compiled trace block and the facts the engine needs to run it."""

    __slots__ = ("pc", "end_pc", "verify", "addresses", "fn",
                 "max_path_instructions", "source")

    def __init__(self, pc: int, end_pc: int,
                 verify: Tuple[Tuple[int, int], ...],
                 addresses: Set[int], fn,
                 max_path_instructions: int, source: str) -> None:
        self.pc = pc
        self.end_pc = end_pc
        #: (address, word) pairs re-checked against the i-cache at every
        #: burst entry; a mismatch (evicted line, injected parity
        #: suspect, reloaded program) drops the block.
        self.verify = verify
        #: Every pc the interpreter would visit inside a burst iteration;
        #: a stop_pc in this set forbids compiled execution.
        self.addresses = addresses
        self.fn = fn
        #: Most instructions one loop iteration can retire; the budget
        #: guard exits while at least this many remain.
        self.max_path_instructions = max_path_instructions
        self.source = source


def _classify(instr: Instr) -> Optional[str]:
    """'simple' (straight-line), 'ender' (delayed transfer) or None."""
    if not instr.valid:
        return None
    op = instr.op
    if op == Op.CALL:
        return "ender"
    if op == Op.FORMAT2:
        if instr.op2 == Op2.SETHI:
            return "simple"
        if instr.op2 == Op2.BICC:
            return "ender"
        return None
    if op == Op.ARITH:
        op3 = instr.op3
        if (op3 in _ADDSUB or op3 in _LOGIC or op3 in _SHIFTS
                or op3 in _MULS or op3 == Op3.MULSCC
                or op3 == Op3.RDASR or op3 == Op3.WRASR):
            return "simple"
        if op3 == Op3.JMPL:
            return "ender"
        return None
    op3 = instr.op3
    if op3 in _LOADS or op3 in _STORES:
        if op3 in (Op3Mem.LDD, Op3Mem.STD) and instr.rd & 1:
            return None  # odd rd traps illegal_instruction
        return "simple"
    return None


def _always_annuls(instr: Instr) -> bool:
    """Bicc whose delay slot is annulled on every path (BA,a / BN,a)."""
    return (instr.op == Op.FORMAT2 and instr.op2 == Op2.BICC
            and instr.annul and (instr.cond & 7) == 0)


def _cond_expr(cond: int) -> str:
    """The interpreter's ``_icc_condition`` over an ``icc`` local."""
    base = cond & 7
    exprs = {
        0: "0",
        1: "icc & 4",
        2: "((icc >> 2) | ((icc >> 3) ^ (icc >> 1))) & 1",
        3: "((icc >> 3) ^ (icc >> 1)) & 1",
        4: "(icc | (icc >> 2)) & 1",
        5: "icc & 1",
        6: "icc & 8",
        7: "icc & 2",
    }
    expr = exprs[base]
    return f"not ({expr})" if cond >= 8 else expr


class _Codegen:
    """Emits the closure source for one discovered block."""

    def __init__(self, system, pc: int) -> None:
        self.system = system
        regfile = system.iu.regfile
        self.nw16 = regfile.nwindows * 16
        self.copies = regfile._copies
        self.pc = pc
        self.lines: List[str] = []
        self.reads: Set[int] = set()
        self.written: Set[int] = set()
        self.uses_icc = False
        self.writes_icc = False
        self.uses_y = False
        self.writes_y = False
        self.any_store = False
        self.prev_was_store = False
        self.has_loads = False
        # Pending compile-time counter constants, flushed to locals
        # before any deopt guard so a deopt commits exactly the
        # completed instructions and nothing of the failing one.
        self.pend = {"n_c": 0, "n_i": 0, "n_s": 0,
                     "n_ld": 0, "n_st": 0, "n_dh": 0}
        memcfg = system.config.memory
        self.sram_lo = memcfg.sram_base
        self.sram_hi = memcfg.sram_base + memcfg.sram_bytes
        self.std_cycles = timing.CYCLES_STD + (
            1 if system.dcache.double_store_delay else 0)

    # ------------------------------------------------------------- helpers

    def emit(self, line: str, ind: int) -> None:
        self.lines.append("    " * ind + line)

    def flush(self, ind: int) -> None:
        for name, value in self.pend.items():
            if value:
                self.emit(f"{name} += {value}", ind)
                self.pend[name] = 0

    def tally(self, c: int = 0, i: int = 0, s: int = 0,
              ld: int = 0, st: int = 0, dh: int = 0) -> None:
        p = self.pend
        p["n_c"] += c
        p["n_i"] += i
        p["n_s"] += s
        p["n_ld"] += ld
        p["n_st"] += st
        p["n_dh"] += dh

    def use(self, reg: int) -> str:
        if reg == 0:
            return "0"
        if reg not in self.written:
            self.reads.add(reg)
        return f"r{reg}"

    def setreg(self, reg: int) -> Optional[str]:
        if reg == 0:
            return None
        self.written.add(reg)
        return f"r{reg}"

    def operand2(self, instr: Instr) -> str:
        if instr.imm is not None:
            return f"{to_u32(instr.imm):#x}"
        return self.use(instr.rs2)

    def deopt(self, cond: str, addr: int, xnpc: str, ind: int) -> None:
        self.flush(ind)
        self.emit(f"if {cond}:", ind)
        self.emit(f"xpc = {addr:#x}", ind + 1)
        self.emit(f"xnpc = {xnpc}", ind + 1)
        self.emit("deopt = True", ind + 1)
        self.emit("break", ind + 1)

    # -------------------------------------------------------- instructions

    def emit_instr(self, instr: Instr, addr: int, ind: int,
                   deopt_npc: Optional[str] = None) -> None:
        """One supported straight-line instruction at ``addr``."""
        if deopt_npc is None:
            deopt_npc = f"{(addr + 4) & 0xFFFFFFFF:#x}"
        if self.prev_was_store:
            # The step after a store starts with the interpreter's
            # _writes reset; keep the list content identical.
            self.emit("IU._writes = []", ind)
        self.prev_was_store = False

        op = instr.op
        if op == Op.FORMAT2:  # SETHI / NOP
            dst = self.setreg(instr.rd)
            if dst is not None:
                self.emit(f"{dst} = {instr.imm22:#x}", ind)
            self.tally(c=1, i=1, s=1)
            return
        if op == Op.ARITH:
            self.emit_arith(instr, ind)
            return
        self.emit_mem(instr, addr, ind, deopt_npc)

    def emit_arith(self, instr: Instr, ind: int) -> None:
        op3 = instr.op3
        a = self.use(instr.rs1)
        b = self.operand2(instr)
        emit = self.emit

        if op3 in _ADDSUB:
            sign, cc, carry = _ADDSUB[op3]
            if carry:
                self.uses_icc = True
            carry_term = f" {sign} (icc & 1)" if carry else ""
            if not cc:
                dst = self.setreg(instr.rd)
                if dst is not None:
                    emit(f"{dst} = ({a} {sign} {b}{carry_term})"
                         " & 0xFFFFFFFF", ind)
            else:
                self.writes_icc = True
                emit(f"_s = {a} {sign} {b}{carry_term}", ind)
                emit("_r = _s & 0xFFFFFFFF", ind)
                if sign == "+":
                    v = f"(((~({a} ^ {b})) & ({a} ^ _r)) >> 31) & 1"
                    c = "(_s > 0xFFFFFFFF)"
                else:
                    v = f"((({a} ^ {b}) & ({a} ^ _r)) >> 31) & 1"
                    c = "(_s < 0)"
                emit("icc = ((_r >> 31) << 3) | ((_r == 0) << 2) | "
                     f"(({v}) << 1) | {c}", ind)
                dst = self.setreg(instr.rd)
                if dst is not None:
                    emit(f"{dst} = _r", ind)
            self.tally(c=1, i=1, s=1)
            return

        if op3 in _LOGIC:
            template, needs_mask = _LOGIC[op3]
            expr = template.format(a=a, b=b)
            if needs_mask:
                expr = f"({expr}) & 0xFFFFFFFF"
            if op3 in _LOGIC_CC:
                self.writes_icc = True
                emit(f"_r = {expr}", ind)
                emit("icc = ((_r >> 31) << 3) | ((_r == 0) << 2)", ind)
                dst = self.setreg(instr.rd)
                if dst is not None:
                    emit(f"{dst} = _r", ind)
            else:
                dst = self.setreg(instr.rd)
                if dst is not None:
                    emit(f"{dst} = {expr}", ind)
            self.tally(c=1, i=1, s=1)
            return

        if op3 in _SHIFTS:
            if instr.imm is not None:
                shift = f"{to_u32(instr.imm) & 31}"
            else:
                shift = f"({b} & 31)"
            if op3 == Op3.SLL:
                expr = f"({a} << {shift}) & 0xFFFFFFFF"
            elif op3 == Op3.SRL:
                expr = f"{a} >> {shift}"
            else:  # SRA: arithmetic shift of the sign-adjusted value
                expr = (f"(({a} - (({a} & 0x80000000) << 1))"
                        f" >> {shift}) & 0xFFFFFFFF")
            dst = self.setreg(instr.rd)
            if dst is not None:
                emit(f"{dst} = {expr}", ind)
            self.tally(c=1, i=1, s=1)
            return

        if op3 in _MULS:
            self.writes_y = True
            signed = op3 in (Op3.SMUL, Op3.SMULCC)
            cc = op3 in (Op3.UMULCC, Op3.SMULCC)
            if signed:
                emit(f"_p = ({a} - (({a} & 0x80000000) << 1)) * "
                     f"({b} - (({b} & 0x80000000) << 1))", ind)
                emit("y = (_p >> 32) & 0xFFFFFFFF", ind)
            else:
                emit(f"_p = {a} * {b}", ind)
                emit("y = _p >> 32", ind)
            emit("_r = _p & 0xFFFFFFFF", ind)
            if cc:
                self.writes_icc = True
                emit("icc = ((_r >> 31) << 3) | ((_r == 0) << 2)", ind)
            dst = self.setreg(instr.rd)
            if dst is not None:
                emit(f"{dst} = _r", ind)
            self.tally(c=timing.CYCLES_MUL, i=1, s=1)
            return

        if op3 == Op3.MULSCC:
            self.uses_icc = True
            self.writes_icc = True
            self.uses_y = True
            self.writes_y = True
            emit(f"_o1 = ((((icc >> 3) ^ (icc >> 1)) & 1) << 31) | "
                 f"({a} >> 1)", ind)
            emit(f"_o2 = {b} if y & 1 else 0", ind)
            emit("_s = _o1 + _o2", ind)
            emit("_r = _s & 0xFFFFFFFF", ind)
            emit("icc = ((_r >> 31) << 3) | ((_r == 0) << 2) | "
                 "((((~(_o1 ^ _o2)) & (_o1 ^ _r)) >> 31 & 1) << 1) | "
                 "(_s > 0xFFFFFFFF)", ind)
            emit(f"y = (({a} & 1) << 31) | (y >> 1)", ind)
            dst = self.setreg(instr.rd)
            if dst is not None:
                emit(f"{dst} = _r", ind)
            self.tally(c=1, i=1, s=1)
            return

        if op3 == Op3.RDASR:
            self.uses_y = True
            dst = self.setreg(instr.rd)
            if dst is not None:
                emit(f"{dst} = y", ind)
            self.tally(c=1, i=1, s=1)
            return

        # WRASR (any rd: the model implements only %y)
        self.writes_y = True
        emit(f"y = ({a} ^ {b}) & 0xFFFFFFFF", ind)
        self.tally(c=1, i=1, s=1)

    def emit_mem(self, instr: Instr, addr: int, ind: int,
                 deopt_npc: str) -> None:
        op3 = instr.op3
        a = self.use(instr.rs1)
        b = self.operand2(instr)
        emit = self.emit
        emit(f"_ad = ({a} + {b}) & 0xFFFFFFFF", ind)
        align = _ALIGN_MASK[op3]
        if align:
            self.deopt(f"_ad & {align}", addr, deopt_npc, ind)

        if op3 in _LOADS:
            self.has_loads = True
            if op3 in (Op3Mem.LD, Op3Mem.LDD):
                emit("_d = DPEEK(_ad)", ind)
            else:
                emit("_d = DPEEK(_ad & 0xFFFFFFFC)", ind)
            self.deopt("_d is None", addr, deopt_npc, ind)
            if op3 == Op3Mem.LDD:
                emit("_e = DPEEK(_ad + 4)", ind)
                self.deopt("_e is None", addr, deopt_npc, ind)
                dst = self.setreg(instr.rd)
                if dst is not None:
                    emit(f"{dst} = _d", ind)
                dst2 = self.setreg(instr.rd | 1)
                emit(f"{dst2} = _e", ind)
                self.tally(c=_LOAD_CYCLES[op3], i=1, s=1, ld=1, dh=2)
                return
            if op3 == Op3Mem.LDUB:
                extract = "(_d >> ((3 - (_ad & 3)) << 3)) & 0xFF"
            elif op3 == Op3Mem.LDUH:
                extract = "(_d >> ((2 - (_ad & 3)) << 3)) & 0xFFFF"
            elif op3 == Op3Mem.LDSB:
                emit("_v = (_d >> ((3 - (_ad & 3)) << 3)) & 0xFF", ind)
                extract = "_v | 0xFFFFFF00 if _v & 0x80 else _v"
            elif op3 == Op3Mem.LDSH:
                emit("_v = (_d >> ((2 - (_ad & 3)) << 3)) & 0xFFFF", ind)
                extract = "_v | 0xFFFF0000 if _v & 0x8000 else _v"
            else:  # LD
                extract = "_d"
            dst = self.setreg(instr.rd)
            if dst is not None:
                emit(f"{dst} = {extract}", ind)
            self.tally(c=_LOAD_CYCLES[op3], i=1, s=1, ld=1, dh=1)
            return

        # ST / STD: only to SRAM, where a word-sized write-through store
        # cannot raise a store error (PROM is read-only, the write
        # protector is guarded disabled, APB/IO stores have peripheral
        # side effects) -- anything else re-executes interpreted.
        self.any_store = True
        span = 8 if op3 == Op3Mem.STD else 4
        self.deopt(f"not {self.sram_lo:#x} <= _ad <= "
                   f"{self.sram_hi - span:#x}", addr, deopt_npc, ind)
        self.flush(ind)
        # dcache.write can emit telemetry stamped with the current
        # instruction count; commit the burst's retired instructions
        # first so the stamp matches interpreted execution.
        emit("PERF.instructions += n_i", ind)
        emit("f_i += n_i", ind)
        emit("n_i = 0", ind)
        emit(f"_v = {self.use(instr.rd)}", ind)
        if op3 == Op3Mem.ST:
            emit("DCW(_ad, _v, W)", ind)
            emit("IU._writes = [(_ad, _v)]", ind)
            self.tally(c=timing.CYCLES_STORE, i=1, s=1, st=1)
        else:
            emit(f"_u = {self.use(instr.rd | 1)}", ind)
            emit("DCW(_ad, _v, W)", ind)
            emit("DCW(_ad + 4, _u, W, double=True)", ind)
            emit("IU._writes = [(_ad, _v), (_ad + 4, _u)]", ind)
            self.tally(c=self.std_cycles, i=1, s=1, st=1)
        self.prev_was_store = True

    # --------------------------------------------------------------- ender

    def emit_ender(self, instr: Instr, addr: int,
                   delay: Tuple[int, Instr], ind: int) -> None:
        """The delayed control transfer closing the block, its delay
        slot, and the loop-back/exit decision."""
        daddr, dinstr = delay
        fallthrough = (addr + 8) & 0xFFFFFFFF
        if self.prev_was_store:
            self.emit("IU._writes = []", ind)
            self.prev_was_store = False

        if instr.op == Op.CALL:
            dst = self.setreg(15)
            self.emit(f"{dst} = {addr:#x}", ind)
            self.tally(c=1, i=1, s=1)
            target = to_u32(addr + instr.disp)
            self._finish_taken(f"{target:#x}", target, delay, ind)
            return
        if instr.op == Op.ARITH:  # JMPL
            a = self.use(instr.rs1)
            b = self.operand2(instr)
            self.emit(f"_t = ({a} + {b}) & 0xFFFFFFFF", ind)
            self.deopt("_t & 3", addr, f"{(addr + 4) & 0xFFFFFFFF:#x}", ind)
            dst = self.setreg(instr.rd)
            if dst is not None:
                self.emit(f"{dst} = {addr:#x}", ind)
            self.tally(c=timing.CYCLES_JMPL, i=1, s=1)
            self._finish_taken("_t", None, delay, ind)
            return

        # Bicc
        cond = instr.cond
        target = to_u32(addr + instr.disp)
        self.tally(c=1, i=1, s=1)
        if cond == 8:  # BA
            if instr.annul:
                self.tally(c=1, s=1)  # annulled slot: fetch only
                self._finish_exit(f"{target:#x}", target, ind)
            else:
                self._finish_taken(f"{target:#x}", target, delay, ind)
            return
        if cond == 0:  # BN
            if instr.annul:
                self.tally(c=1, s=1)
                self._finish_exit(f"{fallthrough:#x}", fallthrough, ind)
            else:
                self._finish_taken(f"{fallthrough:#x}", fallthrough,
                                   delay, ind)
            return

        self.uses_icc = True
        self.flush(ind)
        if not instr.annul:
            self.emit(f"if {_cond_expr(cond)}:", ind)
            self.emit(f"_dnpc = {target:#x}", ind + 1)
            self.emit("else:", ind)
            self.emit(f"_dnpc = {fallthrough:#x}", ind + 1)
            self.emit_instr(dinstr, daddr, ind, deopt_npc="_dnpc")
            self._finish_exit("_dnpc", None, ind)
        else:
            # Annulling conditional: the slot executes only when taken.
            self.emit(f"if {_cond_expr(cond)}:", ind)
            self.emit_instr(dinstr, daddr, ind + 1,
                            deopt_npc=f"{target:#x}")
            self.flush(ind + 1)
            self.emit(f"_dnpc = {target:#x}", ind + 1)
            self.prev_was_store = False
            self.emit("else:", ind)
            self.tally(c=1, s=1)
            self.flush(ind + 1)
            self.emit(f"_dnpc = {fallthrough:#x}", ind + 1)
            self._finish_exit("_dnpc", None, ind)

    def _finish_taken(self, next_expr: str, next_const: Optional[int],
                      delay: Tuple[int, Instr], ind: int) -> None:
        """Unconditional transfer: execute the delay slot, then exit or
        loop."""
        daddr, dinstr = delay
        if next_const is None:
            self.emit(f"_dnpc = {next_expr}", ind)
            self.emit_instr(dinstr, daddr, ind, deopt_npc="_dnpc")
            self._finish_exit("_dnpc", None, ind)
        else:
            self.emit_instr(dinstr, daddr, ind,
                            deopt_npc=f"{next_const:#x}")
            self._finish_exit(next_expr, next_const, ind)

    def _finish_exit(self, next_expr: str, next_const: Optional[int],
                     ind: int) -> None:
        """Exit the burst at ``next_expr``, or fall through to the loop
        top when it equals the block entry."""
        entry = self.pc
        self.flush(ind)
        if next_const is not None and next_const == entry:
            return  # static self-loop: iterate
        if next_const is not None:
            self.emit(f"xpc = {next_const:#x}", ind)
            self.emit(f"xnpc = {(next_const + 4) & 0xFFFFFFFF:#x}", ind)
            self.emit("break", ind)
            return
        self.emit(f"if {next_expr} != {entry:#x}:", ind)
        self.emit(f"xpc = {next_expr}", ind + 1)
        self.emit(f"xnpc = ({next_expr} + 4) & 0xFFFFFFFF", ind + 1)
        self.emit("break", ind + 1)

    # ------------------------------------------------------------ assembly

    def assemble(self, max_path_instructions: int) -> str:
        entry = self.pc
        pro: List[str] = [f"def _block_{entry:x}(budget):"]

        def p(line: str, ind: int = 1) -> None:
            pro.append("    " * ind + line)

        p("d0 = RF._data[0]")
        p("c0 = RF._check[0]")
        if self.copies == 2:
            p("d1 = RF._data[1]")
            p("c1 = RF._check[1]")
        regs = sorted(self.reads | self.written)
        if any(reg >= 8 for reg in regs):
            p("_cw = (PSR_R._lanes[0] & 31) << 4")
        for reg in regs:
            if reg >= 8:
                p(f"p{reg} = 8 + (_cw + {reg - 8}) % {self.nw16}")
        for reg in regs:
            idx = str(reg) if reg < 8 else f"p{reg}"
            p(f"r{reg} = d0[{idx}]")
        if self.uses_icc or self.writes_icc:
            p("icc = (PSR_R._lanes[0] >> 20) & 15")
        if self.writes_icc:
            p("psr_base = PSR_R._lanes[0] & 0xFF0FFFFF")
        if self.uses_y or self.writes_y:
            p("y = Y_R._lanes[0]")
        p("if IU._writes:")
        p("IU._writes = []", 2)
        counters = ["n_c", "n_i", "n_s"]
        if self.has_loads:
            counters += ["n_ld", "n_dh"]
        if self.any_store:
            # f_i: instructions already flushed into PERF before a store
            # (so dcache.write telemetry stamps match); the burst's true
            # retired count is f_i + n_i.
            counters += ["n_st", "f_i"]
        p(" = ".join(counters) + " = 0")
        p("deopt = False")
        p(f"xpc = {entry:#x}")
        p(f"xnpc = {(entry + 4) & 0xFFFFFFFF:#x}")
        p("while True:")
        retired = "f_i + n_i" if self.any_store else "n_i"
        p(f"if {retired} + {max_path_instructions} > budget:", 2)
        p("break", 3)
        if self.any_store:
            p("IU._writes = []", 2)

        epi: List[str] = []

        def e(line: str) -> None:
            epi.append("    " + line)

        e("PC_R.load(xpc)")
        e("NPC_R.load(xnpc)")
        if self.writes_icc:
            e("PSR_R.load(psr_base | (icc << 20))")
        if self.writes_y:
            e("Y_R.load(y)")
        for reg in sorted(self.written):
            idx = str(reg) if reg < 8 else f"p{reg}"
            e(f"_k = ENC(r{reg})")
            e(f"d0[{idx}] = r{reg}")
            e(f"c0[{idx}] = _k")
            if self.copies == 2:
                e(f"d1[{idx}] = r{reg}")
                e(f"c1[{idx}] = _k")
        # Every BLOCK_OBSERVABLES counter commits here (lint: FT601).
        e("PERF.cycles += n_c")
        e("PERF.instructions += n_i")
        e("PERF.icache_hits += n_s")
        if self.has_loads:
            e("PERF.loads += n_ld")
            e("PERF.dcache_hits += n_dh")
        if self.any_store:
            e("PERF.stores += n_st")
        e(f"return (xpc, {retired}, n_s, deopt)")

        return "\n".join(pro + self.lines + epi) + "\n"


def build_block(system, pc: int) -> Optional[CompiledBlock]:
    """Discover and compile the block at ``pc``; None if nothing there
    is worth compiling (not cached, unsupported head, too short)."""
    if pc & 3 or pc >= 0xFFFFFF00:
        return None
    icache = system.icache
    peek = icache.peek_word
    straight: List[Tuple[int, int, Instr]] = []
    ender: Optional[Tuple[int, int, Instr]] = None
    delay: Optional[Tuple[int, int, Instr]] = None
    addr = pc
    while len(straight) < MAX_BLOCK_INSTRUCTIONS - 2:
        word = peek(addr)
        if word is None:
            break
        instr = decode(word)
        kind = _classify(instr)
        if kind == "simple":
            straight.append((addr, word, instr))
            addr = (addr + 4) & 0xFFFFFFFF
            continue
        if kind == "ender":
            dword = peek((addr + 4) & 0xFFFFFFFF)
            if dword is not None:
                dinstr = decode(dword)
                executes = not _always_annuls(instr)
                if not executes or _classify(dinstr) == "simple":
                    ender = (addr, word, instr)
                    delay = ((addr + 4) & 0xFFFFFFFF, dword, dinstr)
        break

    if ender is None and len(straight) < MIN_FALLTHROUGH_INSTRUCTIONS:
        return None

    gen = _Codegen(system, pc)
    for iaddr, _word, instr in straight:
        gen.emit_instr(instr, iaddr, 2)
    if ender is not None:
        eaddr, _eword, einstr = ender
        daddr, _dword, dinstr = delay
        gen.emit_ender(einstr, eaddr, (daddr, dinstr), 2)
        end_pc = (eaddr + 8) & 0xFFFFFFFF
        max_path = len(straight) + 1 + (0 if _always_annuls(einstr) else 1)
    else:
        last = straight[-1][0]
        end_pc = (last + 4) & 0xFFFFFFFF
        gen.flush(2)
        gen.emit(f"xpc = {end_pc:#x}", 2)
        gen.emit(f"xnpc = {(end_pc + 4) & 0xFFFFFFFF:#x}", 2)
        gen.emit("break", 2)
        max_path = len(straight)

    source = gen.assemble(max_path)

    iu = system.iu
    regs = iu.r
    namespace = {
        "IU": iu,
        "RF": iu.regfile,
        "PERF": system.perf,
        "PSR_R": regs.psr._reg,
        "PC_R": regs._pc,
        "NPC_R": regs._npc,
        "Y_R": regs._y,
        "ENC": iu.regfile.codec.encode,
        "DPEEK": system.dcache.peek_word,
        "DCW": system.dcache.write,
        "W": TransferSize.WORD,
    }
    code = compile(source, f"<jit-block {pc:#x}>", "exec")
    exec(code, namespace)
    fn = namespace[f"_block_{pc:x}"]

    verify = tuple((iaddr, word) for iaddr, word, _instr in straight)
    addresses = {iaddr for iaddr, _w, _i in straight}
    if ender is not None:
        verify += ((ender[0], ender[1]), (delay[0], delay[1]))
        addresses.add(ender[0])
        addresses.add(delay[0])
    return CompiledBlock(pc, end_pc, verify, addresses, fn,
                         max_path, source)

