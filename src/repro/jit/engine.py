"""The burst driver: hot-PC counting, block cache and entry guards.

``JitEngine.try_burst`` is called by ``LeonSystem.run_fast`` before
each interpreted step.  It either runs a compiled burst (returning the
instruction/step counts the driver folds into its loop totals) or
returns ``None``, in which case the driver interprets exactly one step
as before.

The entry guard set proves, before any compiled code runs, that the
interpreter would take its fault-free fast path for the whole burst:

* pipeline state -- running, not powered down, ``npc == pc + 4``, no
  pending annul, no scrub due in the flip-flop bank;
* no interrupt deliverable right now (ET, PIL and the pending/mask
  registers are read lane-0 only after their dirty flags are checked,
  so TMR voting stays with the interpreter);
* quiescent peripherals -- watchdog never started, timers disabled,
  UART shifters empty, DMA idle -- which makes the per-step APB tick a
  proven no-op for any number of burst cycles, so it is skipped;
* no fault in flight: every TMR register guard-listed clean, every
  parity/EDAC suspect set empty, the write protector disabled;
* caches enabled and every block word still verifying against the
  i-cache (a mismatch -- eviction, injected suspect, reloaded program
  -- drops the block for recompilation);
* a stop_pc never inside the block and enough instruction budget for
  one worst-case iteration.

Anything that changes these facts mid-campaign (fault injection,
snapshot restore, a trap) makes the next guard pass fail, so execution
falls back to the interpreter at a step boundary with bit-identical
state.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple, Union

from repro.iu.pipeline import HaltReason
from repro.jit.blocks import CompiledBlock, build_block
from repro.mem.writeprotect import WpMode
from repro.peripherals.dma import _STATUS_BUSY
from repro.peripherals.irqctrl import _LEVEL_MASK
from repro.peripherals.timer import _CTRL_ENABLE
from repro.peripherals.uart import _STATUS_TX_SHIFT_EMPTY

#: Executions of a PC before it is considered hot and compiled.
HOT_THRESHOLD = 16
#: Bound on the hot-counter table; cleared wholesale when exceeded.
MAX_COUNTERS = 8192


def jit_default_enabled() -> bool:
    """Trace compilation is on unless ``REPRO_JIT=0``."""
    return os.environ.get("REPRO_JIT", "1") != "0"


class JitEngine:
    """Per-system trace-compilation state.  Never snapshotted: blocks
    bind live component objects, so a restored system re-detects and
    recompiles its hot loops (the counters are part of the snapshot's
    *performance*, never its architecture)."""

    def __init__(self, system) -> None:
        self.system = system
        iu = system.iu
        self.iu = iu
        #: pc -> CompiledBlock, or False for PCs proven uncompilable.
        self.blocks: Dict[int, Union[CompiledBlock, bool]] = {}
        self.counts: Dict[int, int] = {}
        regs = iu.r
        self._pc_reg = regs._pc
        self._npc_reg = regs._npc
        self._psr_reg = regs.psr._reg
        self._y_reg = regs._y
        self._annul_reg = iu._annul
        irq = system.irqctrl
        self._irq_pending = irq._pending
        self._irq_mask = irq._mask
        timers = system.timers
        self._timers = timers
        self._watchdog = timers.watchdog
        self._t1_control = timers.timer1.control
        self._t2_control = timers.timer2.control
        self._uart1_status = system.uart1._status
        self._uart2_status = system.uart2._status
        self._dma_status = system.dma._status
        #: Registers whose lane-0 values the guards (or compiled code)
        #: read directly; any dirty flag defers to the interpreter so
        #: TMR voting, scrubbing and disagreement counting stay exact.
        self._guard_regs = (
            self._npc_reg, self._psr_reg, self._y_reg, self._annul_reg,
            self._irq_pending, self._irq_mask, self._watchdog,
            self._t1_control, self._t2_control,
            self._uart1_status, self._uart2_status, self._dma_status,
        )
        self._regfile = iu.regfile
        self._icache = system.icache
        self._dcache = system.dcache
        self._protector = system.memctrl.write_protector
        self._sysregs = system.sysregs
        self.stats = {
            "bursts": 0, "burst_instructions": 0, "burst_steps": 0,
            "deopts": 0, "compiles": 0, "compile_failures": 0,
            "verify_drops": 0,
        }

    def invalidate(self) -> None:
        """Drop every compiled block and hot counter.  Called on
        snapshot restore, reset and program (re)load: compiled closures
        bind component internals that those events may rebind."""
        self.blocks.clear()
        self.counts.clear()

    def prime(self, pcs) -> None:
        """Pre-seed hot counters for statically-discovered loop heads.

        The static analyzer (:mod:`repro.analysis.program`) recovers the
        program's natural loops; their headers are exactly the PCs the
        hot-counting would eventually discover.  Priming them to the
        threshold makes the first visit compile immediately instead of
        waiting out ``HOT_THRESHOLD`` interpreted iterations.  Purely a
        warm-up hint: compiled bursts are byte-identical to
        interpretation, so priming never changes results.
        """
        counts = self.counts
        for pc in pcs:
            if pc not in self.blocks:
                counts[pc] = HOT_THRESHOLD

    def try_burst(self, budget: int,
                  stop_pc: Optional[int]) -> Optional[Tuple[int, int]]:
        """Run one compiled burst if every guard passes.

        Returns ``(instructions, steps)`` actually retired (both > 0),
        or ``None`` when the driver must interpret a step instead.
        """
        pc_reg = self._pc_reg
        if pc_reg._dirty:
            return None
        pc = pc_reg._lanes[0]
        block = self.blocks.get(pc)
        if block is None:
            counts = self.counts
            seen = counts.get(pc, 0) + 1
            if seen < HOT_THRESHOLD:
                if len(counts) >= MAX_COUNTERS:
                    counts.clear()
                counts[pc] = seen
                return None
            counts.pop(pc, None)
            built = build_block(self.system, pc)
            if built is None:
                self.stats["compile_failures"] += 1
                self.blocks[pc] = False
                return None
            self.stats["compiles"] += 1
            self.blocks[pc] = built
            block = built
        elif block is False:
            return None

        if budget < block.max_path_instructions:
            return None
        if stop_pc is not None and stop_pc in block.addresses:
            return None
        iu = self.iu
        if iu.halted is not HaltReason.RUNNING or iu.power_down:
            return None
        system = self.system
        if system._ffbank_dirty or self._sysregs.power_down_requested:
            return None
        for reg in self._guard_regs:
            if reg._dirty:
                return None
        if self._npc_reg._lanes[0] != (pc + 4) & 0xFFFFFFFF:
            return None
        if self._annul_reg._lanes[0]:
            return None
        psr_raw = self._psr_reg._lanes[0]
        if psr_raw & 0x20:  # ET set: a deliverable interrupt must trap
            active = (self._irq_pending._lanes[0]
                      & self._irq_mask._lanes[0] & _LEVEL_MASK)
            if active and active.bit_length() - 1 > (psr_raw >> 8) & 0xF:
                return None
        timers = self._timers
        if timers.watchdog_expired or self._watchdog._lanes[0]:
            return None
        if (self._t1_control._lanes[0]
                | self._t2_control._lanes[0]) & _CTRL_ENABLE:
            return None
        if not self._uart1_status._lanes[0] & _STATUS_TX_SHIFT_EMPTY:
            return None
        if not self._uart2_status._lanes[0] & _STATUS_TX_SHIFT_EMPTY:
            return None
        if self._dma_status._lanes[0] & _STATUS_BUSY:
            return None
        # Suspect sets are re-resolved through their owners: restore()
        # rebinds them.
        icache = self._icache
        dcache = self._dcache
        if (self._regfile._suspect or icache.tag_ram._suspect
                or icache.data_ram._suspect or dcache.tag_ram._suspect
                or dcache.data_ram._suspect):
            return None
        if not (icache.enabled and dcache.enabled):
            return None
        for unit in self._protector.units:
            if unit.mode is not WpMode.DISABLED:
                return None
        ipeek = icache.peek_word
        for addr, word in block.verify:
            if ipeek(addr) != word:
                self.stats["verify_drops"] += 1
                del self.blocks[pc]
                return None

        _xpc, n_i, n_s, deopt = block.fn(budget)
        if deopt:
            self.stats["deopts"] += 1
        if n_s == 0:
            # Deopt at the first covered instruction: nothing retired,
            # nothing written; interpret it (no livelock, the
            # interpreter always makes progress).
            return None
        self.stats["bursts"] += 1
        self.stats["burst_instructions"] += n_i
        self.stats["burst_steps"] += n_s
        return n_i, n_s
