"""A mini trace-JIT over the instruction-stepped interpreter.

Hot straight-line blocks (detected via the decode memo's instruction
records) are compiled into specialized Python closures: source operands
pre-resolved to physical register-file indices, condition codes fused
into a local integer, no per-instruction dispatch, and one counter
write-back per burst instead of one per step.  Compiled bursts run only
behind a guard set that proves the interpreter would have taken its
fault-free fast path for every covered step; anything the block cannot
model -- cache miss, trap, interrupt, parity/EDAC detection, fault
injection into a covered cell, peripheral activity -- fails a guard or
deopts back to the interpreter *before* the first unmodelled side
effect, so cycle counts, error counters, telemetry events and
architectural digests stay byte-identical to interpreted execution.

See DESIGN.md "Trace compilation" for the observables contract.
"""

from repro.jit.blocks import BLOCK_OBSERVABLES, CompiledBlock, build_block
from repro.jit.engine import JitEngine, jit_default_enabled

__all__ = [
    "BLOCK_OBSERVABLES",
    "CompiledBlock",
    "JitEngine",
    "build_block",
    "jit_default_enabled",
]
