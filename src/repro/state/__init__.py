"""Snapshot/restore of complete device state (see :mod:`repro.state.snapshot`)."""

from repro.state.snapshot import (
    DIAG_KEY,
    FORMAT_VERSION,
    OBSERVATION_COMPONENTS,
    Snapshot,
    capture_rng,
    restore_rng,
    strip_diag,
)

__all__ = [
    "DIAG_KEY",
    "FORMAT_VERSION",
    "OBSERVATION_COMPONENTS",
    "Snapshot",
    "capture_rng",
    "restore_rng",
    "strip_diag",
]
