"""Bit-exact device snapshots: the ``repro.state`` subsystem.

A :class:`Snapshot` is an ordered mapping of *component payloads*: plain
Python values (ints, strs, bools, bytes, tuples, lists, dicts) produced by
each component's ``capture()`` method and consumed by its ``restore()``.
:meth:`LeonSystem.snapshot` composes them; :meth:`LeonSystem.restore`
dispatches them back.  The payloads are canonical -- sets are stored as
sorted tuples, numpy arrays as raw bytes -- so two snapshots of identical
device state are *equal objects* and serialize to identical bytes.

Two uses drive the design (Lopez-Ongil et al., "Techniques for Fast
Transient Fault Grading Based on Autonomous Emulation"):

* **warm-start**: a campaign executes the fault-free prefix once, snapshots
  at the beam-window start, and every injection run restores from the shared
  snapshot instead of recomputing the prefix;
* **early classification**: a run whose architectural state re-converges to
  the golden (strike-free) run is *effaced* -- its future is exactly the
  golden future, so it can stop at the window close.

Diagnostic state and convergence
--------------------------------
Pure observation state (error counters, performance counters, voter
disagreement counts, write-protect violation tallies...) never feeds back
into execution, but it does *remember* that a strike happened -- an effaced
run has the same architectural future as golden while its counters differ.
The digest used for convergence checks therefore excludes the counter
components and every ``"diag"``-keyed subtree; ``capture()`` methods file
observation-only values under a ``"diag"`` key for exactly this reason.
"""

from __future__ import annotations

import hashlib
import pickle
import random
import zlib
from typing import Any, Dict, Tuple

from repro.errors import StateError

#: Bump when the payload layout changes incompatibly.
FORMAT_VERSION = 1

#: Reserved payload key for observation-only state (excluded from digests).
DIAG_KEY = "diag"

#: Components that are pure observation (excluded from digests).
OBSERVATION_COMPONENTS = ("errors", "perf")

_PICKLE_PROTOCOL = 4  # stable across supported interpreters


def strip_diag(value: Any) -> Any:
    """Recursively drop every ``"diag"`` key from nested dicts."""
    if isinstance(value, dict):
        return {key: strip_diag(item) for key, item in value.items()
                if key != DIAG_KEY}
    if isinstance(value, list):
        return [strip_diag(item) for item in value]
    if isinstance(value, tuple):
        return tuple(strip_diag(item) for item in value)
    return value


class Snapshot:
    """One captured device state, addressable by component name."""

    __slots__ = ("config_key", "components", "version")

    def __init__(self, config_key: str,
                 components: Dict[str, Any],
                 version: int = FORMAT_VERSION) -> None:
        self.config_key = config_key
        self.components = components
        self.version = version

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Snapshot):
            return NotImplemented
        return (self.version == other.version
                and self.config_key == other.config_key
                and self.components == other.components)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Snapshot(config_key={self.config_key!r}, "
                f"components={sorted(self.components)})")

    # -- serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Compact serialized form (pickle + zlib); round-trips exactly."""
        payload = {
            "version": self.version,
            "config_key": self.config_key,
            "components": self.components,
        }
        return zlib.compress(pickle.dumps(payload, _PICKLE_PROTOCOL))

    @classmethod
    def from_bytes(cls, data: bytes) -> "Snapshot":
        try:
            payload = pickle.loads(zlib.decompress(data))
            version = payload["version"]
            config_key = payload["config_key"]
            components = payload["components"]
        except Exception as exc:
            raise StateError(f"undecodable snapshot: {exc}") from None
        if version != FORMAT_VERSION:
            raise StateError(
                f"snapshot format v{version} != supported v{FORMAT_VERSION}")
        return cls(config_key, components, version)

    # -- digests -------------------------------------------------------------

    def digest(self, *, architectural: bool = True) -> str:
        """SHA-256 over the canonical payload, as a hex string.

        With ``architectural=True`` (the default) the observation-only
        components and every ``"diag"`` subtree are excluded, so two states
        with identical *execution futures* -- and possibly different error
        counters -- hash equal.  That is the comparison warm-start campaigns
        use to classify a run as effaced.
        """
        components = self.components
        if architectural:
            components = {
                name: strip_diag(payload)
                for name, payload in components.items()
                if name not in OBSERVATION_COMPONENTS
            }
        blob = pickle.dumps((self.config_key, components), _PICKLE_PROTOCOL)
        return hashlib.sha256(blob).hexdigest()


# -- RNG state helpers --------------------------------------------------------

def capture_rng(rng: random.Random) -> Tuple:
    """Canonical (picklable, comparable) form of a Random's state."""
    version, internal, gauss = rng.getstate()
    return (version, tuple(internal), gauss)


def restore_rng(rng: random.Random, state: Tuple) -> None:
    """Restore a Random from :func:`capture_rng` output."""
    try:
        version, internal, gauss = state
        rng.setstate((version, tuple(internal), gauss))
    except (TypeError, ValueError) as exc:
        raise StateError(f"invalid RNG state: {exc}") from None
