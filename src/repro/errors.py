"""Exception hierarchy for the LEON-FT simulator.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent :class:`~repro.core.config.LeonConfig`."""


class AssemblerError(ReproError):
    """A source-level error found while assembling a program."""

    def __init__(self, message: str, line: int = 0, source: str = "") -> None:
        self.line = line
        self.source = source
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


class DecodeError(ReproError):
    """A 32-bit word does not encode a valid SPARC V8 instruction."""


class BusError(ReproError):
    """An AMBA transfer received an ERROR response."""

    def __init__(self, address: int, message: str = "") -> None:
        self.address = address
        super().__init__(message or f"bus error at {address:#010x}")


class SimulationError(ReproError):
    """The simulator reached an internal inconsistency."""


class UncorrectableError(ReproError):
    """A protected storage element holds an error the code cannot correct."""

    def __init__(self, message: str, address: int | None = None) -> None:
        self.address = address
        super().__init__(message)


class InjectionError(ReproError):
    """A fault-injection request referenced an unknown or invalid target."""


class StateError(ReproError):
    """A snapshot could not be captured, decoded or restored."""


class RecoveryError(ReproError):
    """A recovery policy or controller request was invalid."""
