"""Instruction timing model (cycles per instruction class).

LEON-1 approximate base timings on cache hits; cache misses, bus wait
states, the FT double-store delay (section 4.4) and trap/restart refill
(section 4.4, Figure 2) are added on top by the respective components.
"""

from __future__ import annotations

#: Base cycles for simple ALU / control instructions.
CYCLES_ALU = 1
#: Single-word load (cache hit): address in EX, data in ME.
CYCLES_LOAD = 2
#: Double-word load.
CYCLES_LDD = 3
#: Single store (hand-off to the write buffer).
CYCLES_STORE = 2
#: Double store.
CYCLES_STD = 3
#: Atomic LDSTUB / SWAP (read + write, bus locked).
CYCLES_ATOMIC = 3
#: JMPL / RETT flush the fetch stage.
CYCLES_JMPL = 2
#: Iterative 32x32 multiplier.
CYCLES_MUL = 5
#: Radix-2 divider.
CYCLES_DIV = 35
#: Complete trap entry, and equally the FT pipeline restart: "the time for
#: the complete restart operation takes 4 clock cycles, the same as for
#: taking a normal trap" (section 4.4).
CYCLES_TRAP = 4
