"""The LEON integer unit: a SPARC V8 5-stage pipeline (paper section 3).

Stages: FE (fetch), DE (decode / register read), EX (execute / operand
check), ME (memory), WR (write-back / check-bit generation).  The model is
instruction-stepped with exact cycle accounting; :mod:`repro.iu.pipetrace`
replays short windows stage-by-stage to regenerate the Figure 2 diagrams.
"""

from repro.iu.pipeline import HaltReason, IntegerUnit, StepEvent, StepResult
from repro.iu.psr import PSR, SpecialRegisters
from repro.iu.regfile import RegisterFile, RegfileCheck
from repro.iu.pipetrace import PipelineTracer, render_diagram

__all__ = [
    "HaltReason",
    "IntegerUnit",
    "PSR",
    "PipelineTracer",
    "RegfileCheck",
    "RegisterFile",
    "SpecialRegisters",
    "StepEvent",
    "StepResult",
    "render_diagram",
]
