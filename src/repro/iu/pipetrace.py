"""Stage-level pipeline diagrams: the Figure 2 reproduction.

The executor in :mod:`repro.iu.pipeline` is instruction-stepped with exact
cycle costs; this module replays short windows through an explicit 5-stage
(FE DE EX ME WR) pipeline model to draw the four diagrams of Figure 2:

    A. normal execution,
    B. normal trap operation (a trapped instruction),
    C. register-file error detection/correction (pipeline restart),
    D. uncorrectable register-file error (error trap).

The diagrams are structural: what matters (and what the tests assert) is
that the flush/restart behaviour matches the executor -- the trap and the
restart cost the same 4 cycles, the restart re-fetches the *failing*
instruction while the trap fetches the handler, and no instruction after
the failing one reaches WR before the event resolves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.iu import timing

#: Pipeline stages, fetch first.
STAGES = ("FE", "DE", "EX", "ME", "WR")

#: Cell shown for a bubble / flushed slot.
BUBBLE = "."


@dataclass
class Diagram:
    """One pipeline diagram: per-stage cell labels over consecutive cycles."""

    title: str
    cells: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return max((len(row) for row in self.cells.values()), default=0)

    def stage_row(self, stage: str) -> List[str]:
        row = self.cells.get(stage, [])
        return row + [BUBBLE] * (self.cycles - len(row))

    def completion_cycle(self, label: str) -> Optional[int]:
        """Cycle (0-based) at which ``label`` passes the WR stage, if ever."""
        row = self.stage_row("WR")
        for cycle, cell in enumerate(row):
            if cell == label:
                return cycle
        return None


class _Pipe:
    """A simple in-order pipeline filler used to build diagrams."""

    def __init__(self, title: str) -> None:
        self.diagram = Diagram(title, {stage: [] for stage in STAGES})  # state: diag -- figure renderer, not device state
        # queue[s] = labels that still have to traverse stage index s.
        self._inflight: List[Optional[str]] = [None] * len(STAGES)  # state: diag -- figure renderer, not device state

    def tick(self, fetch: Optional[str], *, overrides: Optional[Dict[str, str]] = None,
             squash_behind: bool = False) -> None:
        """Advance one cycle: shift every instruction one stage and fetch.

        ``overrides`` forces specific stage cells this cycle (e.g. TRAP).
        ``squash_behind`` turns everything in FE/DE/EX into bubbles *after*
        recording the shift (a flush).
        """
        self._inflight = [fetch] + self._inflight[:-1]
        if squash_behind:
            # The failing instruction is in EX; everything younger dies.
            self._inflight[0] = None
            self._inflight[1] = None
        for index, stage in enumerate(STAGES):
            label = self._inflight[index]
            if overrides and stage in overrides:
                label = overrides[stage]
            self.diagram.cells[stage].append(label if label else BUBBLE)

    def squash_all(self) -> None:
        self._inflight = [None] * len(STAGES)

    def squash_through_ex(self) -> None:
        """Flush FE/DE/EX (the failing instruction and everything younger);
        older instructions in ME/WR drain normally."""
        self._inflight[0] = None
        self._inflight[1] = None
        self._inflight[2] = None

    def drain(self) -> None:
        while any(self._inflight):
            self.tick(None)


def trace_normal(labels: Sequence[str]) -> Diagram:
    """Figure 2-A: normal execution, one instruction per cycle."""
    pipe = _Pipe("A. Normal execution")
    for label in labels:
        pipe.tick(label)
    pipe.drain()
    return pipe.diagram


def trace_trap(labels: Sequence[str], trap_index: int,
               handler_labels: Sequence[str] = ("TA1", "TA2")) -> Diagram:
    """Figure 2-B: instruction ``labels[trap_index]`` traps.

    The trap is recognized in the execute stage; younger instructions are
    flushed, two internal trap cycles follow (save PC/nPC, decrement CWP,
    fetch redirect) and the handler stream enters.  End to end the trapped
    instruction's slot to the handler's first fetch is
    ``timing.CYCLES_TRAP`` cycles.
    """
    pipe = _Pipe("B. Normal trap operation")
    for cycle, label in enumerate(labels):
        if cycle == trap_index + 2:
            break
        pipe.tick(label)
    # The trapping instruction is now in EX: flush and run the trap cycles.
    pipe.tick(None, overrides={"EX": "TRAP"}, squash_behind=True)
    pipe.squash_through_ex()
    pipe.tick(None, overrides={"ME": "TRAP"})
    for label in handler_labels:
        pipe.tick(label)
    pipe.drain()
    return pipe.diagram


def trace_restart(labels: Sequence[str], error_index: int) -> Diagram:
    """Figure 2-C: a correctable register-file error on one instruction.

    The check unit fires in EX (CHECK); the pipeline flushes, the corrected
    operand is written back (CORR., UPDATE), and the *failing instruction
    itself* is re-fetched -- "a jump is made to the address of the failed
    instruction rather than to a trap vector".
    """
    pipe = _Pipe("C. Regfile error detection/correction")
    for cycle, label in enumerate(labels):
        if cycle == error_index + 2:
            break
        pipe.tick(label)
    pipe.tick(None, overrides={"EX": "CHECK"}, squash_behind=True)
    pipe.squash_through_ex()
    pipe.tick(None, overrides={"ME": "CORR."})
    # The corrected value is written back (UPDATE) in the same cycle the
    # failing instruction is re-fetched -- 4 cycles end to end, "the same
    # as for taking a normal trap".
    first_overrides: Optional[Dict[str, str]] = {"WR": "UPDATE"}
    for label in labels[error_index:]:
        pipe.tick(label, overrides=first_overrides)
        first_overrides = None
    pipe.drain()
    return pipe.diagram


def trace_uncorrectable(labels: Sequence[str], error_index: int,
                        handler_labels: Sequence[str] = ("TA1", "TA2")) -> Diagram:
    """Figure 2-D: an uncorrectable register-file error -> error trap."""
    pipe = _Pipe("D. Uncorrectable regfile error, error trap")
    for cycle, label in enumerate(labels):
        if cycle == error_index + 2:
            break
        pipe.tick(label)
    pipe.tick(None, overrides={"EX": "CHECK"}, squash_behind=True)
    pipe.squash_through_ex()
    pipe.tick(None, overrides={"ME": "ERROR"})
    first_overrides: Optional[Dict[str, str]] = {"WR": "TRAP"}
    for label in handler_labels:
        pipe.tick(label, overrides=first_overrides)
        first_overrides = None
    pipe.drain()
    return pipe.diagram


def render_diagram(diagram: Diagram, *, cell_width: int = 7) -> str:
    """ASCII rendering in the style of the paper's Figure 2."""
    lines = [diagram.title]
    header = "      " + "".join(
        f"{cycle:^{cell_width}}" for cycle in range(diagram.cycles)
    )
    lines.append(header)
    for stage in STAGES:
        row = diagram.stage_row(stage)
        cells = "".join(f"{cell:^{cell_width}}" for cell in row)
        lines.append(f"{stage:>4}  {cells}")
    return "\n".join(lines)


class PipelineTracer:
    """Convenience bundle producing all four Figure 2 diagrams."""

    def __init__(self, labels: Optional[Sequence[str]] = None) -> None:
        self.labels = list(labels) if labels else [f"INST{i}" for i in range(1, 6)]  # state: config -- figure labels

    def figure2(self, event_index: int = 1) -> List[Diagram]:
        return [
            trace_normal(self.labels),
            trace_trap(self.labels, event_index),
            trace_restart(self.labels, event_index),
            trace_uncorrectable(self.labels, event_index),
        ]

    def render_all(self, event_index: int = 1) -> str:
        return "\n\n".join(render_diagram(d) for d in self.figure2(event_index))

    @staticmethod
    def restart_penalty_cycles() -> int:
        """The restart penalty both the diagram and the executor charge."""
        return timing.CYCLES_TRAP
